// Ablation: the adiabatic theorem in action (Sec. 3.5, Eq. 24). Evolves
// the paper's MQO example under the Trotterized interpolating Hamiltonian
// H(t) = (1 - t/T) H_B + (t/T) H_P for increasing annealing times T and
// reports the ground-state probability, alongside the minimum spectral
// gap of a small instance (the quantity that dictates the required T).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "variational/adiabatic.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Ablation",
                          "adiabatic evolution: annealing time vs success");

  const MqoProblem problem = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  const double ground = SolveQuboBruteForce(encoding.qubo).best_energy;
  std::printf("Problem: paper MQO example (8 qubits); ground energy %.1f\n\n",
              ground);

  TablePrinter table({"annealing time T", "P(ground state)",
                      "best sampled cost"});
  for (double total_time : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    AdiabaticOptions options;
    options.total_time = total_time;
    options.steps = 600;
    options.shots = 2048;
    options.seed = 3;
    const AdiabaticResult result =
        SolveQuboAdiabatically(encoding.qubo, options);
    std::vector<int> selection;
    const bool valid = problem.DecodeBits(result.best_bits, &selection);
    table.AddRow({StrFormat("%.1f", total_time),
                  StrFormat("%.3f", result.ground_state_probability),
                  valid ? StrFormat("%.0f", problem.SelectionCost(selection))
                        : "invalid"});
  }
  table.Print();

  // Minimum spectral gap of a small instance: the denominator of Eq. 24.
  MqoProblem small;
  small.AddQuery({3.0, 1.0});
  small.AddQuery({2.0, 4.0});
  small.AddSaving(0, 3, 1.5);
  const MqoQuboEncoding small_encoding = EncodeMqoAsQubo(small);
  const SpectralGap gap =
      MinimumSpectralGap(QuboToIsing(small_encoding.qubo), 41);
  std::printf("\n4-qubit MQO instance: minimum spectral gap %.3f at "
              "s = %.2f\n",
              gap.min_gap, gap.at_s);
  std::printf("The adiabatic theorem requires T >> 1/g_min^2 ~ %.1f — the\n"
              "success column above shows exactly that crossover.\n",
              1.0 / (gap.min_gap * gap.min_gap));
  return 0;
}
