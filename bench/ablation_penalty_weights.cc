// Ablation: the MQO penalty-weight rules (Eq. 34/35). Scales both
// penalties by a factor f and measures, over random instances, how often
// the exact QUBO ground state decodes to a valid / optimal plan selection.
// Expected: below f = 1 the ground state is frequently invalid (selecting
// zero or multiple plans per query); at and above f = 1 it is always the
// MQO optimum, confirming that the paper's inequalities are tight
// guarantees rather than tuning folklore.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_generator.h"
#include "qubo/brute_force_solver.h"
#include "qubo/qubo_model.h"

namespace {

using namespace qopt;

/// Builds the [9] QUBO with both penalty weights scaled by `factor`
/// relative to their Eq. 34/35 minima.
QuboModel EncodeWithScaledPenalties(const MqoProblem& problem,
                                    double factor) {
  double max_cost = 0.0;
  for (int p = 0; p < problem.NumPlans(); ++p) {
    max_cost = std::max(max_cost, problem.PlanCost(p));
  }
  std::vector<double> savings_per_plan(
      static_cast<std::size_t>(problem.NumPlans()), 0.0);
  for (const auto& [plans, saving] : problem.Savings()) {
    savings_per_plan[static_cast<std::size_t>(plans.first)] += saving;
    savings_per_plan[static_cast<std::size_t>(plans.second)] += saving;
  }
  double max_savings = 0.0;
  for (double s : savings_per_plan) max_savings = std::max(max_savings, s);
  const double weight_l = factor * (max_cost + 1.0);
  const double weight_m = factor * (max_cost + 1.0 + max_savings + 1.0);

  QuboModel qubo(problem.NumPlans());
  for (int p = 0; p < problem.NumPlans(); ++p) {
    qubo.AddLinear(p, -weight_l + problem.PlanCost(p));
  }
  for (int q = 0; q < problem.NumQueries(); ++q) {
    const auto& plans = problem.PlansOfQuery(q);
    for (std::size_t a = 0; a < plans.size(); ++a) {
      for (std::size_t b = a + 1; b < plans.size(); ++b) {
        qubo.AddQuadratic(plans[a], plans[b], weight_m);
      }
    }
  }
  for (const auto& [plans, saving] : problem.Savings()) {
    qubo.AddQuadratic(plans.first, plans.second, -saving);
  }
  return qubo;
}

}  // namespace

int main() {
  using qopt_bench::PrintHeader;
  PrintHeader("Ablation", "MQO penalty weights (Eq. 34/35) vs validity");
  const int instances = qopt_bench::Samples(20);
  std::printf("(%d random 4x4 MQO instances per factor; exact ground "
              "states)\n\n",
              instances);

  TablePrinter table({"penalty scale f", "valid ground states",
                      "optimal ground states"});
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.5, 3.0}) {
    int valid = 0;
    int optimal = 0;
    for (int i = 0; i < instances; ++i) {
      MqoGeneratorOptions gen;
      gen.num_queries = 4;
      gen.plans_per_query = 4;
      gen.saving_density = 0.4;
      gen.seed = 900 + static_cast<std::uint64_t>(i);
      const MqoProblem problem = GenerateMqoProblem(gen);
      const QuboModel qubo = EncodeWithScaledPenalties(problem, factor);
      const BruteForceResult ground = SolveQuboBruteForce(qubo);
      std::vector<int> selection;
      if (!problem.DecodeBits(ground.best_bits, &selection)) continue;
      ++valid;
      if (std::abs(problem.SelectionCost(selection) -
                   SolveMqoExhaustive(problem).cost) < 1e-9) {
        ++optimal;
      }
    }
    table.AddRow({StrFormat("%.2f", factor),
                  StrFormat("%d / %d", valid, instances),
                  StrFormat("%d / %d", optimal, instances)});
  }
  table.Print();
  std::printf("\nf >= 1 must give 100%% valid and optimal decodes; weak\n"
              "penalties let invalid selections undercut valid ones.\n");
  return 0;
}
