// Ablation: chain strength in the annealer emulation. Solves an MQO QUBO
// through a Chimera minor embedding with the ferromagnetic chain coupling
// scaled relative to the auto-derived value, and reports chain-break
// fractions and solution quality. Expected: weak chains break and decode
// garbage; excessive chains freeze the dynamics (the energy-spectrum
// compression the paper discusses in Sec. 6.1.4); a moderate multiple of
// the problem scale is best.

#include <cstdio>

#include "anneal/chimera.h"
#include "anneal/embedding_composite.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Ablation", "chain strength in embedded solves");

  MqoGeneratorOptions gen;
  gen.num_queries = 4;
  gen.plans_per_query = 3;
  gen.saving_density = 0.3;
  gen.seed = 5;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoSolution exact = SolveMqoExhaustive(problem);
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  const SimpleGraph chimera = MakeChimera(6, 6, 4);

  // Auto chain strength = 1.5x the largest Ising coefficient.
  const IsingModel ising = QuboToIsing(encoding.qubo);
  double scale = 0.0;
  for (int i = 0; i < ising.NumSpins(); ++i) {
    scale = std::max(scale, std::abs(ising.Field(i)));
  }
  for (const auto& [edge, j] : ising.Couplings()) {
    (void)edge;
    scale = std::max(scale, std::abs(j));
  }

  TablePrinter table({"chain strength / scale", "chain breaks", "valid",
                      "decoded cost", "optimal cost"});
  for (double multiplier : {0.05, 0.2, 0.5, 1.0, 1.5, 5.0, 25.0}) {
    EmbeddedSolveOptions options;
    options.chain_strength = multiplier * scale;
    options.embed.seed = 4;
    options.anneal.num_reads = 40;
    options.anneal.num_sweeps = 2000;
    options.anneal.seed = 9;
    const auto result = SolveQuboOnTopology(encoding.qubo, chimera, options);
    if (!result.has_value()) {
      table.AddRow({StrFormat("%.2f", multiplier), "-", "no embedding", "-",
                    StrFormat("%.2f", exact.cost)});
      continue;
    }
    std::vector<int> selection;
    const bool valid = problem.DecodeBits(result->bits, &selection);
    table.AddRow({StrFormat("%.2f", multiplier),
                  StrFormat("%.0f%%", 100.0 * result->chain_break_fraction),
                  valid ? "yes" : "no",
                  valid ? StrFormat("%.2f", problem.SelectionCost(selection))
                        : "-",
                  StrFormat("%.2f", exact.cost)});
  }
  table.Print();
  std::printf("\nD-Wave practice tunes this constant per problem; the\n"
              "library's default (1.5x the problem scale) sits in the\n"
              "stable region.\n");
  return 0;
}
