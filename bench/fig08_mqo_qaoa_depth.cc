// Reproduces Fig. 8: QAOA circuit depths for MQO problems vs the total
// number of plans, for varying plans-per-query (PPQ) and for the optimal
// (all-to-all) topology vs the IBM-Q Mumbai topology. Mean over randomly
// generated instances (paper: 20; override with QQO_BENCH_SAMPLES).
//
// Expected shape: depth grows with PPQ (denser E_M cliques); at 24 plans
// the 8-PPQ depth is roughly 65% above the 4-PPQ depth; routing onto
// Mumbai roughly doubles-to-triples the depth, worse for denser problems.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"

namespace {

using namespace qopt;

/// Mean QAOA depth over `samples` random instances for the given topology
/// (nullptr = optimal/all-to-all).
double MeanQaoaDepth(int num_queries, int ppq, int samples,
                     const CouplingMap* device) {
  // Instances are independent (one generator seed and one routing seed
  // each), so the sweep fans out on the default pool; every depth lands in
  // the slot of its instance, keeping the mean identical at any
  // QQO_THREADS setting.
  std::vector<double> depths(static_cast<std::size_t>(samples));
  ThreadPool::Default().ParallelFor(
      static_cast<std::size_t>(samples), [&](std::size_t i) {
        MqoGeneratorOptions gen;
        gen.num_queries = num_queries;
        gen.plans_per_query = ppq;
        gen.saving_density = 0.1;
        gen.seed = 1000 + static_cast<std::uint64_t>(i) * 31 + ppq;
        const MqoQuboEncoding encoding =
            EncodeMqoAsQubo(GenerateMqoProblem(gen));
        const QuantumCircuit qaoa =
            BuildQaoaTemplate(QuboToIsing(encoding.qubo));
        if (device == nullptr) {
          const CouplingMap full = MakeFullyConnected(qaoa.NumQubits());
          depths[i] = qopt_bench::MeanTranspiledDepth(qaoa, full, 1);
        } else {
          depths[i] = TranspileManySeeds(qaoa, *device, {i})[0].depth;
        }
      });
  return Mean(depths);
}

}  // namespace

int main() {
  using qopt_bench::PrintHeader;
  using qopt_bench::Samples;
  PrintHeader("Figure 8", "MQO QAOA circuit depths vs plans, PPQ, topology");
  const int samples = Samples(qopt_bench::FastMode() ? 5 : 20);
  std::printf("(%d random instances per point)\n\n", samples);

  const CouplingMap mumbai = MakeMumbai27();

  std::printf("Left chart — optimal topology, PPQ in {2, 4, 8}:\n");
  TablePrinter left({"total plans", "ppq=2", "ppq=4", "ppq=8"});
  for (int plans = 8; plans <= 24; plans += 4) {
    std::vector<std::string> row = {StrFormat("%d", plans)};
    for (int ppq : {2, 4, 8}) {
      row.push_back(plans % ppq == 0
                        ? StrFormat("%.1f", MeanQaoaDepth(plans / ppq, ppq,
                                                          samples, nullptr))
                        : "-");
    }
    left.AddRow(row);
  }
  left.Print();

  std::printf("\nRight chart — optimal vs Mumbai topology (PPQ 4 and 8):\n");
  TablePrinter right({"total plans", "ppq=4 optimal", "ppq=4 mumbai",
                      "ppq=8 optimal", "ppq=8 mumbai"});
  for (int plans = 8; plans <= 24; plans += 8) {
    right.AddRow({static_cast<double>(plans),
                  MeanQaoaDepth(plans / 4, 4, samples, nullptr),
                  MeanQaoaDepth(plans / 4, 4, samples, &mumbai),
                  MeanQaoaDepth(plans / 8, 8, samples, nullptr),
                  MeanQaoaDepth(plans / 8, 8, samples, &mumbai)},
                 1);
  }
  right.Print();

  const double ppq4 = MeanQaoaDepth(6, 4, samples, nullptr);
  const double ppq8 = MeanQaoaDepth(3, 8, samples, nullptr);
  const double ppq4_dev = MeanQaoaDepth(6, 4, samples, &mumbai);
  const double ppq8_dev = MeanQaoaDepth(3, 8, samples, &mumbai);
  std::printf("\nAt 24 plans: 8 PPQ is %.0f%% deeper than 4 PPQ "
              "(paper: ~65%%)\n",
              100.0 * (ppq8 / ppq4 - 1.0));
  std::printf("Mumbai overhead at 24 plans: +%.0f%% (4 PPQ, paper ~116%%), "
              "+%.0f%% (8 PPQ, paper ~160%%)\n",
              100.0 * (ppq4_dev / ppq4 - 1.0),
              100.0 * (ppq8_dev / ppq8 - 1.0));
  return 0;
}
