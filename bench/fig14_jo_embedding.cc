// Reproduces Fig. 14: physical qubits needed to minor-embed join-ordering
// QUBOs into the Pegasus P16 fabric of the D-Wave Advantage.
//  - Left chart: relations 6..14 for P = J, 2J, 3J (1 threshold, omega=1).
//  - Right chart: 8 relations, P = J, growing threshold counts for
//    omega = 1, 0.01 and 0.0001.
// A point is reported only when the heuristic embedder succeeds in at
// least 50% of the attempts (the paper's reliability cutoff); a series
// stops after the first unreliable point.
//
// Expected shape: physical qubits ~ 2-5x the logical count, growing fast
// with relations/predicates; smaller omega and more thresholds push the
// feasibility frontier down dramatically (paper: P = J reaches 14
// relations, P = 3J only 10; at omega = 0.0001 only ~4 thresholds embed).
//
// This is by far the most expensive benchmark (minutes). Paper setting is
// 20 embeddings per point; default here is 3 (QQO_BENCH_SAMPLES to raise).

#include <cstdio>
#include <optional>

#include "anneal/minor_embedder.h"
#include "anneal/pegasus.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"

namespace {

using namespace qopt;

struct EmbedPoint {
  int logical = 0;
  int successes = 0;
  int attempts = 0;
  double mean_physical = 0.0;
  bool Reliable() const { return 2 * successes >= attempts; }
};

EmbedPoint MeasurePoint(const SimpleGraph& target, int relations,
                        int predicates, int thresholds, int decimals,
                        int samples) {
  QueryGeneratorOptions gen;
  gen.num_relations = relations;
  gen.num_predicates = predicates;
  gen.seed = 7;
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions options;
  options.thresholds.clear();
  for (int r = 0; r < thresholds; ++r) {
    options.thresholds.push_back(10.0 * (r + 1));
  }
  options.precision_decimals = decimals;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  const SimpleGraph source = qubo.qubo.InteractionGraph();

  EmbedPoint point;
  point.logical = source.NumVertices();
  std::fprintf(stderr,
               "[fig14] measuring T=%d P=%d R=%d decimals=%d "
               "(%d logical qubits)...\n",
               relations, predicates, thresholds, decimals,
               point.logical);
  // The attempts are independent (one seed each), so they run as one
  // parallel sweep; results come back indexed by seed, and the seed-order
  // scan below keeps success counts and means identical to the old loop.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    seeds.push_back(100 + static_cast<std::uint64_t>(s) * 7919);
  }
  EmbedOptions embed;
  embed.tries = 1;  // each sample is one independent attempt
  const std::vector<std::optional<Embedding>> embeddings =
      FindMinorEmbeddingManySeeds(source, target, seeds, embed);
  std::vector<double> physical;
  for (const std::optional<Embedding>& embedding : embeddings) {
    ++point.attempts;
    if (embedding.has_value()) {
      ++point.successes;
      physical.push_back(
          static_cast<double>(embedding->NumPhysicalQubits()));
    }
  }
  point.mean_physical = Mean(physical);
  return point;
}

std::string PointCell(const EmbedPoint& point) {
  if (point.attempts == 0) return "-";
  if (!point.Reliable()) {
    return StrFormat("unreliable (%d/%d)", point.successes, point.attempts);
  }
  return StrFormat("%.0f (logical %d)", point.mean_physical, point.logical);
}

}  // namespace

int main() {
  using qopt_bench::PrintHeader;
  using qopt_bench::Samples;
  PrintHeader("Figure 14", "physical qubits on Pegasus P16 (Advantage)");
  const int samples = Samples(3);
  const bool fast = qopt_bench::FastMode();
  std::printf("(%d embedding attempts per point%s)\n\n", samples,
              fast ? ", fast mode" : "");

  const SimpleGraph p16 = MakePegasus(16);
  std::printf("Pegasus P16 fabric: %d qubits, %d couplers\n\n",
              p16.NumVertices(), p16.NumEdges());

  std::printf("Left chart — relations sweep (R = 1 threshold, omega = 1):\n");
  // The default sweep stops at 10 relations: our heuristic embedder's
  // chains are up to ~2x longer than minorminer's, so the paper's 12-14 relation
  // frontier point takes many minutes per attempt and usually fails; set
  // QQO_BENCH_MAX_RELATIONS=12 or 14 to try them.
  TablePrinter left({"relations", "P=J", "P=2J", "P=3J"});
  const int max_relations =
      qopt_bench::EnvInt("QQO_BENCH_MAX_RELATIONS", fast ? 8 : 10);
  std::vector<bool> series_alive = {true, true, true};
  for (int t = 6; t <= max_relations; t += 2) {
    std::vector<std::string> row = {StrFormat("%d", t)};
    for (int factor = 1; factor <= 3; ++factor) {
      const std::size_t s = static_cast<std::size_t>(factor - 1);
      if (!series_alive[s]) {
        row.push_back("(stopped)");
        continue;
      }
      const int predicates = factor * (t - 1);
      if (predicates > t * (t - 1) / 2) {
        row.push_back("-");
        continue;
      }
      const EmbedPoint point =
          MeasurePoint(p16, t, predicates, 1, 0, samples);
      row.push_back(PointCell(point));
      if (!point.Reliable()) series_alive[s] = false;
    }
    left.AddRow(row);
  }
  left.Print();

  std::printf("\nRight chart — thresholds sweep (8 relations, P = J):\n");
  TablePrinter right({"thresholds", "omega=1", "omega=0.01", "omega=0.0001"});
  const int threshold_steps[] = {1, 3, 5, 7};
  std::vector<bool> omega_alive = {true, true, true};
  const int decimals_of[] = {0, 2, 4};
  for (int r : threshold_steps) {
    if (fast && r > 3) break;
    std::vector<std::string> row = {StrFormat("%d", r)};
    for (std::size_t w = 0; w < 3; ++w) {
      if (!omega_alive[w]) {
        row.push_back("(stopped)");
        continue;
      }
      const EmbedPoint point =
          MeasurePoint(p16, 8, 7, r, decimals_of[w], samples);
      row.push_back(PointCell(point));
      if (!point.Reliable()) omega_alive[w] = false;
    }
    right.AddRow(row);
  }
  right.Print();

  std::printf(
      "\nNotes: chains make the physical count a small multiple of the\n"
      "logical one; denser QUBOs (more predicates, more thresholds, finer\n"
      "omega) lose embeddability far before the fabric's qubit count is\n"
      "exhausted — the paper's central finding for annealers.\n");
  return 0;
}
