// Runtime microbenchmarks (google-benchmark) for the library's hot paths:
// encoders, solvers, statevector simulation, transpilation and embedding.

#include <benchmark/benchmark.h>

#include "anneal/chimera.h"
#include "anneal/minor_embedder.h"
#include "anneal/pegasus.h"
#include "anneal/simulated_annealer.h"
#include "circuit/statevector.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "common/random.h"
#include "core/quantum_optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "serve/server.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/variational_solver.h"

namespace {

using namespace qopt;

void BM_EncodeMqoAsQubo(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = static_cast<int>(state.range(0));
  gen.plans_per_query = 8;
  gen.seed = 1;
  const MqoProblem problem = GenerateMqoProblem(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeMqoAsQubo(problem));
  }
}
BENCHMARK(BM_EncodeMqoAsQubo)->Arg(4)->Arg(16)->Arg(64);

void BM_EncodeJoinOrderBilp(benchmark::State& state) {
  QueryGeneratorOptions gen;
  gen.num_relations = static_cast<int>(state.range(0));
  gen.num_predicates = gen.num_relations - 1;
  gen.seed = 1;
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0, 100.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeJoinOrderAsBilp(graph, options));
  }
}
BENCHMARK(BM_EncodeJoinOrderBilp)->Arg(4)->Arg(10)->Arg(20);

void BM_BilpToQubo(benchmark::State& state) {
  QueryGeneratorOptions gen;
  gen.num_relations = static_cast<int>(state.range(0));
  gen.num_predicates = gen.num_relations - 1;
  gen.seed = 1;
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0, 100.0};
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeBilpAsQubo(encoding.bilp));
  }
}
BENCHMARK(BM_BilpToQubo)->Arg(4)->Arg(10)->Arg(20);

void BM_SimulatedAnnealing(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = static_cast<int>(state.range(0));
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  AnnealOptions options;
  options.num_reads = 5;
  options.num_sweeps = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQuboWithAnnealing(encoding.qubo, options));
  }
}
BENCHMARK(BM_SimulatedAnnealing)->Arg(4)->Arg(16)->Arg(64);

// Random QUBO with a given edge density — exercises the annealer's sweep
// kernel directly, across the sparse-CSR / dense-row layout boundary
// (dense rows kick in at density >= 0.35). range(0) = variables,
// range(1) = density in percent.
QuboModel MakeRandomQubo(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) {
    qubo.AddLinear(i, rng.NextDouble() * 2.0 - 1.0);
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextDouble() < density) {
        qubo.AddQuadratic(i, j, rng.NextDouble() * 2.0 - 1.0);
      }
    }
  }
  return qubo;
}

void BM_SaSweepDensity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const QuboModel qubo = MakeRandomQubo(n, density, 7);
  AnnealOptions options;
  options.num_reads = 4;
  options.num_sweeps = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQuboWithAnnealing(qubo, options));
  }
  state.SetItemsProcessed(state.iterations() * options.num_reads *
                          options.num_sweeps * n);
}
BENCHMARK(BM_SaSweepDensity)
    ->ArgsProduct({{32, 64, 128}, {10, 50, 100}});

void BM_BruteForceQubo(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = static_cast<int>(state.range(0));
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQuboBruteForce(encoding.qubo));
  }
}
BENCHMARK(BM_BruteForceQubo)->Arg(3)->Arg(4)->Arg(5);

void BM_StatevectorQaoa(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MqoGeneratorOptions gen;
  gen.num_queries = n / 4;
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  const IsingModel ising = QuboToIsing(encoding.qubo);
  const QuantumCircuit circuit = BuildQaoaCircuit(ising, {0.4}, {0.3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateCircuit(circuit));
  }
}
BENCHMARK(BM_StatevectorQaoa)->Arg(8)->Arg(12)->Arg(16);

// Raw single-qubit gate throughput at SIMD-relevant widths: layers of
// H/RX/RY across every qubit (nothing diagonal, so nothing fuses away and
// every gate goes through the vectorized ApplySingleQubit kernel).
void BM_StatevectorGateLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kLayers = 4;
  QuantumCircuit circuit(n);
  for (int layer = 0; layer < kLayers; ++layer) {
    for (int q = 0; q < n; ++q) circuit.H(q);
    for (int q = 0; q < n; ++q) circuit.Rx(q, 0.3);
    for (int q = 0; q < n; ++q) circuit.Ry(q, 0.7);
  }
  Statevector sv(n);
  for (auto _ : state) {
    sv.Reset();
    sv.ApplyCircuit(circuit);
    benchmark::DoNotOptimize(sv.Amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * kLayers * 3 * n);
}
BENCHMARK(BM_StatevectorGateLayer)->DenseRange(10, 14, 2);

void BM_TranspileToMumbai(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = static_cast<int>(state.range(0));
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(encoding.qubo));
  const CouplingMap mumbai = MakeMumbai27();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    TranspileOptions options;
    options.seed = seed++;
    benchmark::DoNotOptimize(Transpile(qaoa, mumbai, options));
  }
}
BENCHMARK(BM_TranspileToMumbai)->Arg(3)->Arg(5)->Arg(6);

void BM_TranspileManySeeds(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = 5;
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(encoding.qubo));
  const CouplingMap mumbai = MakeMumbai27();
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < static_cast<std::uint64_t>(state.range(0));
       ++s) {
    seeds.push_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TranspileManySeeds(qaoa, mumbai, seeds));
  }
}
BENCHMARK(BM_TranspileManySeeds)->Arg(4)->Arg(20)->UseRealTime();

void BM_QaoaSolveEndToEnd(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = static_cast<int>(state.range(0)) / 4;
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  VariationalOptions options;
  options.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQuboWithQaoa(encoding.qubo, options));
  }
}
BENCHMARK(BM_QaoaSolveEndToEnd)->Arg(12)->Arg(16)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MakePegasus(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakePegasus(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_MakePegasus)->Arg(4)->Arg(8)->Arg(16);

void BM_MinorEmbedIntoChimera(benchmark::State& state) {
  QueryGeneratorOptions gen;
  gen.num_relations = 3;
  gen.num_predicates = 2;
  gen.seed = 1;
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  const BilpQuboEncoding qubo =
      EncodeBilpAsQubo(EncodeJoinOrderAsBilp(graph, options).bilp);
  const SimpleGraph source = qubo.qubo.InteractionGraph();
  const SimpleGraph target = MakeChimera(8, 8, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    EmbedOptions embed;
    embed.seed = seed++;
    benchmark::DoNotOptimize(FindMinorEmbedding(source, target, embed));
  }
}
BENCHMARK(BM_MinorEmbedIntoChimera);

// Disarmed-observability overhead pair: the same synthetic sweep kernel
// with and without the obs instrumentation that now sits in the real hot
// loops (one QQO_TRACE_SPAN per solve-sized unit, one QQO_COUNT per
// sweep-sized unit of ~32 arithmetic ops — the same density as
// anneal.sweeps). tools/perf_baseline.sh --check compares the two and
// fails if the disarmed instrumentation costs more than the tolerance.
constexpr int kObsSweeps = 512;
constexpr int kObsOpsPerSweep = 32;

inline std::uint64_t ObsKernelSweep(std::uint64_t acc) {
  for (int i = 0; i < kObsOpsPerSweep; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

void BM_ObsDisarmedBaseline(benchmark::State& state) {
  std::uint64_t acc = 1;
  for (auto _ : state) {
    for (int sweep = 0; sweep < kObsSweeps; ++sweep) {
      acc = ObsKernelSweep(acc);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ObsDisarmedBaseline);

void BM_ObsDisarmedTraced(benchmark::State& state) {
  std::uint64_t acc = 1;
  for (auto _ : state) {
    QQO_TRACE_SPAN("bench.obs_kernel");
    for (int sweep = 0; sweep < kObsSweeps; ++sweep) {
      QQO_COUNT("anneal.sweeps", 1);
      acc = ObsKernelSweep(acc);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ObsDisarmedTraced);

// Dispatch-overhead pair on the paper's 8-qubit MQO example: the serial
// path runs the exact oracle directly; the raced path fans the portfolio
// out over the thread pool, streams incumbents through the shared cell
// and cancels the losers. The gap between the two is the full cost of
// the racing machinery (lane setup, incumbent publishing, cancellation,
// drain), which the perf gate tracks alongside the solver kernels.
void BM_RaceDispatchSerial(benchmark::State& state) {
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kExact;
  options.dispatch = DispatchMode::kSerial;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrySolveMqo(problem, options));
  }
}
BENCHMARK(BM_RaceDispatchSerial)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_RaceDispatchRace(benchmark::State& state) {
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kExact;
  options.dispatch = DispatchMode::kRace;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrySolveMqo(problem, options));
  }
}
BENCHMARK(BM_RaceDispatchRace)->UseRealTime()->Unit(benchmark::kMillisecond);

// Hybrid decomposition over a QUBO past every backend cap: the full
// partition -> clamped block solves -> stitch -> tabu refinement loop at
// its cheap per-block anneal settings, on the 10x10 MQO batch shape (100
// qubits, ~1.4k savings). Tracks the decomposition machinery end to end
// the way the race benchmarks track the racing machinery.
void BM_DecomposeSolve(benchmark::State& state) {
  MqoGeneratorOptions gen;
  gen.num_queries = 10;
  gen.plans_per_query = 10;
  gen.seed = 4;
  const MqoProblem problem = GenerateMqoProblem(gen);
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.decompose = static_cast<int>(state.range(0));
  options.seed = 17;
  options.anneal.num_reads = 2;
  options.anneal.num_sweeps = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrySolveMqo(problem, options));
  }
}
BENCHMARK(BM_DecomposeSolve)
    ->Arg(16)
    ->Arg(26)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_JoinOrderDp(benchmark::State& state) {
  QueryGeneratorOptions gen;
  gen.num_relations = static_cast<int>(state.range(0));
  gen.num_predicates = gen.num_relations + 2;
  gen.cardinality_min = 10;
  gen.cardinality_max = 100000;
  gen.selectivity_min = 0.001;
  gen.seed = 1;
  const QueryGraph graph = GenerateRandomQuery(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveJoinOrderDp(graph));
  }
}
BENCHMARK(BM_JoinOrderDp)->Arg(8)->Arg(12)->Arg(16);

// Serving-path benchmarks: one full line -> response round trip through
// the qqo_serve request loop (parse, validate, canonicalize, cache probe,
// emit). The hit/miss pair quantifies what the canonical-form solution
// cache saves over re-solving; the shed benchmark isolates the admission
// path (parse + deterministic kUnavailable reject) that overload
// protection adds in front of every solve.
constexpr const char* kServeMqoRequest =
    "{\"id\":\"m1\",\"type\":\"mqo\",\"backend\":\"exact\","
    "\"workload\":{\"queries\":[{\"plans\":[{\"cost\":5},{\"cost\":7}]},"
    "{\"plans\":[{\"cost\":6},{\"cost\":9}]}],"
    "\"savings\":[{\"plan1\":0,\"plan2\":2,\"saving\":2}]}}";

void BM_ServeCacheHit(benchmark::State& state) {
  serve::ServerOptions options;
  serve::Server server(options);
  const std::string request = std::string(kServeMqoRequest) + "\n";
  {
    std::istringstream warm(request);
    std::ostringstream sink;
    if (!server.Serve(warm, sink).ok()) state.SkipWithError("warmup failed");
  }
  for (auto _ : state) {
    std::istringstream in(request);
    std::ostringstream out;
    benchmark::DoNotOptimize(server.Serve(in, out));
    benchmark::DoNotOptimize(out);
  }
  if (server.Cache().Counters().hits_exact < 1) {
    state.SkipWithError("expected exact cache hits");
  }
}
BENCHMARK(BM_ServeCacheHit);

void BM_ServeCacheMiss(benchmark::State& state) {
  // cache:false forces the full solve on every line — the cost a hit
  // avoids (the workload is the paper's tiny MQO example, so this stays
  // a microbenchmark).
  serve::ServerOptions options;
  serve::Server server(options);
  std::string request = kServeMqoRequest;
  request.replace(request.find("\"type\""), 6, "\"cache\":false,\"type\"");
  request += "\n";
  for (auto _ : state) {
    std::istringstream in(request);
    std::ostringstream out;
    benchmark::DoNotOptimize(server.Serve(in, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ServeCacheMiss);

void BM_ServeAdmissionShed(benchmark::State& state) {
  // queue_capacity 0 sheds every solve at admission, so the loop measures
  // parse + validation + the deterministic reject, with no solver time.
  serve::ServerOptions options;
  options.queue_capacity = 0;
  serve::Server server(options);
  std::string batch;
  for (int i = 0; i < 64; ++i) batch += std::string(kServeMqoRequest) + "\n";
  for (auto _ : state) {
    std::istringstream in(batch);
    std::ostringstream out;
    benchmark::DoNotOptimize(server.Serve(in, out));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ServeAdmissionShed);

}  // namespace

BENCHMARK_MAIN();
