// Reproduces Fig. 12: logical qubits for a 20-relation join ordering
// problem (P = J = 19 predicates) as the number of threshold values grows
// from 2 to 20, for precision factors omega = 1, 0.01 and 0.0001.
//
// Expected shape: linear growth in thresholds, much steeper for smaller
// omega; ~4,000 qubits at 20 thresholds and omega = 1, more than double
// that at omega = 0.0001 (paper: > 8,000).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "joinorder/join_order_bilp_encoder.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Figure 12",
                          "qubit scaling vs thresholds and precision omega");

  constexpr int kRelations = 20;
  constexpr int kPredicates = 19;
  const double omegas[] = {1.0, 0.01, 0.0001};

  TablePrinter table(
      {"thresholds R", "omega=1", "omega=0.01", "omega=0.0001"});
  for (int r = 2; r <= 20; r += 2) {
    std::vector<double> row = {static_cast<double>(r)};
    for (double omega : omegas) {
      row.push_back(static_cast<double>(
          CountJoinOrderQubits(kRelations, kPredicates, r, omega).total));
    }
    table.AddRow(row);
  }
  table.Print();

  const auto w1_2 = CountJoinOrderQubits(kRelations, kPredicates, 2, 0.01);
  const auto w1_14 = CountJoinOrderQubits(kRelations, kPredicates, 14, 0.01);
  std::printf("\nomega = 0.01, thresholds 2 -> 14: +%.0f%% qubits "
              "(paper: ~94%%)\n",
              100.0 * (static_cast<double>(w1_14.total) / w1_2.total - 1.0));
  const auto coarse = CountJoinOrderQubits(kRelations, kPredicates, 20, 1.0);
  const auto fine = CountJoinOrderQubits(kRelations, kPredicates, 20, 0.0001);
  std::printf("20 thresholds, omega 1 vs 0.0001: %lld vs %lld qubits "
              "(paper: ~4,000 vs > 8,000)\n",
              coarse.total, fine.total);
  return 0;
}
