// Reproduces Fig. 13: circuit depth of the join-ordering QUBO circuits vs
// the number of qubits (21..30 on 3-relation inputs), comparing
//  - strategy 1 (grow the problem by adding predicates) vs
//  - strategy 2 (grow it by lowering the precision factor omega),
//  - QAOA vs VQE, and
//  - the optimal topology vs IBM-Q Brooklyn (mean over transpilations).
//
// Expected shape: strategy 2 yields substantially deeper QAOA circuits at
// equal qubit counts (~57% at 30 qubits on the optimal topology, more
// after routing); all VQE depths on Brooklyn far exceed the coherence
// budget of 178, while strategy-1 QAOA stays close to it.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/device_model.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace {

using namespace qopt;

QuboModel MakeStrategyQubo(bool strategy2, int step) {
  // step 0..3 -> 21, 24, 27, 30 qubits for both strategies.
  QueryGraph graph({10.0, 10.0, 10.0});
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  if (strategy2) {
    options.precision_decimals = step;  // omega = 10^-step
  } else {
    if (step >= 1) graph.AddPredicate(0, 1, 0.5);
    if (step >= 2) graph.AddPredicate(1, 2, 0.5);
    if (step >= 3) graph.AddPredicate(0, 2, 0.5);
  }
  return EncodeBilpAsQubo(EncodeJoinOrderAsBilp(graph, options).bilp).qubo;
}

}  // namespace

int main() {
  using qopt_bench::PrintHeader;
  using qopt_bench::Samples;
  PrintHeader("Figure 13", "join ordering circuit depths vs qubits");
  const int trials = Samples(qopt_bench::FastMode() ? 5 : 20);
  std::printf("(%d transpilations per device point)\n\n", trials);

  const CouplingMap brooklyn = MakeBrooklyn65();
  const int budget = BrooklynDevice().MaxReliableDepth();

  std::printf("Left chart — QAOA, strategies 1 (predicates) and 2 (omega):\n");
  TablePrinter left({"qubits", "s1 optimal", "s1 brooklyn", "s2 optimal",
                     "s2 brooklyn"});
  for (int step = 0; step <= 3; ++step) {
    const QuboModel s1 = MakeStrategyQubo(false, step);
    const QuboModel s2 = MakeStrategyQubo(true, step);
    const QuantumCircuit qaoa1 = BuildQaoaTemplate(QuboToIsing(s1));
    const QuantumCircuit qaoa2 = BuildQaoaTemplate(QuboToIsing(s2));
    const CouplingMap full1 = MakeFullyConnected(qaoa1.NumQubits());
    const CouplingMap full2 = MakeFullyConnected(qaoa2.NumQubits());
    left.AddRow({static_cast<double>(s1.NumVariables()),
                 qopt_bench::MeanTranspiledDepth(qaoa1, full1, 1),
                 qopt_bench::MeanTranspiledDepth(qaoa1, brooklyn, trials),
                 qopt_bench::MeanTranspiledDepth(qaoa2, full2, 1),
                 qopt_bench::MeanTranspiledDepth(qaoa2, brooklyn, trials)},
                1);
  }
  left.Print();

  std::printf("\nRight chart — QAOA (strategy 2) vs VQE:\n");
  TablePrinter right({"qubits", "qaoa optimal", "qaoa brooklyn",
                      "vqe optimal", "vqe brooklyn"});
  for (int step = 0; step <= 3; ++step) {
    const QuboModel s2 = MakeStrategyQubo(true, step);
    const int n = s2.NumVariables();
    const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(s2));
    const QuantumCircuit vqe = BuildVqeTemplate(n, 3);
    const CouplingMap full = MakeFullyConnected(n);
    right.AddRow({static_cast<double>(n),
                  qopt_bench::MeanTranspiledDepth(qaoa, full, 1),
                  qopt_bench::MeanTranspiledDepth(qaoa, brooklyn, trials),
                  qopt_bench::MeanTranspiledDepth(vqe, full, 1),
                  qopt_bench::MeanTranspiledDepth(vqe, brooklyn, trials)},
                 1);
  }
  right.Print();

  const QuboModel s1_30 = MakeStrategyQubo(false, 3);
  const QuboModel s2_30 = MakeStrategyQubo(true, 3);
  const double d1 = qopt_bench::MeanTranspiledDepth(
      BuildQaoaTemplate(QuboToIsing(s1_30)), MakeFullyConnected(30), 1);
  const double d2 = qopt_bench::MeanTranspiledDepth(
      BuildQaoaTemplate(QuboToIsing(s2_30)), MakeFullyConnected(30), 1);
  std::printf("\nStrategy 2 overhead at 30 qubits (optimal topology): "
              "+%.0f%% (paper: ~57%%)\n",
              100.0 * (d2 / d1 - 1.0));
  std::printf("Brooklyn coherence budget (Eq. 55): depth %d — all VQE "
              "points must exceed it.\n",
              budget);
  return 0;
}
