// Reproduces Table 4: three 3-relation join ordering instances that all
// need 30 logical qubits but differ in how the qubits are spent — more
// predicates (problem 1), more thresholds (problem 2), or a finer
// precision factor omega (problem 3) — and the resulting number of
// quadratic QUBO terms and QAOA circuit depth on the optimal topology.
//
// Paper values: qubits 30/30/30, quadratic terms 70/84/138, QAOA depths
// 63/72/99. Expected shape: problem 3 has roughly twice the quadratic
// terms (and a much deeper circuit) than problem 1.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "qubo/conversions.h"
#include "transpile/coupling_map.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader(
      "Table 4", "join ordering instances: quadratic terms and QAOA depth");

  struct Problem {
    const char* label;
    int predicates;
    int thresholds;
    int precision_decimals;
    int paper_terms;
    int paper_depth;
  };
  const Problem problems[] = {
      {"Problem 1 (P=3, R=1, w=1)", 3, 1, 0, 70, 63},
      {"Problem 2 (P=0, R=4, w=1)", 0, 4, 0, 84, 72},
      {"Problem 3 (P=0, R=1, w=0.001)", 0, 1, 3, 138, 99},
  };

  TablePrinter table({"instance", "qubits", "quad terms", "QAOA depth",
                      "paper terms", "paper depth"});
  for (const Problem& p : problems) {
    QueryGraph graph({10.0, 10.0, 10.0});
    if (p.predicates >= 1) graph.AddPredicate(0, 1, 0.5);
    if (p.predicates >= 2) graph.AddPredicate(1, 2, 0.5);
    if (p.predicates >= 3) graph.AddPredicate(0, 2, 0.5);
    JoinOrderEncoderOptions options;
    options.thresholds.clear();
    for (int r = 0; r < p.thresholds; ++r) {
      options.thresholds.push_back(10.0 * (r + 1));
    }
    options.precision_decimals = p.precision_decimals;
    const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
    const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
    const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(qubo.qubo));
    const CouplingMap full = MakeFullyConnected(qaoa.NumQubits());
    const int depth =
        static_cast<int>(TranspiledDepthStats(qaoa, full, 1).mean);
    table.AddRow({p.label, StrFormat("%d", qubo.qubo.NumVariables()),
                  StrFormat("%d", qubo.qubo.NumQuadraticTerms()),
                  StrFormat("%d", depth), StrFormat("%d", p.paper_terms),
                  StrFormat("%d", p.paper_depth)});
  }
  table.Print();
  std::printf("\nAll instances need 30 qubits; the precision-driven one "
              "must have the most quadratic terms and the deepest circuit.\n");
  return 0;
}
