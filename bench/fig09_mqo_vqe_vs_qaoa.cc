// Reproduces Fig. 9: VQE vs QAOA circuit depths for MQO problems, on the
// optimal topology and on IBM-Q Mumbai, and the comparison against the
// Mumbai coherence budget (Eq. 37).
//
// Expected shape: VQE's ideal depth grows linearly with the plan count and
// is independent of QUBO density, but routing the full-entanglement ansatz
// onto the heavy-hex topology inflates it by close to an order of
// magnitude (paper: 97 -> ~970 at 24 plans), far worse than QAOA's
// overhead; beyond ~12 plans VQE exceeds the coherence budget of 248.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/device_model.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace {

using namespace qopt;

double MeanDepth(const QuantumCircuit& circuit, const CouplingMap& coupling,
                 int trials) {
  return qopt_bench::MeanTranspiledDepth(circuit, coupling, trials);
}

double MeanQaoaDepth(int num_queries, int ppq, int samples,
                     const CouplingMap& coupling, int trials_per_instance) {
  std::vector<double> depths;
  for (int i = 0; i < samples; ++i) {
    MqoGeneratorOptions gen;
    gen.num_queries = num_queries;
    gen.plans_per_query = ppq;
    gen.saving_density = 0.1;
    gen.seed = 2000 + static_cast<std::uint64_t>(i) * 17 + ppq;
    const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
    depths.push_back(MeanDepth(BuildQaoaTemplate(QuboToIsing(encoding.qubo)),
                               coupling, trials_per_instance));
  }
  return Mean(depths);
}

}  // namespace

int main() {
  using qopt_bench::PrintHeader;
  using qopt_bench::Samples;
  PrintHeader("Figure 9", "MQO circuit depths: VQE vs QAOA");
  const int samples = Samples(qopt_bench::FastMode() ? 5 : 20);
  const int vqe_trials = Samples(qopt_bench::FastMode() ? 5 : 20);
  std::printf("(%d instances per QAOA point, %d transpilations per VQE "
              "point)\n\n",
              samples, vqe_trials);

  const CouplingMap mumbai = MakeMumbai27();
  const int budget = MumbaiDevice().MaxReliableDepth();

  TablePrinter table({"plans", "vqe optimal", "vqe mumbai", "qaoa4 optimal",
                      "qaoa4 mumbai", "qaoa8 optimal", "qaoa8 mumbai"});
  for (int plans = 8; plans <= 24; plans += 8) {
    const QuantumCircuit vqe = BuildVqeTemplate(plans, 3);
    const CouplingMap full = MakeFullyConnected(plans);
    table.AddRow(
        {static_cast<double>(plans), MeanDepth(vqe, full, 1),
         MeanDepth(vqe, mumbai, vqe_trials),
         MeanQaoaDepth(plans / 4, 4, samples, full, 1),
         MeanQaoaDepth(plans / 4, 4, samples, mumbai, 1),
         MeanQaoaDepth(plans / 8, 8, samples, full, 1),
         MeanQaoaDepth(plans / 8, 8, samples, mumbai, 1)},
        1);
  }
  table.Print();

  const QuantumCircuit vqe24 = BuildVqeTemplate(24, 3);
  const double vqe_ideal = MeanDepth(vqe24, MakeFullyConnected(24), 1);
  const double vqe_device = MeanDepth(vqe24, mumbai, vqe_trials);
  std::printf("\nVQE at 24 plans: %.0f ideal -> %.0f on Mumbai "
              "(+%.0f%%; paper: 97 -> ~970, +900%%)\n",
              vqe_ideal, vqe_device, 100.0 * (vqe_device / vqe_ideal - 1.0));
  std::printf("Mumbai coherence budget (Eq. 37): depth %d\n", budget);
  std::printf("VQE exceeds the budget beyond ~12 plans: 12-plan depth %.0f, "
              "16-plan depth %.0f\n",
              MeanDepth(BuildVqeTemplate(12, 3), mumbai, vqe_trials),
              MeanDepth(BuildVqeTemplate(16, 3), mumbai, vqe_trials));
  return 0;
}
