// Reproduces Table 3: C_out costs of every left-deep join order of the
// Fig. 6 example query graph (paper: 51,000 / 60,000 / 100,000).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "joinorder/join_order.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/query_graph.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Table 3", "join order costs of the example query");

  const QueryGraph graph = MakePaperExampleQuery();
  std::printf("|R| = 10, |S| = 1000, |T| = 1000, f_RS = 0.1, f_ST = 0.05\n\n");

  struct Row {
    const char* label;
    std::vector<int> order;
    double paper_cost;
  };
  const Row rows[] = {
      {"(R |><| S) |><| T", {0, 1, 2}, 51000.0},
      {"(R |><| T) |><| S", {0, 2, 1}, 60000.0},
      {"(S |><| T) |><| R", {1, 2, 0}, 100000.0},
  };
  TablePrinter table({"Join order", "Measured cost", "Paper cost"});
  for (const Row& row : rows) {
    table.AddRow({row.label, StrFormat("%.0f", CoutCost(graph, row.order)),
                  StrFormat("%.0f", row.paper_cost)});
  }
  table.Print();

  const JoinOrderSolution best = SolveJoinOrderExhaustive(graph);
  std::printf("\nOptimal order cost (exhaustive): %.0f (paper: 51,000)\n",
              best.cost);
  return 0;
}
