// Ablation: why the coherence-depth thresholds matter. Runs Monte-Carlo
// Pauli-noise trajectories of transpiled QAOA circuits of growing depth
// (MQO instances of growing size routed onto Mumbai) and reports the
// clean-shot fraction, mean state fidelity, and the closed-form
// reliability estimate. Expected: both collapse toward zero well before
// depth 248, matching the paper's argument that only the smallest MQO
// classes are reliably solvable on current devices.

#include <cstdio>

#include "bench_util.h"
#include "circuit/noise_model.h"
#include "common/table_printer.h"
#include "core/device_model.h"
#include "core/reliability.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Ablation",
                          "noisy execution of transpiled MQO QAOA circuits");
  const int trajectories = qopt_bench::Samples(200);
  std::printf("(%d Pauli-noise trajectories per point; Mumbai error "
              "rates)\n\n",
              trajectories);

  const DeviceModel device = MumbaiDevice();
  const CouplingMap mumbai = MakeMumbai27();
  const NoiseModel noise =
      NoiseModel::FromDevice(device.sx_error, device.cx_error);

  TablePrinter table({"plans", "routed depth", "clean shots", "mean fidelity",
                      "est. success (model)", "within coherence"});
  for (int queries : {2, 3, 4, 5}) {
    MqoGeneratorOptions gen;
    gen.num_queries = queries;
    gen.plans_per_query = 3;
    gen.saving_density = 0.2;
    gen.seed = 60 + queries;
    const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
    const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(encoding.qubo));
    TranspileOptions transpile_options;
    transpile_options.seed = 1;
    const TranspileResult transpiled =
        Transpile(qaoa, mumbai, transpile_options);

    // Noise trajectories simulate only the logical qubits; restrict the
    // noisy run to the untranspiled circuit but use the transpiled gate
    // counts for the closed-form estimate, and scale the trajectory noise
    // by the routed/ideal gate ratio to keep the comparison honest.
    const double gate_ratio =
        static_cast<double>(transpiled.circuit.NumGates()) /
        static_cast<double>(qaoa.NumGates());
    NoiseModel scaled = noise;
    scaled.single_qubit_error =
        std::min(0.99, noise.single_qubit_error * gate_ratio);
    scaled.two_qubit_error =
        std::min(0.99, noise.two_qubit_error * gate_ratio);
    const NoisySamplingResult sampled =
        SampleNoisyCircuit(qaoa, scaled, trajectories, 5);
    const ReliabilityEstimate estimate =
        EstimateCircuitReliability(device, transpiled.circuit);

    table.AddRow({StrFormat("%d", 3 * queries),
                  StrFormat("%d", transpiled.depth),
                  StrFormat("%.0f%%", 100.0 * sampled.clean_fraction),
                  StrFormat("%.2f", sampled.mean_fidelity),
                  StrFormat("%.2f", estimate.success_probability),
                  estimate.within_coherence ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\nClean-shot probability and fidelity decay exponentially\n"
              "with gate count; circuits past the coherence budget are\n"
              "effectively noise (the paper's Sec. 3.6.1/5.3.2 argument).\n");
  return 0;
}
