// Reproduces Tables 1 and 2 of the paper (the worked MQO example) and the
// accompanying cost comparison: locally optimal plans cost 26, the global
// optimum exploiting shared subexpressions costs 21.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_generator.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Table 1/2", "MQO example problem and savings");

  const MqoProblem example = MakePaperExampleMqo();

  TablePrinter plans({"Query ID", "Plan ID", "Execution cost"});
  for (int q = 0; q < example.NumQueries(); ++q) {
    for (int plan : example.PlansOfQuery(q)) {
      // Paper numbering is 1-based.
      plans.AddRow({static_cast<double>(q + 1), static_cast<double>(plan + 1),
                    example.PlanCost(plan)});
    }
  }
  plans.Print();
  std::printf("\n");

  TablePrinter savings({"Plan 1", "Plan 2", "Cost savings"});
  for (const auto& [pair, value] : example.Savings()) {
    savings.AddRow({static_cast<double>(pair.first + 1),
                    static_cast<double>(pair.second + 1), value});
  }
  savings.Print();

  const MqoSolution greedy = SolveMqoGreedy(example);
  const MqoSolution optimal = SolveMqoExhaustive(example);
  std::printf("\nLocally optimal plans:  cost %.0f  (paper: 26)\n",
              greedy.cost);
  std::printf("Globally optimal plans: cost %.0f  (paper: 21)\n",
              optimal.cost);
  std::printf("Optimal plan ids (paper numbering):");
  for (int plan : optimal.selection) std::printf(" %d", plan + 1);
  std::printf("  (paper: 2 4 8)\n");
  return 0;
}
