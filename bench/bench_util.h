#ifndef QQO_BENCH_BENCH_UTIL_H_
#define QQO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace qopt_bench {

/// Reads an integer environment knob with a default, so the paper-scale
/// settings (e.g. 20 instances per point) can be dialled down:
///   QQO_BENCH_SAMPLES  - instances / transpilations / embeddings per point
///   QQO_BENCH_FAST     - set to 1 to shrink sweeps for smoke runs
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline bool FastMode() { return EnvInt("QQO_BENCH_FAST", 0) != 0; }

/// Samples per data point (paper default: 20).
inline int Samples(int fallback) { return EnvInt("QQO_BENCH_SAMPLES", fallback); }

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace qopt_bench

#endif  // QQO_BENCH_BENCH_UTIL_H_
