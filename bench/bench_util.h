#ifndef QQO_BENCH_BENCH_UTIL_H_
#define QQO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "transpile/transpiler.h"

namespace qopt_bench {

/// Reads an integer environment knob with a default, so the paper-scale
/// settings (e.g. 20 instances per point) can be dialled down:
///   QQO_BENCH_SAMPLES  - instances / transpilations / embeddings per point
///   QQO_BENCH_FAST     - set to 1 to shrink sweeps for smoke runs
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline bool FastMode() { return EnvInt("QQO_BENCH_FAST", 0) != 0; }

/// Samples per data point (paper default: 20).
inline int Samples(int fallback) { return EnvInt("QQO_BENCH_SAMPLES", fallback); }

/// Mean transpiled depth over `trials` routing seeds seed0, seed0+1, ...
/// via the parallel TranspileManySeeds sweep (results are indexed by seed,
/// so the mean is identical for any QQO_THREADS). The figure benches use
/// this instead of looping over Transpile themselves.
inline double MeanTranspiledDepth(const qopt::QuantumCircuit& circuit,
                                  const qopt::CouplingMap& coupling,
                                  int trials, std::uint64_t seed0 = 0) {
  if (coupling.IsFullyConnected()) trials = 1;  // deterministic routing
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    seeds.push_back(seed0 + static_cast<std::uint64_t>(t));
  }
  const std::vector<qopt::TranspileResult> results =
      qopt::TranspileManySeeds(circuit, coupling, seeds);
  double total = 0.0;
  for (const qopt::TranspileResult& result : results) total += result.depth;
  return total / static_cast<double>(results.size());
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace qopt_bench

#endif  // QQO_BENCH_BENCH_UTIL_H_
