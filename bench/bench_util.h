#ifndef QQO_BENCH_BENCH_UTIL_H_
#define QQO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "transpile/transpiler.h"

namespace qopt_bench {

/// Reads an integer environment knob with a default, so the paper-scale
/// settings (e.g. 20 instances per point) can be dialled down:
///   QQO_BENCH_SAMPLES  - instances / transpilations / embeddings per point
///   QQO_BENCH_FAST     - set to 1 to shrink sweeps for smoke runs
/// Strict parse: QQO_BENCH_SAMPLES=abc used to atoi to 0 samples and turn
/// every mean into 0/0 = NaN in the emitted tables; garbage, zero,
/// negative and overflowing values now abort with a clear message.
inline int EnvInt(const char* name, int fallback) {
  qopt::StatusOr<std::optional<long long>> parsed =
      qopt::EnvIntOrStatus(name, 1, 1000000);
  QOPT_CHECK_MSG(parsed.ok(), parsed.status().message().c_str());
  return parsed->has_value() ? static_cast<int>(**parsed) : fallback;
}

inline bool FastMode() { return EnvInt("QQO_BENCH_FAST", 0) != 0; }

/// Samples per data point (paper default: 20).
inline int Samples(int fallback) { return EnvInt("QQO_BENCH_SAMPLES", fallback); }

/// Mean transpiled depth over `trials` routing seeds seed0, seed0+1, ...
/// via the parallel TranspileManySeeds sweep (results are indexed by seed,
/// so the mean is identical for any QQO_THREADS). The figure benches use
/// this instead of looping over Transpile themselves.
inline double MeanTranspiledDepth(const qopt::QuantumCircuit& circuit,
                                  const qopt::CouplingMap& coupling,
                                  int trials, std::uint64_t seed0 = 0) {
  // Guard before the final division: trials <= 0 used to produce an empty
  // sweep and a silent 0/0 = NaN in the printed tables.
  QOPT_CHECK_MSG(trials >= 1, "MeanTranspiledDepth needs trials >= 1");
  if (coupling.IsFullyConnected()) trials = 1;  // deterministic routing
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    seeds.push_back(seed0 + static_cast<std::uint64_t>(t));
  }
  const std::vector<qopt::TranspileResult> results =
      qopt::TranspileManySeeds(circuit, coupling, seeds);
  double total = 0.0;
  for (const qopt::TranspileResult& result : results) total += result.depth;
  return total / static_cast<double>(results.size());
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

}  // namespace qopt_bench

#endif  // QQO_BENCH_BENCH_UTIL_H_
