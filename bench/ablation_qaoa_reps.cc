// Ablation: QAOA operator repetitions p. The paper fixes p = 1 because
// "higher values for p quickly lead to large circuit depths even for
// small problems" (Sec. 5.2.2) while Eq. 22 promises better optima as
// p -> infinity. This bench quantifies both sides on the paper's MQO
// example: circuit depth (ideal and on Mumbai) and the optimized
// expectation value <H> versus the true ground energy.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/variational_solver.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Ablation", "QAOA repetitions p: depth vs quality");

  const MqoProblem problem = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  const IsingModel ising = QuboToIsing(encoding.qubo);
  const double ground = SolveQuboBruteForce(encoding.qubo).best_energy;
  const CouplingMap mumbai = MakeMumbai27();
  const CouplingMap full = MakeFullyConnected(encoding.qubo.NumVariables());

  TablePrinter table({"p", "depth optimal", "depth mumbai", "<H> optimized",
                      "ground energy", "best sampled cost"});
  for (int p = 1; p <= 3; ++p) {
    const QuantumCircuit circuit = BuildQaoaTemplate(ising, p);
    const double ideal = TranspiledDepthStats(circuit, full, 1).mean;
    const double device = TranspiledDepthStats(circuit, mumbai, 10).mean;

    VariationalOptions options;
    options.qaoa_reps = p;
    options.max_iterations = 250;
    options.shots = 4096;
    options.seed = 7;
    const VariationalResult result =
        SolveQuboWithQaoa(encoding.qubo, options);
    std::vector<int> selection;
    const bool valid = problem.DecodeBits(result.best_bits, &selection);
    table.AddRow({StrFormat("%d", p), StrFormat("%.0f", ideal),
                  StrFormat("%.1f", device),
                  StrFormat("%.2f", result.expectation),
                  StrFormat("%.2f", ground),
                  valid ? StrFormat("%.0f", problem.SelectionCost(selection))
                        : "invalid"});
  }
  table.Print();
  std::printf(
      "\nDepth grows ~linearly with p (Sec. 3.4.2: bound mp + p). The\n"
      "optimized expectation stays above the ground energy (variational\n"
      "principle) and improves markedly from p = 1 to 2; beyond that the\n"
      "classical optimizer starts to struggle with the larger parameter\n"
      "space — together with depth, exactly why the paper fixes p = 1.\n");
  return 0;
}
