// Reproduces Fig. 11: logical qubits required by the join-ordering BILP
// encoding as a function of the number of relations T, for predicate
// counts P = J, 2J and 3J (J = T - 1 joins). 1 threshold, omega = 1,
// uniform cardinality 10, no cto pruning — exactly the paper's setting.
//
// Expected shape: superlinear growth; ~10,000 qubits at T = 42 with P = J;
// doubling P adds roughly 50% more qubits at T = 42.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "joinorder/join_order_bilp_encoder.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Figure 11",
                          "logical qubit scaling vs relations and predicates");

  TablePrinter table({"relations T", "P=J", "P=2J", "P=3J"});
  for (int t = 4; t <= 42; t += 2) {
    const int j = t - 1;
    std::vector<double> row = {static_cast<double>(t)};
    for (int factor = 1; factor <= 3; ++factor) {
      row.push_back(static_cast<double>(
          CountJoinOrderQubits(t, factor * j, 1, 1.0).total));
    }
    table.AddRow(row);
  }
  table.Print();

  const auto at42 = CountJoinOrderQubits(42, 41, 1, 1.0);
  const auto at42_2j = CountJoinOrderQubits(42, 82, 1, 1.0);
  std::printf("\nT = 42, P = J: %lld qubits (paper: ~10,000)\n", at42.total);
  std::printf("Doubling P at T = 42 adds %.0f%% more qubits (paper: ~50%%)\n",
              100.0 * (static_cast<double>(at42_2j.total) / at42.total - 1.0));
  return 0;
}
