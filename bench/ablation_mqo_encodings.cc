// Ablation: direct MQO -> QUBO encoding of [9] (Ch. 5) versus routing MQO
// through the generic BILP -> QUBO pipeline of Ch. 6. The direct encoding
// needs one qubit per plan; the BILP route pays 5 extra binary variables
// per saving (sharing indicator, complement and three slacks) — evidence
// for the paper's remark that problem-specific reformulations use qubits
// far more economically.

#include <cstdio>

#include "bench_util.h"
#include "anneal/simulated_annealer.h"
#include "bilp/bilp_to_qubo.h"
#include "common/table_printer.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_bilp_encoder.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Ablation",
                          "direct [9] vs BILP-based MQO QUBO encodings");

  TablePrinter table({"queries x ppq", "savings", "direct qubits",
                      "direct terms", "bilp qubits", "bilp terms",
                      "direct SA cost", "bilp SA cost", "optimal"});
  for (int queries : {3, 5, 8}) {
    MqoGeneratorOptions gen;
    gen.num_queries = queries;
    gen.plans_per_query = 4;
    gen.saving_density = 0.2;
    gen.seed = 77 + queries;
    const MqoProblem problem = GenerateMqoProblem(gen);
    const MqoSolution exact = SolveMqoExhaustive(problem);

    const MqoQuboEncoding direct = EncodeMqoAsQubo(problem);
    const MqoBilpEncoding bilp = EncodeMqoAsBilp(problem);
    const BilpQuboEncoding bilp_qubo = EncodeBilpAsQubo(bilp.bilp);

    AnnealOptions anneal;
    anneal.num_reads = 50;
    anneal.num_sweeps = 2000;
    anneal.seed = 3;
    const AnnealResult direct_sa =
        SolveQuboWithAnnealing(direct.qubo, anneal);
    const AnnealResult bilp_sa =
        SolveQuboWithAnnealing(bilp_qubo.qubo, anneal);

    std::vector<int> selection;
    const bool direct_valid =
        problem.DecodeBits(direct_sa.best_bits, &selection);
    const double direct_cost =
        direct_valid ? problem.SelectionCost(selection) : -1.0;
    const bool bilp_valid =
        DecodeMqoBilp(bilp, problem, bilp_sa.best_bits, &selection);
    const double bilp_cost =
        bilp_valid ? problem.SelectionCost(selection) : -1.0;

    table.AddRow({StrFormat("%d x 4", queries),
                  StrFormat("%d", problem.NumSavings()),
                  StrFormat("%d", direct.qubo.NumVariables()),
                  StrFormat("%d", direct.qubo.NumQuadraticTerms()),
                  StrFormat("%d", bilp_qubo.qubo.NumVariables()),
                  StrFormat("%d", bilp_qubo.qubo.NumQuadraticTerms()),
                  direct_valid ? StrFormat("%.2f", direct_cost) : "invalid",
                  bilp_valid ? StrFormat("%.2f", bilp_cost) : "invalid",
                  StrFormat("%.2f", exact.cost)});
  }
  table.Print();
  std::printf("\nThe direct encoding always needs fewer qubits and terms;\n"
              "both decode to (near-)optimal plans under the same SA budget\n"
              "on these sizes, but the BILP route exhausts hardware sooner.\n");
  return 0;
}
