// Reproduces the coherence-depth threshold calculations (Eq. 37 and
// Eq. 55): the maximum circuit depth executable within the coherence time
// of IBM-Q Mumbai (paper: 248) and IBM-Q Brooklyn (paper: 178), plus the
// decoherence-error curve of Eq. 36.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/device_model.h"

int main() {
  using namespace qopt;
  qopt_bench::PrintHeader("Eq. 37 / Eq. 55", "coherence-depth thresholds");

  TablePrinter table({"device", "qubits", "T1 (us)", "T2 (us)",
                      "avg gate (ns)", "max reliable depth", "paper"});
  const DeviceModel mumbai = MumbaiDevice();
  const DeviceModel brooklyn = BrooklynDevice();
  table.AddRow({mumbai.name, "27", StrFormat("%.2f", mumbai.t1_us),
                StrFormat("%.2f", mumbai.t2_us),
                StrFormat("%.3f", mumbai.avg_gate_time_ns),
                StrFormat("%d", mumbai.MaxReliableDepth()), "248"});
  table.AddRow({brooklyn.name, "65", StrFormat("%.2f", brooklyn.t1_us),
                StrFormat("%.2f", brooklyn.t2_us),
                StrFormat("%.3f", brooklyn.avg_gate_time_ns),
                StrFormat("%d", brooklyn.MaxReliableDepth()), "178"});
  table.Print();

  std::printf("\nDecoherence error probability vs depth (Mumbai, Eq. 36):\n");
  TablePrinter curve({"depth", "P(decoherence error)"});
  for (int depth : {50, 100, 150, 200, 248, 300, 400}) {
    curve.AddRow({static_cast<double>(depth),
                  mumbai.DecoherenceErrorProbability(depth)});
  }
  curve.Print();
  std::printf("\nAt the threshold depth the error probability is "
              "1 - 1/e ~ 0.63, as the paper notes.\n");
  return 0;
}
