// Ablation: how much of the transpiled-depth result depends on the
// router's heuristics. Compares routed depths on IBM-Q Mumbai with
//  (a) commutation-aware reordering of diagonal (QAOA cost) layers and
//      lookahead tie-breaking (the default),
//  (b) lookahead only,
//  (c) neither (naive in-order routing with random tie-breaks).
// Expected: commutation awareness is worth ~2x on QAOA circuits and
// nothing on VQE (whose CX blocks do not commute); lookahead helps both.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace {

using namespace qopt;

double MeanDepthWith(const QuantumCircuit& circuit, const CouplingMap& device,
                     bool commute, int lookahead, int trials) {
  std::vector<double> depths;
  for (int t = 0; t < trials; ++t) {
    TranspileOptions options;
    options.seed = static_cast<std::uint64_t>(t);
    options.router.commute_diagonal = commute;
    options.router.lookahead = lookahead;
    depths.push_back(Transpile(circuit, device, options).depth);
  }
  return Mean(depths);
}

}  // namespace

int main() {
  using qopt_bench::PrintHeader;
  PrintHeader("Ablation", "router heuristics vs transpiled depth (Mumbai)");
  const int trials = qopt_bench::Samples(10);

  const CouplingMap mumbai = MakeMumbai27();
  MqoGeneratorOptions gen;
  gen.num_queries = 5;
  gen.plans_per_query = 4;
  gen.saving_density = 0.1;
  gen.seed = 11;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(encoding.qubo));
  const QuantumCircuit vqe = BuildVqeTemplate(20, 3);

  TablePrinter table({"circuit", "commute+lookahead", "lookahead only",
                      "neither"});
  table.AddRow({"QAOA (20 plans MQO)",
                StrFormat("%.1f", MeanDepthWith(qaoa, mumbai, true, 8, trials)),
                StrFormat("%.1f", MeanDepthWith(qaoa, mumbai, false, 8, trials)),
                StrFormat("%.1f", MeanDepthWith(qaoa, mumbai, false, 0, trials))});
  table.AddRow({"VQE (20 qubits)",
                StrFormat("%.1f", MeanDepthWith(vqe, mumbai, true, 8, trials)),
                StrFormat("%.1f", MeanDepthWith(vqe, mumbai, false, 8, trials)),
                StrFormat("%.1f", MeanDepthWith(vqe, mumbai, false, 0, trials))});
  table.Print();
  std::printf(
      "\nCommutation-aware routing exploits that all RZZ cost terms of one\n"
      "QAOA layer commute; Qiskit's transpiler benefits from the same\n"
      "freedom, which is why reproducing the paper's device depths needs\n"
      "it. VQE gains nothing from commutation (non-commuting CX blocks).\n");
  return 0;
}
