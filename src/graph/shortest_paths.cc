#include "graph/shortest_paths.h"

#include <queue>

#include "common/check.h"

namespace qopt {

ShortestPathTree BfsShortestPaths(const SimpleGraph& graph, int source) {
  QOPT_CHECK(source >= 0 && source < graph.NumVertices());
  ShortestPathTree tree;
  const std::size_t n = static_cast<std::size_t>(graph.NumVertices());
  tree.distance.assign(n, kInfiniteDistance);
  tree.parent.assign(n, -1);
  std::queue<int> queue;
  tree.distance[static_cast<std::size_t>(source)] = 0.0;
  queue.push(source);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int v : graph.Neighbors(u)) {
      if (tree.distance[static_cast<std::size_t>(v)] == kInfiniteDistance) {
        tree.distance[static_cast<std::size_t>(v)] =
            tree.distance[static_cast<std::size_t>(u)] + 1.0;
        tree.parent[static_cast<std::size_t>(v)] = u;
        queue.push(v);
      }
    }
  }
  return tree;
}

std::vector<std::vector<int>> AllPairsBfsDistances(const SimpleGraph& graph) {
  const int n = graph.NumVertices();
  std::vector<std::vector<int>> dist(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int s = 0; s < n; ++s) {
    ShortestPathTree tree = BfsShortestPaths(graph, s);
    for (int v = 0; v < n; ++v) {
      const double d = tree.distance[static_cast<std::size_t>(v)];
      dist[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)] =
          d == kInfiniteDistance ? -1 : static_cast<int>(d);
    }
  }
  return dist;
}

ShortestPathTree VertexWeightedDijkstra(
    const SimpleGraph& graph, const std::vector<int>& sources,
    const std::vector<double>& vertex_cost) {
  const std::size_t n = static_cast<std::size_t>(graph.NumVertices());
  QOPT_CHECK(vertex_cost.size() == n);
  ShortestPathTree tree;
  tree.distance.assign(n, kInfiniteDistance);
  tree.parent.assign(n, -1);
  using Entry = std::pair<double, int>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int s : sources) {
    QOPT_CHECK(s >= 0 && s < graph.NumVertices());
    if (tree.distance[static_cast<std::size_t>(s)] > 0.0) {
      tree.distance[static_cast<std::size_t>(s)] = 0.0;
      heap.emplace(0.0, s);
    }
  }
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(u)]) continue;
    for (int v : graph.Neighbors(u)) {
      const double candidate = dist + vertex_cost[static_cast<std::size_t>(v)];
      if (candidate < tree.distance[static_cast<std::size_t>(v)]) {
        tree.distance[static_cast<std::size_t>(v)] = candidate;
        tree.parent[static_cast<std::size_t>(v)] = u;
        heap.emplace(candidate, v);
      }
    }
  }
  return tree;
}

}  // namespace qopt
