#pragma once

#include <limits>
#include <vector>

#include "graph/simple_graph.h"

namespace qopt {

/// Sentinel distance for unreachable vertices.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path computation.
struct ShortestPathTree {
  std::vector<double> distance;  ///< distance[v]; kInfiniteDistance if unreachable.
  std::vector<int> parent;       ///< parent[v] on a shortest path; -1 at roots.
};

/// Unweighted BFS distances (each edge has length 1) from `source`.
ShortestPathTree BfsShortestPaths(const SimpleGraph& graph, int source);

/// All-pairs unweighted distances; entry [u][v] is kInfiniteDistance when
/// unreachable. Quadratic memory — intended for device-sized graphs.
std::vector<std::vector<int>> AllPairsBfsDistances(const SimpleGraph& graph);

/// Dijkstra with per-*vertex* weights: the cost of a path is the sum of
/// `vertex_cost` over the non-source vertices on it (the formulation used
/// by the minor-embedding heuristic, where a vertex's cost encodes how
/// "full" a physical qubit already is). Multiple sources are supported;
/// each source starts with distance 0.
ShortestPathTree VertexWeightedDijkstra(const SimpleGraph& graph,
                                        const std::vector<int>& sources,
                                        const std::vector<double>& vertex_cost);

}  // namespace qopt
