#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace qopt {

/// Undirected simple graph over vertices 0..n-1 with adjacency lists.
/// Used for QUBO interaction graphs, device coupling graphs and annealer
/// topologies.
class SimpleGraph {
 public:
  SimpleGraph() = default;

  /// Creates a graph with `num_vertices` vertices and no edges.
  explicit SimpleGraph(int num_vertices);

  /// Number of vertices.
  int NumVertices() const { return static_cast<int>(adjacency_.size()); }

  /// Number of edges.
  int NumEdges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicate edges are
  /// rejected (duplicates are ignored and return false).
  bool AddEdge(int u, int v);

  /// True iff {u, v} is an edge.
  bool HasEdge(int u, int v) const;

  /// Neighbors of `v`, in insertion order.
  const std::vector<int>& Neighbors(int v) const;

  /// Degree of `v`.
  int Degree(int v) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  int MaxDegree() const;

  /// All edges as (u, v) pairs with u < v.
  std::vector<std::pair<int, int>> Edges() const;

  /// True iff every pair of vertices is connected by a path. The empty
  /// graph and single-vertex graph are considered connected.
  bool IsConnected() const;

  /// True iff the vertex set `vertices` induces a connected subgraph.
  bool IsConnectedSubset(const std::vector<int>& vertices) const;

  /// Returns the subgraph induced by deleting `removed[v] == true`
  /// vertices, relabelling survivors consecutively. `old_to_new` (optional)
  /// receives the relabelling with -1 for removed vertices.
  SimpleGraph InducedSubgraph(const std::vector<bool>& removed,
                              std::vector<int>* old_to_new = nullptr) const;

 private:
  std::vector<std::vector<int>> adjacency_;
  int num_edges_ = 0;
};

}  // namespace qopt
