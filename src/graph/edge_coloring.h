#pragma once

#include <vector>

#include "graph/simple_graph.h"

namespace qopt {

/// A proper edge coloring: `color[i]` is the color of edge `graph.Edges()[i]`
/// and no two edges sharing a vertex have the same color.
struct EdgeColoring {
  std::vector<int> color;
  int num_colors = 0;
};

/// Greedy proper edge coloring (first-fit over edges sorted by degree sum).
/// Uses at most 2*MaxDegree-1 colors; usually close to MaxDegree.
///
/// The number of colors equals the number of parallel layers needed to
/// schedule one two-qubit interaction per edge, which is what determines
/// the depth of a QAOA cost layer on an all-to-all device.
EdgeColoring GreedyEdgeColoring(const SimpleGraph& graph);

}  // namespace qopt
