#include "graph/edge_coloring.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace qopt {

EdgeColoring GreedyEdgeColoring(const SimpleGraph& graph) {
  const auto edges = graph.Edges();
  EdgeColoring result;
  result.color.assign(edges.size(), -1);
  if (edges.empty()) return result;

  // Process edges in order of decreasing endpoint-degree sum, which tends
  // to color the most constrained edges first.
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int da = graph.Degree(edges[a].first) + graph.Degree(edges[a].second);
    const int db = graph.Degree(edges[b].first) + graph.Degree(edges[b].second);
    if (da != db) return da > db;
    return a < b;
  });

  // used_colors[v] is a bitset-like vector of colors incident to v.
  const std::size_t n = static_cast<std::size_t>(graph.NumVertices());
  std::vector<std::vector<bool>> used(n);
  int num_colors = 0;
  for (std::size_t idx : order) {
    const auto [u, v] = edges[idx];
    int c = 0;
    const auto& uu = used[static_cast<std::size_t>(u)];
    const auto& uv = used[static_cast<std::size_t>(v)];
    while (true) {
      const bool u_used = c < static_cast<int>(uu.size()) && uu[c];
      const bool v_used = c < static_cast<int>(uv.size()) && uv[c];
      if (!u_used && !v_used) break;
      ++c;
    }
    result.color[idx] = c;
    num_colors = std::max(num_colors, c + 1);
    for (int w : {u, v}) {
      auto& uw = used[static_cast<std::size_t>(w)];
      if (static_cast<int>(uw.size()) <= c) uw.resize(c + 1, false);
      uw[c] = true;
    }
  }
  result.num_colors = num_colors;
  return result;
}

}  // namespace qopt
