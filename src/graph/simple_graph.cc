#include "graph/simple_graph.h"

#include <algorithm>

#include "common/check.h"

namespace qopt {

SimpleGraph::SimpleGraph(int num_vertices) {
  QOPT_CHECK(num_vertices >= 0);
  adjacency_.resize(static_cast<std::size_t>(num_vertices));
}

bool SimpleGraph::AddEdge(int u, int v) {
  QOPT_CHECK(u >= 0 && u < NumVertices());
  QOPT_CHECK(v >= 0 && v < NumVertices());
  QOPT_CHECK_MSG(u != v, "self-loops are not allowed");
  if (HasEdge(u, v)) return false;
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
  return true;
}

bool SimpleGraph::HasEdge(int u, int v) const {
  QOPT_CHECK(u >= 0 && u < NumVertices());
  QOPT_CHECK(v >= 0 && v < NumVertices());
  // Scan the smaller adjacency list.
  const auto& a = Degree(u) <= Degree(v) ? adjacency_[u] : adjacency_[v];
  const int target = Degree(u) <= Degree(v) ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

const std::vector<int>& SimpleGraph::Neighbors(int v) const {
  QOPT_CHECK(v >= 0 && v < NumVertices());
  return adjacency_[static_cast<std::size_t>(v)];
}

int SimpleGraph::Degree(int v) const {
  QOPT_CHECK(v >= 0 && v < NumVertices());
  return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
}

int SimpleGraph::MaxDegree() const {
  int max_deg = 0;
  for (const auto& a : adjacency_) {
    max_deg = std::max(max_deg, static_cast<int>(a.size()));
  }
  return max_deg;
}

std::vector<std::pair<int, int>> SimpleGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges_));
  for (int u = 0; u < NumVertices(); ++u) {
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

bool SimpleGraph::IsConnected() const {
  if (NumVertices() <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(NumVertices()), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == NumVertices();
}

bool SimpleGraph::IsConnectedSubset(const std::vector<int>& vertices) const {
  if (vertices.empty()) return true;
  std::vector<bool> in_set(static_cast<std::size_t>(NumVertices()), false);
  for (int v : vertices) {
    QOPT_CHECK(v >= 0 && v < NumVertices());
    in_set[static_cast<std::size_t>(v)] = true;
  }
  std::vector<bool> seen(static_cast<std::size_t>(NumVertices()), false);
  std::vector<int> stack = {vertices.front()};
  seen[static_cast<std::size_t>(vertices.front())] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (in_set[static_cast<std::size_t>(v)] &&
          !seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  // `vertices` may contain duplicates in principle; count distinct.
  std::size_t distinct = 0;
  for (int v = 0; v < NumVertices(); ++v) {
    if (in_set[static_cast<std::size_t>(v)]) ++distinct;
  }
  return visited == distinct;
}

SimpleGraph SimpleGraph::InducedSubgraph(const std::vector<bool>& removed,
                                         std::vector<int>* old_to_new) const {
  QOPT_CHECK(static_cast<int>(removed.size()) == NumVertices());
  std::vector<int> relabel(static_cast<std::size_t>(NumVertices()), -1);
  int next = 0;
  for (int v = 0; v < NumVertices(); ++v) {
    if (!removed[static_cast<std::size_t>(v)]) {
      relabel[static_cast<std::size_t>(v)] = next++;
    }
  }
  SimpleGraph sub(next);
  for (int u = 0; u < NumVertices(); ++u) {
    if (removed[static_cast<std::size_t>(u)]) continue;
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (u < v && !removed[static_cast<std::size_t>(v)]) {
        sub.AddEdge(relabel[static_cast<std::size_t>(u)],
                    relabel[static_cast<std::size_t>(v)]);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(relabel);
  return sub;
}

}  // namespace qopt
