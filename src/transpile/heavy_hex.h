#pragma once

#include "transpile/coupling_map.h"

namespace qopt {

/// Parameterized IBM-style heavy-hex lattice generator (the topology
/// family of the Falcon/Hummingbird/Eagle processors): `rows` horizontal
/// chains of `row_length` qubits each, joined by single bridge qubits
/// placed every fourth column, with the bridge columns offset by two
/// between successive row gaps — the pattern visible in Fig. 4 of the
/// paper and in the 65-qubit Brooklyn device.
///
/// All qubits have degree <= 3. Useful for studying how the paper's
/// depth-after-routing results extrapolate to larger future devices
/// (e.g. rows=7, row_length=15 gives a 127-qubit Eagle-class lattice).
CouplingMap MakeHeavyHex(int rows, int row_length);

}  // namespace qopt
