#pragma once

#include "circuit/quantum_circuit.h"

namespace qopt {

/// Rewrites a circuit into the IBM-Q Falcon/Hummingbird basis gate set
/// {RZ, SX, X, CX}, equivalent up to global phase. RZZ becomes
/// CX-RZ-CX, SWAP becomes three CX, CZ becomes H-CX-H on the target, and
/// single-qubit gates are expressed in ZSXZ form.
QuantumCircuit DecomposeToBasis(const QuantumCircuit& circuit);

/// Light single-qubit peephole optimization (the analogue of Qiskit's
/// optimization level 1 pass used in the paper): merges runs of adjacent
/// RZ rotations on the same qubit and removes rotations that are 0 mod 2π.
QuantumCircuit MergeAdjacentRz(const QuantumCircuit& circuit);

}  // namespace qopt
