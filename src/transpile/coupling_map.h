#pragma once

#include <string>
#include <vector>

#include "graph/simple_graph.h"

namespace qopt {

/// Device connectivity: which pairs of physical qubits support a two-qubit
/// gate. Wraps the undirected connectivity graph plus a precomputed
/// all-pairs distance matrix used by layout selection and swap routing.
class CouplingMap {
 public:
  /// Builds a coupling map from a connectivity graph. `name` is used in
  /// reports ("mumbai", "brooklyn", "full", ...).
  CouplingMap(std::string name, SimpleGraph graph);

  const std::string& Name() const { return name_; }
  int NumQubits() const { return graph_.NumVertices(); }
  const SimpleGraph& Graph() const { return graph_; }

  /// True iff {a, b} is a directly coupled pair.
  bool AreCoupled(int a, int b) const { return graph_.HasEdge(a, b); }

  /// Hop distance between physical qubits (-1 if disconnected).
  int Distance(int a, int b) const;

  /// True iff every qubit can reach every other one.
  bool IsConnected() const { return graph_.IsConnected(); }

  /// True iff every pair of qubits is directly coupled.
  bool IsFullyConnected() const;

 private:
  std::string name_;
  SimpleGraph graph_;
  std::vector<std::vector<int>> distance_;
};

/// All-to-all connectivity over n qubits — the "optimal topology" the
/// paper's qasm-simulator results assume.
CouplingMap MakeFullyConnected(int num_qubits);

/// Path topology 0-1-2-...-n-1.
CouplingMap MakeLinear(int num_qubits);

/// Rectangular grid topology with `rows` x `cols` qubits.
CouplingMap MakeGrid(int rows, int cols);

}  // namespace qopt
