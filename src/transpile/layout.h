#pragma once

#include <vector>

#include "transpile/coupling_map.h"

namespace qopt {

/// A layout maps logical circuit qubits to physical device qubits:
/// layout[logical] == physical.

/// Identity layout: logical qubit i starts on physical qubit i.
std::vector<int> TrivialLayout(int num_logical);

/// Dense layout in the spirit of Qiskit's DenseLayout pass: selects a
/// connected set of `num_logical` physical qubits with many internal
/// couplers (greedy accretion from the highest-degree seed) so that routed
/// circuits need fewer swaps than with a trivial layout.
std::vector<int> DenseLayout(const CouplingMap& coupling, int num_logical);

}  // namespace qopt
