#pragma once

#include <cstdint>
#include <vector>

#include "circuit/quantum_circuit.h"
#include "common/deadline.h"
#include "common/stats.h"
#include "common/status.h"
#include "transpile/coupling_map.h"
#include "transpile/swap_router.h"

namespace qopt {

/// Options for the transpilation pipeline (the analogue of Qiskit
/// transpile() at optimization level 1, which the paper uses).
struct TranspileOptions {
  /// Seed for the stochastic swap router.
  std::uint64_t seed = 0;
  /// Choose a dense initial layout instead of the trivial one.
  bool dense_layout = true;
  /// Rewrite into the {RZ, SX, X, CX} device basis after routing.
  bool to_basis = true;
  /// Merge adjacent RZ rotations (light optimization).
  bool optimize = true;
  /// Swap-routing heuristics (commutation awareness, lookahead).
  RouterOptions router;
  /// Wall-clock budget for the whole pipeline; also composed into the
  /// router's per-gate checks. Unbounded by default.
  Deadline deadline;
};

/// Result of transpiling a logical circuit for a device.
struct TranspileResult {
  QuantumCircuit circuit;            ///< Over physical qubits.
  std::vector<int> initial_layout;   ///< logical -> physical at the start.
  std::vector<int> final_layout;     ///< logical -> physical at the end.
  int depth = 0;                     ///< circuit.Depth(), for convenience.
};

/// Full pipeline: layout -> stochastic swap routing -> basis decomposition
/// -> peephole optimization. On a fully connected device no swaps are
/// inserted and the layout is trivial.
TranspileResult Transpile(const QuantumCircuit& circuit,
                          const CouplingMap& coupling,
                          const TranspileOptions& options = {});

/// Status-reporting flavour: kDeadlineExceeded / kCancelled when
/// `options.deadline` trips mid-pipeline, injected routing faults
/// verbatim.
StatusOr<TranspileResult> TryTranspile(const QuantumCircuit& circuit,
                                       const CouplingMap& coupling,
                                       const TranspileOptions& options = {});

/// Status-reporting multi-seed sweep: seed trials run on
/// ThreadPool::Default() with per-slot determinism; trials not yet
/// started when `base.deadline` trips are skipped and the whole sweep
/// reports kDeadlineExceeded / kCancelled (partial sweeps would bias the
/// depth statistics, so they are not returned).
StatusOr<std::vector<TranspileResult>> TryTranspileManySeeds(
    const QuantumCircuit& circuit, const CouplingMap& coupling,
    const std::vector<std::uint64_t>& seeds,
    const TranspileOptions& base = {});

/// Transpiles once per entry of `seeds` (with `base.seed` replaced by the
/// entry) and returns the results indexed like `seeds`. The sweeps run on
/// ThreadPool::Default(); because every result lands in the slot of its
/// seed, the output is identical for any QQO_THREADS setting.
std::vector<TranspileResult> TranspileManySeeds(
    const QuantumCircuit& circuit, const CouplingMap& coupling,
    const std::vector<std::uint64_t>& seeds,
    const TranspileOptions& base = {});

/// Transpiles `num_trials` times with seeds seed0, seed0+1, ... and
/// summarizes the resulting depths — the "mean circuit depth over 20
/// transpilations" statistic reported throughout the paper's evaluation.
/// Runs the trials through TranspileManySeeds (i.e. in parallel).
Summary TranspiledDepthStats(const QuantumCircuit& circuit,
                             const CouplingMap& coupling, int num_trials,
                             std::uint64_t seed0 = 0);

}  // namespace qopt
