#pragma once

#include "transpile/coupling_map.h"

namespace qopt {

/// 27-qubit IBM Falcon heavy-hex coupling map — the topology of the
/// IBM-Q Mumbai system used for the paper's MQO transpilations (Fig. 4).
CouplingMap MakeMumbai27();

/// 65-qubit IBM Hummingbird heavy-hex coupling map — the topology of the
/// IBM-Q Brooklyn system used for the paper's join-ordering transpilations.
CouplingMap MakeBrooklyn65();

}  // namespace qopt
