#include "transpile/transpiler.h"

#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "transpile/basis_decomposer.h"
#include "transpile/layout.h"
#include "transpile/swap_router.h"

namespace qopt {

TranspileResult Transpile(const QuantumCircuit& circuit,
                          const CouplingMap& coupling,
                          const TranspileOptions& options) {
  QOPT_CHECK_MSG(circuit.NumQubits() <= coupling.NumQubits(),
                 "circuit does not fit on the device");
  Rng rng(options.seed);
  const std::vector<int> layout =
      options.dense_layout && !coupling.IsFullyConnected()
          ? DenseLayout(coupling, circuit.NumQubits())
          : TrivialLayout(circuit.NumQubits());

  RoutedCircuit routed =
      RouteCircuit(circuit, coupling, layout, &rng, options.router);

  TranspileResult result;
  result.initial_layout = std::move(routed.initial_layout);
  result.final_layout = std::move(routed.final_layout);
  QuantumCircuit transformed = std::move(routed.circuit);
  if (options.to_basis) transformed = DecomposeToBasis(transformed);
  if (options.optimize) transformed = MergeAdjacentRz(transformed);
  result.depth = transformed.Depth();
  result.circuit = std::move(transformed);
  return result;
}

std::vector<TranspileResult> TranspileManySeeds(
    const QuantumCircuit& circuit, const CouplingMap& coupling,
    const std::vector<std::uint64_t>& seeds, const TranspileOptions& base) {
  std::vector<TranspileResult> results(seeds.size());
  ThreadPool::Default().ParallelFor(seeds.size(), [&](std::size_t i) {
    TranspileOptions options = base;
    options.seed = seeds[i];
    results[i] = Transpile(circuit, coupling, options);
  });
  return results;
}

Summary TranspiledDepthStats(const QuantumCircuit& circuit,
                             const CouplingMap& coupling, int num_trials,
                             std::uint64_t seed0) {
  QOPT_CHECK(num_trials >= 1);
  // A fully connected device is deterministic; one trial suffices.
  if (coupling.IsFullyConnected()) num_trials = 1;
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    seeds[static_cast<std::size_t>(t)] =
        seed0 + static_cast<std::uint64_t>(t);
  }
  const std::vector<TranspileResult> results =
      TranspileManySeeds(circuit, coupling, seeds);
  std::vector<double> depths;
  depths.reserve(results.size());
  for (const TranspileResult& result : results) {
    depths.push_back(static_cast<double>(result.depth));
  }
  return Summarize(depths);
}

}  // namespace qopt
