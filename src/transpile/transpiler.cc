#include "transpile/transpiler.h"

#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transpile/basis_decomposer.h"
#include "transpile/layout.h"
#include "transpile/swap_router.h"

namespace qopt {

StatusOr<TranspileResult> TryTranspile(const QuantumCircuit& circuit,
                                       const CouplingMap& coupling,
                                       const TranspileOptions& options) {
  QQO_TRACE_SPAN("transpile.pipeline");
  QQO_COUNT("transpile.routing_seeds", 1);
  QOPT_CHECK_MSG(circuit.NumQubits() <= coupling.NumQubits(),
                 "circuit does not fit on the device");
  QOPT_RETURN_IF_ERROR(options.deadline.Check());
  Rng rng(options.seed);
  const std::vector<int> layout =
      options.dense_layout && !coupling.IsFullyConnected()
          ? DenseLayout(coupling, circuit.NumQubits())
          : TrivialLayout(circuit.NumQubits());

  // The pipeline deadline also bounds the router's per-gate checks.
  RouterOptions router_options = options.router;
  router_options.deadline =
      router_options.deadline.unbounded() &&
              router_options.deadline.token() == nullptr
          ? options.deadline
          : router_options.deadline;
  QOPT_ASSIGN_OR_RETURN(
      RoutedCircuit routed,
      TryRouteCircuit(circuit, coupling, layout, &rng, router_options));

  TranspileResult result;
  result.initial_layout = std::move(routed.initial_layout);
  result.final_layout = std::move(routed.final_layout);
  QuantumCircuit transformed = std::move(routed.circuit);
  QOPT_RETURN_IF_ERROR(options.deadline.Check());
  if (options.to_basis) transformed = DecomposeToBasis(transformed);
  QOPT_RETURN_IF_ERROR(options.deadline.Check());
  if (options.optimize) transformed = MergeAdjacentRz(transformed);
  result.depth = transformed.Depth();
  QQO_OBSERVE("transpile.depth", result.depth);
  result.circuit = std::move(transformed);
  return result;
}

TranspileResult Transpile(const QuantumCircuit& circuit,
                          const CouplingMap& coupling,
                          const TranspileOptions& options) {
  StatusOr<TranspileResult> result = TryTranspile(circuit, coupling, options);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return *std::move(result);
}

StatusOr<std::vector<TranspileResult>> TryTranspileManySeeds(
    const QuantumCircuit& circuit, const CouplingMap& coupling,
    const std::vector<std::uint64_t>& seeds, const TranspileOptions& base) {
  QQO_TRACE_SPAN("transpile.sweep");
  std::vector<TranspileResult> results(seeds.size());
  std::vector<Status> trial_status(seeds.size());
  const Status loop_status = ThreadPool::Default().ParallelFor(
      seeds.size(), base.deadline, [&](std::size_t i) {
        TranspileOptions options = base;
        options.seed = seeds[i];
        StatusOr<TranspileResult> trial =
            TryTranspile(circuit, coupling, options);
        if (trial.ok()) {
          results[i] = *std::move(trial);
        } else {
          trial_status[i] = trial.status();
        }
      });
  for (const Status& status : trial_status) {
    if (!status.ok()) return status;
  }
  QOPT_RETURN_IF_ERROR(loop_status);
  return results;
}

std::vector<TranspileResult> TranspileManySeeds(
    const QuantumCircuit& circuit, const CouplingMap& coupling,
    const std::vector<std::uint64_t>& seeds, const TranspileOptions& base) {
  StatusOr<std::vector<TranspileResult>> results =
      TryTranspileManySeeds(circuit, coupling, seeds, base);
  QOPT_CHECK_MSG(results.ok(), results.status().ToString().c_str());
  return *std::move(results);
}

Summary TranspiledDepthStats(const QuantumCircuit& circuit,
                             const CouplingMap& coupling, int num_trials,
                             std::uint64_t seed0) {
  QOPT_CHECK(num_trials >= 1);
  // A fully connected device is deterministic; one trial suffices.
  if (coupling.IsFullyConnected()) num_trials = 1;
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    seeds[static_cast<std::size_t>(t)] =
        seed0 + static_cast<std::uint64_t>(t);
  }
  const std::vector<TranspileResult> results =
      TranspileManySeeds(circuit, coupling, seeds);
  std::vector<double> depths;
  depths.reserve(results.size());
  for (const TranspileResult& result : results) {
    depths.push_back(static_cast<double>(result.depth));
  }
  return Summarize(depths);
}

}  // namespace qopt
