#include "transpile/swap_router.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {

StatusOr<RoutedCircuit> TryRouteCircuit(const QuantumCircuit& circuit,
                                        const CouplingMap& coupling,
                                        const std::vector<int>& initial_layout,
                                        Rng* rng,
                                        const RouterOptions& router_options) {
  QQO_TRACE_SPAN("transpile.route");
  QOPT_FAULT_POINT("transpile.route");
  const int num_logical = circuit.NumQubits();
  const int num_physical = coupling.NumQubits();
  QOPT_CHECK(static_cast<int>(initial_layout.size()) == num_logical);
  QOPT_CHECK(num_logical <= num_physical);
  QOPT_CHECK_MSG(coupling.IsConnected(), "device graph must be connected");

  std::vector<int> log_to_phys = initial_layout;
  std::vector<int> phys_to_log(static_cast<std::size_t>(num_physical), -1);
  for (int l = 0; l < num_logical; ++l) {
    const int p = log_to_phys[static_cast<std::size_t>(l)];
    QOPT_CHECK(p >= 0 && p < num_physical);
    QOPT_CHECK_MSG(phys_to_log[static_cast<std::size_t>(p)] == -1,
                   "layout maps two logical qubits to one physical qubit");
    phys_to_log[static_cast<std::size_t>(p)] = l;
  }

  RoutedCircuit result;
  result.circuit = QuantumCircuit(num_physical);
  result.initial_layout = initial_layout;

  auto apply_swap = [&](int pa, int pb) {
    result.circuit.Swap(pa, pb);
    const int la = phys_to_log[static_cast<std::size_t>(pa)];
    const int lb = phys_to_log[static_cast<std::size_t>(pb)];
    phys_to_log[static_cast<std::size_t>(pa)] = lb;
    phys_to_log[static_cast<std::size_t>(pb)] = la;
    if (la >= 0) log_to_phys[static_cast<std::size_t>(la)] = pb;
    if (lb >= 0) log_to_phys[static_cast<std::size_t>(lb)] = pa;
  };

  // Routes one two-qubit gate: brings the endpoints adjacent by swapping
  // along shortest paths (every move strictly reduces the distance, so
  // this terminates after Distance - 1 swaps), then emits the gate.
  // `lookahead` holds the logical qubit pairs of upcoming two-qubit gates;
  // among equally-good moves the one that also shortens those is chosen.
  auto route_gate = [&](Gate g,
                        const std::vector<std::pair<int, int>>& lookahead) {
    auto lookahead_score = [&](int moved_from, int moved_to) {
      // Distance sum over upcoming pairs if {moved_from, moved_to} swap.
      auto where = [&](int logical) {
        const int p = log_to_phys[static_cast<std::size_t>(logical)];
        if (p == moved_from) return moved_to;
        if (p == moved_to) return moved_from;
        return p;
      };
      int score = 0;
      for (const auto& [a, b] : lookahead) {
        score += coupling.Distance(where(a), where(b));
      }
      return score;
    };
    while (true) {
      const int pa = log_to_phys[static_cast<std::size_t>(g.qubit0)];
      const int pb = log_to_phys[static_cast<std::size_t>(g.qubit1)];
      const int dist = coupling.Distance(pa, pb);
      QOPT_CHECK(dist >= 1);
      if (dist == 1) break;
      // Candidate swaps: move either endpoint one step toward the other.
      std::vector<std::pair<int, int>> moves;
      for (int u : coupling.Graph().Neighbors(pa)) {
        if (coupling.Distance(u, pb) < dist) moves.emplace_back(pa, u);
      }
      for (int v : coupling.Graph().Neighbors(pb)) {
        if (coupling.Distance(pa, v) < dist) moves.emplace_back(pb, v);
      }
      QOPT_CHECK(!moves.empty());
      std::vector<std::pair<int, int>> ties;
      int best_score = std::numeric_limits<int>::max();
      for (const auto& move : moves) {
        const int score = lookahead_score(move.first, move.second);
        if (score < best_score) {
          best_score = score;
          ties.assign(1, move);
        } else if (score == best_score) {
          ties.push_back(move);
        }
      }
      const auto [x, y] = ties[rng->NextUint64(ties.size())];
      apply_swap(x, y);
    }
    g.qubit0 = log_to_phys[static_cast<std::size_t>(g.qubit0)];
    g.qubit1 = log_to_phys[static_cast<std::size_t>(g.qubit1)];
    result.circuit.Append(g);
  };

  const std::size_t lookahead_window =
      router_options.lookahead > 0
          ? static_cast<std::size_t>(router_options.lookahead)
          : 0;
  // Upcoming two-qubit logical pairs starting at gate index `from`.
  auto upcoming_pairs = [&](const std::vector<Gate>& all_gates,
                            std::size_t from) {
    std::vector<std::pair<int, int>> pairs;
    for (std::size_t k = from;
         k < all_gates.size() && pairs.size() < lookahead_window; ++k) {
      if (all_gates[k].NumQubits() == 2) {
        pairs.emplace_back(all_gates[k].qubit0, all_gates[k].qubit1);
      }
    }
    return pairs;
  };

  // Gates diagonal in the Z basis commute with each other, so a run of
  // them (e.g. a QAOA cost layer) can be routed in any order; picking the
  // currently-closest pair first saves many swaps, which is what makes
  // transpiled QAOA layers much cheaper than their gate count suggests.
  auto is_diagonal = [&router_options](const Gate& g) {
    if (!router_options.commute_diagonal) return false;
    return g.kind == GateKind::kRz || g.kind == GateKind::kZ ||
           g.kind == GateKind::kRzz || g.kind == GateKind::kCz;
  };

  const auto& gates = circuit.Gates();
  std::size_t index = 0;
  // Reused across the diagonal-run iterations below so routing a long
  // commuting run never reallocates mid-loop.
  std::vector<std::pair<int, int>> lookahead;
  lookahead.reserve(lookahead_window);
  // QQO_LOOP(transpile.route)
  while (index < gates.size()) {
    QQO_COUNT("transpile.routed_gates", 1);
    // Per-gate budget check. A half-routed circuit cannot be salvaged, so
    // expiry aborts the whole routing rather than returning a prefix.
    QOPT_RETURN_IF_ERROR(router_options.deadline.Check());
    Gate g = gates[index];
    if (g.NumQubits() == 1) {
      if (!is_diagonal(g)) {
        g.qubit0 = log_to_phys[static_cast<std::size_t>(g.qubit0)];
        result.circuit.Append(g);
        ++index;
        continue;
      }
      // Fall through into commuting-run handling below.
    } else if (!is_diagonal(g)) {
      route_gate(g, upcoming_pairs(gates, index + 1));
      ++index;
      continue;
    }
    // Collect the maximal run of mutually commuting diagonal gates.
    std::size_t end = index;
    while (end < gates.size() && is_diagonal(gates[end])) ++end;
    std::vector<Gate> pending(gates.begin() + static_cast<std::ptrdiff_t>(index),
                              gates.begin() + static_cast<std::ptrdiff_t>(end));
    // Single-qubit diagonal gates are placement-independent; emit first.
    for (const Gate& d : pending) {
      if (d.NumQubits() == 1) {
        Gate mapped = d;
        mapped.qubit0 = log_to_phys[static_cast<std::size_t>(d.qubit0)];
        result.circuit.Append(mapped);
      }
    }
    std::erase_if(pending, [](const Gate& d) { return d.NumQubits() == 1; });
    // Greedily route the closest remaining pair first.
    // QQO_LOOP(transpile.route_diagonal)
    while (!pending.empty()) {
      QQO_COUNT("transpile.routed_gates", 1);
      QOPT_RETURN_IF_ERROR(router_options.deadline.Check());
      std::size_t best = 0;
      int best_dist = std::numeric_limits<int>::max();
      for (std::size_t k = 0; k < pending.size(); ++k) {
        const int pa =
            log_to_phys[static_cast<std::size_t>(pending[k].qubit0)];
        const int pb =
            log_to_phys[static_cast<std::size_t>(pending[k].qubit1)];
        const int dist = coupling.Distance(pa, pb);
        if (dist < best_dist) {
          best_dist = dist;
          best = k;
        }
      }
      lookahead.clear();
      for (std::size_t k = 0;
           k < pending.size() && lookahead.size() < lookahead_window; ++k) {
        if (k == best) continue;
        lookahead.emplace_back(pending[k].qubit0, pending[k].qubit1);
      }
      route_gate(pending[best], lookahead);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
    }
    index = end;
  }

  result.final_layout = log_to_phys;
  return result;
}

RoutedCircuit RouteCircuit(const QuantumCircuit& circuit,
                           const CouplingMap& coupling,
                           const std::vector<int>& initial_layout, Rng* rng,
                           const RouterOptions& router_options) {
  StatusOr<RoutedCircuit> routed =
      TryRouteCircuit(circuit, coupling, initial_layout, rng, router_options);
  QOPT_CHECK_MSG(routed.ok(), routed.status().ToString().c_str());
  return *std::move(routed);
}

}  // namespace qopt
