#include "transpile/basis_decomposer.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace qopt {
namespace {

constexpr double kPi = std::numbers::pi;

void EmitH(QuantumCircuit* out, int q) {
  // H ~ RZ(pi/2) . SX . RZ(pi/2) (up to global phase).
  out->Rz(q, kPi / 2.0);
  out->Sx(q);
  out->Rz(q, kPi / 2.0);
}

void EmitRy(QuantumCircuit* out, int q, double theta) {
  // RY(t) = RX(pi/2) . RZ(pi - t) . RX(pi/2) . RZ(-pi) exactly (phase 1);
  // with SX ~ RX(pi/2) the circuit order is rz, sx, rz, sx. Verified
  // against the statevector in transpile_test.
  out->Rz(q, -kPi);
  out->Sx(q);
  out->Rz(q, kPi - theta);
  out->Sx(q);
}

void EmitRx(QuantumCircuit* out, int q, double theta) {
  // RX(t) ~ RZ(pi/2) . SX . RZ(t + pi) . SX . RZ(pi/2) (the symmetric
  // ZSXZSX Euler form).
  out->Rz(q, kPi / 2.0);
  out->Sx(q);
  out->Rz(q, theta + kPi);
  out->Sx(q);
  out->Rz(q, kPi / 2.0);
}

}  // namespace

QuantumCircuit DecomposeToBasis(const QuantumCircuit& circuit) {
  QuantumCircuit out(circuit.NumQubits());
  for (const Gate& g : circuit.Gates()) {
    switch (g.kind) {
      case GateKind::kH:
        EmitH(&out, g.qubit0);
        break;
      case GateKind::kX:
        out.X(g.qubit0);
        break;
      case GateKind::kY:
        // Y ~ X . Z (up to global phase i): apply Z first, then X.
        out.Rz(g.qubit0, kPi);
        out.X(g.qubit0);
        break;
      case GateKind::kZ:
        out.Rz(g.qubit0, kPi);
        break;
      case GateKind::kSx:
        out.Sx(g.qubit0);
        break;
      case GateKind::kRx:
        EmitRx(&out, g.qubit0, g.param);
        break;
      case GateKind::kRy:
        EmitRy(&out, g.qubit0, g.param);
        break;
      case GateKind::kRz:
        out.Rz(g.qubit0, g.param);
        break;
      case GateKind::kCx:
        out.Cx(g.qubit0, g.qubit1);
        break;
      case GateKind::kCz:
        // CZ = (I (x) H) CX (I (x) H).
        EmitH(&out, g.qubit1);
        out.Cx(g.qubit0, g.qubit1);
        EmitH(&out, g.qubit1);
        break;
      case GateKind::kRzz:
        // exp(-i t/2 Z(x)Z) = CX . RZ(t on target) . CX.
        out.Cx(g.qubit0, g.qubit1);
        out.Rz(g.qubit1, g.param);
        out.Cx(g.qubit0, g.qubit1);
        break;
      case GateKind::kSwap:
        out.Cx(g.qubit0, g.qubit1);
        out.Cx(g.qubit1, g.qubit0);
        out.Cx(g.qubit0, g.qubit1);
        break;
    }
  }
  return out;
}

QuantumCircuit MergeAdjacentRz(const QuantumCircuit& circuit) {
  QuantumCircuit out(circuit.NumQubits());
  // pending[q] holds an accumulated RZ angle not yet emitted for qubit q.
  std::vector<double> pending(static_cast<std::size_t>(circuit.NumQubits()),
                              0.0);
  auto flush = [&](int q) {
    double angle = std::fmod(pending[static_cast<std::size_t>(q)], 2.0 * kPi);
    pending[static_cast<std::size_t>(q)] = 0.0;
    if (std::abs(angle) < 1e-12 ||
        std::abs(std::abs(angle) - 2.0 * kPi) < 1e-12) {
      return;
    }
    out.Rz(q, angle);
  };
  for (const Gate& g : circuit.Gates()) {
    if (g.kind == GateKind::kRz) {
      pending[static_cast<std::size_t>(g.qubit0)] += g.param;
      continue;
    }
    flush(g.qubit0);
    if (g.NumQubits() == 2) flush(g.qubit1);
    out.Append(g);
  }
  for (int q = 0; q < circuit.NumQubits(); ++q) flush(q);
  return out;
}

}  // namespace qopt
