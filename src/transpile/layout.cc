#include "transpile/layout.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace qopt {

std::vector<int> TrivialLayout(int num_logical) {
  std::vector<int> layout(static_cast<std::size_t>(num_logical));
  std::iota(layout.begin(), layout.end(), 0);
  return layout;
}

std::vector<int> DenseLayout(const CouplingMap& coupling, int num_logical) {
  const SimpleGraph& graph = coupling.Graph();
  const int n = graph.NumVertices();
  QOPT_CHECK_MSG(num_logical <= n, "circuit needs more qubits than device");
  if (num_logical == 0) return {};

  // Seed with the highest-degree physical qubit.
  int seed = 0;
  for (int v = 1; v < n; ++v) {
    if (graph.Degree(v) > graph.Degree(seed)) seed = v;
  }
  std::vector<bool> selected(static_cast<std::size_t>(n), false);
  std::vector<int> links(static_cast<std::size_t>(n), 0);  // edges into set
  std::vector<int> chosen = {seed};
  selected[static_cast<std::size_t>(seed)] = true;
  for (int v : graph.Neighbors(seed)) ++links[static_cast<std::size_t>(v)];

  while (static_cast<int>(chosen.size()) < num_logical) {
    // Pick the unselected qubit with most links into the chosen set,
    // breaking ties by total degree (denser region first).
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (selected[static_cast<std::size_t>(v)] ||
          links[static_cast<std::size_t>(v)] == 0) {
        continue;
      }
      if (best < 0 ||
          links[static_cast<std::size_t>(v)] >
              links[static_cast<std::size_t>(best)] ||
          (links[static_cast<std::size_t>(v)] ==
               links[static_cast<std::size_t>(best)] &&
           graph.Degree(v) > graph.Degree(best))) {
        best = v;
      }
    }
    QOPT_CHECK_MSG(best >= 0, "device connectivity graph is disconnected");
    selected[static_cast<std::size_t>(best)] = true;
    chosen.push_back(best);
    for (int v : graph.Neighbors(best)) ++links[static_cast<std::size_t>(v)];
  }
  return chosen;
}

}  // namespace qopt
