#include "transpile/ibm_topologies.h"

namespace qopt {

CouplingMap MakeMumbai27() {
  // Falcon r4 heavy-hex lattice (ibmq_mumbai), 27 qubits / 28 couplers.
  static constexpr int kEdges[][2] = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}};
  SimpleGraph graph(27);
  for (const auto& e : kEdges) graph.AddEdge(e[0], e[1]);
  return CouplingMap("mumbai", std::move(graph));
}

CouplingMap MakeBrooklyn65() {
  // Hummingbird r2 heavy-hex lattice (ibmq_brooklyn / ibmq_manhattan),
  // 65 qubits / 72 couplers: five horizontal rows of qubits joined by
  // vertical two-qubit bridges.
  SimpleGraph graph(65);
  auto add_row = [&graph](int first, int last) {
    for (int q = first; q < last; ++q) graph.AddEdge(q, q + 1);
  };
  add_row(0, 9);    // row 0: qubits 0..9
  add_row(13, 23);  // row 1: qubits 13..23
  add_row(27, 37);  // row 2: qubits 27..37
  add_row(41, 51);  // row 3: qubits 41..51
  add_row(55, 64);  // row 4: qubits 55..64
  static constexpr int kBridges[][2] = {
      {0, 10},  {10, 13}, {4, 11},  {11, 17}, {8, 12},  {12, 21},
      {15, 24}, {24, 29}, {19, 25}, {25, 33}, {23, 26}, {26, 37},
      {27, 38}, {38, 41}, {31, 39}, {39, 45}, {35, 40}, {40, 49},
      {43, 52}, {52, 56}, {47, 53}, {53, 60}, {51, 54}, {54, 64}};
  for (const auto& e : kBridges) graph.AddEdge(e[0], e[1]);
  return CouplingMap("brooklyn", std::move(graph));
}

}  // namespace qopt
