#include "transpile/heavy_hex.h"

#include <vector>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

CouplingMap MakeHeavyHex(int rows, int row_length) {
  QOPT_CHECK(rows >= 1);
  QOPT_CHECK(row_length >= 1);

  // Qubit ids: first all row qubits (row-major), then the bridge qubits
  // between consecutive rows in order.
  std::vector<std::vector<int>> bridge_columns(
      static_cast<std::size_t>(rows > 1 ? rows - 1 : 0));
  int num_bridges = 0;
  for (int gap = 0; gap + 1 < rows; ++gap) {
    // Bridges every 4 columns; offset alternates 0, 2, 0, ... per gap.
    const int offset = (gap % 2) * 2;
    for (int col = offset; col < row_length; col += 4) {
      bridge_columns[static_cast<std::size_t>(gap)].push_back(col);
      ++num_bridges;
    }
  }
  const int num_row_qubits = rows * row_length;
  SimpleGraph graph(num_row_qubits + num_bridges);
  auto row_qubit = [row_length](int row, int col) {
    return row * row_length + col;
  };
  for (int row = 0; row < rows; ++row) {
    for (int col = 0; col + 1 < row_length; ++col) {
      graph.AddEdge(row_qubit(row, col), row_qubit(row, col + 1));
    }
  }
  int bridge = num_row_qubits;
  for (int gap = 0; gap + 1 < rows; ++gap) {
    for (int col : bridge_columns[static_cast<std::size_t>(gap)]) {
      graph.AddEdge(row_qubit(gap, col), bridge);
      graph.AddEdge(bridge, row_qubit(gap + 1, col));
      ++bridge;
    }
  }
  return CouplingMap(StrFormat("heavy_hex_%dx%d", rows, row_length),
                     std::move(graph));
}

}  // namespace qopt
