#include "transpile/coupling_map.h"

#include "common/check.h"
#include "graph/shortest_paths.h"

namespace qopt {

CouplingMap::CouplingMap(std::string name, SimpleGraph graph)
    : name_(std::move(name)), graph_(std::move(graph)) {
  distance_ = AllPairsBfsDistances(graph_);
}

int CouplingMap::Distance(int a, int b) const {
  QOPT_CHECK(a >= 0 && a < NumQubits());
  QOPT_CHECK(b >= 0 && b < NumQubits());
  return distance_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

bool CouplingMap::IsFullyConnected() const {
  const int n = NumQubits();
  return graph_.NumEdges() == n * (n - 1) / 2;
}

CouplingMap MakeFullyConnected(int num_qubits) {
  QOPT_CHECK(num_qubits >= 1);
  SimpleGraph graph(num_qubits);
  for (int i = 0; i < num_qubits; ++i) {
    for (int j = i + 1; j < num_qubits; ++j) graph.AddEdge(i, j);
  }
  return CouplingMap("full", std::move(graph));
}

CouplingMap MakeLinear(int num_qubits) {
  QOPT_CHECK(num_qubits >= 1);
  SimpleGraph graph(num_qubits);
  for (int i = 0; i + 1 < num_qubits; ++i) graph.AddEdge(i, i + 1);
  return CouplingMap("linear", std::move(graph));
}

CouplingMap MakeGrid(int rows, int cols) {
  QOPT_CHECK(rows >= 1 && cols >= 1);
  SimpleGraph graph(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) graph.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) graph.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return CouplingMap("grid", std::move(graph));
}

}  // namespace qopt
