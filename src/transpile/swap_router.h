#pragma once

#include <vector>

#include "circuit/quantum_circuit.h"
#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "transpile/coupling_map.h"

namespace qopt {

/// Result of routing a logical circuit onto a device.
struct RoutedCircuit {
  /// Circuit over *physical* qubits (NumQubits() == device size) in which
  /// every two-qubit gate acts on a directly coupled pair; SWAP gates have
  /// been inserted where needed.
  QuantumCircuit circuit;
  /// initial_layout[logical] = physical qubit the logical qubit starts on.
  std::vector<int> initial_layout;
  /// final_layout[logical] = physical qubit holding the logical qubit's
  /// state after the circuit (changes when swaps were inserted).
  std::vector<int> final_layout;
};

/// Routing heuristics toggles (exposed for the ablation benchmarks).
struct RouterOptions {
  /// Treat runs of Z-diagonal gates (RZ/Z/RZZ/CZ — e.g. a QAOA cost
  /// layer) as freely reorderable and route the closest pair first.
  bool commute_diagonal = true;
  /// Number of upcoming two-qubit gates considered when breaking ties
  /// between distance-reducing swaps (0 = pure random tie-break).
  int lookahead = 8;
  /// Wall-clock budget, checked once per routed gate. Unbounded by
  /// default.
  Deadline deadline;
};

/// Stochastic greedy swap routing (the randomized heuristic standing in
/// for Qiskit's StochasticSwap pass, whose per-seed variance the paper
/// averages over 20 transpilations). For every two-qubit gate whose
/// endpoints are not adjacent, SWAPs are inserted along a shortest path,
/// choosing among distance-reducing moves by lookahead score and
/// uniformly at random among ties.
RoutedCircuit RouteCircuit(const QuantumCircuit& circuit,
                           const CouplingMap& coupling,
                           const std::vector<int>& initial_layout, Rng* rng,
                           const RouterOptions& router_options = {});

/// Status-reporting flavour: the "transpile.route" fault point fires once
/// per invocation, and `router_options.deadline` is checked once per
/// routed gate — a partially routed circuit is useless, so expiry returns
/// kDeadlineExceeded (or kCancelled) instead of a truncated result.
StatusOr<RoutedCircuit> TryRouteCircuit(
    const QuantumCircuit& circuit, const CouplingMap& coupling,
    const std::vector<int>& initial_layout, Rng* rng,
    const RouterOptions& router_options = {});

}  // namespace qopt
