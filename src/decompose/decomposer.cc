#include "decompose/decomposer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/retry.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "decompose/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {
namespace {

/// A block proposal is accepted only when it strictly improves the exact
/// energy by more than this, so FP noise can neither flap the incumbent
/// nor stall convergence detection.
constexpr double kImproveEps = 1e-12;
/// Hard cap on tabu moves per round, independent of problem size.
constexpr int kMaxRefineIters = 20000;

// AttemptSeed domains. The facade's serial retries draw attempts 1..N and
// the race tie keys draw 1000 + rank, so the decomposer starts its bases
// far above both and gives every (round, block) pair its own attempt.
constexpr std::int64_t kPartitionSeedBase = std::int64_t{1} << 16;
constexpr std::int64_t kSubproblemSeedBase = std::int64_t{1} << 32;
constexpr std::int64_t kSubproblemRoundStride = std::int64_t{1} << 21;

/// Energy change from flipping bit `v`, in O(degree) over the CSR rows.
double CsrFlipDelta(const QuboModel& qubo, const CsrAdjacency& adj,
                    const std::vector<std::uint8_t>& bits, int v) {
  double delta = qubo.Linear(v);
  const std::size_t u = static_cast<std::size_t>(v);
  for (std::size_t k = adj.offsets[u]; k < adj.offsets[u + 1]; ++k) {
    if (bits[static_cast<std::size_t>(adj.neighbors[k])]) {
      delta += adj.coeffs[k];
    }
  }
  return bits[u] ? -delta : delta;
}

/// Builds the subproblem induced by `block` with the complement clamped
/// to `incumbent`: in-block pairs keep their quadratic coefficients, and
/// couplings to clamped-1 outside variables fold into the linear part.
/// The constant share (offset, clamped-clamped interactions) is dropped —
/// the subproblem is only ever argmin'd, and acceptance is decided by the
/// exact full-problem delta during stitching anyway.
QuboModel BuildClampedSubproblem(const QuboModel& qubo,
                                 const CsrAdjacency& adj,
                                 const std::vector<int>& block,
                                 const std::vector<std::uint8_t>& incumbent) {
  const int m = static_cast<int>(block.size());
  // block is sorted, so binary search gives the local index of a global
  // variable without a full-size scratch map per worker.
  const auto local_of = [&block](int global) {
    return static_cast<int>(
        std::lower_bound(block.begin(), block.end(), global) - block.begin());
  };
  QuboModel sub(m);
  for (int local = 0; local < m; ++local) {
    const int global = block[static_cast<std::size_t>(local)];
    double linear = qubo.Linear(global);
    const std::size_t u = static_cast<std::size_t>(global);
    for (std::size_t k = adj.offsets[u]; k < adj.offsets[u + 1]; ++k) {
      const int neighbor = adj.neighbors[k];
      const bool in_block =
          std::binary_search(block.begin(), block.end(), neighbor);
      if (in_block) {
        if (neighbor > global) {
          sub.AddQuadratic(local, local_of(neighbor), adj.coeffs[k]);
        }
      } else if (incumbent[static_cast<std::size_t>(neighbor)]) {
        linear += adj.coeffs[k];
      }
    }
    if (linear != 0.0) sub.AddLinear(local, linear);
  }
  return sub;
}

/// Per-block outcome of the parallel solve stage, indexed by block so the
/// stitch order (and therefore the result) is thread-count independent.
struct BlockOutcome {
  /// Proposed bits for the block's variables (block order). Empty when
  /// the block keeps the incumbent (solver failed or never ran).
  std::vector<std::uint8_t> proposal;
  bool cancelled = false;
};

/// Solves one block (named helper: the ParallelFor lambda must stay
/// trivial under the pool-reentrancy contract; any nested ParallelFor the
/// solver issues runs inline serially). A non-cancelled solver failure
/// keeps the incumbent for this block instead of voiding the round.
BlockOutcome SolveOneBlock(const QuboModel& qubo, const CsrAdjacency& adj,
                           const std::vector<int>& block,
                           const std::vector<std::uint8_t>& incumbent,
                           std::uint64_t seed, const Deadline& deadline,
                           const SubproblemSolver& solver) {
  BlockOutcome outcome;
  if (block.size() == 1) {
    // Singleton blocks (isolated variables or partition leftovers) are
    // solved exactly in place: with every neighbor clamped, the objective
    // is linear in the lone bit.
    const std::size_t v = static_cast<std::size_t>(block.front());
    double turn_on = qubo.Linear(block.front());
    for (std::size_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
      if (incumbent[static_cast<std::size_t>(adj.neighbors[k])]) {
        turn_on += adj.coeffs[k];
      }
    }
    outcome.proposal.assign(1, turn_on < 0.0 ? 1 : 0);
    return outcome;
  }
  const QuboModel sub = BuildClampedSubproblem(qubo, adj, block, incumbent);
  StatusOr<SubproblemResult> solved = solver(sub, seed, deadline);
  if (!solved.ok()) {
    outcome.cancelled = solved.status().code() == StatusCode::kCancelled;
    QQO_COUNT("decompose.subproblem_failures", 1);
    return outcome;
  }
  if (solved->bits.size() != block.size()) {
    QQO_COUNT("decompose.subproblem_failures", 1);
    return outcome;  // malformed solver output: keep the incumbent
  }
  outcome.proposal = std::move(solved->bits);
  return outcome;
}

/// Applies `proposal` to the incumbent iff it strictly lowers the exact
/// energy; otherwise reverts every flip. Atomic per block: the incumbent
/// is a complete, consistent assignment before and after this call, which
/// is what lets a deadline abort the stitch *between* blocks and still
/// return a valid anytime result.
void ApplyBlockIfImproving(const QuboModel& qubo, const CsrAdjacency& adj,
                           const std::vector<int>& block,
                           const std::vector<std::uint8_t>& proposal,
                           std::vector<std::uint8_t>* bits, double* energy) {
  double delta = 0.0;
  std::vector<int> flipped;
  flipped.reserve(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    const int v = block[i];
    if ((*bits)[static_cast<std::size_t>(v)] == proposal[i]) continue;
    delta += CsrFlipDelta(qubo, adj, *bits, v);
    (*bits)[static_cast<std::size_t>(v)] ^= 1;
    flipped.push_back(v);
  }
  if (delta < -kImproveEps) {
    *energy += delta;
    QQO_COUNT("decompose.blocks_accepted", 1);
    return;
  }
  for (auto it = flipped.rbegin(); it != flipped.rend(); ++it) {
    (*bits)[static_cast<std::size_t>(*it)] ^= 1;
  }
}

/// Classical tabu refinement of the stitched incumbent: steepest
/// single-bit moves with a short tenure and best-so-far aspiration,
/// restoring the best visited assignment on exit. Deterministic: ties
/// break to the lowest variable index. Returns the deadline status when
/// the budget expires mid-search (the best-so-far restore still runs).
Status TabuRefine(const QuboModel& qubo, const CsrAdjacency& adj,
                  const DecomposeOptions& options,
                  std::vector<std::uint8_t>* bits, double* energy) {
  QQO_TRACE_SPAN("decompose.refine");
  const int n = qubo.NumVariables();
  const std::int64_t budget = std::min<std::int64_t>(
      kMaxRefineIters,
      static_cast<std::int64_t>(options.refine_passes) * n);
  std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    delta[static_cast<std::size_t>(v)] = CsrFlipDelta(qubo, adj, *bits, v);
  }
  std::vector<std::int64_t> tabu_until(static_cast<std::size_t>(n), -1);
  std::vector<std::uint8_t> best_bits = *bits;
  double best_energy = *energy;
  const std::int64_t stall_limit = std::max<std::int64_t>(32, n / 8);
  std::int64_t stall = 0;
  Status status = OkStatus();
  // QQO_LOOP(decompose.refine)
  for (std::int64_t it = 0; it < budget; ++it) {
    status = options.deadline.Check();
    if (!status.ok()) break;
    QQO_COUNT("decompose.refine_moves", 1);
    int best_move = -1;
    double best_delta = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      const double d = delta[static_cast<std::size_t>(v)];
      const bool aspirates = *energy + d < best_energy - kImproveEps;
      if (tabu_until[static_cast<std::size_t>(v)] >= it && !aspirates) {
        continue;
      }
      if (d < best_delta) {
        best_delta = d;
        best_move = v;
      }
    }
    if (best_move < 0) break;
    // Accept the move even when it worsens the energy — tenure keeps the
    // search from undoing it immediately, which is what walks it out of
    // the local minimum the stitch landed in. Flat stretches end via the
    // stall limit below.
    const std::size_t u = static_cast<std::size_t>(best_move);
    *energy += best_delta;
    const double direction = (*bits)[u] ? 1.0 : -1.0;
    (*bits)[u] ^= 1;
    delta[u] = -delta[u];
    for (std::size_t k = adj.offsets[u]; k < adj.offsets[u + 1]; ++k) {
      const std::size_t w = static_cast<std::size_t>(adj.neighbors[k]);
      const double sign = (*bits)[w] ? 1.0 : -1.0;
      // d(delta_w)/d(x_u) = (1 - 2 x_w) * c_uw; x_u moved by -direction.
      delta[w] += -direction * -sign * adj.coeffs[k];
    }
    tabu_until[u] = it + std::max(1, options.tabu_tenure);
    if (*energy < best_energy - kImproveEps) {
      best_energy = *energy;
      best_bits = *bits;
      stall = 0;
    } else if (++stall > stall_limit) {
      break;
    }
  }
  *bits = std::move(best_bits);
  *energy = best_energy;
  return status;
}

}  // namespace

std::uint64_t PartitionSeed(std::uint64_t seed, int round) {
  return AttemptSeed(seed, kPartitionSeedBase + round);
}

std::uint64_t SubproblemSeed(std::uint64_t seed, int round, int block) {
  return AttemptSeed(seed, kSubproblemSeedBase +
                               kSubproblemRoundStride * round + block);
}

StatusOr<DecomposeResult> SolveQuboDecomposed(const QuboModel& qubo,
                                              const DecomposeOptions& options,
                                              const SubproblemSolver& solver) {
  const int n = qubo.NumVariables();
  if (n < 1) return InvalidArgumentError("QUBO has no variables");
  if (options.max_subproblem_size < 2) {
    return InvalidArgumentError(
        StrFormat("decompose needs max_subproblem_size >= 2, got %d",
                  options.max_subproblem_size));
  }
  if (options.max_rounds < 1) {
    return InvalidArgumentError(StrFormat(
        "decompose needs max_rounds >= 1, got %d", options.max_rounds));
  }
  if (!solver) return InvalidArgumentError("decompose needs a solver");
  QQO_TRACE_SPAN("decompose.solve");
  // An already-exhausted budget fails fast (kCancelled or
  // kDeadlineExceeded) before any work: there is no incumbent yet, so
  // there is nothing anytime to return.
  QOPT_RETURN_IF_ERROR(options.deadline.Check());

  const CsrAdjacency adj = qubo.BuildCsrAdjacency();
  DecomposeResult result;
  result.bits.assign(static_cast<std::size_t>(n), 0);
  result.energy = qubo.Energy(result.bits);
  result.round_energies.reserve(static_cast<std::size_t>(options.max_rounds));

  ThreadPool& pool = ThreadPool::Default();
  // QQO_LOOP(decompose.round)
  for (int round = 0; round < options.max_rounds; ++round) {
    QQO_TRACE_SPAN("decompose.round");
    if (Status budget = options.deadline.Check(); !budget.ok()) {
      if (budget.code() == StatusCode::kCancelled) return budget;
      result.timed_out = true;
      break;
    }
    const double round_start_energy = result.energy;
    const std::vector<std::vector<int>> blocks = PartitionQuboVariables(
        qubo, adj, options.max_subproblem_size,
        PartitionSeed(options.seed, round));

    // Jacobi-style solve stage: every block is clamped against the same
    // round-start incumbent snapshot and outcomes are written through the
    // block index, so the stage is byte-identical at any pool size.
    const std::vector<std::uint8_t> incumbent = result.bits;
    std::vector<BlockOutcome> outcomes(blocks.size());
    result.subproblems += static_cast<int>(blocks.size());
    QQO_COUNT("decompose.subproblems", static_cast<long long>(blocks.size()));
    const Status ran = pool.ParallelFor(
        blocks.size(), options.deadline, [&](std::size_t b) {
          outcomes[b] = SolveOneBlock(
              qubo, adj, blocks[b], incumbent,
              SubproblemSeed(options.seed, round, static_cast<int>(b)),
              options.deadline, solver);
        });
    for (const BlockOutcome& outcome : outcomes) {
      if (outcome.cancelled) {
        return CancelledError("decomposition cancelled in a subproblem");
      }
    }
    if (!ran.ok() && ran.code() == StatusCode::kCancelled) return ran;

    // Stitch serially in block order. Acceptance is atomic per block
    // (apply-or-revert against the exact energy delta), and the deadline
    // is polled only at block boundaries: an expiry mid-round therefore
    // returns the incumbent as last committed — complete and consistent —
    // never a half-stitched assignment.
    bool truncated = !ran.ok();
    // QQO_LOOP(decompose.stitch)
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (Status budget = options.deadline.Check(); !budget.ok()) {
        if (budget.code() == StatusCode::kCancelled) return budget;
        truncated = true;
        break;
      }
      QQO_COUNT("decompose.blocks_stitched", 1);
      if (outcomes[b].proposal.empty()) continue;  // kept incumbent
      ApplyBlockIfImproving(qubo, adj, blocks[b], outcomes[b].proposal,
                            &result.bits, &result.energy);
    }

    if (!truncated && options.refine_passes > 0) {
      const Status refined =
          TabuRefine(qubo, adj, options, &result.bits, &result.energy);
      if (!refined.ok()) {
        if (refined.code() == StatusCode::kCancelled) return refined;
        truncated = true;
      }
    }

    // Incremental deltas accumulate FP error over thousands of flips;
    // anchor the reported (and convergence-tested) energy exactly.
    result.energy = qubo.Energy(result.bits);
    result.rounds += 1;
    result.round_energies.push_back(result.energy);
    QQO_COUNT("decompose.rounds", 1);
    QQO_OBSERVE("decompose.round_energy", result.energy);
    if (truncated) {
      result.timed_out = true;
      break;
    }
    if (result.energy >= round_start_energy - kImproveEps) break;  // converged
  }
  return result;
}

}  // namespace qopt
