#pragma once

#include <cstdint>
#include <vector>

#include "qubo/qubo_model.h"

namespace qopt {

/// Seeded block partition of a QUBO's variables for hybrid decomposition
/// (qbsolv-style): blocks of at most `max_block_size` variables, grown by
/// breadth-first search over the coefficient adjacency so that strongly
/// coupled variables land in the same subproblem whenever they fit.
///
/// Properties the decomposer relies on:
///   - Every variable appears in exactly one block (a partition, not a
///     cover), so clamping the complement of a block to the incumbent
///     yields a well-defined subproblem.
///   - Deterministic: depends only on (adjacency, max_block_size, seed).
///     Root visit order is a seeded shuffle; BFS expands neighbors in the
///     CSR order, which is sorted by variable index. Different seeds move
///     the block boundaries, which is what lets successive decomposition
///     rounds escape the previous round's frozen cut.
///   - Canonical output order: each block is sorted ascending and blocks
///     are ordered by their smallest variable, so downstream iteration
///     (parallel subproblem solves indexed by block, serial stitching) is
///     reproducible at any thread count.
///
/// `adjacency` must be `qubo.BuildCsrAdjacency()` for the same model (it
/// is passed in so one CSR build is shared across rounds).
/// `max_block_size` >= 1; isolated variables become singleton blocks.
std::vector<std::vector<int>> PartitionQuboVariables(
    const QuboModel& qubo, const CsrAdjacency& adjacency, int max_block_size,
    std::uint64_t seed);

}  // namespace qopt
