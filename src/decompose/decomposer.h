#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// Hybrid quantum-classical QUBO decomposition (qbsolv-style): break a
/// QUBO that exceeds every backend's qubit budget into backend-sized
/// subproblems, solve the pieces through a caller-supplied solver, and
/// stitch the piecewise proposals back into one assignment with a
/// classical tabu refinement loop. See DESIGN.md "Decomposition".

/// Tuning knobs for one decomposed solve.
struct DecomposeOptions {
  /// Largest subproblem (block) the partitioner may form; >= 2. Pick it
  /// to fit the subproblem backend's qubit cap (26 for the statevector
  /// backends; SA takes any size).
  int max_subproblem_size = 26;
  /// Outer round budget: each round re-partitions with a fresh seed,
  /// solves every block against the round-start incumbent and stitches.
  /// The loop also stops early on convergence (a round that fails to
  /// improve the incumbent energy) or when the deadline expires.
  int max_rounds = 8;
  /// Tabu refinement budget per round, as a multiple of the variable
  /// count (capped at kMaxRefineIters); 0 disables refinement.
  int refine_passes = 1;
  /// Tabu tenure: a flipped variable stays tabu for this many moves
  /// (aspiration: a move that beats the best-so-far is always allowed).
  int tabu_tenure = 8;
  /// Base seed. Every per-round and per-block seed is derived from it via
  /// the AttemptSeed sequence (see SubproblemSeed / PartitionSeed), so a
  /// decomposed solve is byte-identical across QQO_THREADS whenever the
  /// deadline does not truncate subproblem solves.
  std::uint64_t seed = 0;
  /// Overall deadline (with optional CancelToken). Expiry preserves the
  /// anytime invariant: the best incumbent found so far is returned with
  /// timed_out = true, never a half-stitched assignment. Cancellation
  /// returns kCancelled with no result.
  Deadline deadline;
};

/// What the subproblem solver returns: an assignment of the subproblem's
/// local variables (bits.size() == subproblem.NumVariables()).
struct SubproblemResult {
  std::vector<std::uint8_t> bits;
};

/// Solves one clamped subproblem. The decomposer derives `seed` from the
/// AttemptSeed sequence (unique per round and block) and passes the
/// overall deadline through. A kCancelled return aborts the whole
/// decomposition; any other error keeps the incumbent for that block and
/// moves on (one failed block must not void the other blocks' work).
using SubproblemSolver = std::function<StatusOr<SubproblemResult>(
    const QuboModel& subproblem, std::uint64_t seed,
    const Deadline& deadline)>;

/// Outcome of a decomposed solve.
struct DecomposeResult {
  std::vector<std::uint8_t> bits;  ///< Final incumbent assignment.
  double energy = 0.0;             ///< Exact energy of `bits`.
  int rounds = 0;                  ///< Decomposition rounds completed.
  int subproblems = 0;             ///< Subproblem solves dispatched.
  /// Incumbent energy after each completed round (refinement included).
  std::vector<double> round_energies;
  /// The deadline expired before the round budget was exhausted; `bits`
  /// is the best incumbent at that point (anytime contract).
  bool timed_out = false;
};

/// Deterministic seed for the round-`round` partition, disjoint from the
/// facade's retry attempts (1..N) and race tie keys (1000+rank).
std::uint64_t PartitionSeed(std::uint64_t seed, int round);

/// Deterministic seed for block `block` of round `round`; disjoint from
/// PartitionSeed and from every other (round, block) pair.
std::uint64_t SubproblemSeed(std::uint64_t seed, int round, int block);

/// Runs the decomposition loop:
///
///   incumbent <- all zeros
///   repeat up to max_rounds:
///     partition variables (fresh seeded boundaries each round)
///     for every block, in parallel: clamp the complement to the
///       round-start incumbent, build the induced sub-QUBO and solve it
///     stitch serially in block order: accept a block's proposal iff it
///       strictly lowers the exact energy (apply-or-revert, atomic per
///       block)
///     tabu-refine the stitched incumbent
///   until converged / deadline
///
/// Subproblem solves run through ThreadPool::Default() with results
/// indexed by block, so the outcome is byte-identical at any QQO_THREADS
/// when no deadline truncation occurs. Errors: kInvalidArgument for a
/// malformed QUBO (no variables) or options; kCancelled if the token
/// fires (no result); deadline expiry is NOT an error (anytime result
/// with timed_out = true).
StatusOr<DecomposeResult> SolveQuboDecomposed(const QuboModel& qubo,
                                              const DecomposeOptions& options,
                                              const SubproblemSolver& solver);

}  // namespace qopt
