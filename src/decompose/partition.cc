#include "decompose/partition.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/check.h"
#include "common/random.h"

namespace qopt {

std::vector<std::vector<int>> PartitionQuboVariables(
    const QuboModel& qubo, const CsrAdjacency& adjacency, int max_block_size,
    std::uint64_t seed) {
  const int n = qubo.NumVariables();
  QOPT_CHECK(max_block_size >= 1);
  QOPT_CHECK(static_cast<int>(adjacency.offsets.size()) == n + 1);
  std::vector<std::vector<int>> blocks;
  if (n == 0) return blocks;

  // Seeded root order: the only randomized choice. Everything after it is
  // a deterministic function of the adjacency.
  std::vector<int> roots(static_cast<std::size_t>(n));
  std::iota(roots.begin(), roots.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&roots);

  std::vector<std::uint8_t> assigned(static_cast<std::size_t>(n), 0);
  std::deque<int> frontier;
  for (const int root : roots) {
    if (assigned[static_cast<std::size_t>(root)]) continue;
    std::vector<int> block;
    block.reserve(static_cast<std::size_t>(max_block_size));
    block.push_back(root);
    assigned[static_cast<std::size_t>(root)] = 1;
    frontier.clear();
    frontier.push_back(root);
    while (!frontier.empty() &&
           static_cast<int>(block.size()) < max_block_size) {
      const std::size_t v = static_cast<std::size_t>(frontier.front());
      frontier.pop_front();
      for (std::size_t k = adjacency.offsets[v];
           k < adjacency.offsets[v + 1] &&
           static_cast<int>(block.size()) < max_block_size;
           ++k) {
        const int w = adjacency.neighbors[k];
        if (assigned[static_cast<std::size_t>(w)]) continue;
        assigned[static_cast<std::size_t>(w)] = 1;
        block.push_back(w);
        frontier.push_back(w);
      }
    }
    std::sort(block.begin(), block.end());
    blocks.push_back(std::move(block));
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  // BFS growth fragments near the end of the root order: late roots find
  // their neighbourhood already assigned and end up in tiny blocks. Pack
  // those leftovers greedily — a clamped subproblem does not require its
  // variables to be connected, and fewer, fuller blocks mean less stitch
  // overhead and a larger joint optimization per solve.
  std::vector<std::vector<int>> packed;
  packed.reserve(blocks.size());
  for (std::vector<int>& block : blocks) {
    if (!packed.empty() &&
        static_cast<int>(packed.back().size() + block.size()) <=
            max_block_size) {
      packed.back().insert(packed.back().end(), block.begin(), block.end());
    } else {
      packed.push_back(std::move(block));
    }
  }
  for (std::vector<int>& block : packed) {
    std::sort(block.begin(), block.end());
  }
  std::sort(packed.begin(), packed.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  return packed;
}

}  // namespace qopt
