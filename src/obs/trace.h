#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace qopt::obs {

/// Span-based tracer for the solve path. Spans nest (RAII), durations come
/// from the steady clock, and every span is identified by its *path* — the
/// chain of site names from the root (e.g. "solve.mqo/solve.dispatch/
/// solve.attempt"). Paths are interned to small integers at runtime, but
/// all exported/aggregated output is keyed and ordered by the canonical
/// path string: intern order depends on thread interleaving, the strings
/// do not. Aggregated output (names + counts, durations excluded) is
/// therefore byte-identical across QQO_THREADS settings for runs that
/// complete without deadline/cancellation stops.
///
/// Cross-thread nesting: ThreadPool captures the submitting thread's
/// current path and installs it in workers (ScopedTracePath), so spans
/// opened inside parallel regions parent correctly at any thread count.
///
/// Disarmed cost: one relaxed atomic load and a never-taken branch per
/// QQO_TRACE_SPAN site (same contract as fault injection), verified by
/// the BM_Obs* perf_micro cases.
class Tracer {
 public:
  struct Event {
    int path = 0;             ///< Interned path id.
    std::int64_t start_us = 0;  ///< Microseconds since Enable().
    std::int64_t dur_us = 0;
  };

  static Tracer& Instance();

  /// Fast disarmed check, inlined into every span site.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Arms tracing and pins the time origin for Chrome-trace timestamps.
  void Enable();
  /// Disarms tracing; recorded spans are kept for export.
  void Disable();
  /// Disarms and drops all recorded spans and interned paths.
  void Reset();

  /// Thread-local current span path (0 = root).
  static int CurrentPath();
  static void SetCurrentPath(int path);

  /// Interns the child path (parent, site); returns its id. Armed path only.
  int InternChild(int parent, const char* site);

  /// Records a completed span on the calling thread's buffer.
  void RecordSpanEnd(int path, std::chrono::steady_clock::time_point start);

  /// Canonical "a/b/c" string for an interned path id ("" for root).
  std::string PathString(int path) const;

  /// Aggregated span tree: one line per distinct path, ordered by the
  /// canonical path string, with call counts and (optionally) total
  /// duration. With `include_durations == false` the output is the
  /// deterministic form compared byte-for-byte by the golden tests.
  std::string AggregatedTreeString(bool include_durations) const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}, ph:"X" complete
  /// events, ts/dur in microseconds) loadable in chrome://tracing and
  /// Perfetto.
  JsonValue ChromeTraceJson() const;

 private:
  struct PathNode {
    int parent = -1;
    std::string site;
  };

  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<Event> events;
    int tid = 0;
  };

  Tracer() = default;

  ThreadBuffer* BufferForThisThread();
  std::vector<std::pair<int, Event>> CollectEvents() const;  ///< (tid, event)

  static std::atomic<bool> armed_;

  std::chrono::steady_clock::time_point epoch_{};

  mutable std::mutex paths_mutex_;
  std::vector<PathNode> nodes_{PathNode{}};  ///< [0] is the root.
  std::map<std::pair<int, std::string>, int> intern_;

  /// Buffers live for the process lifetime (worker threads cache a raw
  /// pointer); Reset() clears contents, never the buffers themselves.
  mutable std::mutex buffers_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Opens a child of the calling thread's current span when the
/// tracer is armed; otherwise costs one relaxed atomic load.
class TraceSpan {
 public:
  explicit TraceSpan(const char* site) {
    if (Tracer::Armed()) {
      Tracer& tracer = Tracer::Instance();
      prev_path_ = Tracer::CurrentPath();
      path_ = tracer.InternChild(prev_path_, site);
      Tracer::SetCurrentPath(path_);
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }

  ~TraceSpan() {
    if (armed_) {
      Tracer::Instance().RecordSpanEnd(path_, start_);
      Tracer::SetCurrentPath(prev_path_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_ = false;
  int path_ = 0;
  int prev_path_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// Installs a span path as the calling thread's current path (used by
/// ThreadPool to parent worker-side spans under the submitting span).
/// Pass kDetached (from a disarmed capture) for a no-op.
class ScopedTracePath {
 public:
  static constexpr int kDetached = -1;

  explicit ScopedTracePath(int path) {
    if (path != kDetached) {
      active_ = true;
      prev_ = Tracer::CurrentPath();
      Tracer::SetCurrentPath(path);
    }
  }

  ~ScopedTracePath() {
    if (active_) Tracer::SetCurrentPath(prev_);
  }

  ScopedTracePath(const ScopedTracePath&) = delete;
  ScopedTracePath& operator=(const ScopedTracePath&) = delete;

  /// The submitting-side capture: the current path when armed, kDetached
  /// otherwise (keeping the disarmed cost at one relaxed load).
  static int Capture() {
    return Tracer::Armed() ? Tracer::CurrentPath() : kDetached;
  }

 private:
  bool active_ = false;
  int prev_ = 0;
};

}  // namespace qopt::obs

#define QQO_OBS_CONCAT_INNER(a, b) a##b
#define QQO_OBS_CONCAT(a, b) QQO_OBS_CONCAT_INNER(a, b)

/// Opens a traced span covering the rest of the enclosing scope.
#define QQO_TRACE_SPAN(site) \
  ::qopt::obs::TraceSpan QQO_OBS_CONCAT(qqo_trace_span_, __COUNTER__) { site }
