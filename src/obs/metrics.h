#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <mutex>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace qopt::obs {

/// Deterministic metrics registry: named counters, max-gauges and
/// fixed-bucket histograms, threaded through every solver stage (optimizer
/// iterations, routing seeds, embedder attempts, annealer sweeps, retry
/// attempts, ...). Observed values are integers and every aggregate
/// (count, sum, min, max, per-bucket counts) is order-independent, so a
/// run that completes without hitting a deadline produces byte-identical
/// summaries at any QQO_THREADS setting.
///
/// Determinism classes: metrics whose name starts with a prefix in
/// kSchedulingPrefixes (e.g. "threadpool.") measure the execution
/// schedule itself — their values legitimately depend on the thread count
/// and are excluded from the stable snapshot the golden tests compare.
///
/// Disarmed cost: each QQO_COUNT / QQO_OBSERVE / QQO_GAUGE_MAX site
/// compiles to one relaxed atomic load and a never-taken branch — the same
/// contract as fault injection, verified by the BM_Obs* perf_micro cases.
class Metrics {
 public:
  /// Fixed log2 bucket boundaries: bucket b counts values <= 2^b (final
  /// bucket is unbounded). Fixed at compile time so summaries from
  /// different runs and thread counts line up exactly.
  static constexpr int kNumBuckets = 22;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Row {
    std::string name;
    Kind kind = Kind::kCounter;
    bool scheduling = false;  ///< Thread-schedule dependent (see above).
    long long count = 0;      ///< Increments (counter) / observations.
    long long sum = 0;        ///< Counter total / histogram sum / gauge max.
    long long min = 0;        ///< Histogram only.
    long long max = 0;        ///< Histogram only.
    std::array<long long, kNumBuckets> buckets{};  ///< Histogram only.
  };

  static Metrics& Instance();

  /// Fast disarmed check, inlined into every metric site.
  static bool Armed() {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Arms collection and pre-registers the stable metric catalog (so a
  /// metrics table always covers the core stage counters, zero-valued
  /// when a stage did not run). Idempotent.
  void Enable();
  /// Disarms collection; accumulated values are kept for export.
  void Disable();
  /// Disarms and drops every registered metric.
  void Reset();

  /// Slow paths of the QQO_* macros (call only when Armed()).
  void Add(const std::string& name, long long delta);
  void Observe(const std::string& name, long long value);
  void SetMax(const std::string& name, long long value);

  /// Sorted-by-name snapshot. `include_scheduling` adds the
  /// thread-schedule-dependent metrics; the stable subset (false) is the
  /// one promised byte-identical across QQO_THREADS settings.
  std::vector<Row> Snapshot(bool include_scheduling) const;

  /// Human-readable aligned table of the snapshot (via TablePrinter).
  std::string TableString(bool include_scheduling) const;

  /// JSON export: {"metrics": [{name, kind, count, sum, ...}, ...]},
  /// sorted by name. Round-trips through qopt::JsonValue::Parse.
  JsonValue ToJson(bool include_scheduling) const;

  /// True when `name` belongs to the scheduling determinism class.
  static bool IsSchedulingMetric(const std::string& name);

 private:
  Metrics() = default;

  static std::atomic<bool> armed_;

  mutable std::mutex mutex_;
  std::map<std::string, Row> rows_;
};

}  // namespace qopt::obs

/// Adds `delta` to counter `name`. One relaxed atomic load when disarmed.
#define QQO_COUNT(name, delta)                                        \
  do {                                                                \
    if (::qopt::obs::Metrics::Armed()) {                              \
      ::qopt::obs::Metrics::Instance().Add((name), (delta));          \
    }                                                                 \
  } while (0)

/// Records one observation of `value` into histogram `name`.
#define QQO_OBSERVE(name, value)                                      \
  do {                                                                \
    if (::qopt::obs::Metrics::Armed()) {                              \
      ::qopt::obs::Metrics::Instance().Observe((name), (value));      \
    }                                                                 \
  } while (0)

/// Raises max-gauge `name` to at least `value` (order-independent).
#define QQO_GAUGE_MAX(name, value)                                    \
  do {                                                                \
    if (::qopt::obs::Metrics::Armed()) {                              \
      ::qopt::obs::Metrics::Instance().SetMax((name), (value));       \
    }                                                                 \
  } while (0)
