#include "obs/trace.h"

#include <algorithm>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt::obs {
namespace {

thread_local int t_current_path = 0;

}  // namespace

std::atomic<bool> Tracer::armed_{false};

Tracer& Tracer::Instance() {
  static Tracer* instance = new Tracer();
  return *instance;
}

int Tracer::CurrentPath() { return t_current_path; }

void Tracer::SetCurrentPath(int path) { t_current_path = path; }

void Tracer::Enable() {
  epoch_ = std::chrono::steady_clock::now();
  armed_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { armed_.store(false, std::memory_order_relaxed); }

void Tracer::Reset() {
  armed_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(paths_mutex_);
    nodes_.assign(1, PathNode{});
    intern_.clear();
  }
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

int Tracer::InternChild(int parent, const char* site) {
  std::lock_guard<std::mutex> lock(paths_mutex_);
  QOPT_CHECK(parent >= 0 && parent < static_cast<int>(nodes_.size()));
  auto key = std::make_pair(parent, std::string(site));
  auto it = intern_.find(key);
  if (it != intern_.end()) return it->second;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(PathNode{parent, key.second});
  intern_.emplace(std::move(key), id);
  return id;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffer->tid = static_cast<int>(buffers_.size());
    t_buffer = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return t_buffer;
}

void Tracer::RecordSpanEnd(int path,
                           std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  Event event;
  event.path = path;
  event.start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(start - epoch_)
          .count();
  event.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - start)
          .count();
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(event);
}

std::string Tracer::PathString(int path) const {
  std::lock_guard<std::mutex> lock(paths_mutex_);
  std::vector<const std::string*> sites;
  int node = path;
  while (node > 0) {
    QOPT_CHECK(node < static_cast<int>(nodes_.size()));
    sites.push_back(&nodes_[static_cast<std::size_t>(node)].site);
    node = nodes_[static_cast<std::size_t>(node)].parent;
  }
  std::string out;
  for (auto it = sites.rbegin(); it != sites.rend(); ++it) {
    if (!out.empty()) out += '/';
    out += **it;
  }
  return out;
}

std::vector<std::pair<int, Tracer::Event>> Tracer::CollectEvents() const {
  std::vector<std::pair<int, Event>> out;
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const Event& event : buffer->events) {
      out.emplace_back(buffer->tid, event);
    }
  }
  return out;
}

std::string Tracer::AggregatedTreeString(bool include_durations) const {
  struct Agg {
    long long count = 0;
    long long total_us = 0;
  };
  // Keyed by canonical path STRING: intern ids depend on which thread
  // first opened a span, the strings do not.
  std::map<std::string, Agg> aggregated;
  for (const auto& [tid, event] : CollectEvents()) {
    (void)tid;
    Agg& agg = aggregated[PathString(event.path)];
    agg.count += 1;
    agg.total_us += event.dur_us;
  }
  std::vector<std::string> headers = {"span", "count"};
  if (include_durations) headers.push_back("total_us");
  TablePrinter table(std::move(headers));
  for (const auto& [path, agg] : aggregated) {
    std::vector<std::string> row = {path, StrFormat("%lld", agg.count)};
    if (include_durations) row.push_back(StrFormat("%lld", agg.total_us));
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

JsonValue Tracer::ChromeTraceJson() const {
  auto events = CollectEvents();
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second.start_us < b.second.start_us;
                   });
  JsonValue trace_events = JsonValue::Array();
  for (const auto& [tid, event] : events) {
    const std::string path = PathString(event.path);
    const std::size_t slash = path.rfind('/');
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(
                          slash == std::string::npos
                              ? path
                              : path.substr(slash + 1)));
    entry.Set("cat", JsonValue::String("qqo"));
    entry.Set("ph", JsonValue::String("X"));
    entry.Set("ts", JsonValue::Number(static_cast<double>(event.start_us)));
    entry.Set("dur", JsonValue::Number(static_cast<double>(event.dur_us)));
    entry.Set("pid", JsonValue::Number(1));
    entry.Set("tid", JsonValue::Number(tid));
    JsonValue args = JsonValue::Object();
    args.Set("path", JsonValue::String(path));
    entry.Set("args", std::move(args));
    trace_events.Append(std::move(entry));
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", JsonValue::String("ms"));
  return doc;
}

}  // namespace qopt::obs
