#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt::obs {
namespace {

/// Name prefixes whose metrics measure the execution schedule itself
/// (queue depths, chunk counts). They vary with QQO_THREADS by design and
/// are excluded from the stable (byte-identical) snapshot.
constexpr const char* kSchedulingPrefixes[] = {"race.", "serve.wall.",
                                               "threadpool."};

/// Core stage metrics pre-registered at Enable() so a metrics table always
/// names every acceptance-relevant stage, zero-valued when it did not run.
/// These names are a compatibility promise (see DESIGN.md "Observability").
constexpr const char* kStableCatalog[] = {
    "anneal.sweeps",        "embed.attempts",    "fault.fires",
    "serve.cache.hit",      "serve.cache.miss",  "serve.requests",
    "serve.shed",           "solve.attempts",    "statevector.gates",
    "transpile.routing_seeds", "variational.iterations",
};

int BucketIndex(long long value) {
  // Bucket b holds values <= 2^b; the final bucket is unbounded.
  for (int b = 0; b < Metrics::kNumBuckets - 1; ++b) {
    if (value <= (1LL << b)) return b;
  }
  return Metrics::kNumBuckets - 1;
}

const char* KindName(Metrics::Kind kind) {
  switch (kind) {
    case Metrics::Kind::kCounter:
      return "counter";
    case Metrics::Kind::kGauge:
      return "gauge";
    case Metrics::Kind::kHistogram:
      return "histogram";
  }
  return "counter";
}

}  // namespace

std::atomic<bool> Metrics::armed_{false};

Metrics& Metrics::Instance() {
  static Metrics* instance = new Metrics();
  return *instance;
}

bool Metrics::IsSchedulingMetric(const std::string& name) {
  for (const char* prefix : kSchedulingPrefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void Metrics::Enable() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const char* name : kStableCatalog) {
      Row& row = rows_[name];
      row.name = name;
      row.kind = Kind::kCounter;
    }
  }
  armed_.store(true, std::memory_order_relaxed);
}

void Metrics::Disable() { armed_.store(false, std::memory_order_relaxed); }

void Metrics::Reset() {
  armed_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  rows_.clear();
}

void Metrics::Add(const std::string& name, long long delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  Row& row = rows_[name];
  if (row.name.empty()) {
    row.name = name;
    row.kind = Kind::kCounter;
    row.scheduling = IsSchedulingMetric(name);
  }
  row.count += 1;
  row.sum += delta;
}

void Metrics::Observe(const std::string& name, long long value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Row& row = rows_[name];
  if (row.name.empty()) {
    row.name = name;
    row.scheduling = IsSchedulingMetric(name);
  }
  row.kind = Kind::kHistogram;
  if (row.count == 0 || value < row.min) row.min = value;
  if (row.count == 0 || value > row.max) row.max = value;
  row.count += 1;
  row.sum += value;
  row.buckets[static_cast<std::size_t>(BucketIndex(value))] += 1;
}

void Metrics::SetMax(const std::string& name, long long value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Row& row = rows_[name];
  if (row.name.empty()) {
    row.name = name;
    row.scheduling = IsSchedulingMetric(name);
  }
  row.kind = Kind::kGauge;
  row.count += 1;
  row.sum = std::max(row.sum, value);
}

std::vector<Metrics::Row> Metrics::Snapshot(bool include_scheduling) const {
  std::vector<Row> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(rows_.size());
  for (const auto& [name, row] : rows_) {
    if (row.scheduling && !include_scheduling) continue;
    out.push_back(row);
  }
  // rows_ is a std::map, so `out` is already sorted by name.
  return out;
}

std::string Metrics::TableString(bool include_scheduling) const {
  TablePrinter table({"metric", "kind", "count", "value", "min", "max"});
  for (const Row& row : Snapshot(include_scheduling)) {
    const bool hist = row.kind == Kind::kHistogram;
    table.AddRow({row.name, KindName(row.kind), StrFormat("%lld", row.count),
                  StrFormat("%lld", row.sum),
                  hist ? StrFormat("%lld", row.min) : std::string("-"),
                  hist ? StrFormat("%lld", row.max) : std::string("-")});
  }
  return table.ToString();
}

JsonValue Metrics::ToJson(bool include_scheduling) const {
  JsonValue metrics = JsonValue::Array();
  for (const Row& row : Snapshot(include_scheduling)) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(row.name));
    entry.Set("kind", JsonValue::String(KindName(row.kind)));
    entry.Set("scheduling", JsonValue::Bool(row.scheduling));
    entry.Set("count", JsonValue::Number(static_cast<double>(row.count)));
    entry.Set("sum", JsonValue::Number(static_cast<double>(row.sum)));
    if (row.kind == Kind::kHistogram) {
      entry.Set("min", JsonValue::Number(static_cast<double>(row.min)));
      entry.Set("max", JsonValue::Number(static_cast<double>(row.max)));
      JsonValue buckets = JsonValue::Array();
      for (long long b : row.buckets) {
        buckets.Append(JsonValue::Number(static_cast<double>(b)));
      }
      entry.Set("buckets", std::move(buckets));
    }
    metrics.Append(std::move(entry));
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("metrics", std::move(metrics));
  return doc;
}

}  // namespace qopt::obs
