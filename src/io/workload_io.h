#pragma once

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_problem.h"

namespace qopt {

/// JSON (de)serialization of the two workload types, so that external
/// batches and query graphs can be fed to the solvers (used by the
/// qqo_cli tool and available to downstream users).
///
/// MQO format:
///   {"queries": [{"plans": [{"cost": 10}, ...]}, ...],
///    "savings": [{"plan1": 1, "plan2": 3, "saving": 4}, ...]}
/// Plan ids are global, in declaration order, 0-based.
///
/// Query-graph format:
///   {"relations": [{"cardinality": 10}, ...],
///    "predicates": [{"rel1": 0, "rel2": 1, "selectivity": 0.1}, ...]}
///
/// These functions handle untrusted input: malformed documents (wrong
/// types, out-of-range indices, negative costs, non-finite numbers)
/// come back as a Status naming the offending field — they never abort.

JsonValue MqoProblemToJson(const MqoProblem& problem);

/// kInvalidArgument / kOutOfRange on malformed documents, with the
/// offending field path (e.g. queries[2].plans[0].cost) in the message.
StatusOr<MqoProblem> MqoProblemFromJson(const JsonValue& json);

JsonValue QueryGraphToJson(const QueryGraph& graph);

StatusOr<QueryGraph> QueryGraphFromJson(const JsonValue& json);

/// File convenience wrappers. I/O errors, parse errors (with line/column
/// context) and validation errors are all annotated with the file path.
StatusOr<MqoProblem> LoadMqoProblem(const std::string& path);
Status SaveMqoProblem(const MqoProblem& problem, const std::string& path);

StatusOr<QueryGraph> LoadQueryGraph(const std::string& path);
Status SaveQueryGraph(const QueryGraph& graph, const std::string& path);

}  // namespace qopt
