#ifndef QQO_IO_WORKLOAD_IO_H_
#define QQO_IO_WORKLOAD_IO_H_

#include <optional>
#include <string>

#include "common/json.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_problem.h"

namespace qopt {

/// JSON (de)serialization of the two workload types, so that external
/// batches and query graphs can be fed to the solvers (used by the
/// qqo_cli tool and available to downstream users).
///
/// MQO format:
///   {"queries": [{"plans": [{"cost": 10}, ...]}, ...],
///    "savings": [{"plan1": 1, "plan2": 3, "saving": 4}, ...]}
/// Plan ids are global, in declaration order, 0-based.
///
/// Query-graph format:
///   {"relations": [{"cardinality": 10}, ...],
///    "predicates": [{"rel1": 0, "rel2": 1, "selectivity": 0.1}, ...]}

JsonValue MqoProblemToJson(const MqoProblem& problem);

/// Returns nullopt and sets `error` (if non-null) on malformed documents.
std::optional<MqoProblem> MqoProblemFromJson(const JsonValue& json,
                                             std::string* error = nullptr);

JsonValue QueryGraphToJson(const QueryGraph& graph);

std::optional<QueryGraph> QueryGraphFromJson(const JsonValue& json,
                                             std::string* error = nullptr);

/// File convenience wrappers (parse errors and I/O errors both yield
/// nullopt with a message).
std::optional<MqoProblem> LoadMqoProblem(const std::string& path,
                                         std::string* error = nullptr);
bool SaveMqoProblem(const MqoProblem& problem, const std::string& path);

std::optional<QueryGraph> LoadQueryGraph(const std::string& path,
                                         std::string* error = nullptr);
bool SaveQueryGraph(const QueryGraph& graph, const std::string& path);

}  // namespace qopt

#endif  // QQO_IO_WORKLOAD_IO_H_
