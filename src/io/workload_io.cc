#include "io/workload_io.h"

#include "common/table_printer.h"

namespace qopt {
namespace {

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Fetches an object member of the expected kind; false + error if
/// missing or mismatched.
const JsonValue* Require(const JsonValue& object, const std::string& key,
                         JsonValue::Kind kind, std::string* error) {
  if (!object.IsObject()) {
    SetError(error, "expected a JSON object");
    return nullptr;
  }
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    SetError(error, StrFormat("missing field \"%s\"", key.c_str()));
    return nullptr;
  }
  if (value->kind() != kind) {
    SetError(error, StrFormat("field \"%s\" has the wrong type", key.c_str()));
    return nullptr;
  }
  return value;
}

}  // namespace

JsonValue MqoProblemToJson(const MqoProblem& problem) {
  JsonValue queries = JsonValue::Array();
  for (int q = 0; q < problem.NumQueries(); ++q) {
    JsonValue plans = JsonValue::Array();
    for (int plan : problem.PlansOfQuery(q)) {
      JsonValue plan_json = JsonValue::Object();
      plan_json.Set("cost", JsonValue::Number(problem.PlanCost(plan)));
      plans.Append(std::move(plan_json));
    }
    JsonValue query_json = JsonValue::Object();
    query_json.Set("plans", std::move(plans));
    queries.Append(std::move(query_json));
  }
  JsonValue savings = JsonValue::Array();
  for (const auto& [pair, value] : problem.Savings()) {
    JsonValue saving_json = JsonValue::Object();
    saving_json.Set("plan1", JsonValue::Number(pair.first));
    saving_json.Set("plan2", JsonValue::Number(pair.second));
    saving_json.Set("saving", JsonValue::Number(value));
    savings.Append(std::move(saving_json));
  }
  JsonValue root = JsonValue::Object();
  root.Set("queries", std::move(queries));
  root.Set("savings", std::move(savings));
  return root;
}

std::optional<MqoProblem> MqoProblemFromJson(const JsonValue& json,
                                             std::string* error) {
  const JsonValue* queries =
      Require(json, "queries", JsonValue::Kind::kArray, error);
  if (queries == nullptr) return std::nullopt;
  MqoProblem problem;
  for (std::size_t q = 0; q < queries->Size(); ++q) {
    const JsonValue* plans =
        Require(queries->At(q), "plans", JsonValue::Kind::kArray, error);
    if (plans == nullptr) return std::nullopt;
    if (plans->Size() == 0) {
      SetError(error, StrFormat("query %zu has no plans", q));
      return std::nullopt;
    }
    std::vector<double> costs;
    for (std::size_t p = 0; p < plans->Size(); ++p) {
      const JsonValue* cost =
          Require(plans->At(p), "cost", JsonValue::Kind::kNumber, error);
      if (cost == nullptr) return std::nullopt;
      if (cost->AsNumber() < 0.0) {
        SetError(error, "plan costs must be non-negative");
        return std::nullopt;
      }
      costs.push_back(cost->AsNumber());
    }
    problem.AddQuery(costs);
  }
  if (json.Has("savings")) {
    const JsonValue* savings =
        Require(json, "savings", JsonValue::Kind::kArray, error);
    if (savings == nullptr) return std::nullopt;
    for (std::size_t s = 0; s < savings->Size(); ++s) {
      const JsonValue& entry = savings->At(s);
      const JsonValue* plan1 =
          Require(entry, "plan1", JsonValue::Kind::kNumber, error);
      const JsonValue* plan2 =
          Require(entry, "plan2", JsonValue::Kind::kNumber, error);
      const JsonValue* value =
          Require(entry, "saving", JsonValue::Kind::kNumber, error);
      if (plan1 == nullptr || plan2 == nullptr || value == nullptr) {
        return std::nullopt;
      }
      const int p1 = plan1->AsInt();
      const int p2 = plan2->AsInt();
      if (p1 < 0 || p1 >= problem.NumPlans() || p2 < 0 ||
          p2 >= problem.NumPlans() || p1 == p2 ||
          problem.QueryOfPlan(p1) == problem.QueryOfPlan(p2) ||
          value->AsNumber() <= 0.0) {
        SetError(error, StrFormat("invalid saving entry %zu", s));
        return std::nullopt;
      }
      problem.AddSaving(p1, p2, value->AsNumber());
    }
  }
  return problem;
}

JsonValue QueryGraphToJson(const QueryGraph& graph) {
  JsonValue relations = JsonValue::Array();
  for (int r = 0; r < graph.NumRelations(); ++r) {
    JsonValue relation = JsonValue::Object();
    relation.Set("cardinality", JsonValue::Number(graph.Cardinality(r)));
    relations.Append(std::move(relation));
  }
  JsonValue predicates = JsonValue::Array();
  for (const auto& p : graph.Predicates()) {
    JsonValue predicate = JsonValue::Object();
    predicate.Set("rel1", JsonValue::Number(p.rel1));
    predicate.Set("rel2", JsonValue::Number(p.rel2));
    predicate.Set("selectivity", JsonValue::Number(p.selectivity));
    predicates.Append(std::move(predicate));
  }
  JsonValue root = JsonValue::Object();
  root.Set("relations", std::move(relations));
  root.Set("predicates", std::move(predicates));
  return root;
}

std::optional<QueryGraph> QueryGraphFromJson(const JsonValue& json,
                                             std::string* error) {
  const JsonValue* relations =
      Require(json, "relations", JsonValue::Kind::kArray, error);
  if (relations == nullptr) return std::nullopt;
  if (relations->Size() == 0) {
    SetError(error, "need at least one relation");
    return std::nullopt;
  }
  std::vector<double> cardinalities;
  for (std::size_t r = 0; r < relations->Size(); ++r) {
    const JsonValue* card = Require(relations->At(r), "cardinality",
                                    JsonValue::Kind::kNumber, error);
    if (card == nullptr) return std::nullopt;
    if (card->AsNumber() < 1.0) {
      SetError(error, "cardinalities must be >= 1");
      return std::nullopt;
    }
    cardinalities.push_back(card->AsNumber());
  }
  QueryGraph graph(std::move(cardinalities));
  if (json.Has("predicates")) {
    const JsonValue* predicates =
        Require(json, "predicates", JsonValue::Kind::kArray, error);
    if (predicates == nullptr) return std::nullopt;
    for (std::size_t p = 0; p < predicates->Size(); ++p) {
      const JsonValue& entry = predicates->At(p);
      const JsonValue* rel1 =
          Require(entry, "rel1", JsonValue::Kind::kNumber, error);
      const JsonValue* rel2 =
          Require(entry, "rel2", JsonValue::Kind::kNumber, error);
      const JsonValue* sel =
          Require(entry, "selectivity", JsonValue::Kind::kNumber, error);
      if (rel1 == nullptr || rel2 == nullptr || sel == nullptr) {
        return std::nullopt;
      }
      const int r1 = rel1->AsInt();
      const int r2 = rel2->AsInt();
      if (r1 < 0 || r1 >= graph.NumRelations() || r2 < 0 ||
          r2 >= graph.NumRelations() || r1 == r2 || sel->AsNumber() <= 0.0 ||
          sel->AsNumber() > 1.0) {
        SetError(error, StrFormat("invalid predicate entry %zu", p));
        return std::nullopt;
      }
      graph.AddPredicate(r1, r2, sel->AsNumber());
    }
  }
  return graph;
}

namespace {

template <typename T>
std::optional<T> LoadWorkload(
    const std::string& path, std::string* error,
    std::optional<T> (*from_json)(const JsonValue&, std::string*)) {
  const std::optional<std::string> content = ReadFileToString(path);
  if (!content.has_value()) {
    SetError(error, StrFormat("cannot read %s", path.c_str()));
    return std::nullopt;
  }
  std::string parse_error;
  const std::optional<JsonValue> json =
      JsonValue::Parse(*content, &parse_error);
  if (!json.has_value()) {
    SetError(error, StrFormat("%s: %s", path.c_str(), parse_error.c_str()));
    return std::nullopt;
  }
  return from_json(*json, error);
}

}  // namespace

std::optional<MqoProblem> LoadMqoProblem(const std::string& path,
                                         std::string* error) {
  return LoadWorkload<MqoProblem>(path, error, &MqoProblemFromJson);
}

bool SaveMqoProblem(const MqoProblem& problem, const std::string& path) {
  return WriteStringToFile(path, MqoProblemToJson(problem).Dump(2) + "\n");
}

std::optional<QueryGraph> LoadQueryGraph(const std::string& path,
                                         std::string* error) {
  return LoadWorkload<QueryGraph>(path, error, &QueryGraphFromJson);
}

bool SaveQueryGraph(const QueryGraph& graph, const std::string& path) {
  return WriteStringToFile(path, QueryGraphToJson(graph).Dump(2) + "\n");
}

}  // namespace qopt
