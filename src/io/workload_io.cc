#include "io/workload_io.h"

#include <cmath>

#include "common/table_printer.h"

namespace qopt {
namespace {

/// Fetches a required object member of the expected kind, or explains
/// what is wrong with it (missing / wrong container / wrong kind).
StatusOr<const JsonValue*> Require(const JsonValue& object,
                                   const std::string& key,
                                   JsonValue::Kind kind) {
  if (!object.IsObject()) {
    return InvalidArgumentError(
        StrFormat("expected a JSON object, got a %.*s",
                  static_cast<int>(JsonValue::KindName(object.kind()).size()),
                  JsonValue::KindName(object.kind()).data()));
  }
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    return InvalidArgumentError(StrFormat("missing field \"%s\"", key.c_str()));
  }
  if (value->kind() != kind) {
    return InvalidArgumentError(StrFormat(
        "field \"%s\": expected a %.*s, got a %.*s", key.c_str(),
        static_cast<int>(JsonValue::KindName(kind).size()),
        JsonValue::KindName(kind).data(),
        static_cast<int>(JsonValue::KindName(value->kind()).size()),
        JsonValue::KindName(value->kind()).data()));
  }
  return value;
}

/// Required finite number member; `context` names the enclosing entry.
StatusOr<double> RequireFiniteNumber(const JsonValue& object,
                                     const std::string& key,
                                     const std::string& context) {
  const StatusOr<const JsonValue*> value =
      Require(object, key, JsonValue::Kind::kNumber);
  if (!value.ok()) return Annotate(value.status(), context);
  StatusOr<double> number = (*value)->GetNumber();
  if (!number.ok()) {
    return Annotate(number.status(),
                    StrFormat("%s.%s", context.c_str(), key.c_str()));
  }
  return *number;
}

/// Required integer member (rejects fractional and out-of-int-range
/// values that the abort-on-CHECK AsInt() would have died on).
StatusOr<int> RequireInt(const JsonValue& object, const std::string& key,
                         const std::string& context) {
  const StatusOr<const JsonValue*> value =
      Require(object, key, JsonValue::Kind::kNumber);
  if (!value.ok()) return Annotate(value.status(), context);
  StatusOr<int> integer = (*value)->GetInt();
  if (!integer.ok()) {
    return Annotate(integer.status(),
                    StrFormat("%s.%s", context.c_str(), key.c_str()));
  }
  return *integer;
}

}  // namespace

JsonValue MqoProblemToJson(const MqoProblem& problem) {
  JsonValue queries = JsonValue::Array();
  for (int q = 0; q < problem.NumQueries(); ++q) {
    JsonValue plans = JsonValue::Array();
    for (int plan : problem.PlansOfQuery(q)) {
      JsonValue plan_json = JsonValue::Object();
      plan_json.Set("cost", JsonValue::Number(problem.PlanCost(plan)));
      plans.Append(std::move(plan_json));
    }
    JsonValue query_json = JsonValue::Object();
    query_json.Set("plans", std::move(plans));
    queries.Append(std::move(query_json));
  }
  JsonValue savings = JsonValue::Array();
  for (const auto& [pair, value] : problem.Savings()) {
    JsonValue saving_json = JsonValue::Object();
    saving_json.Set("plan1", JsonValue::Number(pair.first));
    saving_json.Set("plan2", JsonValue::Number(pair.second));
    saving_json.Set("saving", JsonValue::Number(value));
    savings.Append(std::move(saving_json));
  }
  JsonValue root = JsonValue::Object();
  root.Set("queries", std::move(queries));
  root.Set("savings", std::move(savings));
  return root;
}

StatusOr<MqoProblem> MqoProblemFromJson(const JsonValue& json) {
  QOPT_ASSIGN_OR_RETURN(const JsonValue* queries,
                        Require(json, "queries", JsonValue::Kind::kArray));
  MqoProblem problem;
  for (std::size_t q = 0; q < queries->Size(); ++q) {
    const std::string query_context = StrFormat("queries[%zu]", q);
    StatusOr<const JsonValue*> plans =
        Require(queries->At(q), "plans", JsonValue::Kind::kArray);
    if (!plans.ok()) return Annotate(plans.status(), query_context);
    if ((*plans)->Size() == 0) {
      return InvalidArgumentError(
          StrFormat("%s has no plans", query_context.c_str()));
    }
    std::vector<double> costs;
    for (std::size_t p = 0; p < (*plans)->Size(); ++p) {
      const std::string plan_context =
          StrFormat("%s.plans[%zu]", query_context.c_str(), p);
      QOPT_ASSIGN_OR_RETURN(
          const double cost,
          RequireFiniteNumber((*plans)->At(p), "cost", plan_context));
      if (cost < 0.0) {
        return OutOfRangeError(StrFormat(
            "%s.cost: plan costs must be non-negative, got %g",
            plan_context.c_str(), cost));
      }
      costs.push_back(cost);
    }
    problem.AddQuery(costs);
  }
  if (json.Has("savings")) {
    QOPT_ASSIGN_OR_RETURN(const JsonValue* savings,
                          Require(json, "savings", JsonValue::Kind::kArray));
    for (std::size_t s = 0; s < savings->Size(); ++s) {
      const std::string context = StrFormat("savings[%zu]", s);
      const JsonValue& entry = savings->At(s);
      QOPT_ASSIGN_OR_RETURN(const int p1, RequireInt(entry, "plan1", context));
      QOPT_ASSIGN_OR_RETURN(const int p2, RequireInt(entry, "plan2", context));
      QOPT_ASSIGN_OR_RETURN(const double value,
                            RequireFiniteNumber(entry, "saving", context));
      if (p1 < 0 || p1 >= problem.NumPlans() || p2 < 0 ||
          p2 >= problem.NumPlans()) {
        return OutOfRangeError(StrFormat(
            "%s: plan index out of range (have %d plans)", context.c_str(),
            problem.NumPlans()));
      }
      if (p1 == p2 || problem.QueryOfPlan(p1) == problem.QueryOfPlan(p2)) {
        return InvalidArgumentError(StrFormat(
            "%s: savings must join plans of two distinct queries",
            context.c_str()));
      }
      if (!(value > 0.0)) {
        return OutOfRangeError(StrFormat("%s.saving: must be > 0, got %g",
                                         context.c_str(), value));
      }
      problem.AddSaving(p1, p2, value);
    }
  }
  return problem;
}

JsonValue QueryGraphToJson(const QueryGraph& graph) {
  JsonValue relations = JsonValue::Array();
  for (int r = 0; r < graph.NumRelations(); ++r) {
    JsonValue relation = JsonValue::Object();
    relation.Set("cardinality", JsonValue::Number(graph.Cardinality(r)));
    relations.Append(std::move(relation));
  }
  JsonValue predicates = JsonValue::Array();
  for (const auto& p : graph.Predicates()) {
    JsonValue predicate = JsonValue::Object();
    predicate.Set("rel1", JsonValue::Number(p.rel1));
    predicate.Set("rel2", JsonValue::Number(p.rel2));
    predicate.Set("selectivity", JsonValue::Number(p.selectivity));
    predicates.Append(std::move(predicate));
  }
  JsonValue root = JsonValue::Object();
  root.Set("relations", std::move(relations));
  root.Set("predicates", std::move(predicates));
  return root;
}

StatusOr<QueryGraph> QueryGraphFromJson(const JsonValue& json) {
  QOPT_ASSIGN_OR_RETURN(const JsonValue* relations,
                        Require(json, "relations", JsonValue::Kind::kArray));
  if (relations->Size() == 0) {
    return InvalidArgumentError("need at least one relation");
  }
  std::vector<double> cardinalities;
  for (std::size_t r = 0; r < relations->Size(); ++r) {
    const std::string context = StrFormat("relations[%zu]", r);
    QOPT_ASSIGN_OR_RETURN(
        const double cardinality,
        RequireFiniteNumber(relations->At(r), "cardinality", context));
    if (cardinality < 1.0) {
      return OutOfRangeError(
          StrFormat("%s.cardinality: must be >= 1, got %g", context.c_str(),
                    cardinality));
    }
    cardinalities.push_back(cardinality);
  }
  QueryGraph graph(std::move(cardinalities));
  if (json.Has("predicates")) {
    QOPT_ASSIGN_OR_RETURN(
        const JsonValue* predicates,
        Require(json, "predicates", JsonValue::Kind::kArray));
    for (std::size_t p = 0; p < predicates->Size(); ++p) {
      const std::string context = StrFormat("predicates[%zu]", p);
      const JsonValue& entry = predicates->At(p);
      QOPT_ASSIGN_OR_RETURN(const int r1, RequireInt(entry, "rel1", context));
      QOPT_ASSIGN_OR_RETURN(const int r2, RequireInt(entry, "rel2", context));
      QOPT_ASSIGN_OR_RETURN(
          const double selectivity,
          RequireFiniteNumber(entry, "selectivity", context));
      if (r1 < 0 || r1 >= graph.NumRelations() || r2 < 0 ||
          r2 >= graph.NumRelations()) {
        return OutOfRangeError(StrFormat(
            "%s: relation index out of range (have %d relations)",
            context.c_str(), graph.NumRelations()));
      }
      if (r1 == r2) {
        return InvalidArgumentError(StrFormat(
            "%s: a predicate must join two distinct relations",
            context.c_str()));
      }
      if (!(selectivity > 0.0) || selectivity > 1.0) {
        return OutOfRangeError(StrFormat(
            "%s.selectivity: must be in (0, 1], got %g", context.c_str(),
            selectivity));
      }
      graph.AddPredicate(r1, r2, selectivity);
    }
  }
  return graph;
}

namespace {

template <typename T>
StatusOr<T> LoadWorkload(const std::string& path,
                         StatusOr<T> (*from_json)(const JsonValue&)) {
  const std::optional<std::string> content = ReadFileToString(path);
  if (!content.has_value()) {
    return NotFoundError(StrFormat("cannot read %s", path.c_str()));
  }
  StatusOr<JsonValue> json = JsonValue::ParseOrStatus(*content);
  if (!json.ok()) return Annotate(json.status(), path);
  StatusOr<T> workload = from_json(*json);
  if (!workload.ok()) return Annotate(workload.status(), path);
  return workload;
}

}  // namespace

StatusOr<MqoProblem> LoadMqoProblem(const std::string& path) {
  return LoadWorkload<MqoProblem>(path, &MqoProblemFromJson);
}

Status SaveMqoProblem(const MqoProblem& problem, const std::string& path) {
  if (!WriteStringToFile(path, MqoProblemToJson(problem).Dump(2) + "\n")) {
    return UnavailableError(StrFormat("cannot write %s", path.c_str()));
  }
  return OkStatus();
}

StatusOr<QueryGraph> LoadQueryGraph(const std::string& path) {
  return LoadWorkload<QueryGraph>(path, &QueryGraphFromJson);
}

Status SaveQueryGraph(const QueryGraph& graph, const std::string& path) {
  if (!WriteStringToFile(path, QueryGraphToJson(graph).Dump(2) + "\n")) {
    return UnavailableError(StrFormat("cannot write %s", path.c_str()));
  }
  return OkStatus();
}

}  // namespace qopt
