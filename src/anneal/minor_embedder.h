#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "anneal/embedding.h"
#include "common/deadline.h"
#include "common/status.h"
#include "graph/simple_graph.h"

namespace qopt {

/// Options for the heuristic minor embedder.
struct EmbedOptions {
  /// Independent restarts with fresh random vertex orders.
  int tries = 3;
  /// Improvement passes per try. Most passes are cheap conflict-driven
  /// re-embeddings; every eighth pass re-embeds all nodes.
  int max_passes = 100;
  /// Passes without overfill improvement before the try is abandoned.
  int patience = 20;
  /// Base of the exponential congestion penalty: a physical qubit already
  /// used by c chains costs penalty_base^c to route through.
  double penalty_base = 8.0;
  /// Congestion exponent cap (keeps weights finite).
  int max_penalty_exponent = 10;
  /// At most this many anchored neighbours get a full-graph Dijkstra when
  /// selecting a chain root; the rest are connected by early-exit searches.
  int root_sample = 4;
  /// Root-selection Dijkstras stop after settling this many target
  /// vertices (0 = unbounded). Chains are local after the first pass, so a
  /// bounded search almost always contains the best root; if the bounded
  /// searches do not overlap, the embedder falls back to unbounded ones.
  int settle_cap = 2500;
  /// Run the chain-trimming post-pass on success.
  bool minimize_chains = true;
  std::uint64_t seed = 0;
  /// Wall-clock budget, checked at every improvement-pass boundary of
  /// every try. Unbounded by default.
  Deadline deadline;
};

/// Heuristic minor embedding in the style of minorminer (Cai, Macready &
/// Roy 2014): vertex models are grown along congestion-weighted shortest
/// paths, overused qubits are penalized exponentially, and nodes are
/// re-embedded in random order until no physical qubit is shared.
/// Returns std::nullopt when no embedding was found within the budget —
/// the paper's Fig. 14 counts exactly these failures ("embedding can be
/// reliably found" = success rate >= 50%).
std::optional<Embedding> FindMinorEmbedding(const SimpleGraph& source,
                                            const SimpleGraph& target,
                                            const EmbedOptions& options = {});

/// Status-reporting flavour with retry semantics. Each of the
/// `options.tries` attempts re-seeds the heuristic before running; the
/// "embedder.attempt" fault point fires once per attempt, and a retryable
/// injected fault (kUnavailable) merely consumes that attempt — the next
/// re-seeded attempt still runs. Returns:
///   - the embedding on success,
///   - kUnavailable when every attempt failed (the paper's Fig. 14
///     "embedding not reliably found" outcome),
///   - kDeadlineExceeded / kCancelled when the budget ran out first,
///   - any non-retryable injected fault verbatim.
StatusOr<Embedding> TryFindMinorEmbedding(const SimpleGraph& source,
                                          const SimpleGraph& target,
                                          const EmbedOptions& options = {});

/// Runs one FindMinorEmbedding per entry of `seeds` (with `base.seed`
/// replaced by the entry) and returns the outcomes indexed like `seeds` —
/// the multi-seed sweep behind the paper's embedding-reliability figures.
/// Attempts run on ThreadPool::Default(); results are independent of the
/// QQO_THREADS setting because each attempt has its own seed and slot.
/// `base.deadline` is honored: attempts not yet started when it trips are
/// skipped and report std::nullopt.
std::vector<std::optional<Embedding>> FindMinorEmbeddingManySeeds(
    const SimpleGraph& source, const SimpleGraph& target,
    const std::vector<std::uint64_t>& seeds, const EmbedOptions& base = {});

}  // namespace qopt
