#include "anneal/simulated_annealer.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {
namespace {

/// Derives a default inverse-temperature range from the problem's energy
/// scale, mirroring dwave-neal: hot enough that the largest single-flip
/// barrier is accepted with probability ~1/2, cold enough that the
/// smallest non-zero barrier is frozen out.
std::pair<double, double> DefaultBetaRange(
    const QuboModel& qubo,
    const std::vector<std::vector<std::pair<int, double>>>& adjacency) {
  // Hot end: the largest single-flip barrier must be crossable with
  // probability ~1/2. Cold end: the smallest non-zero coefficient — the
  // finest energy scale in the problem — must be frozen out, so that
  // penalty-dominated problems (where every variable also carries huge
  // constraint terms) still resolve their small objective differences.
  double max_delta = 0.0;
  double min_coeff = std::numeric_limits<double>::infinity();
  for (int i = 0; i < qubo.NumVariables(); ++i) {
    const double linear = std::abs(qubo.Linear(i));
    double scale = linear;
    if (linear > 0.0) min_coeff = std::min(min_coeff, linear);
    for (const auto& [j, coeff] : adjacency[static_cast<std::size_t>(i)]) {
      (void)j;
      scale += std::abs(coeff);
      if (coeff != 0.0) min_coeff = std::min(min_coeff, std::abs(coeff));
    }
    max_delta = std::max(max_delta, scale);
  }
  if (max_delta == 0.0) return {0.1, 1.0};  // constant objective
  const double beta_min = std::log(2.0) / max_delta;
  const double beta_max = std::log(100.0) / std::max(min_coeff, 1e-9);
  return {beta_min, std::max(beta_max, beta_min * 2.0)};
}

/// Independent RNG stream per read (splitmix64 finalizer over seed and
/// read index). Decoupling the reads from one shared sequential stream is
/// what lets them run in parallel while staying deterministic: read r sees
/// the same randomness no matter how many threads execute the sweep.
std::uint64_t ReadSeed(std::uint64_t seed, int read) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL *
                               (static_cast<std::uint64_t>(read) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

StatusOr<AnnealResult> TrySolveQuboWithAnnealing(const QuboModel& qubo,
                                                 const AnnealOptions& options) {
  QQO_TRACE_SPAN("anneal.solve");
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_CHECK(options.num_reads >= 1);
  QOPT_CHECK(options.num_sweeps >= 1);
  const int n = qubo.NumVariables();
  const auto adjacency = qubo.BuildAdjacency();

  double beta_min = options.beta_min;
  double beta_max = options.beta_max;
  if (beta_max <= 0.0) {
    std::tie(beta_min, beta_max) = DefaultBetaRange(qubo, adjacency);
  }
  QOPT_CHECK(beta_min > 0.0 && beta_max >= beta_min);
  const double beta_ratio =
      options.num_sweeps > 1
          ? std::pow(beta_max / beta_min,
                     1.0 / static_cast<double>(options.num_sweeps - 1))
          : 1.0;

  for (const auto& group : options.flip_groups) {
    for (int i : group) QOPT_CHECK(i >= 0 && i < n);
  }
  // Proposes flipping all of `group` jointly; FlipDelta is evaluated
  // incrementally while flipping, and the move is undone when rejected.
  auto propose_group_flip = [&](std::vector<std::uint8_t>& bits,
                                const std::vector<int>& group, double beta,
                                Rng* rng_ptr) -> double {
    double delta = 0.0;
    for (int i : group) {
      delta += qubo.FlipDelta(bits, i, adjacency);
      bits[static_cast<std::size_t>(i)] ^= 1;
    }
    if (delta <= 0.0 || rng_ptr->NextDouble() < std::exp(-beta * delta)) {
      return delta;
    }
    for (int i : group) bits[static_cast<std::size_t>(i)] ^= 1;
    return 0.0;
  };

  // One fully independent read per slot: its own RNG stream, its own
  // state, results indexed by read. Reads then run on the default pool
  // with identical output at any thread count. The deadline is checked
  // at every sweep boundary and at read claim time; reads cut short keep
  // their best-so-far state (anytime semantics), reads that never start
  // stay absent.
  const std::size_t num_reads = static_cast<std::size_t>(options.num_reads);
  std::vector<std::vector<std::uint8_t>> read_bits(num_reads);
  std::vector<double> read_energies(num_reads);
  std::vector<std::uint8_t> read_done(num_reads, 0);
  std::vector<Status> read_status(num_reads);
  std::atomic<bool> timed_out{false};
  const Status loop_status = ThreadPool::Default().ParallelFor(
      num_reads, options.deadline, [&](std::size_t read) {
        QQO_TRACE_SPAN("anneal.read");
        QQO_COUNT("anneal.reads", 1);
        Rng rng(ReadSeed(options.seed, static_cast<int>(read)));
        std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
        for (auto& b : bits) b = rng.NextBool() ? 1 : 0;
        double energy = qubo.Energy(bits);
        double beta = beta_min;
        bool cut_short = false;
        // QQO_LOOP(anneal.sweep)
        for (int sweep = 0; sweep < options.num_sweeps; ++sweep) {
          QQO_COUNT("anneal.sweeps", 1);
          if (Status fault = CheckFaultPoint("annealer.sweep"); !fault.ok()) {
            read_status[read] = std::move(fault);
            return;  // this read contributes nothing
          }
          if (Status check = options.deadline.Check(); !check.ok()) {
            if (check.code() == StatusCode::kCancelled) {
              read_status[read] = std::move(check);
              return;
            }
            timed_out.store(true, std::memory_order_relaxed);
            cut_short = true;
            break;  // keep the best-so-far state
          }
          for (int i = 0; i < n; ++i) {
            const double delta = qubo.FlipDelta(bits, i, adjacency);
            if (delta <= 0.0 || rng.NextDouble() < std::exp(-beta * delta)) {
              bits[static_cast<std::size_t>(i)] ^= 1;
              energy += delta;
            }
          }
          for (const auto& group : options.flip_groups) {
            energy += propose_group_flip(bits, group, beta, &rng);
          }
          beta *= beta_ratio;
        }
        // Greedy descent to the local minimum removes residual thermal
        // noise. Skipped when the deadline already fired — it is the one
        // unbounded loop here.
        bool improved = !cut_short;
        while (improved) {
          improved = false;
          for (int i = 0; i < n; ++i) {
            const double delta = qubo.FlipDelta(bits, i, adjacency);
            if (delta < -1e-12) {
              bits[static_cast<std::size_t>(i)] ^= 1;
              energy += delta;
              improved = true;
            }
          }
          for (const auto& group : options.flip_groups) {
            double delta = 0.0;
            for (int i : group) {
              delta += qubo.FlipDelta(bits, i, adjacency);
              bits[static_cast<std::size_t>(i)] ^= 1;
            }
            if (delta < -1e-12) {
              energy += delta;
              improved = true;
            } else {
              for (int i : group) bits[static_cast<std::size_t>(i)] ^= 1;
            }
          }
        }
        read_energies[read] = energy;
        read_bits[read] = std::move(bits);
        read_done[read] = 1;
      });

  // Cancellation and injected faults fail the whole call; a plain expiry
  // only marks it timed out.
  for (std::size_t read = 0; read < num_reads; ++read) {
    if (!read_status[read].ok()) return read_status[read];
  }
  if (!loop_status.ok()) {
    if (loop_status.code() == StatusCode::kCancelled) return loop_status;
    timed_out.store(true, std::memory_order_relaxed);
  }

  AnnealResult result;
  result.timed_out = timed_out.load(std::memory_order_relaxed);
  std::size_t best_read = num_reads;
  for (std::size_t read = 0; read < num_reads; ++read) {
    if (!read_done[read]) continue;
    result.read_energies.push_back(read_energies[read]);
    if (best_read == num_reads ||
        read_energies[read] < read_energies[best_read]) {
      best_read = read;
    }
  }
  if (best_read == num_reads) {
    // The deadline fired before any read finished a single sweep. The
    // anytime contract still owes the caller a valid state: all-zeros is
    // the canonical deterministic fallback.
    result.best_bits.assign(static_cast<std::size_t>(n), 0);
  } else {
    result.best_bits = std::move(read_bits[best_read]);
  }
  // Recompute exactly to clear accumulated floating-point drift.
  result.best_energy = qubo.Energy(result.best_bits);
  return result;
}

AnnealResult SolveQuboWithAnnealing(const QuboModel& qubo,
                                    const AnnealOptions& options) {
  StatusOr<AnnealResult> result = TrySolveQuboWithAnnealing(qubo, options);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace qopt
