#include "anneal/simulated_annealer.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {
namespace {

/// Sweep-kernel view of the QUBO, shared read-only by every read.
///
/// The proposal loop never touches adjacency at all: it maintains a
/// per-variable local field
///
///   local_field[i] = linear_i + sum_j c_ij * bits[j]
///
/// so the energy delta of flipping bit i is +-local_field[i] — an O(1)
/// lookup per proposal. Only an *accepted* flip pays O(degree(i)) to push
/// the change into its neighbors' fields (the dwave-neal scheme; the old
/// code rescanned the adjacency row on every proposal).
///
/// Two field-update layouts, chosen deterministically from the problem
/// shape: CSR rows (index-sorted, one contiguous coefficient stream per
/// variable) for sparse problems, and full dense coefficient rows for
/// dense ones, where the unit-stride `field[j] += sign * row[j]` pass over
/// all n columns vectorizes and out-runs the gather through a CSR row.
struct SweepGraph {
  int n = 0;
  bool dense = false;
  std::vector<double> linear;
  CsrAdjacency csr;
  std::vector<double> rows;  ///< n*n, row-major, 0.0 where no coupling.
};

/// Dense rows win once enough of the row is populated that the contiguous
/// pass beats the CSR gather; the variable cap bounds the n*n buffer
/// (2048^2 doubles = 32 MiB).
constexpr double kDenseRowThreshold = 0.35;
constexpr int kDenseRowMaxVars = 2048;

SweepGraph BuildSweepGraph(const QuboModel& qubo) {
  SweepGraph graph;
  graph.n = qubo.NumVariables();
  graph.linear.resize(static_cast<std::size_t>(graph.n));
  for (int i = 0; i < graph.n; ++i) {
    graph.linear[static_cast<std::size_t>(i)] = qubo.Linear(i);
  }
  graph.csr = qubo.BuildCsrAdjacency();
  graph.dense =
      graph.n >= 2 && graph.n <= kDenseRowMaxVars &&
      qubo.Density() >= kDenseRowThreshold;
  if (graph.dense) {
    const std::size_t n = static_cast<std::size_t>(graph.n);
    graph.rows.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = graph.csr.offsets[i]; k < graph.csr.offsets[i + 1];
           ++k) {
        graph.rows[i * n +
                   static_cast<std::size_t>(graph.csr.neighbors[k])] =
            graph.csr.coeffs[k];
      }
    }
  }
  return graph;
}

/// Derives a default inverse-temperature range from the problem's energy
/// scale, mirroring dwave-neal: hot enough that the largest single-flip
/// barrier is accepted with probability ~1/2, cold enough that the
/// smallest non-zero barrier is frozen out.
std::pair<double, double> DefaultBetaRange(const SweepGraph& graph) {
  // Hot end: the largest single-flip barrier must be crossable with
  // probability ~1/2. Cold end: the smallest non-zero coefficient — the
  // finest energy scale in the problem — must be frozen out, so that
  // penalty-dominated problems (where every variable also carries huge
  // constraint terms) still resolve their small objective differences.
  double max_delta = 0.0;
  double min_coeff = std::numeric_limits<double>::infinity();
  for (int i = 0; i < graph.n; ++i) {
    const double linear = std::abs(graph.linear[static_cast<std::size_t>(i)]);
    double scale = linear;
    if (linear > 0.0) min_coeff = std::min(min_coeff, linear);
    for (std::size_t k = graph.csr.offsets[static_cast<std::size_t>(i)];
         k < graph.csr.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const double coeff = graph.csr.coeffs[k];
      scale += std::abs(coeff);
      if (coeff != 0.0) min_coeff = std::min(min_coeff, std::abs(coeff));
    }
    max_delta = std::max(max_delta, scale);
  }
  if (max_delta == 0.0) return {0.1, 1.0};  // constant objective
  const double beta_min = std::log(2.0) / max_delta;
  const double beta_max = std::log(100.0) / std::max(min_coeff, 1e-9);
  return {beta_min, std::max(beta_max, beta_min * 2.0)};
}

/// Independent RNG stream per read (splitmix64 finalizer over seed and
/// read index). Decoupling the reads from one shared sequential stream is
/// what lets them run in parallel while staying deterministic: read r sees
/// the same randomness no matter how many threads execute the sweep.
std::uint64_t ReadSeed(std::uint64_t seed, int read) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL *
                               (static_cast<std::uint64_t>(read) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Per-read mutable state. The buffers live in a thread_local arena (one
/// per pool worker) and are fully re-initialized by Reset() for each read
/// — the PR-1 Reset() reuse pattern — so steady-state reads allocate
/// nothing. Determinism is unaffected by the reuse: every cell a read
/// observes is overwritten before use, and reads never share state.
struct ReadState {
  std::vector<std::uint8_t> bits;
  std::vector<double> local_field;
  std::vector<std::uint8_t> in_group;  ///< group-flip membership scratch
  double energy = 0.0;

  void Reset(const SweepGraph& graph, const QuboModel& qubo, Rng* rng) {
    const std::size_t n = static_cast<std::size_t>(graph.n);
    bits.resize(n);
    for (auto& b : bits) b = rng->NextBool() ? 1 : 0;
    in_group.assign(n, 0);
    energy = qubo.Energy(bits);
    // local_field[i] = linear_i + sum over couplings to set bits, summed
    // in CSR (index-sorted) order so the init is platform-deterministic.
    local_field.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      double field = graph.linear[i];
      for (std::size_t k = graph.csr.offsets[i]; k < graph.csr.offsets[i + 1];
           ++k) {
        if (bits[static_cast<std::size_t>(graph.csr.neighbors[k])]) {
          field += graph.csr.coeffs[k];
        }
      }
      local_field[i] = field;
    }
  }

  /// Energy delta of flipping bit i, from the cached field: O(1).
  double FlipDelta(int i) const {
    const std::size_t idx = static_cast<std::size_t>(i);
    return bits[idx] ? -local_field[idx] : local_field[idx];
  }

  /// Flips bit i and pushes the change into the neighbors' local fields —
  /// O(degree(i)) sparse, O(n) unit-stride dense. local_field[i] itself
  /// is untouched (no self-coupling), so an immediate flip-back sees the
  /// exact negated delta.
  void CommitFlip(const SweepGraph& graph, int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::uint8_t now = (bits[idx] ^= 1);
    const double sign = now ? 1.0 : -1.0;
    if (graph.dense) {
      const std::size_t n = static_cast<std::size_t>(graph.n);
      const double* row = graph.rows.data() + idx * n;
      double* field = local_field.data();
      for (std::size_t j = 0; j < n; ++j) field[j] += sign * row[j];
    } else {
      for (std::size_t k = graph.csr.offsets[idx];
           k < graph.csr.offsets[idx + 1]; ++k) {
        local_field[static_cast<std::size_t>(graph.csr.neighbors[k])] +=
            sign * graph.csr.coeffs[k];
      }
    }
  }

  /// Energy delta of jointly flipping every bit of `group`, computed from
  /// the shared local-field cache WITHOUT mutating any state:
  ///
  ///   dE(S) = sum_{i in S} FlipDelta(i)
  ///         + sum_{edges (i,j) inside S} c_ij * s_i * s_j,   s = 1 - 2b.
  ///
  /// Each member's single-flip delta counts the edge to another member as
  /// if that member stayed put; the pairwise term restores the joint
  /// product change c_ij * (b_i' - b_i)(b_j' - b_j). Rejected proposals
  /// therefore cost no undo at all (the old code flipped bits per member
  /// to evaluate the delta and had to roll them back).
  double GroupDelta(const SweepGraph& graph, const std::vector<int>& group) {
    double delta = 0.0;
    for (int i : group) {
      delta += FlipDelta(i);
      in_group[static_cast<std::size_t>(i)] = 1;
    }
    for (int i : group) {
      const std::size_t idx = static_cast<std::size_t>(i);
      const double si = bits[idx] ? -1.0 : 1.0;
      for (std::size_t k = graph.csr.offsets[idx];
           k < graph.csr.offsets[idx + 1]; ++k) {
        const int j = graph.csr.neighbors[k];
        // j > i counts each inside-group edge exactly once.
        if (j > i && in_group[static_cast<std::size_t>(j)]) {
          const double sj = bits[static_cast<std::size_t>(j)] ? -1.0 : 1.0;
          delta += graph.csr.coeffs[k] * si * sj;
        }
      }
    }
    for (int i : group) in_group[static_cast<std::size_t>(i)] = 0;
    return delta;
  }

  /// Commits an accepted group flip: O(sum of member degrees).
  void CommitGroup(const SweepGraph& graph, const std::vector<int>& group,
                   double delta) {
    for (int i : group) CommitFlip(graph, i);
    energy += delta;
  }
};

/// One reusable ReadState per pool worker. thread_local rather than
/// per-read storage so the arena survives across the reads a worker
/// processes (and across TrySolveQuboWithAnnealing calls on that thread).
ReadState& LocalReadState() {
  thread_local ReadState state;
  return state;
}

}  // namespace

StatusOr<AnnealResult> TrySolveQuboWithAnnealing(const QuboModel& qubo,
                                                 const AnnealOptions& options) {
  QQO_TRACE_SPAN("anneal.solve");
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_CHECK(options.num_reads >= 1);
  QOPT_CHECK(options.num_sweeps >= 1);
  const int n = qubo.NumVariables();
  const SweepGraph graph = BuildSweepGraph(qubo);

  double beta_min = options.beta_min;
  double beta_max = options.beta_max;
  if (beta_max <= 0.0) {
    std::tie(beta_min, beta_max) = DefaultBetaRange(graph);
  }
  QOPT_CHECK(beta_min > 0.0 && beta_max >= beta_min);
  const double beta_ratio =
      options.num_sweeps > 1
          ? std::pow(beta_max / beta_min,
                     1.0 / static_cast<double>(options.num_sweeps - 1))
          : 1.0;

  for (const auto& group : options.flip_groups) {
    for (int i : group) QOPT_CHECK(i >= 0 && i < n);
  }

  // One fully independent read per slot: its own RNG stream, its own
  // state, results indexed by read. Reads then run on the default pool
  // with identical output at any thread count. The deadline is checked
  // at every sweep boundary and at read claim time; reads cut short keep
  // their best-so-far state (anytime semantics), reads that never start
  // stay absent.
  const std::size_t num_reads = static_cast<std::size_t>(options.num_reads);
  std::vector<std::vector<std::uint8_t>> read_bits(num_reads);
  std::vector<double> read_energies(num_reads);
  std::vector<std::uint8_t> read_done(num_reads, 0);
  std::vector<Status> read_status(num_reads);
  std::atomic<bool> timed_out{false};
  const Status loop_status = ThreadPool::Default().ParallelFor(
      num_reads, options.deadline, [&](std::size_t read) {
        QQO_TRACE_SPAN("anneal.read");
        QQO_COUNT("anneal.reads", 1);
        Rng rng(ReadSeed(options.seed, static_cast<int>(read)));
        ReadState& state = LocalReadState();
        state.Reset(graph, qubo, &rng);
        double beta = beta_min;
        bool cut_short = false;
        // QQO_LOOP(anneal.sweep)
        for (int sweep = 0; sweep < options.num_sweeps; ++sweep) {
          QQO_COUNT("anneal.sweeps", 1);
          if (Status fault = CheckFaultPoint("annealer.sweep"); !fault.ok()) {
            read_status[read] = std::move(fault);
            return;  // this read contributes nothing
          }
          if (Status check = options.deadline.Check(); !check.ok()) {
            if (check.code() == StatusCode::kCancelled) {
              read_status[read] = std::move(check);
              return;
            }
            timed_out.store(true, std::memory_order_relaxed);
            cut_short = true;
            break;  // keep the best-so-far state
          }
          for (int i = 0; i < n; ++i) {
            const double delta = state.FlipDelta(i);
            if (delta <= 0.0 || rng.NextDouble() < std::exp(-beta * delta)) {
              state.CommitFlip(graph, i);
              state.energy += delta;
            }
          }
          for (const auto& group : options.flip_groups) {
            const double delta = state.GroupDelta(graph, group);
            if (delta <= 0.0 || rng.NextDouble() < std::exp(-beta * delta)) {
              state.CommitGroup(graph, group, delta);
            }
          }
          beta *= beta_ratio;
        }
        // Greedy descent to the local minimum removes residual thermal
        // noise. Skipped when the deadline already fired — it is the one
        // unbounded loop here.
        bool improved = !cut_short;
        while (improved) {
          improved = false;
          for (int i = 0; i < n; ++i) {
            const double delta = state.FlipDelta(i);
            if (delta < -1e-12) {
              state.CommitFlip(graph, i);
              state.energy += delta;
              improved = true;
            }
          }
          for (const auto& group : options.flip_groups) {
            const double delta = state.GroupDelta(graph, group);
            if (delta < -1e-12) {
              state.CommitGroup(graph, group, delta);
              improved = true;
            }
          }
        }
        read_energies[read] = state.energy;
        // Copy (not move) so the worker's arena keeps its storage for the
        // next read.
        read_bits[read] = state.bits;
        read_done[read] = 1;
      });

  // Cancellation and injected faults fail the whole call; a plain expiry
  // only marks it timed out.
  for (std::size_t read = 0; read < num_reads; ++read) {
    if (!read_status[read].ok()) return read_status[read];
  }
  if (!loop_status.ok()) {
    if (loop_status.code() == StatusCode::kCancelled) return loop_status;
    timed_out.store(true, std::memory_order_relaxed);
  }

  AnnealResult result;
  result.timed_out = timed_out.load(std::memory_order_relaxed);
  std::size_t best_read = num_reads;
  for (std::size_t read = 0; read < num_reads; ++read) {
    if (!read_done[read]) continue;
    result.read_energies.push_back(read_energies[read]);
    if (best_read == num_reads ||
        read_energies[read] < read_energies[best_read]) {
      best_read = read;
    }
  }
  if (best_read == num_reads) {
    // The deadline fired before any read finished a single sweep. The
    // anytime contract still owes the caller a valid state: all-zeros is
    // the canonical deterministic fallback.
    result.best_bits.assign(static_cast<std::size_t>(n), 0);
  } else {
    result.best_bits = std::move(read_bits[best_read]);
  }
  // Recompute exactly to clear accumulated floating-point drift.
  result.best_energy = qubo.Energy(result.best_bits);
  return result;
}

AnnealResult SolveQuboWithAnnealing(const QuboModel& qubo,
                                    const AnnealOptions& options) {
  StatusOr<AnnealResult> result = TrySolveQuboWithAnnealing(qubo, options);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace qopt
