#pragma once

#include "graph/simple_graph.h"

namespace qopt {

/// Builds the Pegasus topology P(M) — the qubit connectivity of the D-Wave
/// Advantage system (P16, ~5600 qubits, degree <= 15).
///
/// Construction follows the geometric definition (Boothby et al., "Next-
/// Generation Topology of D-Wave Quantum Processors"): each qubit is a
/// length-12 line segment on a grid. Vertical qubit (u=0, w, k, z) sits at
/// column x = 12w + k spanning rows [12z + sV[k], 12z + sV[k] + 12);
/// horizontal qubit (u=1, w, k, z) sits at row y = 12w + k spanning
/// columns [12z + sH[k], 12z + sH[k] + 12), with the standard offset lists
/// sV = (2,2,2,2,6,6,6,6,10,10,10,10) and sH = (6,6,6,6,10,10,10,10,2,2,2,2).
///
///  * internal couplers join each crossing vertical/horizontal pair
///    (12 per interior qubit),
///  * external couplers join collinear consecutive segments (z, z+1),
///  * odd couplers join parallel neighbours (k = 2j, 2j+1),
///
/// for a maximum degree of 15. When `fabric_only` is true (the default,
/// matching D-Wave's usable fabric), qubits without internal couplers are
/// dropped and the survivors are relabelled consecutively.
SimpleGraph MakePegasus(int m, bool fabric_only = true);

/// Linear id of Pegasus node (u, w, k, z) before the fabric trim:
/// ((u * M + w) * 12 + k) * (M - 1) + z.
int PegasusNodeId(int m, int u, int w, int k, int z);

}  // namespace qopt
