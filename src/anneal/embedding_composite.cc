#include "anneal/embedding_composite.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "qubo/conversions.h"
#include "qubo/ising_model.h"

namespace qopt {

StatusOr<EmbeddedSolveResult> TrySolveQuboOnTopology(
    const QuboModel& qubo, const SimpleGraph& topology,
    const EmbeddedSolveOptions& options) {
  QOPT_CHECK(qubo.NumVariables() >= 1);
  const SimpleGraph source = qubo.InteractionGraph();
  StatusOr<Embedding> found =
      TryFindMinorEmbedding(source, topology, options.embed);
  if (!found.ok()) return found.status();
  std::optional<Embedding> embedding(*std::move(found));

  const IsingModel logical = QuboToIsing(qubo);

  double chain_strength = options.chain_strength;
  if (chain_strength <= 0.0) {
    double scale = 0.0;
    for (int i = 0; i < logical.NumSpins(); ++i) {
      scale = std::max(scale, std::abs(logical.Field(i)));
    }
    for (const auto& [edge, j] : logical.Couplings()) {
      (void)edge;
      scale = std::max(scale, std::abs(j));
    }
    chain_strength = std::max(1.0, 1.5 * scale);
  }

  // Dense renumbering of the physical qubits actually used.
  std::vector<int> phys_to_dense(
      static_cast<std::size_t>(topology.NumVertices()), -1);
  std::vector<int> owner(static_cast<std::size_t>(topology.NumVertices()), -1);
  int num_dense = 0;
  for (int u = 0; u < source.NumVertices(); ++u) {
    for (int p : embedding->chains[static_cast<std::size_t>(u)]) {
      phys_to_dense[static_cast<std::size_t>(p)] = num_dense++;
      owner[static_cast<std::size_t>(p)] = u;
    }
  }

  IsingModel physical(num_dense);
  // Linear biases: split evenly over the chain.
  for (int u = 0; u < source.NumVertices(); ++u) {
    const auto& chain = embedding->chains[static_cast<std::size_t>(u)];
    const double share =
        logical.Field(u) / static_cast<double>(chain.size());
    if (share != 0.0) {
      for (int p : chain) {
        physical.AddField(phys_to_dense[static_cast<std::size_t>(p)], share);
      }
    }
  }
  // Logical couplings: split evenly over the available physical couplers;
  // chain couplers get the ferromagnetic chain strength.
  for (int u = 0; u < source.NumVertices(); ++u) {
    for (int p : embedding->chains[static_cast<std::size_t>(u)]) {
      for (int q : topology.Neighbors(p)) {
        if (q < p) continue;  // visit each physical edge once
        const int v = owner[static_cast<std::size_t>(q)];
        if (v == -1) continue;
        if (v == u) {
          physical.AddCoupling(phys_to_dense[static_cast<std::size_t>(p)],
                               phys_to_dense[static_cast<std::size_t>(q)],
                               -chain_strength);
        }
      }
    }
  }
  for (const auto& [edge, j] : logical.Couplings()) {
    if (j == 0.0) continue;
    const auto& chain_u = embedding->chains[static_cast<std::size_t>(edge.first)];
    // Collect the physical couplers between the two chains.
    std::vector<std::pair<int, int>> couplers;
    for (int p : chain_u) {
      for (int q : topology.Neighbors(p)) {
        if (owner[static_cast<std::size_t>(q)] == edge.second) {
          couplers.emplace_back(p, q);
        }
      }
    }
    QOPT_CHECK_MSG(!couplers.empty(), "embedding lost a logical coupling");
    const double share = j / static_cast<double>(couplers.size());
    for (const auto& [p, q] : couplers) {
      physical.AddCoupling(phys_to_dense[static_cast<std::size_t>(p)],
                           phys_to_dense[static_cast<std::size_t>(q)], share);
    }
  }

  const QuboModel physical_qubo = IsingToQubo(physical);
  AnnealOptions anneal_options = options.anneal;
  // Whole-chain cluster moves keep logical flips possible even when the
  // ferromagnetic chain couplings freeze individual qubits.
  anneal_options.flip_groups.reserve(
      static_cast<std::size_t>(source.NumVertices()));
  for (int u = 0; u < source.NumVertices(); ++u) {
    std::vector<int> group;
    group.reserve(embedding->chains[static_cast<std::size_t>(u)].size());
    for (int p : embedding->chains[static_cast<std::size_t>(u)]) {
      group.push_back(phys_to_dense[static_cast<std::size_t>(p)]);
    }
    anneal_options.flip_groups.push_back(std::move(group));
  }
  QOPT_ASSIGN_OR_RETURN(
      const AnnealResult anneal,
      TrySolveQuboWithAnnealing(physical_qubo, anneal_options));

  // Unembed by majority vote per chain.
  EmbeddedSolveResult result;
  result.bits.assign(static_cast<std::size_t>(qubo.NumVariables()), 0);
  int broken_chains = 0;
  for (int u = 0; u < source.NumVertices(); ++u) {
    const auto& chain = embedding->chains[static_cast<std::size_t>(u)];
    int ones = 0;
    for (int p : chain) {
      ones += anneal.best_bits[static_cast<std::size_t>(
          phys_to_dense[static_cast<std::size_t>(p)])];
    }
    const int size = static_cast<int>(chain.size());
    if (ones != 0 && ones != size) ++broken_chains;
    result.bits[static_cast<std::size_t>(u)] = 2 * ones >= size ? 1 : 0;
  }
  result.energy = qubo.Energy(result.bits);
  result.chain_break_fraction =
      source.NumVertices() > 0
          ? static_cast<double>(broken_chains) /
                static_cast<double>(source.NumVertices())
          : 0.0;
  result.embedding = std::move(*embedding);
  result.timed_out = anneal.timed_out;
  return result;
}

std::optional<EmbeddedSolveResult> SolveQuboOnTopology(
    const QuboModel& qubo, const SimpleGraph& topology,
    const EmbeddedSolveOptions& options) {
  StatusOr<EmbeddedSolveResult> result =
      TrySolveQuboOnTopology(qubo, topology, options);
  if (!result.ok()) return std::nullopt;
  return *std::move(result);
}

}  // namespace qopt
