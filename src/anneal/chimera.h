#pragma once

#include "graph/simple_graph.h"

namespace qopt {

/// Builds the Chimera topology C(rows, cols, shore): a rows x cols grid of
/// unit cells, each a complete bipartite K_{shore,shore} (Fig. 5 of the
/// paper shows C(2,2,4)). Vertical-shore qubits couple to the cell below,
/// horizontal-shore qubits to the cell on the right, so interior qubits
/// have degree shore + 2. The D-Wave 2X used in [9] is C(12,12,4).
///
/// Node (row, col, shore_side u in {0,1}, index k) has the linear id
/// ((row * cols + col) * 2 + u) * shore + k.
SimpleGraph MakeChimera(int rows, int cols, int shore = 4);

/// Linear id of Chimera node (row, col, u, k); see MakeChimera.
int ChimeraNodeId(int rows, int cols, int shore, int row, int col, int u,
                  int k);

}  // namespace qopt
