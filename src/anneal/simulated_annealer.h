#pragma once

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// Options for the classical simulated-annealing QUBO sampler (the
/// dwave-neal equivalent the paper uses as its annealing solver).
struct AnnealOptions {
  int num_reads = 10;     ///< Independent restarts; best sample is kept.
  int num_sweeps = 1000;  ///< Metropolis sweeps per read.
  /// Inverse-temperature schedule endpoints. If beta_max <= 0, both are
  /// derived from the problem's energy scale (like neal's default).
  double beta_min = 0.0;
  double beta_max = 0.0;
  std::uint64_t seed = 0;
  /// Optional cluster moves: after every single-flip sweep, each group is
  /// proposed as a joint flip of all its variables. The embedding
  /// composite passes the chains here so that logical flips remain
  /// possible once strong chain couplings freeze individual qubits.
  std::vector<std::vector<int>> flip_groups;
  /// Wall-clock budget, checked at every sweep boundary of every read.
  /// Unbounded by default.
  Deadline deadline;
};

/// Result of a simulated-annealing run.
struct AnnealResult {
  std::vector<std::uint8_t> best_bits;
  double best_energy = 0.0;
  /// Energy of every read's final state (for distribution studies). Reads
  /// that never started because the deadline expired first are absent.
  std::vector<double> read_energies;
  /// True when the deadline expired mid-run. The result is still the best
  /// state found so far (anytime semantics) — but it came from fewer
  /// sweeps/reads than requested, so it is NOT reproducible across
  /// machines the way a completed run is.
  bool timed_out = false;
};

/// Deadline- and fault-aware annealing. Simulated annealing is an anytime
/// algorithm: when `options.deadline` expires mid-run the best state found
/// so far is returned with `timed_out = true` and an OK status. Only a
/// fired CancelToken (kCancelled) or an injected fault at the
/// "annealer.sweep" site produces a non-OK status.
StatusOr<AnnealResult> TrySolveQuboWithAnnealing(
    const QuboModel& qubo, const AnnealOptions& options = {});

/// Samples low-energy states of `qubo` with Metropolis simulated annealing
/// on a geometric inverse-temperature schedule. Infinite-deadline wrapper
/// around TrySolveQuboWithAnnealing; aborts on cancellation or injected
/// faults, which cannot occur in normal operation.
///
/// Sweep kernel: each read maintains a per-variable local-field array so a
/// flip proposal is an O(1) lookup and only *accepted* flips pay
/// O(degree) to update neighbor fields (dense problems use contiguous
/// coefficient rows instead of the CSR gather). Group flips share the
/// same cache. See DESIGN.md "Performance".
AnnealResult SolveQuboWithAnnealing(const QuboModel& qubo,
                                    const AnnealOptions& options = {});

}  // namespace qopt
