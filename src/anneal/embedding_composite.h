#pragma once

#include <optional>
#include <vector>

#include "anneal/embedding.h"
#include "anneal/minor_embedder.h"
#include "anneal/simulated_annealer.h"
#include "common/status.h"
#include "graph/simple_graph.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// Options for solving a QUBO through a minor embedding (the OCEAN
/// StructureComposite + EmbeddingComposite emulation: the solver only sees
/// couplers that exist in the annealer topology).
struct EmbeddedSolveOptions {
  /// `embed.deadline` bounds the embedding stage, `anneal.deadline` the
  /// annealing stage; callers with one overall budget set both from the
  /// same parent Deadline (the min-composition in WithBudget makes that
  /// safe).
  EmbedOptions embed;
  AnnealOptions anneal;
  /// Ferromagnetic chain coupling strength. <= 0 derives it from the
  /// problem scale (1.5x the largest absolute Ising coefficient).
  double chain_strength = 0.0;
};

/// Result of an embedded solve.
struct EmbeddedSolveResult {
  std::vector<std::uint8_t> bits;  ///< Logical solution after unembedding.
  double energy = 0.0;             ///< Logical QUBO energy of `bits`.
  Embedding embedding;
  /// Fraction of chains whose physical qubits disagreed in the best
  /// sample (resolved by majority vote).
  double chain_break_fraction = 0.0;
  /// True when the annealing stage was cut short by its deadline (the
  /// bits are still the best sample found; see AnnealResult::timed_out).
  bool timed_out = false;
};

/// Status-reporting flavour: kUnavailable when no embedding was found
/// within the embed budget, kDeadlineExceeded / kCancelled when a stage
/// budget ran out, injected faults verbatim. An annealing stage cut short
/// by its deadline still returns OK with `timed_out` set (anytime
/// semantics).
StatusOr<EmbeddedSolveResult> TrySolveQuboOnTopology(
    const QuboModel& qubo, const SimpleGraph& topology,
    const EmbeddedSolveOptions& options = {});

/// Embeds `qubo`'s interaction graph into `topology`, anneals the chained
/// physical Ising problem, and unembeds by per-chain majority vote.
/// Returns std::nullopt when no embedding could be found (or any other
/// error of TrySolveQuboOnTopology occurred).
std::optional<EmbeddedSolveResult> SolveQuboOnTopology(
    const QuboModel& qubo, const SimpleGraph& topology,
    const EmbeddedSolveOptions& options = {});

}  // namespace qopt
