#pragma once

#include <string>
#include <vector>

#include "graph/simple_graph.h"

namespace qopt {

/// A minor embedding: chains[logical] is the set of physical qubits
/// representing logical variable `logical`.
struct Embedding {
  std::vector<std::vector<int>> chains;

  /// Total number of physical qubits used (the Fig. 14 metric).
  int NumPhysicalQubits() const;

  /// Longest chain.
  int MaxChainLength() const;

  /// Mean chain length.
  double MeanChainLength() const;
};

/// Checks that `embedding` is a valid minor embedding of `source` into
/// `target`: every chain is non-empty, chains are pairwise disjoint, every
/// chain induces a connected subgraph of `target`, and for every source
/// edge there is at least one target edge between the two chains. On
/// failure returns false and, if `error` is non-null, a description.
bool ValidateEmbedding(const SimpleGraph& source, const SimpleGraph& target,
                       const Embedding& embedding, std::string* error);

}  // namespace qopt
