#include "anneal/pegasus.h"

#include "common/check.h"

namespace qopt {
namespace {

constexpr int kOffsetsVertical[12] = {2, 2, 2, 2, 6, 6, 6, 6, 10, 10, 10, 10};
constexpr int kOffsetsHorizontal[12] = {6, 6, 6, 6, 10, 10, 10, 10, 2, 2, 2, 2};

}  // namespace

int PegasusNodeId(int m, int u, int w, int k, int z) {
  QOPT_CHECK(u == 0 || u == 1);
  QOPT_CHECK(w >= 0 && w < m);
  QOPT_CHECK(k >= 0 && k < 12);
  QOPT_CHECK(z >= 0 && z < m - 1);
  return ((u * m + w) * 12 + k) * (m - 1) + z;
}

SimpleGraph MakePegasus(int m, bool fabric_only) {
  QOPT_CHECK(m >= 2);
  const int num_nodes = 2 * m * 12 * (m - 1);
  SimpleGraph graph(num_nodes);

  // External couplers: consecutive collinear segments.
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < m; ++w) {
      for (int k = 0; k < 12; ++k) {
        for (int z = 0; z + 1 < m - 1; ++z) {
          graph.AddEdge(PegasusNodeId(m, u, w, k, z),
                        PegasusNodeId(m, u, w, k, z + 1));
        }
      }
    }
  }
  // Odd couplers: parallel neighbours k = 2j, 2j+1 at the same position.
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < m; ++w) {
      for (int k = 0; k < 12; k += 2) {
        for (int z = 0; z < m - 1; ++z) {
          graph.AddEdge(PegasusNodeId(m, u, w, k, z),
                        PegasusNodeId(m, u, w, k + 1, z));
        }
      }
    }
  }
  // Internal couplers: crossing vertical/horizontal segment pairs.
  // For vertical qubit (0, w, k, z): x = 12w + k, rows
  // [12z + sV[k], 12z + sV[k] + 12). Each integer row y in that span is a
  // horizontal wire y = 12*wh + kh; the horizontal qubit on that wire whose
  // column span covers x has zh = (x - sH[kh]) / 12.
  int internal_count = 0;
  for (int w = 0; w < m; ++w) {
    for (int k = 0; k < 12; ++k) {
      const int x = 12 * w + k;
      for (int z = 0; z < m - 1; ++z) {
        const int y_begin = 12 * z + kOffsetsVertical[k];
        for (int y = y_begin; y < y_begin + 12; ++y) {
          const int wh = y / 12;
          const int kh = y % 12;
          if (wh < 0 || wh >= m) continue;
          const int x_rel = x - kOffsetsHorizontal[kh];
          if (x_rel < 0) continue;
          const int zh = x_rel / 12;
          if (zh >= m - 1) continue;
          graph.AddEdge(PegasusNodeId(m, 0, w, k, z),
                        PegasusNodeId(m, 1, wh, kh, zh));
          ++internal_count;
        }
      }
    }
  }
  QOPT_CHECK(internal_count > 0);

  if (!fabric_only) return graph;

  // Fabric trim: drop qubits with no internal coupler. Internal couplers
  // always join a vertical (u=0) and a horizontal (u=1) qubit, so a qubit
  // is in the fabric iff it has at least one neighbour of the other
  // orientation.
  auto orientation = [m](int id) { return id / (m * 12 * (m - 1)); };
  std::vector<bool> removed(static_cast<std::size_t>(num_nodes), true);
  for (int v = 0; v < num_nodes; ++v) {
    for (int nb : graph.Neighbors(v)) {
      if (orientation(nb) != orientation(v)) {
        removed[static_cast<std::size_t>(v)] = false;
        break;
      }
    }
  }
  return graph.InducedSubgraph(removed);
}

}  // namespace qopt
