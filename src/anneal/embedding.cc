#include "anneal/embedding.h"

#include <algorithm>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

int Embedding::NumPhysicalQubits() const {
  int total = 0;
  for (const auto& chain : chains) total += static_cast<int>(chain.size());
  return total;
}

int Embedding::MaxChainLength() const {
  int longest = 0;
  for (const auto& chain : chains) {
    longest = std::max(longest, static_cast<int>(chain.size()));
  }
  return longest;
}

double Embedding::MeanChainLength() const {
  if (chains.empty()) return 0.0;
  return static_cast<double>(NumPhysicalQubits()) /
         static_cast<double>(chains.size());
}

bool ValidateEmbedding(const SimpleGraph& source, const SimpleGraph& target,
                       const Embedding& embedding, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  if (static_cast<int>(embedding.chains.size()) != source.NumVertices()) {
    return fail("chain count does not match source vertex count");
  }
  std::vector<int> owner(static_cast<std::size_t>(target.NumVertices()), -1);
  for (int u = 0; u < source.NumVertices(); ++u) {
    const auto& chain = embedding.chains[static_cast<std::size_t>(u)];
    if (chain.empty()) return fail(StrFormat("chain %d is empty", u));
    for (int p : chain) {
      if (p < 0 || p >= target.NumVertices()) {
        return fail(StrFormat("chain %d uses invalid qubit %d", u, p));
      }
      if (owner[static_cast<std::size_t>(p)] == u) {
        return fail(StrFormat("chain %d repeats qubit %d", u, p));
      }
      if (owner[static_cast<std::size_t>(p)] != -1) {
        return fail(StrFormat("qubit %d used by chains %d and %d", p,
                              owner[static_cast<std::size_t>(p)], u));
      }
      owner[static_cast<std::size_t>(p)] = u;
    }
    if (!target.IsConnectedSubset(chain)) {
      return fail(StrFormat("chain %d is not connected", u));
    }
  }
  for (const auto& [u, v] : source.Edges()) {
    bool coupled = false;
    for (int p : embedding.chains[static_cast<std::size_t>(u)]) {
      for (int q : target.Neighbors(p)) {
        if (owner[static_cast<std::size_t>(q)] == v) {
          coupled = true;
          break;
        }
      }
      if (coupled) break;
    }
    if (!coupled) {
      return fail(
          StrFormat("source edge (%d,%d) has no physical coupler", u, v));
    }
  }
  return true;
}

}  // namespace qopt
