#include "anneal/minor_embedder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdlib>
#include <queue>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Working state for one embedding attempt. Implements the vertex-model
/// growth of Cai, Macready & Roy: every logical node owns a chain; nodes
/// are (re-)embedded one at a time along congestion-weighted shortest
/// paths; overlaps are allowed transiently and penalized exponentially.
class Embedder {
 public:
  Embedder(const SimpleGraph& source, const SimpleGraph& target,
           const EmbedOptions& options, std::uint64_t seed)
      : source_(source),
        target_(target),
        options_(options),
        rng_(seed),
        debug_(std::getenv("QQO_EMBED_DEBUG") != nullptr),
        chains_(static_cast<std::size_t>(source.NumVertices())),
        usage_(static_cast<std::size_t>(target.NumVertices()), 0),
        cost_(static_cast<std::size_t>(target.NumVertices()), 1.0) {}

  std::optional<Embedding> Run() {
    std::vector<int> order(static_cast<std::size_t>(source_.NumVertices()));
    for (int u = 0; u < source_.NumVertices(); ++u) {
      order[static_cast<std::size_t>(u)] = u;
    }
    int best_overfill = std::numeric_limits<int>::max();
    int stale_passes = 0;
    // QQO_LOOP(embed.pass)
    for (int pass = 0; pass <= options_.max_passes; ++pass) {
      QQO_COUNT("embed.passes", 1);
      // Budget check per improvement pass: an abandoned attempt looks like
      // an unsuccessful one; the caller re-checks the deadline to tell the
      // two apart.
      if (!options_.deadline.Check().ok()) return std::nullopt;
      if (pass == 0) {
        // First pass: breadth-first order from a random vertex, so every
        // node (except component seeds) is placed next to an already
        // embedded neighbour. Random orders scatter seeds across the
        // fabric and produce very long connecting chains.
        order = BfsOrder();
        for (int u : order) EmbedNode(u);
      } else if (pass % 8 == 0) {
        // Periodic full pass: re-embed everything so that conflict-free
        // but wasteful chains can also shrink and free up space.
        rng_.Shuffle(&order);
        for (int u : order) EmbedNode(u);
      } else {
        // Conflict-driven pass: nodes whose chains touch an overfilled
        // qubit, plus their source-graph neighbours (to make room), are
        // re-embedded. These passes are cheap, so many fit in the budget.
        std::vector<int> conflicted = ConflictedNodes();
        // Neighbour expansion below appends at most every vertex once.
        conflicted.reserve(static_cast<std::size_t>(source_.NumVertices()));
        std::vector<bool> in_set(
            static_cast<std::size_t>(source_.NumVertices()), false);
        for (int u : conflicted) in_set[static_cast<std::size_t>(u)] = true;
        const std::size_t direct = conflicted.size();
        for (std::size_t i = 0; i < direct; ++i) {
          for (int v : source_.Neighbors(conflicted[i])) {
            if (!in_set[static_cast<std::size_t>(v)]) {
              in_set[static_cast<std::size_t>(v)] = true;
              conflicted.push_back(v);
            }
          }
        }
        rng_.Shuffle(&conflicted);
        for (int u : conflicted) EmbedNode(u);
      }
      const int overfill = Overfill();
      if (debug_) {
        std::fprintf(stderr, "[embed] pass %d overfill %d conflicted %zu\n",
                     pass, overfill, ConflictedNodes().size());
      }
      if (overfill == 0) {
        if (options_.minimize_chains) TrimChains();
        Embedding embedding;
        embedding.chains = chains_;
        return embedding;
      }
      if (overfill < best_overfill) {
        best_overfill = overfill;
        stale_passes = 0;
      } else if (++stale_passes >= options_.patience) {
        break;
      } else if (stale_passes == options_.patience / 2) {
        Shake();
      }
    }
    return std::nullopt;
  }

  /// Ruin-and-recreate move for stuck configurations: tear out the chains
  /// of every conflicted node and its source neighbours at once, then
  /// re-embed the region breadth-first. Unlike one-at-a-time re-embedding
  /// (which keeps seeing the same congested chains), this frees the whole
  /// contested area before rebuilding it.
  void Shake() {
    std::vector<int> region = ConflictedNodes();
    std::vector<bool> in_region(
        static_cast<std::size_t>(source_.NumVertices()), false);
    for (int u : region) in_region[static_cast<std::size_t>(u)] = true;
    const std::size_t direct = region.size();
    for (std::size_t i = 0; i < direct; ++i) {
      for (int v : source_.Neighbors(region[i])) {
        if (!in_region[static_cast<std::size_t>(v)]) {
          in_region[static_cast<std::size_t>(v)] = true;
          region.push_back(v);
        }
      }
    }
    for (int u : region) RemoveChain(u);
    // Re-embed anchored-first so freshly placed nodes always attach to
    // existing chains instead of being scattered across the fabric.
    rng_.Shuffle(&region);
    std::vector<bool> pending(static_cast<std::size_t>(source_.NumVertices()),
                              false);
    for (int u : region) pending[static_cast<std::size_t>(u)] = true;
    for (std::size_t done = 0; done < region.size(); ++done) {
      int best = -1;
      int best_anchors = -1;
      for (int u : region) {
        if (!pending[static_cast<std::size_t>(u)]) continue;
        int anchors = 0;
        for (int v : source_.Neighbors(u)) {
          if (!chains_[static_cast<std::size_t>(v)].empty()) ++anchors;
        }
        if (anchors > best_anchors) {
          best_anchors = anchors;
          best = u;
        }
      }
      pending[static_cast<std::size_t>(best)] = false;
      EmbedNode(best);
    }
  }

 private:
  /// Source vertices in BFS order from a random start; unreached
  /// components continue with fresh random seeds.
  std::vector<int> BfsOrder() {
    const int n = source_.NumVertices();
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<int> shuffled(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) shuffled[static_cast<std::size_t>(u)] = u;
    rng_.Shuffle(&shuffled);
    for (int seed : shuffled) {
      if (seen[static_cast<std::size_t>(seed)]) continue;
      std::size_t frontier = order.size();
      seen[static_cast<std::size_t>(seed)] = true;
      order.push_back(seed);
      while (frontier < order.size()) {
        const int u = order[frontier++];
        for (int v : source_.Neighbors(u)) {
          if (!seen[static_cast<std::size_t>(v)]) {
            seen[static_cast<std::size_t>(v)] = true;
            order.push_back(v);
          }
        }
      }
    }
    return order;
  }

  double PenaltyFor(int usage) const {
    const int exponent = std::min(usage, options_.max_penalty_exponent);
    return std::pow(options_.penalty_base, exponent);
  }

  void SetUsage(int p, int delta) {
    int& u = usage_[static_cast<std::size_t>(p)];
    u += delta;
    QOPT_CHECK(u >= 0);
    cost_[static_cast<std::size_t>(p)] = PenaltyFor(u);
  }

  void RemoveChain(int u) {
    for (int p : chains_[static_cast<std::size_t>(u)]) SetUsage(p, -1);
    chains_[static_cast<std::size_t>(u)].clear();
  }

  void AssignChain(int u, std::vector<int> chain) {
    std::sort(chain.begin(), chain.end());
    chain.erase(std::unique(chain.begin(), chain.end()), chain.end());
    for (int p : chain) SetUsage(p, +1);
    chains_[static_cast<std::size_t>(u)] = std::move(chain);
  }

  int Overfill() const {
    int overfill = 0;
    for (int c : usage_) overfill += std::max(0, c - 1);
    return overfill;
  }

  /// Source nodes whose chains use at least one overfilled qubit.
  std::vector<int> ConflictedNodes() const {
    std::vector<int> nodes;
    for (int u = 0; u < source_.NumVertices(); ++u) {
      for (int p : chains_[static_cast<std::size_t>(u)]) {
        if (usage_[static_cast<std::size_t>(p)] > 1) {
          nodes.push_back(u);
          break;
        }
      }
    }
    return nodes;
  }

  /// Congestion-weighted multi-source Dijkstra over the target. Path cost
  /// = sum of cost_ over non-source vertices on the path. The search stops
  /// once `settle_cap` vertices are settled (> 0); unsettled vertices keep
  /// an infinite distance in `dist` so callers ignore them. Settled
  /// vertices always have settled parents, so path walks stay valid.
  void FullDijkstra(const std::vector<int>& sources, int settle_cap,
                    std::vector<double>* dist, std::vector<int>* parent) {
    const std::size_t n = static_cast<std::size_t>(target_.NumVertices());
    dist->assign(n, kInf);
    parent->assign(n, -1);
    settled_.assign(n, 0);
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (int s : sources) {
      (*dist)[static_cast<std::size_t>(s)] = 0.0;
      heap.emplace(0.0, s);
    }
    int settled_count = 0;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > (*dist)[static_cast<std::size_t>(v)]) continue;
      if (settled_[static_cast<std::size_t>(v)]) continue;
      settled_[static_cast<std::size_t>(v)] = 1;
      if (settle_cap > 0 && ++settled_count >= settle_cap) break;
      for (int w : target_.Neighbors(v)) {
        const double candidate = d + cost_[static_cast<std::size_t>(w)];
        if (candidate < (*dist)[static_cast<std::size_t>(w)]) {
          (*dist)[static_cast<std::size_t>(w)] = candidate;
          (*parent)[static_cast<std::size_t>(w)] = v;
          heap.emplace(candidate, w);
        }
      }
    }
    // Tentative (unsettled) entries would have unsettled parents; wipe
    // them so only the settled region is visible.
    for (std::size_t v = 0; v < n; ++v) {
      if (!settled_[v] && (*dist)[v] != kInf) {
        (*dist)[v] = kInf;
        (*parent)[v] = -1;
      }
    }
  }

  /// Early-exit Dijkstra from `sources` that stops at the first settled
  /// vertex owned by `goal_owner` (per `goal_mask`). Appends the interior
  /// of the found path (excluding both endpoint chains) to `out` and
  /// returns true; returns false if unreachable.
  bool ConnectToChain(const std::vector<int>& sources,
                      const std::vector<bool>& goal_mask,
                      std::vector<int>* out) {
    const std::size_t n = static_cast<std::size_t>(target_.NumVertices());
    scratch_dist_.assign(n, kInf);
    scratch_parent_.assign(n, -1);
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (int s : sources) {
      // A source that is already in the goal chain means the chains touch.
      if (goal_mask[static_cast<std::size_t>(s)]) return true;
      scratch_dist_[static_cast<std::size_t>(s)] = 0.0;
      heap.emplace(0.0, s);
    }
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > scratch_dist_[static_cast<std::size_t>(v)]) continue;
      if (goal_mask[static_cast<std::size_t>(v)]) {
        // Reconstruct: v is in the goal chain; its ancestors up to (but
        // excluding) the source belong to the new chain.
        int cur = scratch_parent_[static_cast<std::size_t>(v)];
        while (cur != -1 && scratch_parent_[static_cast<std::size_t>(cur)] != -1) {
          out->push_back(cur);
          cur = scratch_parent_[static_cast<std::size_t>(cur)];
        }
        return true;
      }
      for (int w : target_.Neighbors(v)) {
        const double candidate = d + cost_[static_cast<std::size_t>(w)];
        if (candidate < scratch_dist_[static_cast<std::size_t>(w)]) {
          scratch_dist_[static_cast<std::size_t>(w)] = candidate;
          scratch_parent_[static_cast<std::size_t>(w)] = v;
          heap.emplace(candidate, w);
        }
      }
    }
    return false;
  }

  void EmbedNode(int u) {
    RemoveChain(u);

    std::vector<int> anchored;
    for (int w : source_.Neighbors(u)) {
      if (!chains_[static_cast<std::size_t>(w)].empty()) anchored.push_back(w);
    }

    if (anchored.empty()) {
      // Free placement: cheapest physical qubit, random among ties.
      double best = kInf;
      std::vector<int> ties;
      for (int p = 0; p < target_.NumVertices(); ++p) {
        const double c = cost_[static_cast<std::size_t>(p)];
        if (c < best - 1e-12) {
          best = c;
          ties.assign(1, p);
        } else if (c < best + 1e-12) {
          ties.push_back(p);
        }
      }
      AssignChain(u, {ties[rng_.NextUint64(ties.size())]});
      return;
    }

    rng_.Shuffle(&anchored);
    const int num_roots = std::min<int>(options_.root_sample,
                                        static_cast<int>(anchored.size()));

    // Root selection: full Dijkstra from the first num_roots anchor
    // chains; the root g minimizes the total congestion-weighted cost of
    // connecting to all of them (g's own cost counted once).
    std::vector<std::vector<double>> dists(
        static_cast<std::size_t>(num_roots));
    std::vector<std::vector<int>> parents(static_cast<std::size_t>(num_roots));
    for (int a = 0; a < num_roots; ++a) {
      FullDijkstra(chains_[static_cast<std::size_t>(
                       anchored[static_cast<std::size_t>(a)])],
                   options_.settle_cap,
                   &dists[static_cast<std::size_t>(a)],
                   &parents[static_cast<std::size_t>(a)]);
    }
    double best_total = kInf;
    std::vector<int> root_ties;
    for (int g = 0; g < target_.NumVertices(); ++g) {
      double total =
          -static_cast<double>(num_roots - 1) * cost_[static_cast<std::size_t>(g)];
      bool reachable = true;
      for (int a = 0; a < num_roots; ++a) {
        const double d = dists[static_cast<std::size_t>(a)][static_cast<std::size_t>(g)];
        if (d == kInf) {
          reachable = false;
          break;
        }
        total += d == 0.0 ? cost_[static_cast<std::size_t>(g)] : d;
      }
      if (!reachable) continue;
      if (total < best_total - 1e-12) {
        best_total = total;
        root_ties.assign(1, g);
      } else if (total < best_total + 1e-12) {
        root_ties.push_back(g);
      }
    }
    if (root_ties.empty()) {
      // The capped searches did not overlap; redo them unbounded (rare).
      for (int a = 0; a < num_roots; ++a) {
        FullDijkstra(chains_[static_cast<std::size_t>(
                         anchored[static_cast<std::size_t>(a)])],
                     /*settle_cap=*/0,
                     &dists[static_cast<std::size_t>(a)],
                     &parents[static_cast<std::size_t>(a)]);
      }
      for (int g = 0; g < target_.NumVertices(); ++g) {
        double total = -static_cast<double>(num_roots - 1) *
                       cost_[static_cast<std::size_t>(g)];
        bool reachable = true;
        for (int a = 0; a < num_roots; ++a) {
          const double d =
              dists[static_cast<std::size_t>(a)][static_cast<std::size_t>(g)];
          if (d == kInf) {
            reachable = false;
            break;
          }
          total += d == 0.0 ? cost_[static_cast<std::size_t>(g)] : d;
        }
        if (!reachable) continue;
        if (total < best_total - 1e-12) {
          best_total = total;
          root_ties.assign(1, g);
        } else if (total < best_total + 1e-12) {
          root_ties.push_back(g);
        }
      }
    }
    QOPT_CHECK_MSG(!root_ties.empty(), "target graph is disconnected");
    const int root = root_ties[rng_.NextUint64(root_ties.size())];

    std::vector<int> chain = {root};
    for (int a = 0; a < num_roots; ++a) {
      int cur = root;
      // Walk toward the anchor chain; stop before entering it (sources
      // have parent -1 and distance 0).
      while (true) {
        const int p = parents[static_cast<std::size_t>(a)][static_cast<std::size_t>(cur)];
        if (p == -1) break;  // cur is in the anchor chain or is the root
        if (parents[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)] == -1 &&
            dists[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)] == 0.0) {
          break;  // p is an anchor-chain vertex
        }
        chain.push_back(p);
        cur = p;
      }
    }

    // Connect the remaining anchors with early-exit searches from the
    // chain grown so far.
    std::vector<bool> goal_mask(static_cast<std::size_t>(target_.NumVertices()),
                                false);
    for (std::size_t a = static_cast<std::size_t>(num_roots);
         a < anchored.size(); ++a) {
      const auto& goal_chain = chains_[static_cast<std::size_t>(anchored[a])];
      for (int p : goal_chain) goal_mask[static_cast<std::size_t>(p)] = true;
      const bool ok = ConnectToChain(chain, goal_mask, &chain);
      QOPT_CHECK_MSG(ok, "target graph is disconnected");
      for (int p : goal_chain) goal_mask[static_cast<std::size_t>(p)] = false;
    }

    AssignChain(u, std::move(chain));
  }

  /// Post-pass on a valid (overlap-free) embedding: drop chain vertices
  /// that are needed neither for chain connectivity nor for covering an
  /// incident source edge.
  void TrimChains() {
    // owner[p] = logical node whose chain contains p (-1 if unused).
    std::vector<int> owner(static_cast<std::size_t>(target_.NumVertices()), -1);
    for (int u = 0; u < source_.NumVertices(); ++u) {
      for (int p : chains_[static_cast<std::size_t>(u)]) {
        owner[static_cast<std::size_t>(p)] = u;
      }
    }
    auto edge_covered = [&](int u, int w,
                            const std::vector<int>& chain) {
      for (int p : chain) {
        for (int q : target_.Neighbors(p)) {
          if (owner[static_cast<std::size_t>(q)] == w) return true;
        }
      }
      (void)u;
      return false;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (int u = 0; u < source_.NumVertices(); ++u) {
        auto& chain = chains_[static_cast<std::size_t>(u)];
        if (chain.size() <= 1) continue;
        for (std::size_t idx = 0; idx < chain.size();) {
          const int p = chain[idx];
          std::vector<int> tentative = chain;
          tentative.erase(tentative.begin() + static_cast<std::ptrdiff_t>(idx));
          bool removable = target_.IsConnectedSubset(tentative);
          if (removable) {
            owner[static_cast<std::size_t>(p)] = -1;
            for (int w : source_.Neighbors(u)) {
              if (!edge_covered(u, w, tentative)) {
                removable = false;
                break;
              }
            }
            if (!removable) owner[static_cast<std::size_t>(p)] = u;
          }
          if (removable) {
            SetUsage(p, -1);
            chain = std::move(tentative);
            changed = true;
          } else {
            ++idx;
          }
          if (chain.size() <= 1) break;
        }
      }
    }
  }

  const SimpleGraph& source_;
  const SimpleGraph& target_;
  const EmbedOptions& options_;
  Rng rng_;
  bool debug_ = false;
  std::vector<std::vector<int>> chains_;
  std::vector<int> usage_;
  std::vector<double> cost_;
  std::vector<double> scratch_dist_;
  std::vector<int> scratch_parent_;
  std::vector<char> settled_;
};

}  // namespace

StatusOr<Embedding> TryFindMinorEmbedding(const SimpleGraph& source,
                                          const SimpleGraph& target,
                                          const EmbedOptions& options) {
  QQO_TRACE_SPAN("embed.solve");
  QOPT_CHECK(options.tries >= 1);
  QOPT_CHECK(options.penalty_base > 1.0);
  if (source.NumVertices() == 0) return Embedding{};
  if (target.NumVertices() == 0) {
    return UnavailableError("target graph is empty");
  }
  if (source.NumVertices() > target.NumVertices()) {
    return UnavailableError(
        "source graph has more vertices than the target");
  }
  // QQO_LOOP(embed.attempt)
  for (int attempt = 0; attempt < options.tries; ++attempt) {
    QQO_TRACE_SPAN("embed.attempt");
    QQO_COUNT("embed.attempts", 1);
    QOPT_RETURN_IF_ERROR(options.deadline.Check());
    if (Status fault = CheckFaultPoint("embedder.attempt"); !fault.ok()) {
      // A retryable injected fault only consumes this attempt; the next
      // re-seeded attempt still runs — the recovery path the fault site
      // exists to exercise.
      if (IsRetryableStatus(fault.code())) continue;
      return fault;
    }
    Embedder embedder(source, target, options,
                      options.seed + 0x9E37u * static_cast<std::uint64_t>(attempt));
    std::optional<Embedding> embedding = embedder.Run();
    // An attempt abandoned by the deadline is indistinguishable from an
    // unsuccessful one here; surface the budget as the real cause.
    QOPT_RETURN_IF_ERROR(options.deadline.Check());
    if (embedding.has_value()) {
      // NOLINTNEXTLINE(qqo-hot-loop-alloc): success path, runs at most once
      std::string error;
      QOPT_CHECK_MSG(ValidateEmbedding(source, target, *embedding, &error),
                     error.c_str());
      return *std::move(embedding);
    }
  }
  return UnavailableError(StrFormat(
      "no minor embedding found within %d tries", options.tries));
}

std::optional<Embedding> FindMinorEmbedding(const SimpleGraph& source,
                                            const SimpleGraph& target,
                                            const EmbedOptions& options) {
  StatusOr<Embedding> embedding = TryFindMinorEmbedding(source, target, options);
  if (!embedding.ok()) return std::nullopt;
  return *std::move(embedding);
}

std::vector<std::optional<Embedding>> FindMinorEmbeddingManySeeds(
    const SimpleGraph& source, const SimpleGraph& target,
    const std::vector<std::uint64_t>& seeds, const EmbedOptions& base) {
  std::vector<std::optional<Embedding>> results(seeds.size());
  ThreadPool::Default()
      .ParallelFor(seeds.size(), base.deadline,
                   [&](std::size_t i) {
                     EmbedOptions options = base;
                     options.seed = seeds[i];
                     results[i] = FindMinorEmbedding(source, target, options);
                   })
      .IgnoreError();  // skipped seeds simply stay std::nullopt
  return results;
}

}  // namespace qopt
