#include "anneal/chimera.h"

#include "common/check.h"

namespace qopt {

int ChimeraNodeId(int rows, int cols, int shore, int row, int col, int u,
                  int k) {
  QOPT_CHECK(row >= 0 && row < rows);
  QOPT_CHECK(col >= 0 && col < cols);
  QOPT_CHECK(u == 0 || u == 1);
  QOPT_CHECK(k >= 0 && k < shore);
  return ((row * cols + col) * 2 + u) * shore + k;
}

SimpleGraph MakeChimera(int rows, int cols, int shore) {
  QOPT_CHECK(rows >= 1 && cols >= 1 && shore >= 1);
  SimpleGraph graph(rows * cols * 2 * shore);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Internal couplers: complete bipartite between the two shores.
      for (int a = 0; a < shore; ++a) {
        for (int b = 0; b < shore; ++b) {
          graph.AddEdge(ChimeraNodeId(rows, cols, shore, r, c, 0, a),
                        ChimeraNodeId(rows, cols, shore, r, c, 1, b));
        }
      }
      // External couplers: vertical shore (u=0) to the cell below,
      // horizontal shore (u=1) to the cell on the right.
      for (int k = 0; k < shore; ++k) {
        if (r + 1 < rows) {
          graph.AddEdge(ChimeraNodeId(rows, cols, shore, r, c, 0, k),
                        ChimeraNodeId(rows, cols, shore, r + 1, c, 0, k));
        }
        if (c + 1 < cols) {
          graph.AddEdge(ChimeraNodeId(rows, cols, shore, r, c, 1, k),
                        ChimeraNodeId(rows, cols, shore, r, c + 1, 1, k));
        }
      }
    }
  }
  return graph;
}

}  // namespace qopt
