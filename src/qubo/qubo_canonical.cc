#include "qubo/qubo_canonical.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"

namespace qopt {
namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix. Every hash in
/// this file funnels through it so that structurally different inputs
/// land far apart even when their raw encodings are close.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t Mix2(std::uint64_t a, std::uint64_t b) {
  return Mix(a ^ Mix(b));
}

/// Exact bit-pattern hash of a coefficient; -0.0 is normalized so the two
/// IEEE zeros cannot split otherwise identical problems.
std::uint64_t HashDouble(double value) {
  const double normalized = value == 0.0 ? 0.0 : value;
  std::uint64_t pattern = 0;
  static_assert(sizeof(pattern) == sizeof(normalized));
  std::memcpy(&pattern, &normalized, sizeof(pattern));
  return Mix(pattern);
}

// Domain-separation tags so a linear coefficient can never collide with a
// quadratic one that happens to share a bit pattern.
constexpr std::uint64_t kLinearTag = 0x51B0'AC5E'11EA'0001ULL;
constexpr std::uint64_t kEdgeTag = 0x51B0'AC5E'11EA'0002ULL;
constexpr std::uint64_t kOffsetTag = 0x51B0'AC5E'11EA'0003ULL;

// Domain-separation tag for the per-component invariants mixed into the
// initial colors (see ComponentInvariants).
constexpr std::uint64_t kComponentTag = 0x51B0'AC5E'11EA'0004ULL;

/// Number of distinct values in `colors` (the refinement progress meter).
std::size_t CountDistinct(std::vector<std::uint64_t> colors) {
  std::sort(colors.begin(), colors.end());
  return static_cast<std::size_t>(
      std::unique(colors.begin(), colors.end()) - colors.begin());
}

/// Per-vertex hash of the (vertex count, edge count) of the connected
/// component the vertex lies in. Color refinement alone cannot tell some
/// disconnected graphs apart — every vertex of a 6-cycle and of two
/// disjoint triangles sees the same degree-2 neighborhood at every
/// refinement depth, so uniform-coefficient C6 and 2xC3 QUBOs would
/// collide. Component size/edge-count are permutation-invariant and split
/// exactly that family, and decomposition workloads (clamped blocks,
/// disconnected remainders) hit it in practice.
std::vector<std::uint64_t> ComponentInvariants(const CsrAdjacency& adj,
                                               std::size_t n) {
  std::vector<int> component(n, -1);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> members;
  std::vector<std::uint64_t> invariant(n, 0);
  for (std::size_t root = 0; root < n; ++root) {
    if (component[root] >= 0) continue;
    const int id = static_cast<int>(root);
    stack.assign(1, root);
    members.assign(1, root);
    component[root] = id;
    std::uint64_t degree_sum = 0;  // 2 * edge count once the walk is done
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      degree_sum += adj.offsets[v + 1] - adj.offsets[v];
      for (std::size_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
        const std::size_t w = static_cast<std::size_t>(adj.neighbors[k]);
        if (component[w] >= 0) continue;
        component[w] = id;
        stack.push_back(w);
        members.push_back(w);
      }
    }
    const std::uint64_t mark =
        Mix2(kComponentTag, Mix2(members.size(), degree_sum / 2));
    for (const std::size_t v : members) invariant[v] = mark;
  }
  return invariant;
}

}  // namespace

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return Mix2(a, b);
}

QuboSignature ComputeQuboSignature(const QuboModel& qubo) {
  const std::size_t n = static_cast<std::size_t>(qubo.NumVariables());
  QuboSignature signature;
  signature.canonical_rank.resize(n, 0);

  const CsrAdjacency adj = qubo.BuildCsrAdjacency();

  // Initial colors: linear coefficient plus the connected-component
  // invariant (WL refinement alone cannot separate some disconnected
  // regular graphs; see ComponentInvariants).
  const std::vector<std::uint64_t> component_marks = ComponentInvariants(adj, n);
  std::vector<std::uint64_t> colors(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    colors[i] =
        Mix2(Mix2(kLinearTag, HashDouble(qubo.Linear(static_cast<int>(i)))),
             component_marks[i]);
  }

  // Color refinement. Each round folds an order-independent digest of the
  // (neighbor color, edge coefficient) multiset into every variable's
  // color; the partition can only get finer, so once the number of
  // distinct colors stops growing it is stable and further rounds are
  // no-ops modulo mixing.
  std::vector<std::uint64_t> next(n, 0);
  std::size_t distinct = CountDistinct(colors);
  const std::size_t max_rounds = std::min<std::size_t>(n, 64);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t sum = 0;
      std::uint64_t xored = 0;
      const std::size_t begin = adj.offsets[i];
      const std::size_t end = adj.offsets[i + 1];
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint64_t m =
            Mix2(colors[static_cast<std::size_t>(adj.neighbors[k])],
                 HashDouble(adj.coeffs[k]));
        sum += m;
        xored ^= m;
      }
      next[i] = Mix(colors[i] ^ Mix(sum) ^ Mix2(xored, end - begin));
    }
    colors.swap(next);
    const std::size_t now_distinct = CountDistinct(colors);
    if (now_distinct == distinct) break;  // partition stable
    distinct = now_distinct;
  }

  // Canonical hash: offset, variable count, and order-independent
  // aggregates of the final colors and of the edge signatures (the edges
  // re-enter here so that even one refinement round cannot lose them).
  std::uint64_t color_sum = 0;
  std::uint64_t color_xor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t m = Mix(colors[i]);
    color_sum += m;
    color_xor ^= m;
  }
  std::uint64_t edge_sum = 0;
  std::uint64_t edge_xor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = adj.offsets[i]; k < adj.offsets[i + 1]; ++k) {
      const std::size_t j = static_cast<std::size_t>(adj.neighbors[k]);
      if (j < i) continue;  // count each undirected edge once
      // Symmetric combination of the two endpoint colors: sum and product
      // are both permutation-invariant in (i, j).
      const std::uint64_t endpoint =
          Mix((colors[i] + colors[j]) ^ Mix(colors[i] * colors[j]));
      const std::uint64_t m =
          Mix2(kEdgeTag, endpoint ^ HashDouble(adj.coeffs[k]));
      edge_sum += m;
      edge_xor ^= m;
    }
  }
  signature.canonical_hash =
      Mix(Mix2(kOffsetTag, HashDouble(qubo.Offset())) ^ Mix(n) ^
          Mix(color_sum) ^ Mix2(color_xor, edge_sum) ^ Mix(edge_xor));

  // Canonical order: stable sort by final color, ties by original index.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::uint64_t ca = colors[static_cast<std::size_t>(a)];
    const std::uint64_t cb = colors[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;
    return a < b;
  });
  for (std::size_t rank = 0; rank < n; ++rank) {
    signature.canonical_rank[static_cast<std::size_t>(order[rank])] =
        static_cast<int>(rank);
  }

  // Exact (labeled) hash: a sequential digest over the CSR layout, which
  // is itself deterministic for a given labeled QUBO.
  std::uint64_t exact = Mix2(kOffsetTag, HashDouble(qubo.Offset())) ^ Mix(n);
  for (std::size_t i = 0; i < n; ++i) {
    exact = Mix(exact ^
                Mix2(kLinearTag, HashDouble(qubo.Linear(static_cast<int>(i)))));
    for (std::size_t k = adj.offsets[i]; k < adj.offsets[i + 1]; ++k) {
      const std::size_t j = static_cast<std::size_t>(adj.neighbors[k]);
      if (j < i) continue;
      exact = Mix(exact ^ Mix2(Mix(j), HashDouble(adj.coeffs[k])));
    }
  }
  signature.exact_hash = exact;
  return signature;
}

std::vector<std::uint8_t> MapBitsToCanonical(
    const QuboSignature& signature, const std::vector<std::uint8_t>& bits) {
  QOPT_CHECK(bits.size() == signature.canonical_rank.size());
  std::vector<std::uint8_t> canonical(bits.size(), 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    canonical[static_cast<std::size_t>(signature.canonical_rank[i])] = bits[i];
  }
  return canonical;
}

std::vector<std::uint8_t> MapBitsFromCanonical(
    const QuboSignature& signature,
    const std::vector<std::uint8_t>& canonical_bits) {
  QOPT_CHECK(canonical_bits.size() == signature.canonical_rank.size());
  std::vector<std::uint8_t> bits(canonical_bits.size(), 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] =
        canonical_bits[static_cast<std::size_t>(signature.canonical_rank[i])];
  }
  return bits;
}

}  // namespace qopt
