#include "qubo/brute_force_solver.h"

#include <bit>

#include "common/check.h"

namespace qopt {

BruteForceResult SolveQuboBruteForce(const QuboModel& qubo,
                                     int max_variables) {
  const int n = qubo.NumVariables();
  QOPT_CHECK_MSG(n <= max_variables,
                 "problem too large for exhaustive enumeration");
  BruteForceResult result;
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n), 0);
  result.best_bits = bits;
  result.best_energy = qubo.Energy(bits);
  result.num_optima = 1;
  if (n == 0) return result;

  // Gray-code walk: between consecutive assignments exactly one bit flips,
  // so the energy can be updated incrementally in O(degree).
  const auto adjacency = qubo.BuildAdjacency();
  double energy = result.best_energy;
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t k = 1; k < total; ++k) {
    const int flip = std::countr_zero(k);
    energy += qubo.FlipDelta(bits, flip, adjacency);
    bits[static_cast<std::size_t>(flip)] ^= 1;
    if (energy < result.best_energy - 1e-12) {
      result.best_energy = energy;
      result.best_bits = bits;
      result.num_optima = 1;
    } else if (energy <= result.best_energy + 1e-12) {
      ++result.num_optima;
    }
  }
  return result;
}

}  // namespace qopt
