#include "qubo/brute_force_solver.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

StatusOr<BruteForceResult> TrySolveQuboBruteForce(const QuboModel& qubo,
                                                  int max_variables) {
  const int n = qubo.NumVariables();
  const int cap = std::min(max_variables, kBruteForceHardCap);
  if (n > cap) {
    return InvalidArgumentError(StrFormat(
        "brute force would enumerate 2^%d assignments; the limit is %d "
        "variables",
        n, cap));
  }
  BruteForceResult result;
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n), 0);
  result.best_bits = bits;
  result.best_energy = qubo.Energy(bits);
  result.num_optima = 1;
  if (n == 0) return result;

  // Gray-code walk: between consecutive assignments exactly one bit flips,
  // so the energy can be updated incrementally in O(degree).
  const auto adjacency = qubo.BuildAdjacency();
  double energy = result.best_energy;
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t k = 1; k < total; ++k) {
    const int flip = std::countr_zero(k);
    energy += qubo.FlipDelta(bits, flip, adjacency);
    bits[static_cast<std::size_t>(flip)] ^= 1;
    if (energy < result.best_energy - 1e-12) {
      result.best_energy = energy;
      result.best_bits = bits;
      result.num_optima = 1;
    } else if (energy <= result.best_energy + 1e-12) {
      ++result.num_optima;
    }
  }
  return result;
}

BruteForceResult SolveQuboBruteForce(const QuboModel& qubo,
                                     int max_variables) {
  StatusOr<BruteForceResult> result = TrySolveQuboBruteForce(qubo,
                                                             max_variables);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return *std::move(result);
}

}  // namespace qopt
