#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace qopt {

/// Ising Hamiltonian over spins s_i in {-1, +1} (Eq. 13 of the paper,
/// written with positive sign convention):
///
///   H(s) = offset + sum_i h_i s_i + sum_{i<j} J_{ij} s_i s_j.
///
/// QAOA and VQE act on this form; `conversions.h` maps it to/from
/// QuboModel, which the paper treats as interchangeable (Sec. 3.3).
class IsingModel {
 public:
  IsingModel() = default;
  explicit IsingModel(int num_spins);

  int NumSpins() const { return static_cast<int>(h_.size()); }
  int NumCouplings() const { return static_cast<int>(j_.size()); }

  void AddOffset(double value) { offset_ += value; }
  double Offset() const { return offset_; }

  void AddField(int i, double value);
  double Field(int i) const;

  void AddCoupling(int i, int j, double value);
  double Coupling(int i, int j) const;

  /// Energy of a spin assignment; spins[i] must be -1 or +1.
  double Energy(const std::vector<int>& spins) const;

  /// All couplings as ((i, j), J_ij) with i < j, sorted.
  std::vector<std::pair<std::pair<int, int>, double>> Couplings() const;

 private:
  static std::uint64_t Key(int i, int j) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
           static_cast<std::uint32_t>(j);
  }

  double offset_ = 0.0;
  std::vector<double> h_;
  std::unordered_map<std::uint64_t, double> j_;  // key: i < j packed.
};

}  // namespace qopt
