#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/simple_graph.h"

namespace qopt {

/// Flattened compressed-sparse-row view of a QUBO's quadratic terms: the
/// neighbors of variable i are neighbors[offsets[i] .. offsets[i+1]), with
/// matching coefficients, sorted by neighbor index. The sort makes the
/// layout (and therefore every FP summation order derived from it)
/// deterministic across platforms and standard libraries — unlike
/// BuildAdjacency(), whose row order inherits the unordered_map iteration
/// order. This is the local-search solvers' hot-loop format: one
/// contiguous coefficient stream per row instead of a vector-of-vectors of
/// pairs.
struct CsrAdjacency {
  std::vector<std::size_t> offsets;  ///< size NumVariables() + 1
  std::vector<int> neighbors;        ///< size 2 * NumQuadraticTerms()
  std::vector<double> coeffs;        ///< parallel to neighbors

  int Degree(int i) const {
    return static_cast<int>(offsets[static_cast<std::size_t>(i) + 1] -
                            offsets[static_cast<std::size_t>(i)]);
  }
};

/// Quadratic unconstrained binary optimization problem
///
///   E(x) = offset + sum_i linear_i * x_i
///               + sum_{i<j} quadratic_{ij} * x_i * x_j,     x_i in {0, 1}.
///
/// Stored sparsely in upper-triangular form. This is the common currency
/// of the library: the MQO encoder (Ch. 5) and the join-ordering BILP
/// encoder (Ch. 6) both produce a QuboModel, and every solver backend
/// (brute force, simulated annealing, QAOA, VQE, annealer emulation)
/// consumes one.
class QuboModel {
 public:
  QuboModel() = default;

  /// Creates a QUBO over `num_variables` binary variables, all zero terms.
  explicit QuboModel(int num_variables);

  int NumVariables() const { return static_cast<int>(linear_.size()); }

  /// Number of non-zero quadratic terms (the "QUBO matrix density" metric
  /// the paper reports in Table 4).
  int NumQuadraticTerms() const { return static_cast<int>(quadratic_.size()); }

  /// Adds `value` to the constant offset.
  void AddOffset(double value) { offset_ += value; }
  double Offset() const { return offset_; }

  /// Adds `value` to the linear coefficient of x_i.
  void AddLinear(int i, double value);
  double Linear(int i) const;

  /// Adds `value` to the quadratic coefficient of x_i * x_j (i != j; the
  /// pair is normalized to i < j). A coefficient that becomes exactly zero
  /// still counts as a stored term until Compress() is called.
  void AddQuadratic(int i, int j, double value);
  double Quadratic(int i, int j) const;

  /// Removes stored quadratic terms whose magnitude is <= `epsilon`.
  void Compress(double epsilon = 0.0);

  /// Energy of an assignment (bits.size() == NumVariables()).
  double Energy(const std::vector<std::uint8_t>& bits) const;

  /// All quadratic entries as ((i, j), coefficient) with i < j.
  std::vector<std::pair<std::pair<int, int>, double>> QuadraticTerms() const;

  /// Graph with one vertex per variable and one edge per non-zero
  /// quadratic term. This is the graph that must be minor-embedded into an
  /// annealer topology and that determines QAOA interaction layers.
  SimpleGraph InteractionGraph() const;

  /// Per-variable adjacency: for each i the list of (j, coefficient)
  /// partners. Useful for incremental energy updates in local-search
  /// solvers. Rebuilt on each call.
  std::vector<std::vector<std::pair<int, double>>> BuildAdjacency() const;

  /// Index-sorted flattened adjacency (see CsrAdjacency). Rebuilt on each
  /// call; O(terms log terms).
  CsrAdjacency BuildCsrAdjacency() const;

  /// Fraction of the n*(n-1)/2 possible variable pairs that carry a stored
  /// quadratic term (0.0 for n < 2). The annealer uses this to pick the
  /// dense-row sweep layout for dense problems.
  double Density() const;

  /// Energy delta from flipping bit `i` of `bits`, in O(degree(i)) given a
  /// prebuilt adjacency.
  double FlipDelta(
      const std::vector<std::uint8_t>& bits, int i,
      const std::vector<std::vector<std::pair<int, double>>>& adjacency) const;

 private:
  static std::uint64_t Key(int i, int j) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
           static_cast<std::uint32_t>(j);
  }

  double offset_ = 0.0;
  std::vector<double> linear_;
  std::unordered_map<std::uint64_t, double> quadratic_;  // key: i < j packed.
};

}  // namespace qopt
