#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/simple_graph.h"

namespace qopt {

/// Quadratic unconstrained binary optimization problem
///
///   E(x) = offset + sum_i linear_i * x_i
///               + sum_{i<j} quadratic_{ij} * x_i * x_j,     x_i in {0, 1}.
///
/// Stored sparsely in upper-triangular form. This is the common currency
/// of the library: the MQO encoder (Ch. 5) and the join-ordering BILP
/// encoder (Ch. 6) both produce a QuboModel, and every solver backend
/// (brute force, simulated annealing, QAOA, VQE, annealer emulation)
/// consumes one.
class QuboModel {
 public:
  QuboModel() = default;

  /// Creates a QUBO over `num_variables` binary variables, all zero terms.
  explicit QuboModel(int num_variables);

  int NumVariables() const { return static_cast<int>(linear_.size()); }

  /// Number of non-zero quadratic terms (the "QUBO matrix density" metric
  /// the paper reports in Table 4).
  int NumQuadraticTerms() const { return static_cast<int>(quadratic_.size()); }

  /// Adds `value` to the constant offset.
  void AddOffset(double value) { offset_ += value; }
  double Offset() const { return offset_; }

  /// Adds `value` to the linear coefficient of x_i.
  void AddLinear(int i, double value);
  double Linear(int i) const;

  /// Adds `value` to the quadratic coefficient of x_i * x_j (i != j; the
  /// pair is normalized to i < j). A coefficient that becomes exactly zero
  /// still counts as a stored term until Compress() is called.
  void AddQuadratic(int i, int j, double value);
  double Quadratic(int i, int j) const;

  /// Removes stored quadratic terms whose magnitude is <= `epsilon`.
  void Compress(double epsilon = 0.0);

  /// Energy of an assignment (bits.size() == NumVariables()).
  double Energy(const std::vector<std::uint8_t>& bits) const;

  /// All quadratic entries as ((i, j), coefficient) with i < j.
  std::vector<std::pair<std::pair<int, int>, double>> QuadraticTerms() const;

  /// Graph with one vertex per variable and one edge per non-zero
  /// quadratic term. This is the graph that must be minor-embedded into an
  /// annealer topology and that determines QAOA interaction layers.
  SimpleGraph InteractionGraph() const;

  /// Per-variable adjacency: for each i the list of (j, coefficient)
  /// partners. Useful for incremental energy updates in local-search
  /// solvers. Rebuilt on each call.
  std::vector<std::vector<std::pair<int, double>>> BuildAdjacency() const;

  /// Energy delta from flipping bit `i` of `bits`, in O(degree(i)) given a
  /// prebuilt adjacency.
  double FlipDelta(
      const std::vector<std::uint8_t>& bits, int i,
      const std::vector<std::vector<std::pair<int, double>>>& adjacency) const;

 private:
  static std::uint64_t Key(int i, int j) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
           static_cast<std::uint32_t>(j);
  }

  double offset_ = 0.0;
  std::vector<double> linear_;
  std::unordered_map<std::uint64_t, double> quadratic_;  // key: i < j packed.
};

}  // namespace qopt
