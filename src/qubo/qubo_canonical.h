#pragma once

#include <cstdint>
#include <vector>

#include "qubo/qubo_model.h"

namespace qopt {

/// Canonical-form fingerprint of a QUBO, used by the serving layer's
/// solution cache (DESIGN.md "Serving") to recognize repeated and
/// *isomorphic* problems: two QUBOs that differ only by a permutation of
/// their variables hash to the same `canonical_hash`.
///
/// The canonical hash is computed by Weisfeiler-Leman-style color
/// refinement on the weighted interaction graph: every variable starts
/// with a color derived from its linear coefficient, then repeatedly
/// absorbs an order-independent aggregate (sum + xor of mixed values) of
/// its neighbors' colors combined with the connecting quadratic
/// coefficients. Refinement stops when the color partition is stable.
/// Coefficients enter via their exact IEEE-754 bit patterns (with -0.0
/// normalized to 0.0), so the hash is invariant under relabeling but
/// deliberately sensitive to any numeric perturbation.
///
/// Like every hash, equal `canonical_hash` values do not *prove*
/// isomorphism — and the tie-broken `canonical_rank` below is not a full
/// graph canonicalization (that would be GI-hard). Consumers that map
/// solutions between isomorphic instances must verify the mapped
/// assignment (the solution cache recomputes its energy and rejects the
/// entry on mismatch).
struct QuboSignature {
  /// Relabeling-invariant fingerprint.
  std::uint64_t canonical_hash = 0;
  /// Order-sensitive fingerprint of the labeled form: equal only for
  /// QUBOs with identical variable numbering and coefficients. Used to
  /// tell an exact repeat from a merely isomorphic one.
  std::uint64_t exact_hash = 0;
  /// canonical_rank[i] is variable i's position in the canonical order
  /// (stable sort by final refinement color, ties by original index).
  /// For isomorphic instances whose refinement separates all variables,
  /// ranks correspond across relabelings, which is what lets a cached
  /// solution be transported from one labeling to another.
  std::vector<int> canonical_rank;
};

/// Computes the signature. O((n + terms) * rounds) with rounds bounded by
/// the number of refinement iterations needed to stabilize (at most n,
/// capped at 64).
QuboSignature ComputeQuboSignature(const QuboModel& qubo);

/// Applies `canonical_rank` to an assignment: out[rank[i]] = bits[i].
/// Inverse of MapBitsFromCanonical.
std::vector<std::uint8_t> MapBitsToCanonical(
    const QuboSignature& signature, const std::vector<std::uint8_t>& bits);

/// Reads an assignment stored in canonical coordinates back into this
/// signature's labeling: out[i] = canonical_bits[rank[i]].
std::vector<std::uint8_t> MapBitsFromCanonical(
    const QuboSignature& signature,
    const std::vector<std::uint8_t>& canonical_bits);

/// Order-dependent 64-bit combine built on the same splitmix64 mixer the
/// signature uses. Exposed for callers that key caches on (signature,
/// options) pairs — e.g. the serving layer's options hash.
std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b);

}  // namespace qopt
