#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// Result of an exhaustive QUBO solve.
struct BruteForceResult {
  std::vector<std::uint8_t> best_bits;
  double best_energy = 0.0;
  /// Number of assignments attaining the minimum (useful to detect
  /// degenerate ground states in tests).
  std::uint64_t num_optima = 0;
};

/// Absolute ceiling on exhaustive enumeration, regardless of what a
/// caller passes as `max_variables`: 2^30 Gray-code steps is already ~10s
/// of work, and anything past it would effectively hang the process. A
/// decomposition misconfiguration that routes an oversized block to the
/// exact lane must come back as a recoverable error, not a spin.
inline constexpr int kBruteForceHardCap = 30;

/// Enumerates all 2^n assignments. Intended as a ground-truth oracle for
/// tests and tiny examples. Problems with more than
/// min(max_variables, kBruteForceHardCap) variables are refused with
/// kInvalidArgument.
StatusOr<BruteForceResult> TrySolveQuboBruteForce(const QuboModel& qubo,
                                                  int max_variables = 26);

/// Abort-on-error flavour for trusted callers (tests, tiny examples).
BruteForceResult SolveQuboBruteForce(const QuboModel& qubo,
                                     int max_variables = 26);

}  // namespace qopt
