#pragma once

#include <cstdint>
#include <vector>

#include "qubo/qubo_model.h"

namespace qopt {

/// Result of an exhaustive QUBO solve.
struct BruteForceResult {
  std::vector<std::uint8_t> best_bits;
  double best_energy = 0.0;
  /// Number of assignments attaining the minimum (useful to detect
  /// degenerate ground states in tests).
  std::uint64_t num_optima = 0;
};

/// Enumerates all 2^n assignments. Intended as a ground-truth oracle for
/// tests and tiny examples; refuses problems with more than `max_variables`
/// variables (default 26) to bound runtime.
BruteForceResult SolveQuboBruteForce(const QuboModel& qubo,
                                     int max_variables = 26);

}  // namespace qopt
