#include "qubo/ising_model.h"

#include <algorithm>

#include "common/check.h"

namespace qopt {

IsingModel::IsingModel(int num_spins) {
  QOPT_CHECK(num_spins >= 0);
  h_.assign(static_cast<std::size_t>(num_spins), 0.0);
}

void IsingModel::AddField(int i, double value) {
  QOPT_CHECK(i >= 0 && i < NumSpins());
  h_[static_cast<std::size_t>(i)] += value;
}

double IsingModel::Field(int i) const {
  QOPT_CHECK(i >= 0 && i < NumSpins());
  return h_[static_cast<std::size_t>(i)];
}

void IsingModel::AddCoupling(int i, int j, double value) {
  QOPT_CHECK(i >= 0 && i < NumSpins());
  QOPT_CHECK(j >= 0 && j < NumSpins());
  QOPT_CHECK(i != j);
  if (i > j) std::swap(i, j);
  j_[Key(i, j)] += value;
}

double IsingModel::Coupling(int i, int j) const {
  QOPT_CHECK(i >= 0 && i < NumSpins());
  QOPT_CHECK(j >= 0 && j < NumSpins());
  QOPT_CHECK(i != j);
  if (i > j) std::swap(i, j);
  auto it = j_.find(Key(i, j));
  return it == j_.end() ? 0.0 : it->second;
}

double IsingModel::Energy(const std::vector<int>& spins) const {
  QOPT_CHECK(static_cast<int>(spins.size()) == NumSpins());
  double energy = offset_;
  for (int i = 0; i < NumSpins(); ++i) {
    const int s = spins[static_cast<std::size_t>(i)];
    QOPT_CHECK_MSG(s == -1 || s == 1, "spins must be -1 or +1");
    energy += h_[static_cast<std::size_t>(i)] * s;
  }
  for (const auto& [key, coeff] : j_) {
    const int i = static_cast<int>(key >> 32);
    const int j = static_cast<int>(key & 0xFFFFFFFFu);
    energy += coeff * spins[static_cast<std::size_t>(i)] *
              spins[static_cast<std::size_t>(j)];
  }
  return energy;
}

std::vector<std::pair<std::pair<int, int>, double>> IsingModel::Couplings()
    const {
  std::vector<std::pair<std::pair<int, int>, double>> couplings;
  couplings.reserve(j_.size());
  for (const auto& [key, coeff] : j_) {
    couplings.push_back({{static_cast<int>(key >> 32),
                          static_cast<int>(key & 0xFFFFFFFFu)},
                         coeff});
  }
  std::sort(couplings.begin(), couplings.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return couplings;
}

}  // namespace qopt
