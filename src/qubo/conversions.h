#pragma once

#include <cstdint>
#include <vector>

#include "qubo/ising_model.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// Exact QUBO -> Ising transformation via x_i = (1 + s_i) / 2.
/// Energies are preserved: qubo.Energy(bits) == ising.Energy(spins)
/// whenever spins = BitsToSpins(bits).
IsingModel QuboToIsing(const QuboModel& qubo);

/// Exact Ising -> QUBO transformation via s_i = 2 x_i - 1 (inverse of
/// QuboToIsing, up to floating-point rounding).
QuboModel IsingToQubo(const IsingModel& ising);

/// Maps bit values {0,1} to spins {-1,+1} (0 -> -1, 1 -> +1).
std::vector<int> BitsToSpins(const std::vector<std::uint8_t>& bits);

/// Maps spins {-1,+1} to bit values {0,1}.
std::vector<std::uint8_t> SpinsToBits(const std::vector<int>& spins);

}  // namespace qopt
