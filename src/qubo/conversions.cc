#include "qubo/conversions.h"

#include "common/check.h"

namespace qopt {

IsingModel QuboToIsing(const QuboModel& qubo) {
  IsingModel ising(qubo.NumVariables());
  ising.AddOffset(qubo.Offset());
  for (int i = 0; i < qubo.NumVariables(); ++i) {
    const double a = qubo.Linear(i);
    if (a != 0.0) {
      // a * x = a/2 + (a/2) * s
      ising.AddField(i, a / 2.0);
      ising.AddOffset(a / 2.0);
    }
  }
  for (const auto& [edge, b] : qubo.QuadraticTerms()) {
    if (b == 0.0) continue;
    // b * x_i x_j = b/4 * (1 + s_i + s_j + s_i s_j)
    ising.AddCoupling(edge.first, edge.second, b / 4.0);
    ising.AddField(edge.first, b / 4.0);
    ising.AddField(edge.second, b / 4.0);
    ising.AddOffset(b / 4.0);
  }
  return ising;
}

QuboModel IsingToQubo(const IsingModel& ising) {
  QuboModel qubo(ising.NumSpins());
  qubo.AddOffset(ising.Offset());
  for (int i = 0; i < ising.NumSpins(); ++i) {
    const double h = ising.Field(i);
    if (h != 0.0) {
      // h * s = 2h * x - h
      qubo.AddLinear(i, 2.0 * h);
      qubo.AddOffset(-h);
    }
  }
  for (const auto& [edge, j] : ising.Couplings()) {
    if (j == 0.0) continue;
    // j * s_i s_j = 4j x_i x_j - 2j x_i - 2j x_j + j
    qubo.AddQuadratic(edge.first, edge.second, 4.0 * j);
    qubo.AddLinear(edge.first, -2.0 * j);
    qubo.AddLinear(edge.second, -2.0 * j);
    qubo.AddOffset(j);
  }
  return qubo;
}

std::vector<int> BitsToSpins(const std::vector<std::uint8_t>& bits) {
  std::vector<int> spins(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    QOPT_CHECK(bits[i] == 0 || bits[i] == 1);
    spins[i] = bits[i] ? 1 : -1;
  }
  return spins;
}

std::vector<std::uint8_t> SpinsToBits(const std::vector<int>& spins) {
  std::vector<std::uint8_t> bits(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    QOPT_CHECK(spins[i] == -1 || spins[i] == 1);
    bits[i] = spins[i] > 0 ? 1 : 0;
  }
  return bits;
}

}  // namespace qopt
