#include "qubo/qubo_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qopt {

QuboModel::QuboModel(int num_variables) {
  QOPT_CHECK(num_variables >= 0);
  linear_.assign(static_cast<std::size_t>(num_variables), 0.0);
}

void QuboModel::AddLinear(int i, double value) {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  linear_[static_cast<std::size_t>(i)] += value;
}

double QuboModel::Linear(int i) const {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  return linear_[static_cast<std::size_t>(i)];
}

void QuboModel::AddQuadratic(int i, int j, double value) {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  QOPT_CHECK(j >= 0 && j < NumVariables());
  QOPT_CHECK_MSG(i != j, "diagonal terms belong in the linear part");
  if (i > j) std::swap(i, j);
  quadratic_[Key(i, j)] += value;
}

double QuboModel::Quadratic(int i, int j) const {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  QOPT_CHECK(j >= 0 && j < NumVariables());
  QOPT_CHECK(i != j);
  if (i > j) std::swap(i, j);
  auto it = quadratic_.find(Key(i, j));
  return it == quadratic_.end() ? 0.0 : it->second;
}

void QuboModel::Compress(double epsilon) {
  for (auto it = quadratic_.begin(); it != quadratic_.end();) {
    if (std::abs(it->second) <= epsilon) {
      it = quadratic_.erase(it);
    } else {
      ++it;
    }
  }
}

double QuboModel::Energy(const std::vector<std::uint8_t>& bits) const {
  QOPT_CHECK(static_cast<int>(bits.size()) == NumVariables());
  double energy = offset_;
  for (int i = 0; i < NumVariables(); ++i) {
    if (bits[static_cast<std::size_t>(i)]) {
      energy += linear_[static_cast<std::size_t>(i)];
    }
  }
  for (const auto& [key, coeff] : quadratic_) {
    const int i = static_cast<int>(key >> 32);
    const int j = static_cast<int>(key & 0xFFFFFFFFu);
    if (bits[static_cast<std::size_t>(i)] && bits[static_cast<std::size_t>(j)]) {
      energy += coeff;
    }
  }
  return energy;
}

std::vector<std::pair<std::pair<int, int>, double>> QuboModel::QuadraticTerms()
    const {
  std::vector<std::pair<std::pair<int, int>, double>> terms;
  terms.reserve(quadratic_.size());
  for (const auto& [key, coeff] : quadratic_) {
    terms.push_back({{static_cast<int>(key >> 32),
                      static_cast<int>(key & 0xFFFFFFFFu)},
                     coeff});
  }
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return terms;
}

SimpleGraph QuboModel::InteractionGraph() const {
  SimpleGraph graph(NumVariables());
  for (const auto& [key, coeff] : quadratic_) {
    if (coeff == 0.0) continue;
    graph.AddEdge(static_cast<int>(key >> 32),
                  static_cast<int>(key & 0xFFFFFFFFu));
  }
  return graph;
}

std::vector<std::vector<std::pair<int, double>>> QuboModel::BuildAdjacency()
    const {
  std::vector<std::vector<std::pair<int, double>>> adjacency(
      static_cast<std::size_t>(NumVariables()));
  for (const auto& [key, coeff] : quadratic_) {
    const int i = static_cast<int>(key >> 32);
    const int j = static_cast<int>(key & 0xFFFFFFFFu);
    adjacency[static_cast<std::size_t>(i)].emplace_back(j, coeff);
    adjacency[static_cast<std::size_t>(j)].emplace_back(i, coeff);
  }
  return adjacency;
}

CsrAdjacency QuboModel::BuildCsrAdjacency() const {
  const std::size_t n = static_cast<std::size_t>(NumVariables());
  CsrAdjacency csr;
  csr.offsets.assign(n + 1, 0);
  // QuadraticTerms() is sorted by (i, j) with i < j, so appending both
  // directions in term order leaves every row sorted by neighbor index:
  // row i first receives its j < i partners (from terms (j, i), iterated
  // in ascending j), then its j > i partners in ascending j.
  const auto terms = QuadraticTerms();
  for (const auto& [edge, coeff] : terms) {
    (void)coeff;
    ++csr.offsets[static_cast<std::size_t>(edge.first) + 1];
    ++csr.offsets[static_cast<std::size_t>(edge.second) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) csr.offsets[i + 1] += csr.offsets[i];
  csr.neighbors.resize(2 * terms.size());
  csr.coeffs.resize(2 * terms.size());
  std::vector<std::size_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [edge, coeff] : terms) {
    const std::size_t i = static_cast<std::size_t>(edge.first);
    const std::size_t j = static_cast<std::size_t>(edge.second);
    csr.neighbors[cursor[i]] = edge.second;
    csr.coeffs[cursor[i]++] = coeff;
    csr.neighbors[cursor[j]] = edge.first;
    csr.coeffs[cursor[j]++] = coeff;
  }
  return csr;
}

double QuboModel::Density() const {
  const double n = static_cast<double>(NumVariables());
  if (n < 2.0) return 0.0;
  return static_cast<double>(NumQuadraticTerms()) / (n * (n - 1.0) / 2.0);
}

double QuboModel::FlipDelta(
    const std::vector<std::uint8_t>& bits, int i,
    const std::vector<std::vector<std::pair<int, double>>>& adjacency) const {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  double delta = linear_[static_cast<std::size_t>(i)];
  for (const auto& [j, coeff] : adjacency[static_cast<std::size_t>(i)]) {
    if (bits[static_cast<std::size_t>(j)]) delta += coeff;
  }
  // Flipping 1 -> 0 removes those contributions instead of adding them.
  return bits[static_cast<std::size_t>(i)] ? -delta : delta;
}

}  // namespace qopt
