#include "serve/serve_cli.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <streambuf>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace qopt::serve {
namespace {

// Process-wide shutdown plumbing. The handler does two relaxed atomic
// stores (both async-signal-safe); everything else — draining, metric
// flushing — happens on normal threads after the blocked read wakes up
// with EINTR (the handlers are installed without SA_RESTART for exactly
// that reason).
std::atomic<bool> g_shutdown{false};
std::atomic<Server*> g_server{nullptr};

void HandleShutdownSignal(int /*signal*/) {
  g_shutdown.store(true, std::memory_order_relaxed);
  Server* server = g_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestShutdown();
}

void InstallShutdownHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked reads must EINTR out.
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// iostream adapter over raw file descriptors with explicit EINTR
/// handling: a read interrupted by SIGTERM re-checks the shutdown flag
/// and turns into EOF, which is what lets the accept loop drain instead
/// of blocking forever on stdin / the socket.
class FdStreambuf final : public std::streambuf {
 public:
  FdStreambuf(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {
    setg(buffer_, buffer_, buffer_);
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    while (true) {
      if (g_shutdown.load(std::memory_order_relaxed)) {
        return traits_type::eof();
      }
      const ssize_t n = ::read(read_fd_, buffer_, sizeof(buffer_));
      if (n > 0) {
        setg(buffer_, buffer_, buffer_ + n);
        return traits_type::to_int_type(*gptr());
      }
      if (n == 0) return traits_type::eof();
      if (errno == EINTR) continue;  // signal: loop re-checks the flag
      return traits_type::eof();
    }
  }

  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      const char c = traits_type::to_char_type(ch);
      if (!WriteAll(&c, 1)) return traits_type::eof();
    }
    return traits_type::not_eof(ch);
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return WriteAll(data, static_cast<std::size_t>(count)) ? count : 0;
  }

 private:
  bool WriteAll(const char* data, std::size_t count) {
    std::size_t written = 0;
    while (written < count) {
      const ssize_t n =
          ::write(write_fd_, data + written, count - written);
      if (n >= 0) {
        written += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  }

  int read_fd_;
  int write_fd_;
  char buffer_[1 << 16];
};

int Usage() {
  std::fputs(
      "usage: qqo_serve [--socket=PATH] [--queue=N] [--cache=N]\n"
      "                 [--drain-ms=N] [--max-line-bytes=N]\n"
      "                 [--dispatch=serial|race] [--metrics]\n"
      "Long-lived solver daemon: reads line-delimited JSON solve requests\n"
      "from stdin (or an AF_UNIX socket), writes one response line per\n"
      "request in request order. See DESIGN.md \"Serving\" for the\n"
      "protocol, admission/shedding policy and drain semantics.\n"
      "environment: QQO_SERVE_QUEUE, QQO_SERVE_CACHE, QQO_SERVE_DRAIN_MS,\n"
      "  QQO_SERVE_MAX_LINE_BYTES (flags win), QQO_DISPATCH, QQO_THREADS,\n"
      "  QQO_FAULTS\n",
      stderr);
  return kServeExitUsage;
}

int Fail(int exit_code, const Status& status) {
  std::fprintf(stderr, "qqo_serve: error: %s\n", status.ToString().c_str());
  return exit_code;
}

using FlagMap = std::map<std::string, std::string>;

/// --key=value / --metrics parser with a strict allowlist, mirroring the
/// qqo CLI: a typo must be an error, never a silently applied default.
StatusOr<FlagMap> ParseServeFlags(const std::vector<std::string>& args) {
  static const std::map<std::string, bool> kAllowed = {
      {"socket", true},         {"queue", true},    {"cache", true},
      {"drain-ms", true},       {"dispatch", true}, {"max-line-bytes", true},
      {"metrics", false},  // bool flag: no value
  };
  FlagMap flags;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgumentError(
          StrFormat("unexpected argument \"%s\"", arg.c_str()));
    }
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(2, eq == std::string::npos
                                              ? std::string::npos
                                              : eq - 2);
    auto it = kAllowed.find(key);
    if (it == kAllowed.end()) {
      return InvalidArgumentError(
          StrFormat("unknown flag \"%s\"", arg.c_str()));
    }
    if (flags.count(key) != 0) {
      return InvalidArgumentError(
          StrFormat("duplicate flag --%s", key.c_str()));
    }
    if (it->second) {
      if (eq == std::string::npos || eq + 1 >= arg.size()) {
        return InvalidArgumentError(
            StrFormat("flag --%s: expected =VALUE", key.c_str()));
      }
      flags[key] = arg.substr(eq + 1);
    } else {
      if (eq != std::string::npos) {
        return InvalidArgumentError(
            StrFormat("flag --%s takes no value", key.c_str()));
      }
      flags[key] = "";
    }
  }
  return flags;
}

/// Flag beats environment variable beats default, every source strictly
/// validated against [min, max].
StatusOr<long long> IntKnob(const FlagMap& flags, const char* flag,
                            const char* env, long long fallback,
                            long long min, long long max) {
  if (auto it = flags.find(flag); it != flags.end()) {
    return ParseEnvInt(StrFormat("flag --%s", flag), it->second, min, max);
  }
  QOPT_ASSIGN_OR_RETURN(const std::optional<long long> env_value,
                        EnvIntOrStatus(env, min, max));
  return env_value.value_or(fallback);
}

StatusOr<ServerOptions> MakeServerOptions(const FlagMap& flags) {
  ServerOptions options;
  QOPT_ASSIGN_OR_RETURN(
      const long long queue,
      IntKnob(flags, "queue", "QQO_SERVE_QUEUE", 64, 0, 100000));
  options.queue_capacity = static_cast<std::size_t>(queue);
  QOPT_ASSIGN_OR_RETURN(
      const long long cache,
      IntKnob(flags, "cache", "QQO_SERVE_CACHE", 128, 0, 1000000));
  options.cache_capacity = static_cast<std::size_t>(cache);
  QOPT_ASSIGN_OR_RETURN(options.drain_budget_ms,
                        IntKnob(flags, "drain-ms", "QQO_SERVE_DRAIN_MS",
                                2000, -1, 24LL * 60 * 60 * 1000));
  QOPT_ASSIGN_OR_RETURN(
      const long long max_line,
      IntKnob(flags, "max-line-bytes", "QQO_SERVE_MAX_LINE_BYTES", 1 << 20,
              1, 1 << 30));
  options.max_line_bytes = static_cast<std::size_t>(max_line);
  std::string dispatch_text = "serial";
  if (std::optional<std::string> env = EnvString("QQO_DISPATCH")) {
    dispatch_text = *env;
  }
  if (auto it = flags.find("dispatch"); it != flags.end()) {
    dispatch_text = it->second;
  }
  if (StatusOr<DispatchMode> mode = ParseDispatchMode(dispatch_text);
      mode.ok()) {
    options.default_dispatch = *mode;
  } else {
    return InvalidArgumentError(StrFormat(
        "flag --dispatch: %s", mode.status().message().c_str()));
  }
  return options;
}

/// Final shutdown summary, all on stderr — stdout belongs to the response
/// stream and must stay parseable by the client.
void PrintShutdownSummary(const Server& server, bool want_metrics) {
  const ServerCounters counters = server.Counters();
  std::fprintf(stderr,
               "qqo_serve: drained: lines=%lld admitted=%lld "
               "completed=%lld shed=%lld parse_errors=%lld cancelled=%lld\n",
               counters.lines, counters.admitted, counters.completed,
               counters.shed, counters.parse_errors, counters.cancelled);
  const CacheCounters cache = server.Cache().Counters();
  std::fprintf(stderr,
               "qqo_serve: cache: hits_exact=%lld hits_isomorphic=%lld "
               "misses=%lld insertions=%lld evictions=%lld rejections=%lld\n",
               cache.hits_exact, cache.hits_isomorphic, cache.misses,
               cache.insertions, cache.evictions, cache.rejections);
  if (want_metrics) {
    std::fputs(obs::Metrics::Instance()
                   .TableString(/*include_scheduling=*/true)
                   .c_str(),
               stderr);
  }
}

int ServeOnStdio(Server& server) {
  FdStreambuf buffer(STDIN_FILENO, STDOUT_FILENO);
  std::istream in(&buffer);
  std::ostream out(&buffer);
  const Status status = server.Serve(in, out);
  return status.ok() ? kServeExitOk : Fail(kServeExitError, status);
}

int ServeOnSocket(Server& server, const std::string& path) {
  sockaddr_un address;
  std::memset(&address, 0, sizeof(address));
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    return Fail(kServeExitUsage,
                InvalidArgumentError(StrFormat(
                    "flag --socket: path longer than %zu bytes",
                    sizeof(address.sun_path) - 1)));
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Fail(kServeExitError,
                InternalError(StrFormat("socket(): %s", std::strerror(errno))));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 4) != 0) {
    const int saved_errno = errno;
    ::close(listen_fd);
    return Fail(kServeExitError,
                InternalError(StrFormat("bind/listen on \"%s\": %s",
                                        path.c_str(),
                                        std::strerror(saved_errno))));
  }
  std::fprintf(stderr, "qqo_serve: listening on %s\n", path.c_str());
  // One connection at a time: each accepted client gets a full Serve()
  // session (fresh sequence numbers, shared cache and counters).
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flag
      ::close(listen_fd);
      ::unlink(path.c_str());
      return Fail(kServeExitError,
                  InternalError(
                      StrFormat("accept(): %s", std::strerror(errno))));
    }
    FdStreambuf buffer(conn_fd, conn_fd);
    std::istream in(&buffer);
    std::ostream out(&buffer);
    server.Serve(in, out).IgnoreError();
    ::close(conn_fd);
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return kServeExitOk;
}

}  // namespace

int RunQqoServe(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  return RunQqoServe(args);
}

int RunQqoServe(const std::vector<std::string>& args) {
  g_shutdown.store(false, std::memory_order_relaxed);  // in-process reruns
  // Environment knobs are validated before any work runs — same contract
  // as the qqo CLI: a typo in QQO_THREADS or QQO_FAULTS is usage misuse
  // (exit 2), never a silent fallback.
  if (StatusOr<int> pool = ThreadPool::PoolSizeFromEnvOrStatus();
      !pool.ok()) {
    return Fail(kServeExitUsage, pool.status());
  }
  if (Status faults = FaultInjection::EnvSpecStatus(); !faults.ok()) {
    return Fail(kServeExitUsage, faults);
  }
  if (std::optional<std::string> dispatch_env = EnvString("QQO_DISPATCH")) {
    if (StatusOr<DispatchMode> mode = ParseDispatchMode(*dispatch_env);
        !mode.ok()) {
      return Fail(kServeExitUsage,
                  InvalidArgumentError(StrFormat(
                      "QQO_DISPATCH: %s", mode.status().message().c_str())));
    }
  }
  StatusOr<FlagMap> flags = ParseServeFlags(args);
  if (!flags.ok()) {
    Fail(kServeExitUsage, flags.status());
    return Usage();
  }
  StatusOr<ServerOptions> options = MakeServerOptions(*flags);
  if (!options.ok()) return Fail(kServeExitUsage, options.status());
  const bool want_metrics = flags->count("metrics") != 0;

  // Metrics are always armed: the "stats" request type snapshots them.
  obs::Metrics::Instance().Reset();
  obs::Metrics::Instance().Enable();
  InstallShutdownHandlers();

  Server server(*options);
  g_server.store(&server, std::memory_order_relaxed);
  int code;
  if (auto it = flags->find("socket"); it != flags->end()) {
    code = ServeOnSocket(server, it->second);
  } else {
    code = ServeOnStdio(server);
  }
  g_server.store(nullptr, std::memory_order_relaxed);
  obs::Metrics::Instance().Disable();
  PrintShutdownSummary(server, want_metrics);
  return code;
}

}  // namespace qopt::serve
