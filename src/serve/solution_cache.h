#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qopt::serve {

/// What a cache probe found.
enum class CacheHitKind {
  kMiss,        ///< No entry (or a rejected one); solve for real.
  kExact,       ///< Same labeled QUBO: replay the stored payload verbatim.
  kIsomorphic,  ///< Same canonical form, different labeling: transport the
                ///< stored canonical bits through the probe's rank mapping
                ///< and RE-VERIFY (energy + decode) before trusting them —
                ///< the canonical hash is WL-based, not a GI decision.
};

/// One cached solution keyed by canonical form.
struct CacheEntry {
  std::uint64_t exact_hash = 0;  ///< Labeled hash of the inserting QUBO.
  /// Solution bits in canonical variable order (MapBitsToCanonical of the
  /// inserting request's bits), so any isomorphic labeling can project
  /// them back out with its own rank vector.
  std::vector<std::uint8_t> canonical_bits;
  double energy = 0.0;  ///< QUBO energy the bits achieved at insert time.
  /// Serialized result payload of the inserting request, replayed
  /// byte-identically on exact hits.
  std::string payload;
};

/// Monotonic counters for the stats payload (obs metrics mirror the hit /
/// miss pair; the rest are cache internals).
struct CacheCounters {
  long long hits_exact = 0;
  long long hits_isomorphic = 0;
  long long misses = 0;
  long long insertions = 0;
  long long evictions = 0;
  /// Isomorphic candidates whose transported bits failed verification in
  /// the server (energy mismatch / decode failure). Counted as misses in
  /// the hit/miss pair; tracked separately because a nonzero value means
  /// the WL hash collided on non-isomorphic problems.
  long long rejections = 0;
};

/// Bounded LRU cache of QUBO solutions keyed by
/// (canonical_hash, options_hash). Thread-safe: the server's worker
/// threads probe and insert concurrently. Capacity 0 disables caching
/// (every probe is a miss, inserts are dropped).
///
/// The cache is deliberately oblivious to solver semantics: the caller
/// decides what goes into options_hash (backend, dispatch, seed, ... —
/// anything that changes the answer) and performs the isomorphic-hit
/// verification, reporting failures back via RecordRejection.
class SolutionCache {
 public:
  explicit SolutionCache(std::size_t capacity) : capacity_(capacity) {}

  SolutionCache(const SolutionCache&) = delete;
  SolutionCache& operator=(const SolutionCache&) = delete;

  /// Probes for (canonical_hash, options_hash). On a hit, copies the
  /// entry into *entry, marks it most-recently-used and returns kExact
  /// when `exact_hash` matches the stored labeled hash, kIsomorphic
  /// otherwise. Counts the probe.
  CacheHitKind Lookup(std::uint64_t canonical_hash,
                      std::uint64_t options_hash, std::uint64_t exact_hash,
                      CacheEntry* entry);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when the cache is full. No-op at capacity 0.
  void Insert(std::uint64_t canonical_hash, std::uint64_t options_hash,
              CacheEntry entry);

  /// The server failed to verify an isomorphic hit: demote the probe to a
  /// miss in the counters and drop the poisoned entry so it cannot serve
  /// further false hits.
  void RecordRejection(std::uint64_t canonical_hash,
                       std::uint64_t options_hash);

  std::size_t Size() const;
  std::size_t Capacity() const { return capacity_; }
  CacheCounters Counters() const;

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  struct Slot {
    CacheEntry entry;
    std::list<Key>::iterator lru_pos;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<Key, Slot> entries_;
  std::list<Key> lru_;  ///< Front = most recent, back = eviction victim.
  CacheCounters counters_;
};

}  // namespace qopt::serve
