#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <exception>
#include <utility>
#include <vector>

#include "bilp/bilp_to_qubo.h"
#include "common/fault_injection.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "joinorder/join_order.h"
#include "mqo/mqo_qubo_encoder.h"
#include "obs/metrics.h"
#include "qubo/qubo_canonical.h"

namespace qopt::serve {
namespace {

/// Pending cancels for request ids the server has not seen yet. Bounded so
/// a client spamming cancels for fictional ids cannot grow server memory.
constexpr std::size_t kMaxPendingCancels = 1024;

/// Domain-separation tags for the cache options hash.
constexpr std::uint64_t kMqoKeyTag = 0x5E57'E001ULL;
constexpr std::uint64_t kJoinKeyTag = 0x5E57'E002ULL;

/// Everything that changes the *answer* of a solve enters the cache key;
/// timeout_ms deliberately does not (a completed result is equally valid
/// under any budget — budget-truncated results are never inserted).
std::uint64_t OptionsHash(std::uint64_t kind_tag, const ServeRequest& r) {
  std::uint64_t h = HashCombine(kind_tag, static_cast<std::uint64_t>(r.backend));
  h = HashCombine(h, static_cast<std::uint64_t>(r.dispatch));
  h = HashCombine(h, r.seed);
  h = HashCombine(h, static_cast<std::uint64_t>(r.retries));
  h = HashCombine(h, static_cast<std::uint64_t>(r.pegasus_m));
  h = HashCombine(h, static_cast<std::uint64_t>(r.decompose));
  return HashCombine(h, r.classical_fallback ? 1 : 0);
}

/// Mirrors the qqo_cli solver defaults so a request answered by the
/// daemon matches the same request run through the CLI.
OptimizerOptions MakeOptimizerOptions(const ServeRequest& request,
                                      const Deadline& deadline) {
  OptimizerOptions options;
  options.backend = request.backend;
  options.dispatch = request.dispatch;
  options.decompose = request.decompose;
  options.seed = request.seed;
  options.pegasus_m = request.pegasus_m;
  options.classical_fallback = request.classical_fallback;
  options.anneal.num_reads = 50;
  options.anneal.num_sweeps = 2000;
  options.variational.max_iterations = 250;
  options.variational.shots = 4096;
  options.embedded.anneal.num_reads = 100;
  options.embedded.anneal.num_sweeps = 4000;
  options.budget.deadline = deadline;
  options.budget.retry.max_attempts = request.retries;
  options.budget.retry.initial_backoff_ms = 10.0;
  options.budget.retry.seed = request.seed;
  return options;
}

Deadline RequestDeadline(const ServeRequest& request,
                         const CancelToken* token) {
  const Deadline base = request.timeout_ms < 0
                            ? Deadline::Infinite()
                            : Deadline::AfterMillis(
                                  static_cast<double>(request.timeout_ms));
  return base.WithToken(token);
}

/// Relative-tolerance energy check for transported solutions. Isomorphic
/// relabelings re-associate the FP sums, so exact equality is too strict;
/// anything beyond 1e-9 relative means the canonical hash collided on
/// non-isomorphic problems and the entry must be rejected.
bool EnergiesMatch(double a, double b) {
  const double tolerance = 1e-9 * std::max(1.0, std::max(std::abs(a),
                                                         std::abs(b)));
  return std::abs(a - b) <= tolerance;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), cache_(options.cache_capacity) {}

void Server::RequestShutdown() {
  shutdown_token_.Cancel();
  // Shutdown implies drain starts now for anything still blocked on the
  // per-request tokens once the accept loop unwinds; firing the drain
  // token here would skip the graceful window, so only the shutdown flag
  // is set.
}

ServerCounters Server::Counters() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return counters_;
}

Status Server::Serve(std::istream& in, std::ostream& out) {
  // Per-session reset: sequence numbers, reorder buffer and cancellation
  // bookkeeping start fresh; the cache and lifetime counters persist.
  {
    std::lock_guard<std::mutex> lock(emit_mutex_);
    out_ = &out;
    next_emit_ = 0;
    pending_.clear();
  }
  next_seq_ = 0;
  drain_token_.Reset();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    live_.clear();
    precancelled_.clear();
  }

  std::string line;
  // QQO_LOOP(serve.accept)
  while (std::getline(in, line)) {
    QQO_COUNT("serve.lines", 1);
    if (shutdown_token_.cancelled()) break;
    HandleLine(line);
  }
  Drain();
  {
    std::lock_guard<std::mutex> lock(emit_mutex_);
    out_ = nullptr;
  }
  return OkStatus();
}

void Server::HandleLine(const std::string& line) {
  if (line.empty()) return;  // Blank lines are keep-alive noise: no reply.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.lines;
  }
  const std::uint64_t seq = next_seq_++;
  if (line.size() > options_.max_line_bytes) {
    // Reject before parsing: the bound exists precisely so that a huge
    // line costs O(max_line_bytes), not O(line).
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.parse_errors;
    Emit(seq, MakeErrorResponse(
                  "", ResourceExhaustedError(StrFormat(
                          "request line of %zu bytes exceeds the "
                          "max_line_bytes limit of %zu",
                          line.size(), options_.max_line_bytes))));
    return;
  }
  StatusOr<ServeRequest> parsed =
      ParseServeRequest(line, options_.default_dispatch);
  if (!parsed.ok()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.parse_errors;
    Emit(seq, MakeErrorResponse(BestEffortRequestId(line), parsed.status()));
    return;
  }
  ServeRequest request = *std::move(parsed);
  switch (request.type) {
    case RequestType::kPing: {
      JsonValue result = JsonValue::Object();
      result.Set("pong", JsonValue::Bool(true));
      Emit(seq, MakeOkResponse(request.id, false, result));
      return;
    }
    case RequestType::kStats:
      HandleStats(seq, request);
      return;
    case RequestType::kCancel:
      HandleCancel(seq, request);
      return;
    case RequestType::kMqo:
    case RequestType::kJoin:
      AdmitSolve(seq, std::move(request));
      return;
  }
}

void Server::HandleCancel(std::uint64_t seq, const ServeRequest& request) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto it = live_.find(request.cancel_target);
  if (it != live_.end()) {
    it->second->token.Cancel();
  } else {
    if (precancelled_.size() >= kMaxPendingCancels &&
        precancelled_.count(request.cancel_target) == 0) {
      Emit(seq, MakeErrorResponse(
                    request.id,
                    ResourceExhaustedError(
                        "too many pending cancels for unseen request ids")));
      return;
    }
    // The target has not been admitted yet: remember the cancel and fire
    // the request's token the moment it arrives. This "pre-cancel" is the
    // deterministic flavor the replay corpus uses — it does not race
    // against solver progress.
    precancelled_.insert(request.cancel_target);
  }
  // Uniform acknowledgement: whether the target was live or pre-cancelled
  // is timing-dependent, so the ack deliberately does not say.
  JsonValue result = JsonValue::Object();
  result.Set("cancelled", JsonValue::Bool(true));
  result.Set("target", JsonValue::String(request.cancel_target));
  Emit(seq, MakeOkResponse(request.id, false, result));
}

void Server::HandleStats(std::uint64_t seq, const ServeRequest& request) {
  // Barrier: a stats snapshot taken while solves are in flight would
  // depend on scheduling. Waiting for idle makes the payload a pure
  // function of the request history, which the replay harness compares
  // byte-for-byte across thread counts.
  AwaitIdle();
  JsonValue result = JsonValue::Object();
  const JsonValue metrics = obs::Metrics::Instance().ToJson(false);
  if (const JsonValue* rows = metrics.Find("metrics"); rows != nullptr) {
    result.Set("metrics", *rows);
  }
  const CacheCounters cache_counters = cache_.Counters();
  JsonValue cache = JsonValue::Object();
  cache.Set("capacity",
            JsonValue::Number(static_cast<double>(cache_.Capacity())));
  cache.Set("size", JsonValue::Number(static_cast<double>(cache_.Size())));
  cache.Set("hits_exact",
            JsonValue::Number(static_cast<double>(cache_counters.hits_exact)));
  cache.Set("hits_isomorphic",
            JsonValue::Number(
                static_cast<double>(cache_counters.hits_isomorphic)));
  cache.Set("misses",
            JsonValue::Number(static_cast<double>(cache_counters.misses)));
  cache.Set("insertions",
            JsonValue::Number(static_cast<double>(cache_counters.insertions)));
  cache.Set("evictions",
            JsonValue::Number(static_cast<double>(cache_counters.evictions)));
  cache.Set("rejections",
            JsonValue::Number(static_cast<double>(cache_counters.rejections)));
  result.Set("cache", cache);
  ServerCounters counters = Counters();
  JsonValue server = JsonValue::Object();
  server.Set("admitted",
             JsonValue::Number(static_cast<double>(counters.admitted)));
  server.Set("completed",
             JsonValue::Number(static_cast<double>(counters.completed)));
  server.Set("shed", JsonValue::Number(static_cast<double>(counters.shed)));
  server.Set("parse_errors",
             JsonValue::Number(static_cast<double>(counters.parse_errors)));
  server.Set("cancelled",
             JsonValue::Number(static_cast<double>(counters.cancelled)));
  server.Set("queue_capacity",
             JsonValue::Number(static_cast<double>(options_.queue_capacity)));
  result.Set("server", server);
  Emit(seq, MakeOkResponse(request.id, false, result));
}

void Server::AdmitSolve(std::uint64_t seq, ServeRequest request) {
  // Deterministic admission fault site: CI arms it via QQO_FAULTS to
  // prove a shed request gets a structured reject while the loop lives.
  if (Status fault = CheckFaultPoint("serve.admit"); !fault.ok()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.shed;
    QQO_COUNT("serve.shed", 1);
    Emit(seq, MakeErrorResponse(request.id, fault));
    return;
  }
  auto state = std::make_shared<RequestState>(&drain_token_);
  state->seq = seq;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (in_flight_ >= options_.queue_capacity) {
      ++counters_.shed;
      QQO_COUNT("serve.shed", 1);
      Emit(seq,
           MakeErrorResponse(
               request.id,
               UnavailableError(StrFormat(
                   "admission queue full (%zu solves in flight, capacity "
                   "%zu); retry after a response drains",
                   in_flight_, options_.queue_capacity))));
      return;
    }
    ++in_flight_;
    ++counters_.admitted;
    QQO_COUNT("serve.requests", 1);
    if (precancelled_.erase(request.id) > 0) state->token.Cancel();
    state->request = std::move(request);
    live_[state->request.id] = state;
  }
  ThreadPool::Default().Submit([this, state] {
    std::string response;
    try {
      response = SolveToResponse(*state);
    } catch (const std::exception& e) {
      // Worker isolation: a throwing solve is a bug, but it must cost one
      // error response, not the daemon.
      response = MakeErrorResponse(
          state->request.id,
          InternalError(StrFormat("solve threw: %s", e.what())));
    } catch (...) {
      response = MakeErrorResponse(
          state->request.id,
          InternalError("solve threw a non-exception object"));
    }
    Emit(state->seq, std::move(response));
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      --in_flight_;
      ++counters_.completed;
      auto it = live_.find(state->request.id);
      if (it != live_.end() && it->second == state) live_.erase(it);
    }
    idle_cv_.notify_all();
  });
}

std::string Server::SolveToResponse(RequestState& state) {
  const ServeRequest& request = state.request;
  const Deadline deadline = RequestDeadline(request, &state.token);
  if (options_.test_request_hook) options_.test_request_hook(deadline);
  // Per-request fault site: an injected failure surfaces as this
  // request's error response and nothing else.
  if (Status fault = CheckFaultPoint("serve.request"); !fault.ok()) {
    return MakeErrorResponse(request.id, fault);
  }
  if (request.type == RequestType::kMqo) {
    return SolveMqoRequest(state, deadline);
  }
  return SolveJoinRequest(state, deadline);
}

std::string Server::SolveMqoRequest(RequestState& state,
                                    const Deadline& deadline) {
  const ServeRequest& request = state.request;
  const MqoProblem& problem = *request.mqo;
  const bool use_cache = request.use_cache && cache_.Capacity() > 0;
  QuboSignature signature;
  CacheKey key{0, 0};
  bool holds_flight = false;
  if (use_cache) {
    // The encoding is cheap relative to a solve; computing it up front
    // lets a cache hit skip the solver entirely.
    StatusOr<MqoQuboEncoding> encoding = TryEncodeMqoAsQubo(problem);
    if (!encoding.ok()) {
      return MakeErrorResponse(request.id, encoding.status());
    }
    signature = ComputeQuboSignature(encoding->qubo);
    key = {signature.canonical_hash, OptionsHash(kMqoKeyTag, request)};
    holds_flight = AcquireFlight(key, state.token);
    CacheEntry entry;
    const CacheHitKind kind =
        cache_.Lookup(key.first, key.second, signature.exact_hash, &entry);
    if (kind == CacheHitKind::kExact) {
      QQO_COUNT("serve.cache.hit", 1);
      if (holds_flight) ReleaseFlight(key);
      StatusOr<JsonValue> payload = JsonValue::ParseOrStatus(entry.payload);
      QOPT_CHECK_MSG(payload.ok(), "cached payload failed to re-parse");
      return MakeOkResponse(request.id, true, *payload);
    }
    if (kind == CacheHitKind::kIsomorphic) {
      // Same canonical form under a different labeling: transport the
      // cached bits through this instance's canonical ranks, then verify
      // — the WL hash is strong evidence, not proof, of isomorphism.
      const std::vector<std::uint8_t> bits =
          MapBitsFromCanonical(signature, entry.canonical_bits);
      const double energy = encoding->qubo.Energy(bits);
      std::vector<int> selection;
      if (bits.size() == entry.canonical_bits.size() &&
          EnergiesMatch(energy, entry.energy) &&
          problem.DecodeBits(bits, &selection)) {
        QQO_COUNT("serve.cache.hit", 1);
        if (holds_flight) ReleaseFlight(key);
        StatusOr<JsonValue> payload =
            JsonValue::ParseOrStatus(entry.payload);
        QOPT_CHECK_MSG(payload.ok(), "cached payload failed to re-parse");
        payload->Set("energy", JsonValue::Number(energy));
        payload->Set("cost",
                     JsonValue::Number(problem.SelectionCost(selection)));
        JsonValue selection_json = JsonValue::Array();
        for (int plan : selection) {
          selection_json.Append(JsonValue::Number(plan));
        }
        payload->Set("selection", selection_json);
        return MakeOkResponse(request.id, true, *payload);
      }
      cache_.RecordRejection(key.first, key.second);
    }
    QQO_COUNT("serve.cache.miss", 1);
  }
  StatusOr<MqoSolveReport> report =
      TrySolveMqo(problem, MakeOptimizerOptions(request, deadline));
  std::string response;
  if (!report.ok()) {
    if (report.status().code() == StatusCode::kCancelled) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.cancelled;
    }
    response = MakeErrorResponse(request.id, report.status());
  } else {
    const JsonValue payload = MqoReportToJson(*report);
    if (use_cache && report->valid && !report->stats.timed_out) {
      CacheEntry entry;
      entry.exact_hash = signature.exact_hash;
      entry.canonical_bits = MapBitsToCanonical(signature, report->bits);
      entry.energy = report->qubo_energy;
      entry.payload = payload.Dump();
      cache_.Insert(key.first, key.second, std::move(entry));
    }
    response = MakeOkResponse(request.id, false, payload);
  }
  if (holds_flight) ReleaseFlight(key);
  return response;
}

std::string Server::SolveJoinRequest(RequestState& state,
                                     const Deadline& deadline) {
  const ServeRequest& request = state.request;
  const QueryGraph& graph = *request.join_graph;
  const bool use_cache = request.use_cache && cache_.Capacity() > 0;
  QuboSignature signature;
  CacheKey key{0, 0};
  bool holds_flight = false;
  std::optional<JoinOrderEncoding> encoding;
  std::optional<QuboModel> qubo;
  if (use_cache) {
    StatusOr<JoinOrderEncoding> encoded =
        TryEncodeJoinOrderAsBilp(graph, request.join_encoder);
    if (!encoded.ok()) {
      return MakeErrorResponse(request.id, encoded.status());
    }
    encoding = *std::move(encoded);
    qubo = EncodeBilpAsQubo(encoding->bilp).qubo;
    signature = ComputeQuboSignature(*qubo);
    key = {signature.canonical_hash, OptionsHash(kJoinKeyTag, request)};
    holds_flight = AcquireFlight(key, state.token);
    CacheEntry entry;
    const CacheHitKind kind =
        cache_.Lookup(key.first, key.second, signature.exact_hash, &entry);
    if (kind == CacheHitKind::kExact) {
      QQO_COUNT("serve.cache.hit", 1);
      if (holds_flight) ReleaseFlight(key);
      StatusOr<JsonValue> payload = JsonValue::ParseOrStatus(entry.payload);
      QOPT_CHECK_MSG(payload.ok(), "cached payload failed to re-parse");
      return MakeOkResponse(request.id, true, *payload);
    }
    if (kind == CacheHitKind::kIsomorphic) {
      const std::vector<std::uint8_t> bits =
          MapBitsFromCanonical(signature, entry.canonical_bits);
      const double energy = qubo->Energy(bits);
      std::vector<int> order;
      if (bits.size() == entry.canonical_bits.size() &&
          EnergiesMatch(energy, entry.energy) &&
          DecodeJoinOrder(*encoding, bits, &order)) {
        QQO_COUNT("serve.cache.hit", 1);
        if (holds_flight) ReleaseFlight(key);
        StatusOr<JsonValue> payload =
            JsonValue::ParseOrStatus(entry.payload);
        QOPT_CHECK_MSG(payload.ok(), "cached payload failed to re-parse");
        payload->Set("energy", JsonValue::Number(energy));
        payload->Set("cost", JsonValue::Number(CoutCost(graph, order)));
        JsonValue order_json = JsonValue::Array();
        for (int relation : order) {
          order_json.Append(JsonValue::Number(relation));
        }
        payload->Set("order", order_json);
        return MakeOkResponse(request.id, true, *payload);
      }
      cache_.RecordRejection(key.first, key.second);
    }
    QQO_COUNT("serve.cache.miss", 1);
  }
  StatusOr<JoinOrderSolveReport> report = TrySolveJoinOrder(
      graph, request.join_encoder, MakeOptimizerOptions(request, deadline));
  std::string response;
  if (!report.ok()) {
    if (report.status().code() == StatusCode::kCancelled) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.cancelled;
    }
    response = MakeErrorResponse(request.id, report.status());
  } else {
    const JsonValue payload = JoinReportToJson(*report);
    if (use_cache && report->valid && !report->stats.timed_out) {
      CacheEntry entry;
      entry.exact_hash = signature.exact_hash;
      entry.canonical_bits = MapBitsToCanonical(signature, report->bits);
      entry.energy = report->qubo_energy;
      entry.payload = payload.Dump();
      cache_.Insert(key.first, key.second, std::move(entry));
    }
    response = MakeOkResponse(request.id, false, payload);
  }
  if (holds_flight) ReleaseFlight(key);
  return response;
}

bool Server::AcquireFlight(const CacheKey& key, const CancelToken& token) {
  std::unique_lock<std::mutex> lock(flights_mutex_);
  // QQO_LOOP(serve.flight)
  while (flights_.count(key) > 0) {
    QQO_COUNT("serve.wall.flight_waits", 1);
    if (token.cancelled()) return false;
    flights_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
  flights_.insert(key);
  return true;
}

void Server::ReleaseFlight(const CacheKey& key) {
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    flights_.erase(key);
  }
  flights_cv_.notify_all();
}

void Server::Emit(std::uint64_t seq, std::string line) {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  pending_[seq] = std::move(line);
  // Reorder buffer: write the contiguous run starting at next_emit_, hold
  // anything that arrived ahead of an earlier outstanding response.
  bool wrote = false;
  auto it = pending_.find(next_emit_);
  while (it != pending_.end()) {
    QQO_COUNT("serve.responses", 1);
    if (out_ != nullptr) *out_ << it->second << '\n';
    pending_.erase(it);
    ++next_emit_;
    wrote = true;
    it = pending_.find(next_emit_);
  }
  if (wrote && out_ != nullptr) out_->flush();
}

void Server::AwaitIdle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  // QQO_LOOP(serve.wait)
  while (in_flight_ > 0) {
    QQO_COUNT("serve.wall.idle_waits", 1);
    if (shutdown_token_.cancelled() && drain_token_.cancelled()) break;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void Server::Drain() {
  const Deadline drain_deadline =
      options_.drain_budget_ms < 0
          ? Deadline::Infinite()
          : Deadline::AfterMillis(
                static_cast<double>(options_.drain_budget_ms));
  std::unique_lock<std::mutex> lock(state_mutex_);
  // QQO_LOOP(serve.drain)
  while (in_flight_ > 0) {
    QQO_COUNT("serve.wall.drain_waits", 1);
    if (drain_deadline.Expired() && !drain_token_.cancelled()) {
      // Budget exhausted: cancel everything still in flight through the
      // linked tokens; solvers observe it at their next iteration
      // boundary and wind down with kCancelled error responses.
      drain_token_.Cancel();
    }
    idle_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

}  // namespace qopt::serve
