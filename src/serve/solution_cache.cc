#include "serve/solution_cache.h"

namespace qopt::serve {

CacheHitKind SolutionCache::Lookup(std::uint64_t canonical_hash,
                                   std::uint64_t options_hash,
                                   std::uint64_t exact_hash,
                                   CacheEntry* entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{canonical_hash, options_hash};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return CacheHitKind::kMiss;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *entry = it->second.entry;
  if (it->second.entry.exact_hash == exact_hash) {
    ++counters_.hits_exact;
    return CacheHitKind::kExact;
  }
  ++counters_.hits_isomorphic;
  return CacheHitKind::kIsomorphic;
}

void SolutionCache::Insert(std::uint64_t canonical_hash,
                           std::uint64_t options_hash, CacheEntry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{canonical_hash, options_hash};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place (e.g. cache=false solved past it, then a later
    // request re-inserts): newer bits win, recency bumps.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.entry = std::move(entry);
    ++counters_.insertions;
    return;
  }
  if (entries_.size() >= capacity_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++counters_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  ++counters_.insertions;
}

void SolutionCache::RecordRejection(std::uint64_t canonical_hash,
                                    std::uint64_t options_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.rejections;
  // The isomorphic probe was already counted as a hit; re-classify.
  --counters_.hits_isomorphic;
  ++counters_.misses;
  const Key key{canonical_hash, options_hash};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
}

std::size_t SolutionCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CacheCounters SolutionCache::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace qopt::serve
