#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <condition_variable>

#include "common/deadline.h"
#include "common/status.h"
#include "serve/protocol.h"
#include "serve/solution_cache.h"

namespace qopt::serve {

/// Tuning knobs of one Server instance. Defaults are sized for the demo
/// daemon; the qqo_serve front-end maps flags / QQO_SERVE_* variables
/// onto them.
struct ServerOptions {
  /// Admission bound: solve requests in flight (admitted, response not
  /// yet emitted). One more solve than this is shed with kUnavailable —
  /// deterministic, explicit overload behavior instead of an unbounded
  /// queue. 0 sheds every solve (useful to pin the shed path in tests).
  std::size_t queue_capacity = 64;
  /// Solution-cache entries (see SolutionCache). 0 disables caching.
  std::size_t cache_capacity = 128;
  /// Graceful-drain budget: after EOF / shutdown the server first lets
  /// in-flight solves finish; once this budget expires it fires the drain
  /// CancelToken (linked into every request deadline) and waits for the
  /// solvers to wind down cooperatively. Negative: wait forever.
  long long drain_budget_ms = 2000;
  /// Request lines longer than this are rejected (kResourceExhausted)
  /// without being parsed — bounded memory per request.
  std::size_t max_line_bytes = 1 << 20;
  /// Daemon-wide dispatch default (QQO_DISPATCH / --dispatch); a request
  /// may override it per call with its "dispatch" field.
  DispatchMode default_dispatch = DispatchMode::kSerial;
  /// Test seam: when set, runs on the worker thread for every admitted
  /// solve, before dispatch, with the request's deadline (which carries
  /// the per-request CancelToken linked to the drain token). The drain
  /// tests block in here until cancellation fires, pinning the
  /// cancel-on-drain path without timing races.
  std::function<void(const Deadline&)> test_request_hook;
};

/// Monotonic request accounting across the server's lifetime (all Serve
/// calls), for the stats payload and the front-end's shutdown summary.
struct ServerCounters {
  long long lines = 0;         ///< Non-blank input lines read.
  long long admitted = 0;      ///< Solve requests admitted to the pool.
  long long completed = 0;     ///< Solve responses emitted (ok or error).
  long long shed = 0;          ///< Solves rejected at admission.
  long long parse_errors = 0;  ///< Lines that failed validation.
  long long cancelled = 0;     ///< Solves that finished kCancelled.
};

/// The qqo_serve request loop: reads line-delimited JSON requests from a
/// stream, runs admitted solves on the default ThreadPool (each under its
/// own deadline + CancelToken), and writes exactly one response line per
/// request, in request order. See protocol.h for the wire format and
/// DESIGN.md "Serving" for the admission / shedding / drain contract.
///
/// Robustness invariants:
///   - A malformed or fault-injected request produces a structured error
///     response; the loop keeps serving (worker exceptions included).
///   - At most queue_capacity solves are in flight; excess is shed with a
///     deterministic kUnavailable error.
///   - EOF / RequestShutdown() triggers a graceful drain: stop admitting,
///     let in-flight work finish within drain_budget_ms, then cancel the
///     rest through the linked drain token. Serve() returns OK after a
///     drain even when individual requests were cancelled.
///
/// Determinism: responses are emitted strictly in request order through a
/// sequence-numbered reorder buffer, "stats" waits for all prior solves
/// (a barrier), and concurrent duplicates of one cache key are coalesced
/// (single flight) — so a corpus of serial-dispatch requests produces a
/// byte-identical response stream at any QQO_THREADS setting.
class Server {
 public:
  explicit Server(const ServerOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the request loop until `in` is exhausted or shutdown was
  /// requested, then drains. May be called again afterwards (per-session
  /// state resets; the cache and counters persist) — the socket front-end
  /// serves one connection per call.
  Status Serve(std::istream& in, std::ostream& out);

  /// Asynchronous shutdown signal (SIGTERM handler / another thread):
  /// atomically stops admission at the next loop boundary. Safe to call
  /// from a signal handler (two relaxed atomic stores). Note the accept
  /// loop only observes it between lines — the qqo_serve front-end pairs
  /// this with an EINTR-aware stream so blocked reads wake up.
  void RequestShutdown();
  bool ShutdownRequested() const { return shutdown_token_.cancelled(); }

  ServerCounters Counters() const;
  const SolutionCache& Cache() const { return cache_; }

 private:
  struct RequestState {
    explicit RequestState(const CancelToken* drain_token)
        : token(drain_token) {}
    std::uint64_t seq = 0;
    ServeRequest request;
    CancelToken token;  ///< Linked to drain_token_: drain cancels all.
  };
  using CacheKey = std::pair<std::uint64_t, std::uint64_t>;

  /// Accept-thread handling of one raw input line.
  void HandleLine(const std::string& line);
  void HandleCancel(std::uint64_t seq, const ServeRequest& request);
  void HandleStats(std::uint64_t seq, const ServeRequest& request);
  void AdmitSolve(std::uint64_t seq, ServeRequest request);

  /// Worker-side solve (exception-isolated by the Submit wrapper).
  std::string SolveToResponse(RequestState& state);
  std::string SolveMqoRequest(RequestState& state, const Deadline& deadline);
  std::string SolveJoinRequest(RequestState& state, const Deadline& deadline);

  /// Single-flight coalescing. True when the caller now owns the key and
  /// must ReleaseFlight; false when it gave up waiting (cancelled).
  bool AcquireFlight(const CacheKey& key, const CancelToken& token);
  void ReleaseFlight(const CacheKey& key);

  /// In-order emission: responses buffer until every earlier sequence
  /// number has been written.
  void Emit(std::uint64_t seq, std::string line);

  /// Waits until no solve is in flight (stats barrier / drain).
  void AwaitIdle();
  void Drain();

  const ServerOptions options_;
  SolutionCache cache_;

  CancelToken shutdown_token_;  ///< RequestShutdown() fires this.
  CancelToken drain_token_;     ///< Fired when the drain budget expires.

  // Accept-thread-only session state (no lock needed).
  std::uint64_t next_seq_ = 0;

  mutable std::mutex state_mutex_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  ServerCounters counters_;
  std::map<std::string, std::shared_ptr<RequestState>> live_;
  std::set<std::string> precancelled_;

  std::mutex flights_mutex_;
  std::condition_variable flights_cv_;
  std::set<CacheKey> flights_;

  std::mutex emit_mutex_;
  std::ostream* out_ = nullptr;
  std::uint64_t next_emit_ = 0;
  std::map<std::uint64_t, std::string> pending_;
};

}  // namespace qopt::serve
