#pragma once

#include <string>
#include <vector>

namespace qopt::serve {

/// Exit codes of the qqo_serve daemon (documented in README.md). A
/// SIGTERM-triggered graceful drain is a *success*: the daemon stops
/// admitting, finishes or cancels in-flight work within the drain budget,
/// flushes its final metrics snapshot to stderr and exits 0.
inline constexpr int kServeExitOk = 0;
inline constexpr int kServeExitError = 1;  ///< Socket / I-O failure.
inline constexpr int kServeExitUsage = 2;  ///< Flag / environment misuse.

/// Entry point of the `qqo_serve` tool, factored out of main() so tests
/// can drive the real daemon code path in-process. `argv[0]` is the
/// program name, as in main().
///
/// Flags:
///   --socket=PATH       listen on an AF_UNIX socket (one connection at a
///                       time) instead of stdin/stdout
///   --queue=N           admission bound (default 64, env QQO_SERVE_QUEUE)
///   --cache=N           solution-cache entries (default 128,
///                       env QQO_SERVE_CACHE)
///   --drain-ms=N        graceful-drain budget, -1 waits forever
///                       (default 2000, env QQO_SERVE_DRAIN_MS)
///   --max-line-bytes=N  request-line size bound (default 1 MiB,
///                       env QQO_SERVE_MAX_LINE_BYTES)
///   --dispatch=MODE     default dispatch: serial|race (env QQO_DISPATCH)
///   --metrics           print the final metrics tables to stderr on exit
int RunQqoServe(int argc, const char* const* argv);

/// Convenience overload for tests: RunQqoServe({"qqo_serve", "--queue=4"}).
int RunQqoServe(const std::vector<std::string>& args);

}  // namespace qopt::serve
