#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/quantum_optimizer.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_problem.h"

namespace qopt::serve {

/// Line-delimited JSON protocol of qqo_serve (DESIGN.md "Serving"). Every
/// input line is one request object; every request produces exactly one
/// response line, emitted in request order. Requests carrying untrusted
/// content (all of them) are validated field by field — a malformed
/// request yields a structured error response, never a crash and never a
/// torn response stream.
///
/// Request:
///   {"id": "r1", "type": "mqo",  "workload": {...}, "backend": "sa",
///    "dispatch": "serial", "decompose": 0, "seed": 7, "timeout_ms": 500,
///    "retries": 2, "no_fallback": false, "pegasus": 4, "cache": true}
///   {"id": "r2", "type": "join", "workload": {...},
///    "thresholds": [10, 100], "precision": 0, ...}
///   {"id": "r3", "type": "stats"}
///   {"id": "r4", "type": "cancel", "target": "r9"}
///   {"id": "r5", "type": "ping"}
///
/// Response:
///   {"id": "r1", "ok": true, "cached": false, "result": {...}}
///   {"id": "r9", "ok": false,
///    "error": {"code": "UNAVAILABLE", "message": "..."}}
enum class RequestType { kMqo, kJoin, kStats, kCancel, kPing };

/// A validated solve/admin request.
struct ServeRequest {
  std::string id;
  RequestType type = RequestType::kPing;

  // Solve requests (kMqo / kJoin).
  std::optional<MqoProblem> mqo;
  std::optional<QueryGraph> join_graph;
  JoinOrderEncoderOptions join_encoder;  ///< thresholds / precision.
  Backend backend = Backend::kSimulatedAnnealing;
  DispatchMode dispatch = DispatchMode::kSerial;
  /// 0 disables decomposition; N >= 2 decomposes problems larger than N
  /// variables (OptimizerOptions::decompose).
  int decompose = 0;
  std::uint64_t seed = 7;
  /// Negative: unbounded. Zero is a legal instantly-exhausted budget.
  long long timeout_ms = -1;
  int retries = 1;
  int pegasus_m = 4;
  bool classical_fallback = true;
  bool use_cache = true;

  // kCancel.
  std::string cancel_target;
};

/// Upper bound on request ids; longer ids are rejected (they would bloat
/// every response and the in-flight registry).
inline constexpr std::size_t kMaxRequestIdBytes = 256;

/// Parses and validates one request line (already length-checked by the
/// server). `default_dispatch` supplies the daemon-wide dispatch mode
/// (QQO_DISPATCH / flag) that a request may override per call.
StatusOr<ServeRequest> ParseServeRequest(const std::string& line,
                                         DispatchMode default_dispatch);

/// Builds the compact single-line success response. `result` is the
/// request-type-specific payload object.
std::string MakeOkResponse(const std::string& id, bool cached,
                           const JsonValue& result);

/// Builds the compact single-line error response. The code string is the
/// upper-snake StatusCodeName ("UNAVAILABLE", "INVALID_ARGUMENT", ...).
/// `id` may be empty when the request never parsed far enough to have one
/// (serialized as null).
std::string MakeErrorResponse(const std::string& id, const Status& status);

/// Best-effort id recovery for error responses: when a request fails
/// validation after its "id" field already parsed (wrong workload shape,
/// bad field type, ...), the error response should still name the
/// request. Empty when the line is not an object with a legal string id.
std::string BestEffortRequestId(const std::string& line);

/// Result payload of a solved MQO request. Deterministic: holds no
/// wall-clock fields, so response streams are byte-identical across
/// QQO_THREADS (see the replay harness).
JsonValue MqoReportToJson(const MqoSolveReport& report);

/// Result payload of a solved join-order request.
JsonValue JoinReportToJson(const JoinOrderSolveReport& report);

}  // namespace qopt::serve
