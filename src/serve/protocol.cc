#include "serve/protocol.h"

#include <cmath>
#include <map>
#include <set>

#include "common/table_printer.h"
#include "io/workload_io.h"

namespace qopt::serve {
namespace {

StatusOr<Backend> ParseBackendName(const std::string& name) {
  static const std::map<std::string, Backend> kBackends = {
      {"exact", Backend::kExact},
      {"sa", Backend::kSimulatedAnnealing},
      {"qaoa", Backend::kQaoa},
      {"vqe", Backend::kVqe},
      {"adiabatic", Backend::kAdiabatic},
      {"annealer", Backend::kAnnealerEmulation}};
  auto it = kBackends.find(name);
  if (it == kBackends.end()) {
    return InvalidArgumentError(StrFormat(
        "field \"backend\": unknown backend \"%s\" (known: exact, sa, qaoa, "
        "vqe, adiabatic, annealer)",
        name.c_str()));
  }
  return it->second;
}

/// Checked integral field in [min, max]; absent yields `fallback`.
StatusOr<long long> IntField(const JsonValue& request, const char* name,
                             long long fallback, long long min,
                             long long max) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return fallback;
  QOPT_ASSIGN_OR_RETURN(const double value, field->GetNumber());
  if (value != std::floor(value) || value < static_cast<double>(min) ||
      value > static_cast<double>(max)) {
    return OutOfRangeError(
        StrFormat("field \"%s\": expected an integer in [%lld, %lld]", name,
                  min, max));
  }
  return static_cast<long long>(value);
}

StatusOr<bool> BoolField(const JsonValue& request, const char* name,
                         bool fallback) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return fallback;
  if (StatusOr<bool> value = field->GetBool(); value.ok()) return *value;
  return InvalidArgumentError(
      StrFormat("field \"%s\": expected a boolean", name));
}

StatusOr<std::string> StringField(const JsonValue& request, const char* name) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) {
    return InvalidArgumentError(
        StrFormat("missing required field \"%s\"", name));
  }
  if (StatusOr<std::string> value = field->GetString(); value.ok()) {
    return *std::move(value);
  }
  return InvalidArgumentError(
      StrFormat("field \"%s\": expected a string", name));
}

/// Every request type accepts only its own fields: a typo like
/// "timout_ms" must be a hard error, not a silently applied default
/// (mirrors the CLI's per-subcommand flag allowlists).
Status CheckAllowedFields(const JsonValue& request,
                          const std::set<std::string>& allowed) {
  for (const auto& [key, value] : request.Members()) {
    (void)value;
    if (allowed.find(key) == allowed.end()) {
      std::string known;
      for (const std::string& name : allowed) {
        known += known.empty() ? "" : ", ";
        known += name;
      }
      return InvalidArgumentError(
          StrFormat("unknown field \"%s\" for this request type (known: %s)",
                    key.c_str(), known.c_str()));
    }
  }
  return OkStatus();
}

Status ParseSolveFields(const JsonValue& json, DispatchMode default_dispatch,
                        ServeRequest* request) {
  if (const JsonValue* dispatch = json.Find("dispatch"); dispatch != nullptr) {
    QOPT_ASSIGN_OR_RETURN(const std::string text, dispatch->GetString());
    QOPT_ASSIGN_OR_RETURN(request->dispatch, ParseDispatchMode(text));
  } else {
    request->dispatch = default_dispatch;
  }
  if (const JsonValue* backend = json.Find("backend"); backend != nullptr) {
    QOPT_ASSIGN_OR_RETURN(const std::string text, backend->GetString());
    QOPT_ASSIGN_OR_RETURN(request->backend, ParseBackendName(text));
  }
  QOPT_ASSIGN_OR_RETURN(
      const long long seed,
      IntField(json, "seed", 7, 0, 1LL << 53));
  request->seed = static_cast<std::uint64_t>(seed);
  QOPT_ASSIGN_OR_RETURN(request->timeout_ms,
                        IntField(json, "timeout_ms", -1, 0,
                                 24LL * 60 * 60 * 1000));
  QOPT_ASSIGN_OR_RETURN(const long long retries,
                        IntField(json, "retries", 1, 1, 100));
  request->retries = static_cast<int>(retries);
  QOPT_ASSIGN_OR_RETURN(const long long decompose,
                        IntField(json, "decompose", 0, 0, 1000000));
  if (decompose == 1) {
    return InvalidArgumentError(
        "field \"decompose\": expected 0 (disabled) or a subproblem size "
        ">= 2");
  }
  request->decompose = static_cast<int>(decompose);
  QOPT_ASSIGN_OR_RETURN(const long long pegasus,
                        IntField(json, "pegasus", 4, 2, 16));
  request->pegasus_m = static_cast<int>(pegasus);
  QOPT_ASSIGN_OR_RETURN(const bool no_fallback,
                        BoolField(json, "no_fallback", false));
  request->classical_fallback = !no_fallback;
  QOPT_ASSIGN_OR_RETURN(request->use_cache, BoolField(json, "cache", true));
  return OkStatus();
}

Status ParseJoinEncoderFields(const JsonValue& json, ServeRequest* request) {
  request->join_encoder.thresholds = {10.0, 100.0};
  if (const JsonValue* thresholds = json.Find("thresholds");
      thresholds != nullptr) {
    if (!thresholds->IsArray() || thresholds->Size() == 0) {
      return InvalidArgumentError(
          "field \"thresholds\": expected a non-empty array of numbers");
    }
    request->join_encoder.thresholds.clear();
    request->join_encoder.thresholds.reserve(thresholds->Size());
    for (std::size_t i = 0; i < thresholds->Size(); ++i) {
      QOPT_ASSIGN_OR_RETURN(const double value,
                            thresholds->At(i).GetNumber());
      request->join_encoder.thresholds.push_back(value);
    }
  }
  QOPT_ASSIGN_OR_RETURN(const long long precision,
                        IntField(json, "precision", 0, 0, 16));
  request->join_encoder.precision_decimals = static_cast<int>(precision);
  request->join_encoder.safe_slack_bounds = true;
  return OkStatus();
}

const JsonValue* RequireWorkload(const JsonValue& json, Status* error) {
  const JsonValue* workload = json.Find("workload");
  if (workload == nullptr || !workload->IsObject()) {
    *error = InvalidArgumentError(
        "missing required field \"workload\" (object)");
    return nullptr;
  }
  return workload;
}

}  // namespace

StatusOr<ServeRequest> ParseServeRequest(const std::string& line,
                                         DispatchMode default_dispatch) {
  QOPT_ASSIGN_OR_RETURN(const JsonValue json,
                        JsonValue::ParseOrStatus(line));
  if (!json.IsObject()) {
    return InvalidArgumentError("request must be a JSON object");
  }
  ServeRequest request;
  QOPT_ASSIGN_OR_RETURN(request.id, StringField(json, "id"));
  if (request.id.empty() || request.id.size() > kMaxRequestIdBytes) {
    return InvalidArgumentError(StrFormat(
        "field \"id\": expected a non-empty string of at most %d bytes",
        static_cast<int>(kMaxRequestIdBytes)));
  }
  QOPT_ASSIGN_OR_RETURN(const std::string type, StringField(json, "type"));

  static const std::set<std::string> kSolveCommon = {
      "id",      "type",       "workload",    "backend", "dispatch",
      "seed",    "timeout_ms", "retries",     "pegasus", "no_fallback",
      "cache",   "decompose"};
  if (type == "mqo") {
    request.type = RequestType::kMqo;
    QOPT_RETURN_IF_ERROR(CheckAllowedFields(json, kSolveCommon));
    QOPT_RETURN_IF_ERROR(
        ParseSolveFields(json, default_dispatch, &request));
    Status workload_error = OkStatus();
    const JsonValue* workload = RequireWorkload(json, &workload_error);
    if (workload == nullptr) return workload_error;
    QOPT_ASSIGN_OR_RETURN(request.mqo, MqoProblemFromJson(*workload));
    return request;
  }
  if (type == "join") {
    request.type = RequestType::kJoin;
    std::set<std::string> allowed = kSolveCommon;
    allowed.insert("thresholds");
    allowed.insert("precision");
    QOPT_RETURN_IF_ERROR(CheckAllowedFields(json, allowed));
    QOPT_RETURN_IF_ERROR(
        ParseSolveFields(json, default_dispatch, &request));
    QOPT_RETURN_IF_ERROR(ParseJoinEncoderFields(json, &request));
    Status workload_error = OkStatus();
    const JsonValue* workload = RequireWorkload(json, &workload_error);
    if (workload == nullptr) return workload_error;
    QOPT_ASSIGN_OR_RETURN(request.join_graph, QueryGraphFromJson(*workload));
    return request;
  }
  if (type == "stats") {
    request.type = RequestType::kStats;
    QOPT_RETURN_IF_ERROR(CheckAllowedFields(json, {"id", "type"}));
    return request;
  }
  if (type == "cancel") {
    request.type = RequestType::kCancel;
    QOPT_RETURN_IF_ERROR(
        CheckAllowedFields(json, {"id", "type", "target"}));
    QOPT_ASSIGN_OR_RETURN(request.cancel_target, StringField(json, "target"));
    if (request.cancel_target.empty() ||
        request.cancel_target.size() > kMaxRequestIdBytes) {
      return InvalidArgumentError(
          "field \"target\": expected a non-empty request id");
    }
    return request;
  }
  if (type == "ping") {
    request.type = RequestType::kPing;
    QOPT_RETURN_IF_ERROR(CheckAllowedFields(json, {"id", "type"}));
    return request;
  }
  return InvalidArgumentError(StrFormat(
      "field \"type\": unknown request type \"%s\" (known: mqo, join, "
      "stats, cancel, ping)",
      type.c_str()));
}

std::string BestEffortRequestId(const std::string& line) {
  const std::optional<JsonValue> json = JsonValue::Parse(line);
  if (!json.has_value() || !json->IsObject()) return "";
  const JsonValue* id = json->Find("id");
  if (id == nullptr || !id->IsString()) return "";
  const std::string& text = id->AsString();
  if (text.empty() || text.size() > kMaxRequestIdBytes) return "";
  return text;
}

std::string MakeOkResponse(const std::string& id, bool cached,
                           const JsonValue& result) {
  JsonValue response = JsonValue::Object();
  response.Set("id", JsonValue::String(id));
  response.Set("ok", JsonValue::Bool(true));
  response.Set("cached", JsonValue::Bool(cached));
  response.Set("result", result);
  return response.Dump();
}

std::string MakeErrorResponse(const std::string& id, const Status& status) {
  JsonValue response = JsonValue::Object();
  response.Set("id", id.empty() ? JsonValue::Null() : JsonValue::String(id));
  response.Set("ok", JsonValue::Bool(false));
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(std::string(
                        StatusCodeName(status.code()))));
  error.Set("message", JsonValue::String(status.message()));
  response.Set("error", error);
  return response.Dump();
}

namespace {

/// Shared deterministic solve fields: no wall-clock values (elapsed_ms and
/// per-lane timings stay in the metrics / stderr diagnostics), so the
/// payload is byte-identical across thread counts.
void FillCommonReportFields(const std::string& kind, Backend backend_used,
                            bool degraded,
                            const std::string& degradation_reason,
                            int qubits, int quadratic_terms,
                            const SolveStats& stats, bool valid,
                            double energy, JsonValue* result) {
  result->Set("kind", JsonValue::String(kind));
  result->Set("backend", JsonValue::String(BackendName(backend_used)));
  result->Set("degraded", JsonValue::Bool(degraded));
  if (degraded) {
    result->Set("degradation_reason", JsonValue::String(degradation_reason));
  }
  result->Set("qubits", JsonValue::Number(qubits));
  result->Set("quadratic_terms", JsonValue::Number(quadratic_terms));
  result->Set("attempts", JsonValue::Number(stats.attempts));
  result->Set("timed_out", JsonValue::Bool(stats.timed_out));
  if (!stats.lanes.empty()) {
    result->Set("race_lanes",
                JsonValue::Number(static_cast<int>(stats.lanes.size())));
  }
  if (stats.decompose_rounds > 0) {
    result->Set("decompose_rounds", JsonValue::Number(stats.decompose_rounds));
    result->Set("decompose_subproblems",
                JsonValue::Number(stats.decompose_subproblems));
  }
  result->Set("valid", JsonValue::Bool(valid));
  result->Set("energy", JsonValue::Number(energy));
}

}  // namespace

JsonValue MqoReportToJson(const MqoSolveReport& report) {
  JsonValue result = JsonValue::Object();
  FillCommonReportFields("mqo", report.backend_used, report.degraded,
                         report.degradation_reason, report.qubits,
                         report.quadratic_terms, report.stats, report.valid,
                         report.qubo_energy, &result);
  if (report.valid) {
    result.Set("cost", JsonValue::Number(report.solution.cost));
    JsonValue selection = JsonValue::Array();
    for (int plan : report.solution.selection) {
      selection.Append(JsonValue::Number(plan));
    }
    result.Set("selection", selection);
  }
  return result;
}

JsonValue JoinReportToJson(const JoinOrderSolveReport& report) {
  JsonValue result = JsonValue::Object();
  FillCommonReportFields("join", report.backend_used, report.degraded,
                         report.degradation_reason, report.qubits,
                         report.quadratic_terms, report.stats, report.valid,
                         report.qubo_energy, &result);
  if (report.valid) {
    result.Set("cost", JsonValue::Number(report.solution.cost));
    JsonValue order = JsonValue::Array();
    for (int relation : report.solution.order) {
      order.Append(JsonValue::Number(relation));
    }
    result.Set("order", order);
  }
  return result;
}

}  // namespace qopt::serve
