#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace qopt {
namespace {

/// splitmix64 finalizer — the same mixing used for per-read RNG streams.
std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

double BackoffMillis(const RetryPolicy& policy, int attempt) {
  if (attempt < 1 || policy.initial_backoff_ms <= 0.0) return 0.0;
  const double nominal =
      policy.initial_backoff_ms *
      std::pow(std::max(1.0, policy.backoff_multiplier), attempt - 1);
  const double capped = std::min(nominal, policy.max_backoff_ms);
  // Jitter in [0.5, 1.0]: spreads retries without ever exceeding the cap.
  const std::uint64_t h =
      Mix64(policy.seed + 0x9E3779B97F4A7C15ULL *
                              static_cast<std::uint64_t>(attempt));
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return capped * jitter;
}

std::uint64_t AttemptSeed(std::uint64_t seed, std::int64_t attempt) {
  if (attempt <= 1) return seed;
  return Mix64(seed +
               0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt));
}

bool IsRetryableStatus(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

bool SleepWithDeadline(double ms, const Deadline& deadline) {
  if (deadline.Cancelled()) return false;
  if (ms <= 0.0) return true;
  if (ms >= deadline.RemainingMillis()) return false;
  // Sleep in short slices so a cancellation is observed promptly.
  constexpr double kSliceMs = 5.0;
  double left = ms;
  while (left > 0.0) {
    if (deadline.Cancelled()) return false;
    const double slice = std::min(left, kSliceMs);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    left -= slice;
  }
  return !deadline.Cancelled();
}

}  // namespace qopt
