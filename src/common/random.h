#pragma once

#include <cstdint>
#include <vector>

namespace qopt {

/// Deterministic, fast pseudo-random number generator (xoshiro256**) used
/// everywhere in the library so that experiments are reproducible from a
/// single seed. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p = 0.5);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = NextUint64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qopt
