#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace qopt {

/// Recoverable-error layer. Boundary code that processes external input
/// (workload files, CLI flags, backend dispatch) reports failures through
/// `Status` / `StatusOr<T>` instead of aborting; `QOPT_CHECK` remains
/// reserved for genuine internal invariants (see "Error handling contract"
/// in DESIGN.md).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< Caller-supplied input is malformed.
  kNotFound,            ///< A named resource (file, key) does not exist.
  kOutOfRange,          ///< A value falls outside its documented domain.
  kFailedPrecondition,  ///< The operation cannot run in the current state.
  kResourceExhausted,   ///< A size/budget limit would be exceeded.
  kUnavailable,         ///< A best-effort step failed (e.g. no embedding).
  kInternal,            ///< Invariant violation surfaced as an error.
  kDeadlineExceeded,    ///< The wall-clock budget ran out mid-operation.
  kCancelled,           ///< A CancelToken fired; the caller gave up.
};

/// Readable upper-snake name ("INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    QOPT_CHECK_MSG(code != StatusCode::kOk || message_.empty(),
                   "OK status carries no message");
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  /// Explicitly discards the status — documents call sites that
  /// intentionally drop it despite [[nodiscard]].
  void IgnoreError() const {}

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);

/// Returns `status` with "<context>: " prefixed to its message (OK passes
/// through untouched). Used to add file / field context while an error
/// propagates outward.
Status Annotate(const Status& status, std::string_view context);

/// Result-or-error. Exactly one of the two is held: either an engaged
/// value (and an OK status) or a non-OK status. Accessing the value of an
/// errored StatusOr is a programming error and aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from an error status (must not be OK).
  StatusOr(Status status) : status_(std::move(status)) {
    QOPT_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  /// Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QOPT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    QOPT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    QOPT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// value() when ok, `fallback` otherwise.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace qopt

/// Propagates a non-OK Status out of the calling function.
#define QOPT_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::qopt::Status qopt_status_tmp_ = (expr);      \
    if (!qopt_status_tmp_.ok()) {                  \
      return qopt_status_tmp_;                     \
    }                                              \
  } while (0)

#define QOPT_STATUS_CONCAT_INNER_(a, b) a##b
#define QOPT_STATUS_CONCAT_(a, b) QOPT_STATUS_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr expression; on error returns its Status, on
/// success assigns the value to `lhs` (which may declare a new variable):
///   QOPT_ASSIGN_OR_RETURN(const JsonValue json, ParseJson(text));
#define QOPT_ASSIGN_OR_RETURN(lhs, expr) \
  QOPT_ASSIGN_OR_RETURN_IMPL_(           \
      QOPT_STATUS_CONCAT_(qopt_statusor_, __LINE__), lhs, expr)

#define QOPT_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                                \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value();
