#include "common/deadline.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qopt {
namespace {

Deadline::Clock::duration MillisToDuration(double ms) {
  if (ms < 0.0) ms = 0.0;
  return std::chrono::duration_cast<Deadline::Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Deadline Deadline::AfterMillis(double ms) {
  return At(Clock::now() + MillisToDuration(ms));
}

Deadline Deadline::WithBudget(Clock::duration budget) const {
  const Clock::time_point staged = Clock::now() + budget;
  return Deadline(std::min(when_, staged), token_);
}

Deadline Deadline::WithBudgetMillis(double ms) const {
  return WithBudget(MillisToDuration(ms));
}

double Deadline::RemainingMillis() const {
  if (unbounded()) return std::numeric_limits<double>::infinity();
  const auto left = std::chrono::duration<double, std::milli>(
      when_ - Clock::now());
  return std::max(0.0, left.count());
}

}  // namespace qopt
