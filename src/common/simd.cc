#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/check.h"

namespace qopt {
namespace {

/// Test override stack top: -1 means "no override", otherwise the
/// SimdLevel value. A relaxed atomic keeps ActiveSimdLevel() one load on
/// the kernel dispatch path; overrides only happen in tests.
std::atomic<int> g_override{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if QQO_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel BestSupportedSimdLevel() {
#if QQO_SIMD_NEON
  return SimdLevel::kNeon;
#else
  if (CpuSupportsAvx2()) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#endif
}

StatusOr<SimdLevel> ParseSimdLevel(std::string_view name,
                                   std::string_view text) {
  if (text.empty() || text == "auto") return BestSupportedSimdLevel();
  if (text == "scalar" || text == "0") return SimdLevel::kScalar;
  if (text == "avx2") {
    if (!CpuSupportsAvx2()) {
      return InvalidArgumentError(std::string(name) +
                                  "=avx2 but this build/CPU cannot execute "
                                  "AVX2 instructions");
    }
    return SimdLevel::kAvx2;
  }
  if (text == "neon") {
#if QQO_SIMD_NEON
    return SimdLevel::kNeon;
#else
    return InvalidArgumentError(std::string(name) +
                                "=neon but this is not an ARM NEON build");
#endif
  }
  return InvalidArgumentError(std::string(name) + "='" + std::string(text) +
                              "' is not a SIMD level (expected auto, "
                              "scalar, avx2 or neon)");
}

StatusOr<SimdLevel> SimdLevelFromEnvOrStatus() {
  const char* value = std::getenv("QQO_SIMD");
  return ParseSimdLevel("QQO_SIMD", value == nullptr ? "" : value);
}

SimdLevel ActiveSimdLevel() {
  const int override_level = g_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<SimdLevel>(override_level);
  static const SimdLevel kEnvLevel = [] {
    StatusOr<SimdLevel> level = SimdLevelFromEnvOrStatus();
    QOPT_CHECK_MSG(level.ok(), level.status().ToString().c_str());
    return *level;
  }();
  return kEnvLevel;
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level)
    : previous_(g_override.exchange(static_cast<int>(level),
                                    std::memory_order_relaxed)) {}

ScopedSimdLevel::~ScopedSimdLevel() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace qopt
