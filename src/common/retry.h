#pragma once

#include <cstdint>

#include "common/deadline.h"
#include "common/status.h"

namespace qopt {

/// Retry budget with deterministic seeded backoff. Attempt k (k = 1 is
/// the first retry) waits
///   initial_backoff_ms * backoff_multiplier^(k-1) * jitter(seed, k)
/// where jitter is a splitmix-derived factor in [0.5, 1.0] — deterministic
/// for a given (seed, attempt), so retried runs reproduce their timing
/// decisions exactly. The nominal wait is clamped to max_backoff_ms.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 1;
  /// Base wait before the first retry; 0 retries immediately.
  double initial_backoff_ms = 0.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Jitter stream; combined with the attempt index.
  std::uint64_t seed = 0;
};

/// Deterministic backoff before retry attempt `attempt` (1-based).
double BackoffMillis(const RetryPolicy& policy, int attempt);

/// Deterministic per-attempt seed stream (splitmix64 finalizer). Attempt 1
/// (and below) keeps the caller's seed so retry-free runs reproduce
/// historical output bit-for-bit; every other attempt jumps to an
/// unrelated stream. The facade's dispatch layers partition the attempt
/// domain so their streams never collide: serial retries use 1..N, the
/// race tie keys use 1000 + lane rank, and the decomposer's partition /
/// subproblem seeds use dedicated bases >= 2^16 (see decompose/).
std::uint64_t AttemptSeed(std::uint64_t seed, std::int64_t attempt);

/// True for failures worth retrying with a fresh seed: transient
/// best-effort losses (kUnavailable — e.g. no minor embedding found, an
/// injected transient fault). Deterministic input errors, size limits and
/// budget exhaustion are not retryable.
bool IsRetryableStatus(StatusCode code);

/// Sleeps for `ms`, but never past `deadline`. Returns false (without
/// sleeping the full duration) when the deadline would be crossed or the
/// token fired — the caller should stop retrying.
bool SleepWithDeadline(double ms, const Deadline& deadline);

}  // namespace qopt
