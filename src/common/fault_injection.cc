#include "common/fault_injection.h"

#include <cstdlib>

#include "common/check.h"
#include "common/table_printer.h"
#include "obs/metrics.h"

namespace qopt {
namespace {

StatusOr<StatusCode> CodeFromName(std::string_view name,
                                  std::string_view site) {
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "out_of_range") return StatusCode::kOutOfRange;
  if (name == "failed_precondition") return StatusCode::kFailedPrecondition;
  if (name == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (name == "unavailable") return StatusCode::kUnavailable;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "deadline_exceeded") return StatusCode::kDeadlineExceeded;
  if (name == "cancelled") return StatusCode::kCancelled;
  return InvalidArgumentError(StrFormat(
      "QQO_FAULTS: unknown status \"%.*s\" for site \"%.*s\"",
      static_cast<int>(name.size()), name.data(),
      static_cast<int>(site.size()), site.data()));
}

// Parse QQO_FAULTS once at startup: the fast path reads only the static
// counter and never constructs the registry, so without this an armed
// environment spec would go unnoticed in processes (like the CLI) where
// no test code touches Instance() first.
[[maybe_unused]] const bool g_env_armed = [] {
  FaultInjection::Instance();
  return true;
}();

/// Outcome of the startup QQO_FAULTS parse, for EnvSpecStatus().
Status* EnvSpecStatusSlot() {
  static Status* slot = new Status();
  return slot;
}

}  // namespace

std::atomic<int> FaultInjection::armed_sites_{0};

FaultInjection& FaultInjection::Instance() {
  static FaultInjection* instance = [] {
    auto* created = new FaultInjection();
    if (const char* env = std::getenv("QQO_FAULTS");
        env != nullptr && *env != '\0') {
      const Status armed = created->ArmFromSpec(env);
      if (!armed.ok()) {
        created->DisarmAll();  // entries before the malformed one
        // Surface instead of aborting: this runs inside a static
        // initializer, where an abort produces no usable diagnostics.
        // Nothing is armed from a bad spec; front-ends check
        // EnvSpecStatus() and refuse to run.
        *EnvSpecStatusSlot() = armed;
        std::fprintf(stderr, "warning: ignoring invalid QQO_FAULTS: %s\n",
                     armed.ToString().c_str());
      }
    }
    return created;
  }();
  return *instance;
}

Status FaultInjection::EnvSpecStatus() {
  Instance();  // force the startup parse
  return *EnvSpecStatusSlot();
}

void FaultInjection::Arm(std::string site, Status status, int after_n,
                         int times) {
  QOPT_CHECK_MSG(!status.ok(), "cannot inject an OK status");
  QOPT_CHECK(after_n >= 0);
  QOPT_CHECK(times == -1 || times >= 1);
  std::lock_guard<std::mutex> lock(mutex_);
  Rule& rule = rules_[std::move(site)];
  if (!rule.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  rule.status = std::move(status);
  rule.skip_remaining = after_n;
  rule.fire_remaining = times;
  rule.passes = 0;
  rule.armed = true;
}

void FaultInjection::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rules_.find(site);
  if (it == rules_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjection::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [site, rule] : rules_) {
    if (rule.armed) {
      rule.armed = false;
      armed_sites_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

Status FaultInjection::ArmFromSpec(std::string_view spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(start, comma - start);
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 =
        c1 == std::string_view::npos ? std::string_view::npos
                                     : entry.find(':', c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos ||
        c1 == 0) {
      return InvalidArgumentError(StrFormat(
          "QQO_FAULTS: expected site:after_n:status, got \"%.*s\"",
          static_cast<int>(entry.size()), entry.data()));
    }
    const std::string_view site = entry.substr(0, c1);
    const std::string_view count = entry.substr(c1 + 1, c2 - c1 - 1);
    const std::string_view status_name = entry.substr(c2 + 1);
    long long after_n = 0;
    if (count.empty()) {
      return InvalidArgumentError(StrFormat(
          "QQO_FAULTS: missing after_n in \"%.*s\"",
          static_cast<int>(entry.size()), entry.data()));
    }
    for (char c : count) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError(StrFormat(
            "QQO_FAULTS: after_n must be a non-negative integer in "
            "\"%.*s\"",
            static_cast<int>(entry.size()), entry.data()));
      }
      after_n = after_n * 10 + (c - '0');
      if (after_n > 1000000000) {
        return OutOfRangeError("QQO_FAULTS: after_n too large");
      }
    }
    QOPT_ASSIGN_OR_RETURN(const StatusCode code,
                          CodeFromName(status_name, site));
    Arm(std::string(site),
        Status(code, StrFormat("injected fault at %.*s",
                               static_cast<int>(site.size()), site.data())),
        static_cast<int>(after_n));
    if (comma == spec.size()) break;
    start = comma + 1;
  }
  return OkStatus();
}

Status FaultInjection::Fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rules_.find(site);
  if (it == rules_.end() || !it->second.armed) return OkStatus();
  Rule& rule = it->second;
  ++rule.passes;
  if (rule.skip_remaining > 0) {
    --rule.skip_remaining;
    return OkStatus();
  }
  if (rule.fire_remaining == 0) return OkStatus();
  if (rule.fire_remaining > 0 && --rule.fire_remaining == 0) {
    rule.armed = false;
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  QQO_COUNT("fault.fires", 1);
  return rule.status;
}

long long FaultInjection::PassCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rules_.find(site);
  return it == rules_.end() ? 0 : it->second.passes;
}

std::vector<std::string> FaultInjection::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> sites;
  for (const auto& [site, rule] : rules_) {
    if (rule.armed) sites.push_back(site);
  }
  return sites;
}

}  // namespace qopt
