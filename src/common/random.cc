#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace qopt {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64 so that nearby seeds yield unrelated
  // streams (xoshiro must not be seeded with all zeros).
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  QOPT_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  QOPT_CHECK(lo <= hi);
  return lo + static_cast<int>(NextUint64(
                  static_cast<std::uint64_t>(hi) - lo + 1));
}

double Rng::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

}  // namespace qopt
