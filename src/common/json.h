#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qopt {

/// Minimal JSON document model (null, bool, number, string, array,
/// object) with a strict recursive-descent parser and a serializer.
/// Used for workload files (MQO batches, query graphs) and CLI I/O —
/// deliberately small, no external dependencies.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  /// Value accessors; abort on kind mismatch (validate first). These are
  /// for code that has already validated the document shape — input paths
  /// handling untrusted documents use the Get* accessors below instead.
  bool AsBool() const;
  double AsNumber() const;
  int AsInt() const;  ///< AsNumber() cast with range check.
  const std::string& AsString() const;

  /// Checked accessors for untrusted documents: kind mismatches and range
  /// violations come back as Status instead of aborting the process.
  StatusOr<bool> GetBool() const;
  /// Rejects non-finite values (NaN / Inf cannot appear in JSON text but
  /// can in hand-built documents).
  StatusOr<double> GetNumber() const;
  /// GetNumber() plus an integrality and int-range check, so workload
  /// indices like 0.5 or 1e20 are rejected rather than aborting.
  StatusOr<int> GetInt() const;
  StatusOr<std::string> GetString() const;

  /// Readable kind name ("null", "bool", "number", "string", "array",
  /// "object") for diagnostics.
  static std::string_view KindName(Kind kind);

  /// Array access.
  std::size_t Size() const;  ///< Elements (array) or members (object).
  const JsonValue& At(std::size_t index) const;
  void Append(JsonValue value);  ///< Array only.

  /// Object access. Find returns nullptr when absent.
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  void Set(const std::string& key, JsonValue value);  ///< Object only.
  const std::map<std::string, JsonValue>& Members() const;

  /// Parses a complete JSON document; returns nullopt and sets `error`
  /// (if non-null) on malformed input or trailing garbage. Errors carry
  /// line/column context.
  static std::optional<JsonValue> Parse(std::string_view text,
                                        std::string* error = nullptr);

  /// Status flavour of Parse (kInvalidArgument on malformed input).
  static StatusOr<JsonValue> ParseOrStatus(std::string_view text);

  /// Serializes; indent < 0 produces compact output, otherwise
  /// `indent`-space pretty printing.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Reads a whole file into a string; nullopt if unreadable.
std::optional<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file; false on failure.
bool WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace qopt
