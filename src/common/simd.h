#pragma once

#include <string_view>

#include "common/status.h"

/// Compile-time SIMD capability probes for the statevector kernels.
/// QQO_SIMD_X86 marks a GNU-compatible x86 build where AVX2 kernels can be
/// compiled behind a per-function target attribute and selected at runtime
/// via CPUID; QQO_SIMD_NEON marks an AArch64/ARM build whose baseline ISA
/// already includes the 128-bit vector unit, so the NEON kernels need no
/// runtime probe at all.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define QQO_SIMD_X86 1
#else
#define QQO_SIMD_X86 0
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define QQO_SIMD_NEON 1
#else
#define QQO_SIMD_NEON 0
#endif

#if QQO_SIMD_X86
/// Compiles one function for AVX2 regardless of the translation unit's
/// baseline -m flags. Deliberately does NOT enable FMA: fused multiply-add
/// contracts a*b+c into one rounding, which would break the bit-for-bit
/// equivalence between the vector kernels and the scalar fallback.
#define QQO_SIMD_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define QQO_SIMD_TARGET_AVX2
#endif

namespace qopt {

/// Which instruction set the vectorized kernels dispatch to. The scalar
/// path is always available and is the semantic reference: every SIMD
/// kernel in the repo performs the same primitive FP operations in the
/// same order as its scalar twin, so the two produce byte-identical
/// results (see DESIGN.md "Performance").
enum class SimdLevel {
  kScalar,
  kAvx2,
  kNeon,
};

/// Human-readable name ("scalar", "avx2", "neon") for logs and snapshots.
const char* SimdLevelName(SimdLevel level);

/// True when the running CPU can execute AVX2 instructions. Always false
/// on non-x86 builds.
bool CpuSupportsAvx2();

/// Best level the current build + CPU supports (the "auto" resolution).
SimdLevel BestSupportedSimdLevel();

/// Parses a QQO_SIMD override: "auto" (best supported), "scalar", "avx2",
/// "neon". Requesting a level the build or CPU cannot execute, or any
/// other text, is kInvalidArgument with `name` in the message — never a
/// silent fallback (same contract as QQO_THREADS parsing).
StatusOr<SimdLevel> ParseSimdLevel(std::string_view name,
                                   std::string_view text);

/// Process-wide active level. Resolved once from the QQO_SIMD environment
/// variable (unset/empty means "auto") on first call and cached; aborts
/// with the parse error on an invalid value, mirroring
/// ThreadPool::PoolSizeFromEnv(). Tests override it with ScopedSimdLevel
/// instead of mutating the environment mid-process.
SimdLevel ActiveSimdLevel();

/// Status-returning flavour of the QQO_SIMD resolution for front-ends
/// that validate the environment before doing work.
StatusOr<SimdLevel> SimdLevelFromEnvOrStatus();

/// RAII override of ActiveSimdLevel() so one process can run the same
/// kernel under several levels and assert the results are identical.
/// Overrides nest; each restores the previous level on destruction.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ~ScopedSimdLevel();

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  int previous_;
};

}  // namespace qopt
