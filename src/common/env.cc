#include "common/env.h"

#include <charconv>
#include <cstdlib>

#include "common/table_printer.h"

namespace qopt {

StatusOr<long long> ParseEnvInt(std::string_view name, std::string_view text,
                                long long min_value, long long max_value) {
  const std::string label(name);
  const std::string value(text);
  if (value.empty()) {
    return InvalidArgumentError(
        StrFormat("%s: expected an integer, got an empty value", label.c_str()));
  }
  long long parsed = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  // Order matters: from_chars leaves `parsed` untouched on invalid input,
  // so testing the range first would misreport "abc" as out of range.
  if (ec == std::errc::invalid_argument) {
    return InvalidArgumentError(StrFormat("%s: expected an integer, got '%s'",
                                          label.c_str(), value.c_str()));
  }
  if (ec == std::errc::result_out_of_range) {
    return OutOfRangeError(StrFormat("%s: value '%s' overflows",
                                     label.c_str(), value.c_str()));
  }
  if (ptr != end) {
    return InvalidArgumentError(
        StrFormat("%s: trailing characters after integer in '%s'",
                  label.c_str(), value.c_str()));
  }
  if (parsed < min_value || parsed > max_value) {
    return OutOfRangeError(StrFormat("%s: value %lld out of range [%lld, %lld]",
                                     label.c_str(), parsed, min_value,
                                     max_value));
  }
  return parsed;
}

StatusOr<std::optional<long long>> EnvIntOrStatus(const char* name,
                                                  long long min_value,
                                                  long long max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::optional<long long>();
  QOPT_ASSIGN_OR_RETURN(long long parsed,
                        ParseEnvInt(name, env, min_value, max_value));
  return std::optional<long long>(parsed);
}

std::optional<std::string> EnvString(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::string(env);
}

}  // namespace qopt
