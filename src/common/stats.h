#pragma once

#include <cstddef>
#include <vector>

namespace qopt {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes summary statistics; returns a zeroed Summary for empty input.
Summary Summarize(const std::vector<double>& values);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

}  // namespace qopt
