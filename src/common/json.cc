#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {
namespace {

/// Renders a byte offset as "line L, column C" (1-based) so parse errors
/// in workload files point at the offending spot.
std::string DescribePosition(std::string_view text, std::size_t pos) {
  std::size_t line = 1;
  std::size_t column = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return StrFormat("line %zu, column %zu", line, column);
}

/// Recursive-descent JSON parser over a string_view with position state.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> ParseDocument(std::string* error) {
    std::optional<JsonValue> value = ParseValue();
    if (!value.has_value()) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = StrFormat("trailing characters at %s",
                           DescribePosition(text_, pos_).c_str());
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = StrFormat("%s at %s", message.c_str(),
                         DescribePosition(text_, pos_).c_str());
    }
    return false;
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return Fail(StrFormat("expected '%c'", expected));
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return Fail("invalid literal");
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string s;
        if (!ParseString(&s)) return std::nullopt;
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (!ConsumeLiteral("true")) return std::nullopt;
        return JsonValue::Bool(true);
      case 'f':
        if (!ConsumeLiteral("false")) return std::nullopt;
        return JsonValue::Bool(false);
      case 'n':
        if (!ConsumeLiteral("null")) return std::nullopt;
        return JsonValue::Null();
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("invalid number");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      Fail("invalid number");
      return std::nullopt;
    }
    return JsonValue::Number(value);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          default:
            return Fail("unsupported escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      std::optional<JsonValue> element = ParseValue();
      if (!element.has_value()) return std::nullopt;
      array.Append(std::move(*element));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']')) return std::nullopt;
      return array;
    }
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) return std::nullopt;
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      object.Set(key, std::move(*value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) return std::nullopt;
      return object;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  QOPT_CHECK_MSG(IsBool(), "not a bool");
  return bool_;
}

double JsonValue::AsNumber() const {
  QOPT_CHECK_MSG(IsNumber(), "not a number");
  return number_;
}

int JsonValue::AsInt() const {
  const double value = AsNumber();
  QOPT_CHECK_MSG(value >= std::numeric_limits<int>::min() &&
                     value <= std::numeric_limits<int>::max() &&
                     value == std::floor(value),
                 "not an int");
  return static_cast<int>(value);
}

const std::string& JsonValue::AsString() const {
  QOPT_CHECK_MSG(IsString(), "not a string");
  return string_;
}

std::string_view JsonValue::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "unknown";
}

namespace {

Status KindMismatch(std::string_view wanted, JsonValue::Kind got) {
  return InvalidArgumentError(
      StrFormat("expected a %.*s, got a %.*s",
                static_cast<int>(wanted.size()), wanted.data(),
                static_cast<int>(JsonValue::KindName(got).size()),
                JsonValue::KindName(got).data()));
}

}  // namespace

StatusOr<bool> JsonValue::GetBool() const {
  if (!IsBool()) return KindMismatch("bool", kind_);
  return bool_;
}

StatusOr<double> JsonValue::GetNumber() const {
  if (!IsNumber()) return KindMismatch("number", kind_);
  if (!std::isfinite(number_)) {
    return OutOfRangeError("number is not finite");
  }
  return number_;
}

StatusOr<int> JsonValue::GetInt() const {
  QOPT_ASSIGN_OR_RETURN(const double value, GetNumber());
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return OutOfRangeError(StrFormat("%g does not fit in an int", value));
  }
  if (value != std::floor(value)) {
    return InvalidArgumentError(StrFormat("%g is not an integer", value));
  }
  return static_cast<int>(value);
}

StatusOr<std::string> JsonValue::GetString() const {
  if (!IsString()) return KindMismatch("string", kind_);
  return string_;
}

std::size_t JsonValue::Size() const {
  if (IsArray()) return array_.size();
  if (IsObject()) return object_.size();
  QOPT_CHECK_MSG(false, "Size() on a scalar");
  return 0;
}

const JsonValue& JsonValue::At(std::size_t index) const {
  QOPT_CHECK_MSG(IsArray(), "not an array");
  QOPT_CHECK(index < array_.size());
  return array_[index];
}

void JsonValue::Append(JsonValue value) {
  QOPT_CHECK_MSG(IsArray(), "not an array");
  array_.push_back(std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  QOPT_CHECK_MSG(IsObject(), "not an object");
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  QOPT_CHECK_MSG(IsObject(), "not an object");
  object_[key] = std::move(value);
}

const std::map<std::string, JsonValue>& JsonValue::Members() const {
  QOPT_CHECK_MSG(IsObject(), "not an object");
  return object_;
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text,
                                          std::string* error) {
  Parser parser(text);
  return parser.ParseDocument(error);
}

StatusOr<JsonValue> JsonValue::ParseOrStatus(std::string_view text) {
  std::string error;
  std::optional<JsonValue> value = Parse(text, &error);
  if (!value.has_value()) return InvalidArgumentError(std::move(error));
  return *std::move(value);
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* newline = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      if (number_ == std::floor(number_) &&
          std::abs(number_) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(number_));
      } else {
        *out += StrFormat("%.17g", number_);
      }
      return;
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      *out += newline;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += newline;
      }
      *out += close_pad + "]";
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      *out += newline;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        *out += pad;
        AppendEscaped(out, key);
        *out += pretty ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
        if (++i < object_.size()) *out += ",";
        *out += newline;
      }
      *out += close_pad + "}";
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string content;
  char buffer[4096];
  std::size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  return content;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  return written == content.size();
}

}  // namespace qopt
