#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace qopt {

/// Fixed-size worker pool shared by every parallel hot path (multi-seed
/// transpilation, multi-read annealing, multi-seed embedding, statevector
/// kernels). The pool size counts the calling thread: a pool of size N
/// spawns N-1 workers and the caller participates in every ParallelFor, so
/// size 1 spawns no threads at all and runs the exact serial code path.
///
/// Determinism contract: ParallelFor writes results through the iteration
/// index only, so callers that index output slots by iteration get
/// identical results for any pool size. Nested ParallelFor calls (from
/// inside a worker) run serially inline, which also makes the pool
/// deadlock-free under composition.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int NumThreads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n) and blocks until all calls have
  /// returned. The first exception thrown by fn (if any) is rethrown in
  /// the caller once every in-flight iteration has finished. With a pool
  /// of size 1 — or when called from inside another ParallelFor — the
  /// loop runs serially in index order on the calling thread.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked flavour for tight kernels: fn(begin, end) receives half-open
  /// index ranges of at most `grain` elements. Chunk boundaries depend only
  /// on (n, grain), never on the pool size, so blockwise accumulations are
  /// reproducible across thread counts.
  void ParallelForRange(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cancellable flavour: the deadline (and its CancelToken) is checked
  /// once per chunk at the claim boundary. On expiry or cancellation,
  /// chunks that have not started yet are skipped while in-flight chunks
  /// drain to completion, then the deadline's Status (kDeadlineExceeded or
  /// kCancelled) is returned. Returns OK iff every iteration ran — and a
  /// run that returns OK executed exactly the chunk schedule of the
  /// deadline-free overload, so completed runs stay bit-for-bit
  /// deterministic. Iterations themselves are never interrupted mid-call.
  Status ParallelFor(std::size_t n, const Deadline& deadline,
                     const std::function<void(std::size_t)>& fn);

  /// Cancellable chunked flavour; see the deadline-aware ParallelFor.
  Status ParallelForRange(
      std::size_t n, std::size_t grain, const Deadline& deadline,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Enqueues one task; the future reports completion or the task's
  /// exception. With a pool of size 1 the task runs immediately inline.
  std::future<void> Submit(std::function<void()> task);

  /// Process-wide default pool. Sized exactly once, by the value
  /// PoolSizeFromEnv() returns at the first Default() call in the process;
  /// changing QQO_THREADS afterwards does NOT resize it (the pool owns
  /// running threads and never re-reads the environment). Tests that need
  /// a different size install one with ScopedDefaultPool instead of
  /// mutating the environment mid-process.
  static ThreadPool& Default();

  /// Pool size requested by the environment: QQO_THREADS if set,
  /// otherwise std::thread::hardware_concurrency() (at least 1). Read
  /// fresh on every call — but note that Default() only consults it once
  /// (see above). A set-but-invalid QQO_THREADS (non-numeric, zero,
  /// negative, overflow) is a kInvalidArgument / kOutOfRange Status, not
  /// a silent fallback; front-ends validate this before doing work.
  static StatusOr<int> PoolSizeFromEnvOrStatus();

  /// CHECK-ing flavour of PoolSizeFromEnvOrStatus() for contexts with no
  /// Status channel (static initialization of Default()); aborts with the
  /// parse error message on invalid QQO_THREADS.
  static int PoolSizeFromEnv();

 private:
  friend class ScopedDefaultPool;

  void WorkerLoop();
  /// Claims chunks until none remain. Returns once the queue is drained
  /// (other claimed chunks may still be running elsewhere).
  struct ForState;
  static void RunChunks(ForState* state);
  /// Shared body of both ParallelForRange overloads; `deadline` may be
  /// null (never checked, never returns non-OK).
  Status ParallelForRangeImpl(
      std::size_t n, std::size_t grain, const Deadline* deadline,
      const std::function<void(std::size_t, std::size_t)>& fn);

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  bool shutting_down_ = false;
};

/// RAII override of ThreadPool::Default() — lets tests run the same code
/// under pools of different sizes within one process to assert that
/// results are identical at 1 thread and at N threads.
class ScopedDefaultPool {
 public:
  explicit ScopedDefaultPool(ThreadPool* pool);
  ~ScopedDefaultPool();

  ScopedDefaultPool(const ScopedDefaultPool&) = delete;
  ScopedDefaultPool& operator=(const ScopedDefaultPool&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace qopt
