#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/check.h"
#include "common/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {
namespace {

/// Set while a thread executes ParallelFor chunks; nested calls detect it
/// and degrade to the serial inline path.
thread_local bool t_inside_parallel_for = false;

std::atomic<ThreadPool*> g_default_override{nullptr};

}  // namespace

/// Shared bookkeeping of one ParallelFor call. Heap-allocated and shared
/// with the enqueued helper tasks: a helper that only gets scheduled after
/// the caller has already finished every chunk must still find live state
/// (it will see no chunks left and exit immediately).
struct ThreadPool::ForState {
  std::function<void(std::size_t, std::size_t)> fn;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> finished{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  /// Cancellation support (deadline-aware overloads only). When the
  /// deadline trips, `stopped` flips and later chunks are skipped — but
  /// they still count toward `finished`, so the caller's completion wait
  /// terminates while in-flight chunks drain normally.
  const Deadline* deadline = nullptr;
  std::atomic<bool> stopped{false};
  Status stop_status;
  std::mutex stop_mutex;
  /// Submitting thread's trace-span path, installed in every helper so
  /// worker-side spans parent identically at any pool size (kDetached
  /// when the tracer is disarmed).
  int trace_path = obs::ScopedTracePath::kDetached;
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  QOPT_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (workers_.empty()) {
    (*packaged)();
    return future;
  }
  const int trace_path = obs::ScopedTracePath::Capture();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.emplace_back([packaged, trace_path] {
      obs::ScopedTracePath scoped_path(trace_path);
      (*packaged)();
    });
    QQO_GAUGE_MAX("threadpool.queue_depth",
                  static_cast<long long>(tasks_.size()));
  }
  task_available_.notify_one();
  return future;
}

void ThreadPool::RunChunks(ForState* state) {
  const bool was_inside = t_inside_parallel_for;
  t_inside_parallel_for = true;
  obs::ScopedTracePath scoped_path(state->trace_path);
  std::size_t chunk;
  while ((chunk = state->next_chunk.fetch_add(1)) < state->num_chunks) {
    bool skip = false;
    if (state->deadline != nullptr) {
      if (state->stopped.load(std::memory_order_acquire)) {
        skip = true;
      } else if (Status check = state->deadline->Check(); !check.ok()) {
        {
          std::lock_guard<std::mutex> lock(state->stop_mutex);
          if (state->stop_status.ok()) {
            state->stop_status = std::move(check);
          }
        }
        state->stopped.store(true, std::memory_order_release);
        skip = true;
      }
    }
    if (!skip) {
      const std::size_t begin = chunk * state->grain;
      const std::size_t end = std::min(begin + state->grain, state->n);
      try {
        state->fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->exception_mutex);
        if (!state->first_exception) {
          state->first_exception = std::current_exception();
        }
      }
    }
    const std::size_t done = state->finished.fetch_add(1) + 1;
    if (done == state->num_chunks) {
      std::lock_guard<std::mutex> lock(state->done_mutex);
      state->done_cv.notify_all();
    }
  }
  t_inside_parallel_for = was_inside;
}

Status ThreadPool::ParallelForRangeImpl(
    std::size_t n, std::size_t grain, const Deadline* deadline,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return OkStatus();
  grain = std::max<std::size_t>(grain, 1);
  // Serial path: pool of size 1, nested call, or nothing to split. The
  // chunk boundaries are the same as in the parallel path so blockwise
  // accumulations agree bit-for-bit across pool sizes.
  if (workers_.empty() || t_inside_parallel_for || n <= grain) {
    std::exception_ptr first_exception;
    Status stop_status;
    const bool was_inside = t_inside_parallel_for;
    t_inside_parallel_for = true;
    for (std::size_t begin = 0; begin < n && !first_exception;
         begin += grain) {
      if (deadline != nullptr) {
        stop_status = deadline->Check();
        if (!stop_status.ok()) break;
      }
      try {
        fn(begin, std::min(begin + grain, n));
      } catch (...) {
        first_exception = std::current_exception();
      }
    }
    t_inside_parallel_for = was_inside;
    if (first_exception) std::rethrow_exception(first_exception);
    return stop_status;
  }

  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;
  state->grain = grain;
  state->num_chunks = (n + grain - 1) / grain;
  state->deadline = deadline;
  state->trace_path = obs::ScopedTracePath::Capture();
  const std::size_t helpers =
      std::min(workers_.size(), state->num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back([state] { RunChunks(state.get()); });
    }
    QQO_GAUGE_MAX("threadpool.queue_depth",
                  static_cast<long long>(tasks_.size()));
  }
  task_available_.notify_all();
  RunChunks(state.get());  // the caller participates
  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&state] {
      return state->finished.load() == state->num_chunks;
    });
  }
  if (state->first_exception) std::rethrow_exception(state->first_exception);
  if (state->stopped.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(state->stop_mutex);
    return state->stop_status;
  }
  return OkStatus();
}

void ThreadPool::ParallelForRange(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  ParallelForRangeImpl(n, grain, /*deadline=*/nullptr, fn).IgnoreError();
}

Status ThreadPool::ParallelForRange(
    std::size_t n, std::size_t grain, const Deadline& deadline,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  return ParallelForRangeImpl(n, grain, &deadline, fn);
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  // One index per chunk keeps scheduling fair for coarse tasks (one seed,
  // one read, one embedding try per index).
  ParallelForRange(n, 1, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

Status ThreadPool::ParallelFor(std::size_t n, const Deadline& deadline,
                               const std::function<void(std::size_t)>& fn) {
  return ParallelForRange(n, 1, deadline,
                          [&fn](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) fn(i);
                          });
}

StatusOr<int> ThreadPool::PoolSizeFromEnvOrStatus() {
  // Strict parse: "abc", "0", "-3", "8x" and overflow are all reported
  // instead of silently running at hardware concurrency (the pre-PR5
  // atoi behaviour, which also had UB on overflow).
  QOPT_ASSIGN_OR_RETURN(std::optional<long long> requested,
                        EnvIntOrStatus("QQO_THREADS", 1, 4096));
  if (requested.has_value()) return static_cast<int>(*requested);
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware >= 1 ? static_cast<int>(hardware) : 1;
}

int ThreadPool::PoolSizeFromEnv() {
  StatusOr<int> size = PoolSizeFromEnvOrStatus();
  QOPT_CHECK_MSG(size.ok(), size.status().message().c_str());
  return *size;
}

ThreadPool& ThreadPool::Default() {
  ThreadPool* override_pool = g_default_override.load(std::memory_order_acquire);
  if (override_pool != nullptr) return *override_pool;
  static ThreadPool pool(PoolSizeFromEnv());
  return pool;
}

ScopedDefaultPool::ScopedDefaultPool(ThreadPool* pool)
    : previous_(g_default_override.exchange(pool, std::memory_order_acq_rel)) {}

ScopedDefaultPool::~ScopedDefaultPool() {
  g_default_override.store(previous_, std::memory_order_release);
}

}  // namespace qopt
