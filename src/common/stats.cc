#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace qopt {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(sq / static_cast<double>(s.count - 1))
                 : 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace qopt
