#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qopt {

/// Strict integer parsing for environment knobs (QQO_THREADS,
/// QQO_BENCH_SAMPLES, ...). Unlike atoi, non-numeric text, trailing
/// garbage, values outside [min_value, max_value], and overflow all come
/// back as kInvalidArgument / kOutOfRange with the variable name in the
/// message — never a silent default and never UB.
StatusOr<long long> ParseEnvInt(std::string_view name, std::string_view text,
                                long long min_value, long long max_value);

/// Reads `name` from the environment. Unset or empty yields nullopt
/// (caller applies its default); anything else must parse strictly.
StatusOr<std::optional<long long>> EnvIntOrStatus(const char* name,
                                                  long long min_value,
                                                  long long max_value);

/// Reads a string-valued environment knob (QQO_DISPATCH, ...). Unset or
/// empty yields nullopt so the caller applies its default; validation of
/// the value (e.g. via ParseDispatchMode) stays with the caller, which
/// knows the legal vocabulary.
std::optional<std::string> EnvString(const char* name);

}  // namespace qopt
