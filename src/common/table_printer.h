#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace qopt {

/// Formats rows of strings as an aligned plain-text table, the output format
/// used by the benchmark harnesses to print paper tables/figure series.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed numeric rows: doubles are formatted with
  /// `precision` digits after the decimal point.
  void AddRow(const std::vector<double>& row, int precision = 2);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints the table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace qopt
