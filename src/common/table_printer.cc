#include "common/table_printer.h"

#include <cstdarg>

#include "common/check.h"

namespace qopt {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  QOPT_CHECK(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  QOPT_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  QOPT_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    // Integral values print without a fraction for readability.
    if (v == static_cast<double>(static_cast<long long>(v))) {
      cells.push_back(StrFormat("%lld", static_cast<long long>(v)));
    } else {
      cells.push_back(StrFormat("%.*f", precision, v));
    }
  }
  AddRow(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](std::string* out,
                        const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out->append(StrFormat("%-*s", static_cast<int>(widths[c] + 2),
                            row[c].c_str()));
    }
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace qopt
