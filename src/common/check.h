#pragma once

#include <cstdio>
#include <cstdlib>

// Contract-violation macros. The library does not throw exceptions across
// API boundaries; programming errors (invalid arguments, broken invariants)
// abort with a diagnostic instead. Expected runtime failures (e.g. "no
// embedding found") are reported through std::optional / result structs.

#define QOPT_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "QOPT_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define QOPT_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "QOPT_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
