#pragma once

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace qopt {

/// Cooperative cancellation flag. A caller keeps the token, hands a
/// pointer to it to a solve (via Deadline::WithToken), and may flip it
/// from any thread; the solver observes it at its next iteration boundary
/// and winds down with kCancelled. The token must outlive every Deadline
/// that references it.
class CancelToken {
 public:
  CancelToken() = default;
  /// A linked token: reports cancellation when either it or `parent` has
  /// fired. Used by fan-out dispatchers (the portfolio racer) that need a
  /// shared internal token which must also trip the moment the caller's
  /// own token fires — with no polling thread in between, which matters
  /// when the pool runs the work inline on the caller's thread. `parent`
  /// may be null (plain token) and must otherwise outlive this token.
  /// Cancel() and Reset() touch only this token, never the parent.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (parent_ != nullptr && parent_->cancelled());
  }
  /// Re-arms the token for reuse across solves (tests mostly).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
};

/// Wall-clock budget plus optional cancellation, passed by value through
/// options structs. Steady-clock based, so it is immune to system clock
/// adjustments. A default-constructed Deadline is unbounded and carries no
/// token — Check() on it is a branch and nothing more, which is what the
/// long-running loops rely on to keep the disarmed overhead negligible.
///
/// Deadlines compose: WithBudget*() returns the *earlier* of the existing
/// deadline and a fresh per-stage budget, so a stage can be clamped ("at
/// most 30 ms for embedding") without ever extending the caller's limit.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded, never cancelled.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  /// Expires `duration` from now.
  static Deadline After(Clock::duration duration) {
    return Deadline(Clock::now() + duration, nullptr);
  }
  /// Expires `ms` milliseconds from now (ms < 0 is treated as 0).
  static Deadline AfterMillis(double ms);
  /// Expires at the given steady-clock instant.
  static Deadline At(Clock::time_point when) {
    return Deadline(when, nullptr);
  }

  /// Same deadline, observing `token` (which must outlive the result).
  /// A null token detaches.
  Deadline WithToken(const CancelToken* token) const {
    return Deadline(when_, token);
  }
  /// min(this, now + budget): the composable per-stage clamp. Keeps the
  /// token.
  Deadline WithBudget(Clock::duration budget) const;
  Deadline WithBudgetMillis(double ms) const;

  /// True when no time limit is set (the token may still be set).
  bool unbounded() const { return when_ == Clock::time_point::max(); }
  const CancelToken* token() const { return token_; }
  Clock::time_point when() const { return when_; }

  bool Cancelled() const { return token_ != nullptr && token_->cancelled(); }
  bool Expired() const { return !unbounded() && Clock::now() >= when_; }

  /// The cooperative check, called at iteration boundaries: kCancelled if
  /// the token fired (cancellation wins over expiry), kDeadlineExceeded if
  /// the budget ran out, OK otherwise. Cheap on the happy path: one
  /// pointer test plus (when bounded) one clock read.
  Status Check() const {
    if (Cancelled()) return CancelledError("operation cancelled");
    if (Expired()) return DeadlineExceededError("deadline exceeded");
    return OkStatus();
  }

  /// Milliseconds until expiry: +infinity when unbounded, clamped at 0
  /// once expired.
  double RemainingMillis() const;

 private:
  Deadline(Clock::time_point when, const CancelToken* token)
      : when_(when), token_(token) {}

  Clock::time_point when_ = Clock::time_point::max();
  const CancelToken* token_ = nullptr;
};

/// Steady-clock stopwatch for SolveStats::elapsed_ms and the perf checks.
class Stopwatch {
 public:
  Stopwatch() : start_(Deadline::Clock::now()) {}

  void Restart() { start_ = Deadline::Clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               Deadline::Clock::now() - start_)
        .count();
  }

 private:
  Deadline::Clock::time_point start_;
};

}  // namespace qopt
