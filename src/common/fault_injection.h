#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qopt {

/// Deterministic fault-injection registry. Long-running stages declare
/// named fault points (QOPT_FAULT_POINT("embedder.attempt")); tests — or
/// the QQO_FAULTS environment variable — arm a site with a Status to
/// inject after a given number of passes. Triggering is by pass count, so
/// a given (site, after_n, times) arming fires on exactly the same global
/// traversals on every run, which is what lets the recovery tests assert
/// precise retry/degrade/timeout behavior.
///
/// Disarmed cost: QOPT_FAULT_POINT compiles to one relaxed atomic load
/// and a never-taken branch (verified to stay under the 2% hot-loop
/// budget by tools/perf_baseline.sh --check). The mutex is only touched
/// while at least one site is armed.
///
/// Fault-site catalog (kept in sync with DESIGN.md):
///   embedder.attempt   — per minor-embedding attempt (before it runs)
///   annealer.sweep     — per simulated-annealing Metropolis sweep
///   transpile.route    — per swap-routing invocation
///   statevector.alloc  — before a 2^n amplitude buffer is (re)allocated
///   race.lane          — per portfolio-race lane (before its backend runs)
///   serve.admit        — per qqo_serve solve admission (accept thread);
///                        an injected Status becomes a shed response
///   serve.request      — per admitted qqo_serve solve (worker thread);
///                        an injected Status becomes that request's error
///                        response and nothing else
///   decompose.subproblem — per decomposition subproblem solve (before it
///                        dispatches); an injected Status makes that block
///                        keep its incumbent bits for the round instead of
///                        failing the whole solve
class FaultInjection {
 public:
  static FaultInjection& Instance();

  /// Fast disarmed check, inlined into every fault point.
  static bool AnyArmed() {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms `site`: the first `after_n` passes go through untouched, the
  /// next `times` passes (-1 = every later pass) return `status`, after
  /// which the site disarms itself. Re-arming a site replaces its rule.
  /// `status` must not be OK.
  void Arm(std::string site, Status status, int after_n = 0, int times = 1);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// Arms sites from a spec with the QQO_FAULTS grammar:
  ///   site:after_n:status[,site:after_n:status...]
  /// where status is one of invalid_argument, not_found, out_of_range,
  /// failed_precondition, resource_exhausted, unavailable, internal,
  /// deadline_exceeded, cancelled. Example:
  ///   QQO_FAULTS=embedder.attempt:2:unavailable,annealer.sweep:0:internal
  Status ArmFromSpec(std::string_view spec);

  /// Outcome of parsing the QQO_FAULTS environment spec at startup. OK
  /// when the variable is unset or parsed cleanly. A malformed spec is
  /// reported here (and warned to stderr once) instead of aborting inside
  /// a static initializer, so front-ends can refuse to run with a clean
  /// exit code and a readable message.
  static Status EnvSpecStatus();

  /// Slow path of a fault point: counts the pass and returns the armed
  /// status when the trigger count is reached. OK when `site` is not
  /// armed.
  Status Fire(std::string_view site);

  /// Passes recorded for `site` since it was (last) armed. 0 when never
  /// armed.
  long long PassCount(const std::string& site) const;

  std::vector<std::string> ArmedSites() const;

 private:
  FaultInjection() = default;

  struct Rule {
    Status status;
    long long skip_remaining = 0;  ///< Passes to let through first.
    long long fire_remaining = 0;  ///< Injections left (-1 = unlimited).
    long long passes = 0;          ///< Total passes since armed.
    bool armed = false;            ///< Disarmed rules keep their counters.
  };

  static std::atomic<int> armed_sites_;

  mutable std::mutex mutex_;
  std::map<std::string, Rule, std::less<>> rules_;
};

/// Returns the injected Status for `site` if armed and triggered, OK
/// otherwise. The preferred spelling inside Status-returning functions is
/// the QOPT_FAULT_POINT macro; loops that cannot return a Status directly
/// (e.g. ParallelFor bodies) call this and stash the result.
inline Status CheckFaultPoint(std::string_view site) {
  if (!FaultInjection::AnyArmed()) return OkStatus();
  return FaultInjection::Instance().Fire(site);
}

}  // namespace qopt

/// Declares a named fault point: when the site is armed and its trigger
/// count is reached, returns the injected Status from the enclosing
/// function (which must return Status or StatusOr). No-op branch when
/// nothing is armed.
#define QOPT_FAULT_POINT(site)                                        \
  do {                                                                \
    if (::qopt::FaultInjection::AnyArmed()) {                         \
      ::qopt::Status qopt_fault_tmp_ =                                \
          ::qopt::FaultInjection::Instance().Fire(site);              \
      if (!qopt_fault_tmp_.ok()) {                                    \
        return qopt_fault_tmp_;                                       \
      }                                                               \
    }                                                                 \
  } while (0)
