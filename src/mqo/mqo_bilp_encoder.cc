#include "mqo/mqo_bilp_encoder.h"

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

MqoBilpEncoding EncodeMqoAsBilp(const MqoProblem& problem) {
  QOPT_CHECK(problem.NumQueries() >= 1);
  MqoBilpEncoding encoding;
  BilpProblem& bilp = encoding.bilp;

  encoding.plan_var.resize(static_cast<std::size_t>(problem.NumPlans()));
  for (int p = 0; p < problem.NumPlans(); ++p) {
    encoding.plan_var[static_cast<std::size_t>(p)] =
        bilp.AddVariable(StrFormat("x_%d", p), problem.PlanCost(p));
  }
  // One plan per query.
  for (int q = 0; q < problem.NumQueries(); ++q) {
    BilpProblem::Constraint c;
    for (int p : problem.PlansOfQuery(q)) {
      c.terms.emplace_back(encoding.plan_var[static_cast<std::size_t>(p)],
                           1.0);
    }
    c.rhs = 1.0;
    bilp.AddConstraint(std::move(c));
  }
  // Sharing indicators.
  int saving_index = 0;
  for (const auto& [plans, saving] : problem.Savings()) {
    const int x1 = encoding.plan_var[static_cast<std::size_t>(plans.first)];
    const int x2 = encoding.plan_var[static_cast<std::size_t>(plans.second)];
    const int y = bilp.AddVariable(StrFormat("y_%d", saving_index), 0.0);
    const int z = bilp.AddVariable(StrFormat("z_%d", saving_index), saving);
    encoding.share_var.push_back(y);
    encoding.objective_offset += saving;
    // y <= x1 and y <= x2 (binary slack each).
    for (const int x : {x1, x2}) {
      const int slack =
          bilp.AddVariable(StrFormat("sy_%d_%d", saving_index, x), 0.0);
      bilp.AddConstraint({{{y, 1.0}, {x, -1.0}, {slack, 1.0}}, 0.0});
    }
    // y >= x1 + x2 - 1  <=>  x1 + x2 - y + slack = 1.
    const int slack =
        bilp.AddVariable(StrFormat("sl_%d", saving_index), 0.0);
    bilp.AddConstraint(
        {{{x1, 1.0}, {x2, 1.0}, {y, -1.0}, {slack, 1.0}}, 1.0});
    // z = 1 - y.
    bilp.AddConstraint({{{z, 1.0}, {y, 1.0}}, 1.0});
    ++saving_index;
  }
  bilp.SetGranularity(1.0);  // all constraint coefficients are +-1
  return encoding;
}

bool DecodeMqoBilp(const MqoBilpEncoding& encoding, const MqoProblem& problem,
                   const std::vector<std::uint8_t>& bits,
                   std::vector<int>* selection) {
  QOPT_CHECK(selection != nullptr);
  QOPT_CHECK(static_cast<int>(bits.size()) == encoding.bilp.NumVariables());
  std::vector<std::uint8_t> plan_bits(
      static_cast<std::size_t>(problem.NumPlans()));
  for (int p = 0; p < problem.NumPlans(); ++p) {
    plan_bits[static_cast<std::size_t>(p)] =
        bits[static_cast<std::size_t>(
            encoding.plan_var[static_cast<std::size_t>(p)])];
  }
  return problem.DecodeBits(plan_bits, selection);
}

}  // namespace qopt
