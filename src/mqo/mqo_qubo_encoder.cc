#include "mqo/mqo_qubo_encoder.h"

#include <algorithm>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

Status ValidateMqoEncodingInput(const MqoProblem& problem, double slack) {
  if (problem.NumQueries() < 1) {
    return InvalidArgumentError("MQO problem has no queries");
  }
  if (!(slack > 0.0)) {
    return InvalidArgumentError(
        StrFormat("penalty slack must be > 0, got %g", slack));
  }
  return OkStatus();
}

StatusOr<MqoQuboEncoding> TryEncodeMqoAsQubo(const MqoProblem& problem,
                                             double slack) {
  QOPT_RETURN_IF_ERROR(ValidateMqoEncodingInput(problem, slack));
  return EncodeMqoAsQubo(problem, slack);
}

MqoQuboEncoding EncodeMqoAsQubo(const MqoProblem& problem, double slack) {
  QOPT_CHECK(problem.NumQueries() >= 1);
  QOPT_CHECK(slack > 0.0);

  // Penalty weights (Eq. 34/35).
  double max_cost = 0.0;
  for (int p = 0; p < problem.NumPlans(); ++p) {
    max_cost = std::max(max_cost, problem.PlanCost(p));
  }
  std::vector<double> savings_per_plan(
      static_cast<std::size_t>(problem.NumPlans()), 0.0);
  for (const auto& [plans, saving] : problem.Savings()) {
    savings_per_plan[static_cast<std::size_t>(plans.first)] += saving;
    savings_per_plan[static_cast<std::size_t>(plans.second)] += saving;
  }
  const double max_savings =
      savings_per_plan.empty()
          ? 0.0
          : *std::max_element(savings_per_plan.begin(), savings_per_plan.end());

  MqoQuboEncoding encoding;
  encoding.weight_l = max_cost + slack;
  encoding.weight_m = encoding.weight_l + max_savings + slack;

  QuboModel qubo(problem.NumPlans());
  // EL = -sum_p X_p, weighted by wL.
  for (int p = 0; p < problem.NumPlans(); ++p) {
    qubo.AddLinear(p, -encoding.weight_l);
  }
  // EM = sum_q sum_{p1<p2 in P_q} X_p1 X_p2, weighted by wM.
  for (int q = 0; q < problem.NumQueries(); ++q) {
    const auto& plans = problem.PlansOfQuery(q);
    for (std::size_t a = 0; a < plans.size(); ++a) {
      for (std::size_t b = a + 1; b < plans.size(); ++b) {
        qubo.AddQuadratic(plans[a], plans[b], encoding.weight_m);
      }
    }
  }
  // EC = sum_p c_p X_p.
  for (int p = 0; p < problem.NumPlans(); ++p) {
    qubo.AddLinear(p, problem.PlanCost(p));
  }
  // ES = -sum s_{p1,p2} X_p1 X_p2.
  for (const auto& [plans, saving] : problem.Savings()) {
    qubo.AddQuadratic(plans.first, plans.second, -saving);
  }
  encoding.qubo = std::move(qubo);
  return encoding;
}

}  // namespace qopt
