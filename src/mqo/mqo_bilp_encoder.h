#pragma once

#include <cstdint>
#include <vector>

#include "bilp/bilp_problem.h"
#include "mqo/mqo_problem.h"

namespace qopt {

/// Alternative MQO encoding through the generic BILP -> QUBO pipeline of
/// Ch. 6 (an ablation against the direct QUBO formulation of [9]):
///
///   min  sum_p c_p x_p + sum_{(p1,p2)} s * z_{p1,p2}
///   s.t. sum_{p in P_q} x_p = 1                      (one plan per query)
///        y <= x_p1, y <= x_p2, y >= x_p1 + x_p2 - 1  (sharing linearized)
///        z + y = 1                                   (z = 1 - y)
///
/// where y indicates that both plans of a saving run. Using z keeps every
/// objective coefficient non-negative, as the Lucas QUBO transformation
/// requires; the optimum equals the MQO optimum plus sum of all savings.
struct MqoBilpEncoding {
  BilpProblem bilp;
  std::vector<int> plan_var;   ///< x variable index per global plan id.
  std::vector<int> share_var;  ///< y index per saving (Savings() order).
  double objective_offset = 0.0;  ///< Sum of savings; MQO cost =
                                  ///< bilp objective - objective_offset.
};

/// Builds the BILP model.
MqoBilpEncoding EncodeMqoAsBilp(const MqoProblem& problem);

/// Reads the plan selection out of a BILP assignment; returns false when
/// some query has no or several selected plans.
bool DecodeMqoBilp(const MqoBilpEncoding& encoding, const MqoProblem& problem,
                   const std::vector<std::uint8_t>& bits,
                   std::vector<int>* selection);

}  // namespace qopt
