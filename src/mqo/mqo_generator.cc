#include "mqo/mqo_generator.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace qopt {

MqoProblem GenerateMqoProblem(const MqoGeneratorOptions& options) {
  QOPT_CHECK(options.num_queries >= 1);
  QOPT_CHECK(options.plans_per_query >= 1);
  QOPT_CHECK(options.cost_min >= 0.0 && options.cost_max >= options.cost_min);
  QOPT_CHECK(options.saving_density >= 0.0 && options.saving_density <= 1.0);
  Rng rng(options.seed);
  MqoProblem problem;
  for (int q = 0; q < options.num_queries; ++q) {
    std::vector<double> costs(static_cast<std::size_t>(options.plans_per_query));
    for (double& c : costs) {
      c = rng.NextDouble(options.cost_min, options.cost_max);
    }
    problem.AddQuery(costs);
  }
  for (int p1 = 0; p1 < problem.NumPlans(); ++p1) {
    for (int p2 = p1 + 1; p2 < problem.NumPlans(); ++p2) {
      if (problem.QueryOfPlan(p1) == problem.QueryOfPlan(p2)) continue;
      if (!rng.NextBool(options.saving_density)) continue;
      const double cheaper =
          std::min(problem.PlanCost(p1), problem.PlanCost(p2));
      const double saving = rng.NextDouble(options.saving_min_fraction,
                                           options.saving_max_fraction) *
                            cheaper;
      if (saving > 0.0) problem.AddSaving(p1, p2, saving);
    }
  }
  return problem;
}

MqoProblem MakePaperExampleMqo() {
  MqoProblem problem;
  problem.AddQuery({10, 12, 15});  // plans 0, 1, 2 (paper ids 1, 2, 3)
  problem.AddQuery({9, 16});       // plans 3, 4    (paper ids 4, 5)
  problem.AddQuery({7, 12, 9});    // plans 5, 6, 7 (paper ids 6, 7, 8)
  problem.AddSaving(1, 3, 4);      // paper: plans 2 & 4 save 4
  problem.AddSaving(1, 7, 5);      // paper: plans 2 & 8 save 5
  problem.AddSaving(2, 3, 6);      // paper: plans 3 & 4 save 6
  problem.AddSaving(4, 6, 7);      // paper: plans 5 & 7 save 7
  problem.AddSaving(4, 7, 3);      // paper: plans 5 & 8 save 3
  return problem;
}

}  // namespace qopt
