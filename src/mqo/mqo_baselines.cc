#include "mqo/mqo_baselines.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace qopt {
namespace {

MqoSolution MakeSolution(const MqoProblem& problem,
                         std::vector<int> selection) {
  MqoSolution solution;
  solution.cost = problem.SelectionCost(selection);
  solution.selection = std::move(selection);
  return solution;
}

std::vector<int> RandomSelection(const MqoProblem& problem, Rng* rng) {
  std::vector<int> selection(static_cast<std::size_t>(problem.NumQueries()));
  for (int q = 0; q < problem.NumQueries(); ++q) {
    const auto& plans = problem.PlansOfQuery(q);
    selection[static_cast<std::size_t>(q)] =
        plans[rng->NextUint64(plans.size())];
  }
  return selection;
}

}  // namespace

MqoSolution SolveMqoExhaustive(const MqoProblem& problem,
                               std::uint64_t max_combinations) {
  QOPT_CHECK(problem.NumQueries() >= 1);
  std::uint64_t combinations = 1;
  for (int q = 0; q < problem.NumQueries(); ++q) {
    combinations *= problem.PlansOfQuery(q).size();
    QOPT_CHECK_MSG(combinations <= max_combinations,
                   "MQO search space too large for exhaustive search");
  }
  // Odometer over per-query plan indices.
  std::vector<std::size_t> index(static_cast<std::size_t>(problem.NumQueries()),
                                 0);
  std::vector<int> selection(static_cast<std::size_t>(problem.NumQueries()));
  MqoSolution best;
  bool first = true;
  while (true) {
    for (int q = 0; q < problem.NumQueries(); ++q) {
      selection[static_cast<std::size_t>(q)] =
          problem.PlansOfQuery(q)[index[static_cast<std::size_t>(q)]];
    }
    const double cost = problem.SelectionCost(selection);
    if (first || cost < best.cost) {
      best.cost = cost;
      best.selection = selection;
      first = false;
    }
    int q = 0;
    while (q < problem.NumQueries()) {
      auto& i = index[static_cast<std::size_t>(q)];
      if (++i < problem.PlansOfQuery(q).size()) break;
      i = 0;
      ++q;
    }
    if (q == problem.NumQueries()) break;
  }
  return best;
}

MqoSolution SolveMqoGreedy(const MqoProblem& problem) {
  std::vector<int> selection(static_cast<std::size_t>(problem.NumQueries()));
  for (int q = 0; q < problem.NumQueries(); ++q) {
    const auto& plans = problem.PlansOfQuery(q);
    int best_plan = plans.front();
    for (int plan : plans) {
      if (problem.PlanCost(plan) < problem.PlanCost(best_plan)) {
        best_plan = plan;
      }
    }
    selection[static_cast<std::size_t>(q)] = best_plan;
  }
  return MakeSolution(problem, std::move(selection));
}

MqoSolution SolveMqoGenetic(const MqoProblem& problem,
                            const MqoGeneticOptions& options) {
  QOPT_CHECK(options.population_size >= 2);
  QOPT_CHECK(options.generations >= 1);
  Rng rng(options.seed);
  const int num_queries = problem.NumQueries();

  std::vector<std::vector<int>> population(
      static_cast<std::size_t>(options.population_size));
  std::vector<double> fitness(static_cast<std::size_t>(options.population_size));
  for (std::size_t i = 0; i < population.size(); ++i) {
    population[i] = RandomSelection(problem, &rng);
    fitness[i] = problem.SelectionCost(population[i]);
  }
  auto best_index = [&]() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < fitness.size(); ++i) {
      if (fitness[i] < fitness[best]) best = i;
    }
    return best;
  };
  auto tournament = [&]() {
    std::size_t winner = rng.NextUint64(population.size());
    for (int t = 1; t < options.tournament_size; ++t) {
      const std::size_t challenger = rng.NextUint64(population.size());
      if (fitness[challenger] < fitness[winner]) winner = challenger;
    }
    return winner;
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    std::vector<std::vector<int>> next;
    next.reserve(population.size());
    next.push_back(population[best_index()]);  // elitism
    while (next.size() < population.size()) {
      const auto& parent_a = population[tournament()];
      const auto& parent_b = population[tournament()];
      std::vector<int> child(static_cast<std::size_t>(num_queries));
      const bool crossover = rng.NextBool(options.crossover_rate);
      for (int q = 0; q < num_queries; ++q) {
        const auto& source =
            crossover && rng.NextBool() ? parent_b : parent_a;
        child[static_cast<std::size_t>(q)] =
            source[static_cast<std::size_t>(q)];
        if (rng.NextBool(options.mutation_rate)) {
          const auto& plans = problem.PlansOfQuery(q);
          child[static_cast<std::size_t>(q)] =
              plans[rng.NextUint64(plans.size())];
        }
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);
    for (std::size_t i = 0; i < population.size(); ++i) {
      fitness[i] = problem.SelectionCost(population[i]);
    }
  }
  const std::size_t best = best_index();
  return MakeSolution(problem, population[best]);
}

MqoSolution SolveMqoLocalSearch(const MqoProblem& problem, int restarts,
                                std::uint64_t seed) {
  QOPT_CHECK(restarts >= 1);
  Rng rng(seed);
  MqoSolution best;
  bool first = true;
  for (int r = 0; r < restarts; ++r) {
    std::vector<int> selection = RandomSelection(problem, &rng);
    double cost = problem.SelectionCost(selection);
    bool improved = true;
    while (improved) {
      improved = false;
      for (int q = 0; q < problem.NumQueries(); ++q) {
        for (int plan : problem.PlansOfQuery(q)) {
          const int current = selection[static_cast<std::size_t>(q)];
          if (plan == current) continue;
          selection[static_cast<std::size_t>(q)] = plan;
          const double candidate = problem.SelectionCost(selection);
          if (candidate < cost - 1e-12) {
            cost = candidate;
            improved = true;
          } else {
            selection[static_cast<std::size_t>(q)] = current;
          }
        }
      }
    }
    if (first || cost < best.cost) {
      best.cost = cost;
      best.selection = selection;
      first = false;
    }
  }
  return best;
}

}  // namespace qopt
