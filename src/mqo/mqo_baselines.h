#pragma once

#include <cstdint>

#include "mqo/mqo_problem.h"

namespace qopt {

/// A concrete MQO solution: one global plan id per query plus its cost.
struct MqoSolution {
  std::vector<int> selection;
  double cost = 0.0;
};

/// Exhaustive search over the product of plan choices (search space
/// O(ppq^queries), Sec. 2); refuses problems with more than
/// `max_combinations` combinations.
MqoSolution SolveMqoExhaustive(const MqoProblem& problem,
                               std::uint64_t max_combinations = 1u << 24);

/// Locally optimal baseline: cheapest plan per query, ignoring savings
/// (the "26 vs 21" comparison of the paper's example).
MqoSolution SolveMqoGreedy(const MqoProblem& problem);

/// Options for the genetic-algorithm baseline (after Bayir et al. [14]).
struct MqoGeneticOptions {
  int population_size = 40;
  int generations = 200;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;
  int tournament_size = 3;
  std::uint64_t seed = 0;
};

/// Genetic algorithm over selection chromosomes with tournament selection,
/// uniform crossover and per-gene mutation.
MqoSolution SolveMqoGenetic(const MqoProblem& problem,
                            const MqoGeneticOptions& options = {});

/// First-improvement hill climbing with random restarts: repeatedly tries
/// to improve one query's plan choice.
MqoSolution SolveMqoLocalSearch(const MqoProblem& problem, int restarts = 10,
                                std::uint64_t seed = 0);

}  // namespace qopt
