#pragma once

#include "common/status.h"
#include "mqo/mqo_problem.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// The QUBO encoding of an MQO problem after [9] (Sec. 5.1):
///
///   E = wL * EL + wM * EM + EC + ES
///
/// with one binary variable X_p per plan. EL = -sum X_p rewards selecting
/// plans, EM penalizes selecting two plans of the same query, EC adds the
/// plan costs and ES subtracts pairwise savings. The penalty weights
/// follow Eq. 34/35:
///   wL > max_p c_p,     wM > wL + max_p1 sum_p2 s_{p1,p2}.
struct MqoQuboEncoding {
  QuboModel qubo;
  double weight_l = 0.0;
  double weight_m = 0.0;
};

/// Encodes `problem`; the variable of plan p is QUBO variable p.
/// `slack` (> 0) is how much the penalty-weight inequalities are exceeded
/// by. Aborts on invalid input — internal callers only; external input
/// goes through TryEncodeMqoAsQubo.
MqoQuboEncoding EncodeMqoAsQubo(const MqoProblem& problem,
                                double slack = 1.0);

/// Input validation of the encoder as a recoverable error (the boundary
/// flavour for problems built from external workload files / CLI flags).
Status ValidateMqoEncodingInput(const MqoProblem& problem, double slack = 1.0);

/// Validates, then encodes. Never aborts on bad input.
StatusOr<MqoQuboEncoding> TryEncodeMqoAsQubo(const MqoProblem& problem,
                                             double slack = 1.0);

}  // namespace qopt
