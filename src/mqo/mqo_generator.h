#pragma once

#include <cstdint>

#include "mqo/mqo_problem.h"

namespace qopt {

/// Parameters of the random MQO workload generator used for the Fig. 8/9
/// sweeps. Mirrors the problem classes of [9]: a fixed number of plans per
/// query (PPQ) and randomly sampled pairwise savings.
struct MqoGeneratorOptions {
  int num_queries = 3;
  int plans_per_query = 4;
  /// Plan execution costs are drawn uniformly from [cost_min, cost_max].
  double cost_min = 1.0;
  double cost_max = 50.0;
  /// Each cross-query plan pair receives a saving with this probability.
  double saving_density = 0.3;
  /// Savings are drawn uniformly from [saving_min_fraction,
  /// saving_max_fraction] times the smaller of the two plan costs (so a
  /// saving never exceeds the cheaper plan, keeping costs meaningful).
  double saving_min_fraction = 0.1;
  double saving_max_fraction = 0.8;
  std::uint64_t seed = 0;
};

/// Generates a random MQO instance.
MqoProblem GenerateMqoProblem(const MqoGeneratorOptions& options);

/// The worked example of Tables 1 and 2 (three queries, eight plans;
/// locally optimal cost 26, globally optimal cost 21).
MqoProblem MakePaperExampleMqo();

}  // namespace qopt
