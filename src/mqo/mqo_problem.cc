#include "mqo/mqo_problem.h"

#include <algorithm>

#include "common/check.h"

namespace qopt {

int MqoProblem::AddQuery(const std::vector<double>& plan_costs) {
  QOPT_CHECK_MSG(!plan_costs.empty(), "a query needs at least one plan");
  const int query = static_cast<int>(queries_.size());
  std::vector<int> plan_ids;
  plan_ids.reserve(plan_costs.size());
  for (double cost : plan_costs) {
    QOPT_CHECK_MSG(cost >= 0.0, "plan costs must be non-negative");
    plan_ids.push_back(static_cast<int>(cost_.size()));
    cost_.push_back(cost);
    query_of_plan_.push_back(query);
  }
  queries_.push_back(std::move(plan_ids));
  return query;
}

void MqoProblem::AddSaving(int plan1, int plan2, double saving) {
  QOPT_CHECK(plan1 >= 0 && plan1 < NumPlans());
  QOPT_CHECK(plan2 >= 0 && plan2 < NumPlans());
  QOPT_CHECK_MSG(saving > 0.0, "savings must be positive");
  QOPT_CHECK_MSG(QueryOfPlan(plan1) != QueryOfPlan(plan2),
                 "savings must relate plans of different queries");
  if (plan1 > plan2) std::swap(plan1, plan2);
  for (auto& [plans, value] : savings_) {
    if (plans == std::make_pair(plan1, plan2)) {
      value += saving;
      return;
    }
  }
  savings_.push_back({{plan1, plan2}, saving});
}

int MqoProblem::QueryOfPlan(int plan) const {
  QOPT_CHECK(plan >= 0 && plan < NumPlans());
  return query_of_plan_[static_cast<std::size_t>(plan)];
}

const std::vector<int>& MqoProblem::PlansOfQuery(int q) const {
  QOPT_CHECK(q >= 0 && q < NumQueries());
  return queries_[static_cast<std::size_t>(q)];
}

double MqoProblem::PlanCost(int plan) const {
  QOPT_CHECK(plan >= 0 && plan < NumPlans());
  return cost_[static_cast<std::size_t>(plan)];
}

bool MqoProblem::IsValidSelection(const std::vector<int>& selection) const {
  if (static_cast<int>(selection.size()) != NumQueries()) return false;
  for (int q = 0; q < NumQueries(); ++q) {
    const int plan = selection[static_cast<std::size_t>(q)];
    if (plan < 0 || plan >= NumPlans() || QueryOfPlan(plan) != q) return false;
  }
  return true;
}

double MqoProblem::SelectionCost(const std::vector<int>& selection) const {
  QOPT_CHECK_MSG(IsValidSelection(selection), "invalid MQO selection");
  double total = 0.0;
  for (int plan : selection) total += PlanCost(plan);
  std::vector<std::uint8_t> chosen(static_cast<std::size_t>(NumPlans()), 0);
  for (int plan : selection) chosen[static_cast<std::size_t>(plan)] = 1;
  for (const auto& [plans, saving] : savings_) {
    if (chosen[static_cast<std::size_t>(plans.first)] &&
        chosen[static_cast<std::size_t>(plans.second)]) {
      total -= saving;
    }
  }
  return total;
}

bool MqoProblem::DecodeBits(const std::vector<std::uint8_t>& bits,
                            std::vector<int>* selection) const {
  QOPT_CHECK(static_cast<int>(bits.size()) == NumPlans());
  QOPT_CHECK(selection != nullptr);
  selection->assign(static_cast<std::size_t>(NumQueries()), -1);
  for (int plan = 0; plan < NumPlans(); ++plan) {
    if (!bits[static_cast<std::size_t>(plan)]) continue;
    const int query = QueryOfPlan(plan);
    if ((*selection)[static_cast<std::size_t>(query)] != -1) return false;
    (*selection)[static_cast<std::size_t>(query)] = plan;
  }
  for (int plan_id : *selection) {
    if (plan_id == -1) return false;
  }
  return true;
}

}  // namespace qopt
