#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace qopt {

/// Multi query optimization problem (Sec. 4.1, following Trummer & Koch
/// [9]): a batch of queries, each with alternative execution plans, plus
/// pairwise cost savings for plans that can share subexpressions. A
/// solution picks exactly one plan per query; its cost is
///   sum of chosen plan costs - sum of savings whose two plans are chosen.
class MqoProblem {
 public:
  MqoProblem() = default;

  /// Appends a query with the given alternative plan costs (must be
  /// non-empty); returns the query index. Plans get global consecutive
  /// ids in insertion order.
  int AddQuery(const std::vector<double>& plan_costs);

  /// Registers cost savings `saving > 0` for executing both plans. The
  /// plans must belong to different queries (sharing between alternatives
  /// of one query is meaningless). Accumulates if called twice.
  void AddSaving(int plan1, int plan2, double saving);

  int NumQueries() const { return static_cast<int>(queries_.size()); }
  int NumPlans() const { return static_cast<int>(cost_.size()); }
  int NumSavings() const { return static_cast<int>(savings_.size()); }

  /// Query the plan belongs to.
  int QueryOfPlan(int plan) const;

  /// Global plan ids of query `q`.
  const std::vector<int>& PlansOfQuery(int q) const;

  /// Execution cost of a plan.
  double PlanCost(int plan) const;

  /// All savings as ((plan1, plan2), value) with plan1 < plan2.
  const std::vector<std::pair<std::pair<int, int>, double>>& Savings() const {
    return savings_;
  }

  /// True iff `selection` (one global plan id per query, indexed by query)
  /// is well-formed: selection[q] is a plan of query q.
  bool IsValidSelection(const std::vector<int>& selection) const;

  /// Total cost c_e of a valid selection (Eq. 25).
  double SelectionCost(const std::vector<int>& selection) const;

  /// Interprets a plan indicator bit vector (bit per plan) as a selection;
  /// returns false if it does not select exactly one plan per query.
  bool DecodeBits(const std::vector<std::uint8_t>& bits,
                  std::vector<int>* selection) const;

 private:
  std::vector<std::vector<int>> queries_;  // query -> global plan ids
  std::vector<int> query_of_plan_;
  std::vector<double> cost_;
  std::vector<std::pair<std::pair<int, int>, double>> savings_;
};

}  // namespace qopt
