#pragma once

#include <cstdint>

#include "joinorder/join_order.h"
#include "joinorder/query_graph.h"

namespace qopt {

/// Options for the randomized join-ordering algorithms of Steinbrunn,
/// Moerkotte & Kemper [15], operating directly on left-deep permutations.
struct RandomizedJoinOrderOptions {
  int restarts = 10;           ///< Random starting points.
  int max_moves = 2000;        ///< Move evaluations per start.
  double initial_temperature_factor = 0.1;  ///< SA: T0 = factor * C(start).
  double cooling_rate = 0.95;  ///< SA: geometric cooling per accepted move.
  std::uint64_t seed = 0;
};

/// Iterative improvement: repeated random restarts, each descending to a
/// local minimum under the swap and 3-cycle neighbourhood.
JoinOrderSolution SolveJoinOrderIterativeImprovement(
    const QueryGraph& graph, const RandomizedJoinOrderOptions& options = {});

/// Simulated annealing over permutations with the same neighbourhood.
JoinOrderSolution SolveJoinOrderSimulatedAnnealing(
    const QueryGraph& graph, const RandomizedJoinOrderOptions& options = {});

}  // namespace qopt
