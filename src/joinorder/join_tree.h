#pragma once

#include <memory>
#include <string>
#include <vector>

#include "joinorder/query_graph.h"

namespace qopt {

/// A (possibly bushy) join tree: leaves are base relations, inner nodes
/// are joins. Left-deep trees — the paper's setting — are the special
/// case where every right child is a leaf; this general form supports the
/// bushy extension of [16] that the paper lists as future work.
class JoinTree {
 public:
  /// Creates a leaf for `relation`.
  static JoinTree Leaf(int relation);

  /// Creates an inner node joining two subtrees.
  static JoinTree Join(JoinTree left, JoinTree right);

  bool IsLeaf() const { return relation_ >= 0; }
  int RelationId() const;             ///< Valid for leaves only.
  const JoinTree& Left() const;       ///< Valid for inner nodes only.
  const JoinTree& Right() const;      ///< Valid for inner nodes only.

  /// Relations of the subtree, in leaf order (left to right).
  std::vector<int> Relations() const;

  /// True iff every right child is a leaf.
  bool IsLeftDeep() const;

  /// C_out cost: the sum of the cardinalities of every intermediate join
  /// result (including the root when `include_final_join`).
  double Cost(const QueryGraph& graph, bool include_final_join = true) const;

  /// Cardinality of the subtree's result under `graph`.
  double ResultCardinality(const QueryGraph& graph) const;

  /// Textual rendering, e.g. "((R0 |><| R1) |><| (R2 |><| R3))".
  std::string ToString() const;

  /// Builds the left-deep tree of a permutation (the paper's solution
  /// representation).
  static JoinTree FromLeftDeepOrder(const std::vector<int>& order);

  /// Default-constructed trees are empty placeholders; use Leaf()/Join().
  JoinTree() = default;
  bool IsEmpty() const { return relation_ < 0 && left_ == nullptr; }

 private:
  int relation_ = -1;  ///< >= 0 for leaves.
  std::shared_ptr<const JoinTree> left_;
  std::shared_ptr<const JoinTree> right_;
};

/// Optimal bushy join tree by dynamic programming over relation subsets
/// (all 2^n - 2 proper splits per subset; O(3^n) time, n <= ~16).
struct BushyDpResult {
  JoinTree tree;
  double cost = 0.0;
};

BushyDpResult SolveJoinOrderBushyDp(const QueryGraph& graph,
                                    bool include_final_join = true,
                                    int max_relations = 16);

}  // namespace qopt
