#include "joinorder/join_tree.h"

#include <functional>
#include <limits>

#include "common/check.h"
#include "common/table_printer.h"
#include "joinorder/join_order.h"

namespace qopt {

JoinTree JoinTree::Leaf(int relation) {
  QOPT_CHECK(relation >= 0);
  JoinTree tree;
  tree.relation_ = relation;
  return tree;
}

JoinTree JoinTree::Join(JoinTree left, JoinTree right) {
  JoinTree tree;
  tree.left_ = std::make_shared<const JoinTree>(std::move(left));
  tree.right_ = std::make_shared<const JoinTree>(std::move(right));
  return tree;
}

int JoinTree::RelationId() const {
  QOPT_CHECK_MSG(IsLeaf(), "RelationId() on an inner node");
  QOPT_CHECK_MSG(!IsEmpty(), "empty tree");
  return relation_;
}

const JoinTree& JoinTree::Left() const {
  QOPT_CHECK_MSG(!IsLeaf(), "Left() on a leaf");
  return *left_;
}

const JoinTree& JoinTree::Right() const {
  QOPT_CHECK_MSG(!IsLeaf(), "Right() on a leaf");
  return *right_;
}

std::vector<int> JoinTree::Relations() const {
  std::vector<int> relations;
  if (IsLeaf()) {
    relations.push_back(relation_);
    return relations;
  }
  for (int r : left_->Relations()) relations.push_back(r);
  for (int r : right_->Relations()) relations.push_back(r);
  return relations;
}

bool JoinTree::IsLeftDeep() const {
  if (IsLeaf()) return true;
  return right_->IsLeaf() && left_->IsLeftDeep();
}

double JoinTree::ResultCardinality(const QueryGraph& graph) const {
  return IntermediateCardinality(graph, Relations());
}

double JoinTree::Cost(const QueryGraph& graph,
                      bool include_final_join) const {
  if (IsLeaf()) return 0.0;
  double cost = left_->Cost(graph, /*include_final_join=*/true) +
                right_->Cost(graph, /*include_final_join=*/true);
  if (include_final_join) cost += ResultCardinality(graph);
  return cost;
}

std::string JoinTree::ToString() const {
  if (IsLeaf()) return StrFormat("R%d", relation_);
  // Appending instead of an operator+ chain sidesteps a GCC 12 -Wrestrict
  // false positive on the temporary string concatenation.
  std::string out = "(";
  out += left_->ToString();
  out += " |><| ";
  out += right_->ToString();
  out += ")";
  return out;
}

JoinTree JoinTree::FromLeftDeepOrder(const std::vector<int>& order) {
  QOPT_CHECK(!order.empty());
  JoinTree tree = Leaf(order.front());
  for (std::size_t i = 1; i < order.size(); ++i) {
    tree = Join(std::move(tree), Leaf(order[i]));
  }
  return tree;
}

BushyDpResult SolveJoinOrderBushyDp(const QueryGraph& graph,
                                    bool include_final_join,
                                    int max_relations) {
  const int n = graph.NumRelations();
  QOPT_CHECK_MSG(n <= max_relations, "too many relations for bushy DP");
  QOPT_CHECK(n >= 1);
  const std::size_t num_subsets = std::size_t{1} << n;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // card[S]: result cardinality of subset S; cost[S]: best total cost of
  // producing S including S's own join; split[S]: best left subset.
  std::vector<double> card(num_subsets, 0.0);
  std::vector<double> cost(num_subsets, kInf);
  std::vector<std::size_t> split(num_subsets, 0);
  for (int r = 0; r < n; ++r) {
    const std::size_t s = std::size_t{1} << r;
    card[s] = graph.Cardinality(r);
    cost[s] = 0.0;
  }
  for (std::size_t s = 1; s < num_subsets; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    // Result cardinality of S (independent of the split).
    std::vector<int> members;
    for (int r = 0; r < n; ++r) {
      if (s & (std::size_t{1} << r)) members.push_back(r);
    }
    card[s] = IntermediateCardinality(graph, members);
    // Enumerate proper subsets as left operands (each split seen twice,
    // harmless).
    for (std::size_t left = (s - 1) & s; left != 0;
         left = (left - 1) & s) {
      const std::size_t right = s ^ left;
      if (right == 0) continue;
      if (cost[left] == kInf || cost[right] == kInf) continue;
      const double total = cost[left] + cost[right] + card[s];
      if (total < cost[s]) {
        cost[s] = total;
        split[s] = left;
      }
    }
  }

  // Reconstruct the tree.
  std::function<JoinTree(std::size_t)> build = [&](std::size_t s) {
    if ((s & (s - 1)) == 0) {
      int r = 0;
      while (!(s & (std::size_t{1} << r))) ++r;
      return JoinTree::Leaf(r);
    }
    return JoinTree::Join(build(split[s]), build(s ^ split[s]));
  };
  const std::size_t full = num_subsets - 1;
  BushyDpResult result;
  result.tree = build(full);
  result.cost = n == 1 ? 0.0
                       : (include_final_join ? cost[full]
                                             : cost[full] - card[full]);
  return result;
}

}  // namespace qopt
