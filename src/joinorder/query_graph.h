#pragma once

#include <cstdint>
#include <vector>

namespace qopt {

/// Query graph for the join ordering problem (Sec. 4.2): relations with
/// cardinalities, and join predicates with selectivities labelling edges.
class QueryGraph {
 public:
  /// One join predicate between two relations.
  struct Predicate {
    int rel1;
    int rel2;
    double selectivity;  ///< 0 < selectivity <= 1.
  };

  /// Creates a graph over the given relation cardinalities (each >= 1).
  explicit QueryGraph(std::vector<double> cardinalities);

  int NumRelations() const { return static_cast<int>(cardinality_.size()); }
  int NumPredicates() const { return static_cast<int>(predicates_.size()); }
  int NumJoins() const { return NumRelations() - 1; }

  double Cardinality(int relation) const;
  const std::vector<Predicate>& Predicates() const { return predicates_; }

  /// Adds a predicate between distinct relations; returns its index.
  /// Multiple predicates between the same pair are allowed (their
  /// selectivities multiply).
  int AddPredicate(int rel1, int rel2, double selectivity);

  /// Product of the selectivities of all predicates joining `relation`
  /// against the set `joined` (1.0 when none apply — a cross product).
  double SelectivityAgainst(int relation,
                            const std::vector<bool>& joined) const;

 private:
  std::vector<double> cardinality_;
  std::vector<Predicate> predicates_;
};

/// The example query graph of Fig. 6 / Table 3: relations R, S, T with
/// cardinalities 10, 1000, 1000 and predicates RS (0.1) and ST (0.05).
QueryGraph MakePaperExampleQuery();

/// Workload generators for the evaluation sweeps. All guarantee a
/// connected predicate graph (the paper's P = J minimum; fewer predicates
/// would force cross products).
struct QueryGeneratorOptions {
  int num_relations = 3;
  /// Total number of predicates; must be >= num_relations - 1 (a spanning
  /// tree) and <= the number of distinct relation pairs.
  int num_predicates = 2;
  double cardinality_min = 10.0;
  double cardinality_max = 10.0;
  double selectivity_min = 0.01;
  double selectivity_max = 1.0;
  std::uint64_t seed = 0;
};

/// Random connected query graph: a random spanning tree plus extra random
/// distinct pairs until `num_predicates` is reached.
QueryGraph GenerateRandomQuery(const QueryGeneratorOptions& options);

/// Chain query R0 - R1 - ... - Rn-1.
QueryGraph GenerateChainQuery(int num_relations, double cardinality,
                              double selectivity, std::uint64_t seed = 0);

/// Star query with relation 0 in the center.
QueryGraph GenerateStarQuery(int num_relations, double cardinality,
                             double selectivity, std::uint64_t seed = 0);

/// Cycle query R0 - R1 - ... - Rn-1 - R0 (a chain for n < 3; the closing
/// predicate would otherwise duplicate the chain edge).
QueryGraph GenerateCycleQuery(int num_relations, double cardinality,
                              double selectivity, std::uint64_t seed = 0);

/// Clique query: every pair of relations carries a predicate. The densest
/// large-instance stressor for the decomposition sweeps.
QueryGraph GenerateCliqueQuery(int num_relations, double cardinality,
                               double selectivity, std::uint64_t seed = 0);

}  // namespace qopt
