#pragma once

#include "joinorder/join_order.h"
#include "joinorder/query_graph.h"

namespace qopt {

/// Exhaustive enumeration of all n! left-deep join orders; ground truth
/// for small n (refuses n > max_relations).
JoinOrderSolution SolveJoinOrderExhaustive(const QueryGraph& graph,
                                           bool include_final_join = true,
                                           int max_relations = 10);

/// Dynamic programming over relation subsets (optimal for left-deep trees
/// in O(2^n * n^2); the classical exact comparator for mid-size queries).
JoinOrderSolution SolveJoinOrderDp(const QueryGraph& graph,
                                   bool include_final_join = true,
                                   int max_relations = 22);

/// Greedy heuristic: start with the cheapest pair, then repeatedly append
/// the relation minimizing the next intermediate cardinality.
JoinOrderSolution SolveJoinOrderGreedy(const QueryGraph& graph,
                                       bool include_final_join = true);

}  // namespace qopt
