#include "joinorder/join_order_baselines.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace qopt {

JoinOrderSolution SolveJoinOrderExhaustive(const QueryGraph& graph,
                                           bool include_final_join,
                                           int max_relations) {
  const int n = graph.NumRelations();
  QOPT_CHECK_MSG(n <= max_relations,
                 "too many relations for exhaustive enumeration");
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  JoinOrderSolution best;
  best.order = order;
  best.cost = CoutCost(graph, order, include_final_join);
  while (std::next_permutation(order.begin(), order.end())) {
    const double cost = CoutCost(graph, order, include_final_join);
    if (cost < best.cost) {
      best.cost = cost;
      best.order = order;
    }
  }
  return best;
}

JoinOrderSolution SolveJoinOrderDp(const QueryGraph& graph,
                                   bool include_final_join,
                                   int max_relations) {
  const int n = graph.NumRelations();
  QOPT_CHECK_MSG(n <= max_relations, "too many relations for subset DP");
  if (n == 1) return {{0}, 0.0};
  const std::size_t num_subsets = std::size_t{1} << n;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // card[S]: cardinality of the intermediate result over subset S.
  std::vector<double> card(num_subsets, 0.0);
  std::vector<double> cost(num_subsets, kInf);
  std::vector<int> last(num_subsets, -1);  // relation joined last
  for (int r = 0; r < n; ++r) {
    const std::size_t s = std::size_t{1} << r;
    card[s] = graph.Cardinality(r);
    cost[s] = 0.0;
    last[s] = r;
  }
  for (std::size_t s = 1; s < num_subsets; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singletons done
    for (int r = 0; r < n; ++r) {
      const std::size_t bit = std::size_t{1} << r;
      if (!(s & bit)) continue;
      const std::size_t rest = s ^ bit;
      if (cost[rest] == kInf) continue;
      // Selectivity of r against the rest of the subset.
      std::vector<bool> joined(static_cast<std::size_t>(n), false);
      for (int t = 0; t < n; ++t) {
        if (rest & (std::size_t{1} << t)) {
          joined[static_cast<std::size_t>(t)] = true;
        }
      }
      const double joined_card =
          card[rest] * graph.Cardinality(r) *
          graph.SelectivityAgainst(r, joined);
      if (card[s] == 0.0) card[s] = joined_card;  // same for every split
      const double total = cost[rest] + joined_card;
      if (total < cost[s]) {
        cost[s] = total;
        last[s] = r;
      }
    }
  }

  const std::size_t full = num_subsets - 1;
  JoinOrderSolution solution;
  solution.order.assign(static_cast<std::size_t>(n), -1);
  std::size_t s = full;
  for (int i = n - 1; i >= 0; --i) {
    const int r = last[s];
    QOPT_CHECK(r >= 0);
    solution.order[static_cast<std::size_t>(i)] = r;
    s ^= std::size_t{1} << r;
  }
  solution.cost = include_final_join
                      ? cost[full]
                      : CoutCost(graph, solution.order, false);
  return solution;
}

JoinOrderSolution SolveJoinOrderGreedy(const QueryGraph& graph,
                                       bool include_final_join) {
  const int n = graph.NumRelations();
  JoinOrderSolution solution;
  if (n == 1) return {{0}, 0.0};

  // Cheapest first pair.
  int best_a = 0;
  int best_b = 1;
  double best_card = std::numeric_limits<double>::infinity();
  for (int a = 0; a < n; ++a) {
    std::vector<bool> joined(static_cast<std::size_t>(n), false);
    joined[static_cast<std::size_t>(a)] = true;
    for (int b = 0; b < n; ++b) {
      if (b == a) continue;
      const double pair_card = graph.Cardinality(a) * graph.Cardinality(b) *
                               graph.SelectivityAgainst(b, joined);
      if (pair_card < best_card) {
        best_card = pair_card;
        best_a = a;
        best_b = b;
      }
    }
  }
  std::vector<bool> joined(static_cast<std::size_t>(n), false);
  solution.order = {best_a, best_b};
  joined[static_cast<std::size_t>(best_a)] = true;
  joined[static_cast<std::size_t>(best_b)] = true;
  double intermediate = best_card;
  while (static_cast<int>(solution.order.size()) < n) {
    int best_r = -1;
    double best_next = std::numeric_limits<double>::infinity();
    for (int r = 0; r < n; ++r) {
      if (joined[static_cast<std::size_t>(r)]) continue;
      const double next = intermediate * graph.Cardinality(r) *
                          graph.SelectivityAgainst(r, joined);
      if (next < best_next) {
        best_next = next;
        best_r = r;
      }
    }
    solution.order.push_back(best_r);
    joined[static_cast<std::size_t>(best_r)] = true;
    intermediate = best_next;
  }
  solution.cost = CoutCost(graph, solution.order, include_final_join);
  return solution;
}

}  // namespace qopt
