#pragma once

#include <cstdint>
#include <vector>

#include "bilp/bilp_problem.h"
#include "common/status.h"
#include "joinorder/query_graph.h"

namespace qopt {

/// Options for the join-ordering -> BILP transformation (Sec. 6.1.2/6.1.3,
/// after Trummer & Koch [16]).
struct JoinOrderEncoderOptions {
  /// Threshold values theta_r (ascending, each >= 1) used to approximate
  /// intermediate cardinalities; the objective charges
  /// delta_theta_r = theta_r - theta_{r-1} once a threshold is exceeded.
  std::vector<double> thresholds = {10.0};
  /// Precision p: omega = 0.1^p is the coefficient granularity used to
  /// round logarithms and to discretize the continuous slack variables.
  int precision_decimals = 0;
  /// Cardinality-based pruning of cto variables/constraints that can never
  /// trigger (Sec. 6.2.2). Off by default: the paper's scaling figures
  /// explicitly measure the unpruned, "more general" model.
  bool prune_unreachable_cto = false;
  /// When true, the big-M constants and slack ranges are widened so the
  /// encoding is provably exact even with very selective predicates
  /// (negative log-selectivities can push the outer cardinality below the
  /// paper's bound of Eq. 48). When false, the paper's bounds (Eq. 50-53)
  /// are used verbatim, which also makes the variable counts match
  /// Fig. 11/12 and Table 4.
  bool safe_slack_bounds = false;
};

/// The encoded BILP together with the variable-index bookkeeping needed to
/// decode solutions and to report resource statistics.
struct JoinOrderEncoding {
  BilpProblem bilp;
  int num_relations = 0;
  int num_joins = 0;
  double omega = 1.0;
  /// tio[t][j] / tii[t][j]: variable indices (always present).
  std::vector<std::vector<int>> tio;
  std::vector<std::vector<int>> tii;
  /// pao[p][j] and cto[r][j]: -1 where pruned (always at j = 0).
  std::vector<std::vector<int>> pao;
  std::vector<std::vector<int>> cto;
  int num_logical = 0;           ///< tio + tii + pao + cto variables.
  int num_single_slacks = 0;     ///< one-bit slacks (constraint types 3,5,6).
  int num_expansion_slacks = 0;  ///< binary-expansion slacks (type 7).
};

/// Builds the BILP model: variables tio/tii/pao/cto plus slack variables,
/// constraint types 1-7, and the threshold objective (Eq. 38). Aborts on
/// invalid input — internal callers only; external input (workload files,
/// CLI thresholds/precision flags) goes through TryEncodeJoinOrderAsBilp.
JoinOrderEncoding EncodeJoinOrderAsBilp(
    const QueryGraph& graph, const JoinOrderEncoderOptions& options = {});

/// Input validation of the encoder as a recoverable error: at least two
/// relations, thresholds finite / >= 1 / strictly ascending, precision in
/// a range that keeps omega = 0.1^p positive and the slack expansions
/// bounded.
Status ValidateJoinOrderEncoderInput(
    const QueryGraph& graph, const JoinOrderEncoderOptions& options = {});

/// Validates, then encodes. Never aborts on bad input.
StatusOr<JoinOrderEncoding> TryEncodeJoinOrderAsBilp(
    const QueryGraph& graph, const JoinOrderEncoderOptions& options = {});

/// Reads the join order out of a BILP assignment: order[0] is the relation
/// with tio_{t,0} = 1 and order[j+1] the relation with tii_{t,j} = 1.
/// Returns false if the assignment does not describe a permutation.
bool DecodeJoinOrder(const JoinOrderEncoding& encoding,
                     const std::vector<std::uint8_t>& bits,
                     std::vector<int>* order);

/// Closed-form upper bounds on the variable counts (Eq. 45-54), used by
/// the Fig. 11/12 scaling benchmarks. `cardinalities` enter only through
/// the worst-case logarithmic outer cardinality mlc_j.
struct JoinOrderResourceCounts {
  long long logical = 0;          ///< Eq. 46.
  long long single_slack = 0;     ///< Eq. 47.
  long long expansion_slack = 0;  ///< Eq. 53.
  long long total = 0;            ///< Eq. 54.
};

JoinOrderResourceCounts CountJoinOrderQubits(
    int num_relations, int num_predicates, int num_thresholds, double omega,
    const std::vector<double>& cardinalities);

/// Convenience overload for uniform cardinalities.
JoinOrderResourceCounts CountJoinOrderQubits(int num_relations,
                                             int num_predicates,
                                             int num_thresholds, double omega,
                                             double uniform_cardinality = 10.0);

}  // namespace qopt
