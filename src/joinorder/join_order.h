#pragma once

#include <vector>

#include "joinorder/query_graph.h"

namespace qopt {

/// A left-deep join order: the permutation of relations assigned to the
/// leaves of the join tree, plus its cost.
struct JoinOrderSolution {
  std::vector<int> order;
  double cost = 0.0;
};

/// C_out cost of a left-deep join order (Eq. 27/28): the sum of the
/// intermediate result cardinalities
///   C(s) = sum_{i=2..n} |s_1 ... s_i|,
/// where |s_1 ... s_i| multiplies the relation cardinalities with the
/// selectivities of every predicate whose two relations are both joined.
/// Predicates between unjoined relations act as cross products (factor 1).
/// `include_final_join` controls whether the last term (identical for all
/// orders) is counted; the paper's Table 3 includes it.
double CoutCost(const QueryGraph& graph, const std::vector<int>& order,
                bool include_final_join = true);

/// Cardinality of the intermediate result of joining exactly the
/// relations in `subset` (all predicates inside the subset applied).
double IntermediateCardinality(const QueryGraph& graph,
                               const std::vector<int>& subset);

/// True iff `order` is a permutation of 0..NumRelations()-1.
bool IsValidJoinOrder(const QueryGraph& graph, const std::vector<int>& order);

}  // namespace qopt
