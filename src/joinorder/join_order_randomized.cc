#include "joinorder/join_order_randomized.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/random.h"

namespace qopt {
namespace {

std::vector<int> RandomOrder(int n, Rng* rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return order;
}

/// Applies a random neighbourhood move (swap of two positions, or a
/// 3-cycle rotation) in place; returns a functor undoing it.
void RandomMove(std::vector<int>* order, Rng* rng, int* a, int* b, int* c) {
  const int n = static_cast<int>(order->size());
  *a = rng->NextInt(0, n - 1);
  *b = rng->NextInt(0, n - 1);
  while (*b == *a) *b = rng->NextInt(0, n - 1);
  if (n >= 3 && rng->NextBool(0.3)) {
    *c = rng->NextInt(0, n - 1);
    while (*c == *a || *c == *b) *c = rng->NextInt(0, n - 1);
    // 3-cycle a -> b -> c -> a.
    const int tmp = (*order)[static_cast<std::size_t>(*a)];
    (*order)[static_cast<std::size_t>(*a)] =
        (*order)[static_cast<std::size_t>(*c)];
    (*order)[static_cast<std::size_t>(*c)] =
        (*order)[static_cast<std::size_t>(*b)];
    (*order)[static_cast<std::size_t>(*b)] = tmp;
  } else {
    *c = -1;
    std::swap((*order)[static_cast<std::size_t>(*a)],
              (*order)[static_cast<std::size_t>(*b)]);
  }
}

void UndoMove(std::vector<int>* order, int a, int b, int c) {
  if (c < 0) {
    std::swap((*order)[static_cast<std::size_t>(a)],
              (*order)[static_cast<std::size_t>(b)]);
  } else {
    // Reverse the 3-cycle.
    const int tmp = (*order)[static_cast<std::size_t>(*&a)];
    (*order)[static_cast<std::size_t>(a)] =
        (*order)[static_cast<std::size_t>(b)];
    (*order)[static_cast<std::size_t>(b)] =
        (*order)[static_cast<std::size_t>(c)];
    (*order)[static_cast<std::size_t>(c)] = tmp;
  }
}

}  // namespace

JoinOrderSolution SolveJoinOrderIterativeImprovement(
    const QueryGraph& graph, const RandomizedJoinOrderOptions& options) {
  QOPT_CHECK(options.restarts >= 1);
  Rng rng(options.seed);
  const int n = graph.NumRelations();
  JoinOrderSolution best;
  bool first = true;
  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<int> order = RandomOrder(n, &rng);
    double cost = CoutCost(graph, order);
    int stale = 0;
    for (int move = 0; move < options.max_moves && stale < 200; ++move) {
      int a, b, c;
      RandomMove(&order, &rng, &a, &b, &c);
      const double candidate = CoutCost(graph, order);
      if (candidate < cost) {
        cost = candidate;
        stale = 0;
      } else {
        UndoMove(&order, a, b, c);
        ++stale;
      }
    }
    if (first || cost < best.cost) {
      best.cost = cost;
      best.order = order;
      first = false;
    }
  }
  return best;
}

JoinOrderSolution SolveJoinOrderSimulatedAnnealing(
    const QueryGraph& graph, const RandomizedJoinOrderOptions& options) {
  QOPT_CHECK(options.restarts >= 1);
  Rng rng(options.seed);
  const int n = graph.NumRelations();
  JoinOrderSolution best;
  bool first = true;
  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<int> order = RandomOrder(n, &rng);
    double cost = CoutCost(graph, order);
    double temperature =
        std::max(1e-9, options.initial_temperature_factor * cost);
    for (int move = 0; move < options.max_moves; ++move) {
      int a, b, c;
      RandomMove(&order, &rng, &a, &b, &c);
      const double candidate = CoutCost(graph, order);
      const double delta = candidate - cost;
      if (delta <= 0.0 ||
          rng.NextDouble() < std::exp(-delta / temperature)) {
        cost = candidate;
        temperature *= options.cooling_rate;
      } else {
        UndoMove(&order, a, b, c);
      }
      if (first || cost < best.cost) {
        best.cost = cost;
        best.order = order;
        first = false;
      }
    }
  }
  // Final greedy polish.
  Rng polish_rng(options.seed + 1);
  std::vector<int> order = best.order;
  double cost = best.cost;
  for (int move = 0; move < options.max_moves; ++move) {
    int a, b, c;
    RandomMove(&order, &polish_rng, &a, &b, &c);
    const double candidate = CoutCost(graph, order);
    if (candidate < cost) {
      cost = candidate;
    } else {
      UndoMove(&order, a, b, c);
    }
  }
  if (cost < best.cost) {
    best.cost = cost;
    best.order = order;
  }
  return best;
}

}  // namespace qopt
