#include "joinorder/query_graph.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace qopt {

QueryGraph::QueryGraph(std::vector<double> cardinalities)
    : cardinality_(std::move(cardinalities)) {
  QOPT_CHECK_MSG(!cardinality_.empty(), "need at least one relation");
  for (double c : cardinality_) {
    QOPT_CHECK_MSG(c >= 1.0, "cardinalities must be >= 1");
  }
}

double QueryGraph::Cardinality(int relation) const {
  QOPT_CHECK(relation >= 0 && relation < NumRelations());
  return cardinality_[static_cast<std::size_t>(relation)];
}

int QueryGraph::AddPredicate(int rel1, int rel2, double selectivity) {
  QOPT_CHECK(rel1 >= 0 && rel1 < NumRelations());
  QOPT_CHECK(rel2 >= 0 && rel2 < NumRelations());
  QOPT_CHECK_MSG(rel1 != rel2, "predicate must join two distinct relations");
  QOPT_CHECK_MSG(selectivity > 0.0 && selectivity <= 1.0,
                 "selectivity must be in (0, 1]");
  if (rel1 > rel2) std::swap(rel1, rel2);
  predicates_.push_back({rel1, rel2, selectivity});
  return static_cast<int>(predicates_.size()) - 1;
}

double QueryGraph::SelectivityAgainst(int relation,
                                      const std::vector<bool>& joined) const {
  QOPT_CHECK(relation >= 0 && relation < NumRelations());
  QOPT_CHECK(static_cast<int>(joined.size()) == NumRelations());
  double selectivity = 1.0;
  for (const Predicate& p : predicates_) {
    const int other = p.rel1 == relation   ? p.rel2
                      : p.rel2 == relation ? p.rel1
                                           : -1;
    if (other >= 0 && joined[static_cast<std::size_t>(other)]) {
      selectivity *= p.selectivity;
    }
  }
  return selectivity;
}

QueryGraph MakePaperExampleQuery() {
  QueryGraph graph({10.0, 1000.0, 1000.0});  // R, S, T
  graph.AddPredicate(0, 1, 0.1);              // R-S
  graph.AddPredicate(1, 2, 0.05);             // S-T
  return graph;
}

QueryGraph GenerateRandomQuery(const QueryGeneratorOptions& options) {
  const int n = options.num_relations;
  QOPT_CHECK(n >= 2);
  QOPT_CHECK_MSG(options.num_predicates >= n - 1,
                 "need at least a spanning tree of predicates");
  QOPT_CHECK_MSG(options.num_predicates <= n * (n - 1) / 2,
                 "more predicates than distinct relation pairs");
  Rng rng(options.seed);
  std::vector<double> cards(static_cast<std::size_t>(n));
  for (double& c : cards) {
    c = rng.NextDouble(options.cardinality_min, options.cardinality_max);
    c = std::max(1.0, c);
  }
  QueryGraph graph(std::move(cards));

  auto random_selectivity = [&]() {
    return rng.NextDouble(options.selectivity_min, options.selectivity_max);
  };
  // Random spanning tree: attach each relation to a random earlier one.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.Shuffle(&order);
  std::vector<std::vector<bool>> used(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 1; i < n; ++i) {
    const int a = order[static_cast<std::size_t>(i)];
    const int b = order[static_cast<std::size_t>(rng.NextUint64(
        static_cast<std::uint64_t>(i)))];
    graph.AddPredicate(a, b, random_selectivity());
    used[static_cast<std::size_t>(std::min(a, b))]
        [static_cast<std::size_t>(std::max(a, b))] = true;
  }
  // Extra predicates on distinct unused pairs.
  while (graph.NumPredicates() < options.num_predicates) {
    const int a = rng.NextInt(0, n - 1);
    const int b = rng.NextInt(0, n - 1);
    if (a == b) continue;
    auto flag = used[static_cast<std::size_t>(std::min(a, b))].begin() +
                std::max(a, b);
    if (*flag) continue;
    *flag = true;
    graph.AddPredicate(a, b, random_selectivity());
  }
  return graph;
}

QueryGraph GenerateChainQuery(int num_relations, double cardinality,
                              double selectivity, std::uint64_t seed) {
  (void)seed;
  QueryGraph graph(
      std::vector<double>(static_cast<std::size_t>(num_relations), cardinality));
  for (int i = 0; i + 1 < num_relations; ++i) {
    graph.AddPredicate(i, i + 1, selectivity);
  }
  return graph;
}

QueryGraph GenerateStarQuery(int num_relations, double cardinality,
                             double selectivity, std::uint64_t seed) {
  (void)seed;
  QueryGraph graph(
      std::vector<double>(static_cast<std::size_t>(num_relations), cardinality));
  for (int i = 1; i < num_relations; ++i) {
    graph.AddPredicate(0, i, selectivity);
  }
  return graph;
}

QueryGraph GenerateCycleQuery(int num_relations, double cardinality,
                              double selectivity, std::uint64_t seed) {
  (void)seed;
  QueryGraph graph(
      std::vector<double>(static_cast<std::size_t>(num_relations), cardinality));
  for (int i = 0; i + 1 < num_relations; ++i) {
    graph.AddPredicate(i, i + 1, selectivity);
  }
  // The closing predicate needs three distinct relations to not duplicate
  // the chain edge.
  if (num_relations >= 3) {
    graph.AddPredicate(num_relations - 1, 0, selectivity);
  }
  return graph;
}

QueryGraph GenerateCliqueQuery(int num_relations, double cardinality,
                               double selectivity, std::uint64_t seed) {
  (void)seed;
  QueryGraph graph(
      std::vector<double>(static_cast<std::size_t>(num_relations), cardinality));
  for (int i = 0; i < num_relations; ++i) {
    for (int j = i + 1; j < num_relations; ++j) {
      graph.AddPredicate(i, j, selectivity);
    }
  }
  return graph;
}

}  // namespace qopt
