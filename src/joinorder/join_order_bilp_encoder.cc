#include "joinorder/join_order_bilp_encoder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {
namespace {

/// Sum of the (count) largest base-10 log cardinalities: the worst-case
/// logarithmic cardinality mlc of an outer operand containing `count`
/// relations (Eq. 50).
double MaxLogCardinality(const std::vector<double>& cardinalities, int count) {
  std::vector<double> logs;
  logs.reserve(cardinalities.size());
  for (double c : cardinalities) logs.push_back(std::log10(c));
  std::sort(logs.begin(), logs.end(), std::greater<double>());
  double total = 0.0;
  for (int i = 0; i < count && i < static_cast<int>(logs.size()); ++i) {
    total += logs[static_cast<std::size_t>(i)];
  }
  return total;
}

/// Number of binary variables to represent a continuous slack with upper
/// bound `bound` at granularity `omega` (Eq. 52). When `exact` is set the
/// count is raised until the representable range actually covers `bound`.
int ExpansionBits(double bound, double omega, bool exact) {
  QOPT_CHECK(omega > 0.0);
  if (bound <= 0.0) return 1;
  int bits = static_cast<int>(std::floor(std::log2(bound / omega))) + 1;
  bits = std::max(bits, 1);
  if (exact) {
    while (omega * (std::pow(2.0, bits) - 1.0) < bound) ++bits;
  }
  return bits;
}

}  // namespace

Status ValidateJoinOrderEncoderInput(const QueryGraph& graph,
                                     const JoinOrderEncoderOptions& options) {
  if (graph.NumRelations() < 2) {
    return InvalidArgumentError(
        StrFormat("need at least two relations to join, got %d",
                  graph.NumRelations()));
  }
  // 0.1^p underflows to 0 near p = 323 (breaking the omega > 0 invariant)
  // and the binary slack expansions grow linearly in p; 16 decimals is
  // already far beyond the paper's precision sweep (<= 4).
  if (options.precision_decimals < 0 || options.precision_decimals > 16) {
    return OutOfRangeError(
        StrFormat("precision_decimals must be in [0, 16], got %d",
                  options.precision_decimals));
  }
  for (std::size_t r = 0; r < options.thresholds.size(); ++r) {
    const double threshold = options.thresholds[r];
    if (!std::isfinite(threshold) || threshold < 1.0) {
      return OutOfRangeError(StrFormat(
          "thresholds[%zu]: must be a finite value >= 1, got %g", r,
          threshold));
    }
    if (r > 0 && threshold <= options.thresholds[r - 1]) {
      return InvalidArgumentError(StrFormat(
          "thresholds[%zu]: thresholds must be strictly ascending", r));
    }
  }
  return OkStatus();
}

StatusOr<JoinOrderEncoding> TryEncodeJoinOrderAsBilp(
    const QueryGraph& graph, const JoinOrderEncoderOptions& options) {
  QOPT_RETURN_IF_ERROR(ValidateJoinOrderEncoderInput(graph, options));
  return EncodeJoinOrderAsBilp(graph, options);
}

JoinOrderEncoding EncodeJoinOrderAsBilp(const QueryGraph& graph,
                                        const JoinOrderEncoderOptions& options) {
  const int num_relations = graph.NumRelations();
  QOPT_CHECK_MSG(num_relations >= 2, "need at least two relations to join");
  const int num_joins = num_relations - 1;
  const int num_predicates = graph.NumPredicates();
  const int num_thresholds = static_cast<int>(options.thresholds.size());
  QOPT_CHECK(options.precision_decimals >= 0);
  for (int r = 0; r < num_thresholds; ++r) {
    QOPT_CHECK_MSG(options.thresholds[static_cast<std::size_t>(r)] >= 1.0,
                   "thresholds must be >= 1");
    if (r > 0) {
      QOPT_CHECK_MSG(options.thresholds[static_cast<std::size_t>(r)] >
                         options.thresholds[static_cast<std::size_t>(r - 1)],
                     "thresholds must be strictly ascending");
    }
  }

  JoinOrderEncoding encoding;
  encoding.num_relations = num_relations;
  encoding.num_joins = num_joins;
  encoding.omega = std::pow(10.0, -options.precision_decimals);
  const double omega = encoding.omega;
  auto round_to_grid = [omega](double x) {
    return std::round(x / omega) * omega;
  };

  BilpProblem& bilp = encoding.bilp;
  bilp.SetGranularity(omega);

  // --- Logical variables -------------------------------------------------
  auto make_grid = [&](int rows, int cols) {
    return std::vector<std::vector<int>>(
        static_cast<std::size_t>(rows),
        std::vector<int>(static_cast<std::size_t>(cols), -1));
  };
  encoding.tio = make_grid(num_relations, num_joins);
  encoding.tii = make_grid(num_relations, num_joins);
  encoding.pao = make_grid(num_predicates, num_joins);
  encoding.cto = make_grid(num_thresholds, num_joins);

  for (int t = 0; t < num_relations; ++t) {
    for (int j = 0; j < num_joins; ++j) {
      encoding.tio[t][j] = bilp.AddVariable(StrFormat("tio_%d_%d", t, j), 0.0);
      encoding.tii[t][j] = bilp.AddVariable(StrFormat("tii_%d_%d", t, j), 0.0);
    }
  }
  // pao_{p,0} is always pruned: the outer of the first join is a single
  // relation, so no two-relation predicate can apply (Sec. 6.2.2).
  for (int p = 0; p < num_predicates; ++p) {
    for (int j = 1; j < num_joins; ++j) {
      encoding.pao[p][j] = bilp.AddVariable(StrFormat("pao_%d_%d", p, j), 0.0);
    }
  }
  // cto_{r,0} is always pruned: the first outer operand is a base relation
  // and contributes no intermediate result. Optionally prune thresholds
  // the worst-case cardinality can never reach.
  std::vector<double> log_thresholds(static_cast<std::size_t>(num_thresholds));
  for (int r = 0; r < num_thresholds; ++r) {
    log_thresholds[static_cast<std::size_t>(r)] = round_to_grid(
        std::log10(options.thresholds[static_cast<std::size_t>(r)]));
  }
  std::vector<double> cardinalities(static_cast<std::size_t>(num_relations));
  for (int t = 0; t < num_relations; ++t) {
    cardinalities[static_cast<std::size_t>(t)] = graph.Cardinality(t);
  }
  // Worst-case logarithmic outer cardinality per join. The paper's bound
  // (Eq. 50) uses the exact logarithms; the safe variant bounds the sum of
  // the *rounded* coefficients actually present in the constraints, which
  // can exceed the rounded exact sum by up to (j+1) * omega / 2.
  std::vector<double> mlc(static_cast<std::size_t>(num_joins));
  std::vector<double> rounded_logs(static_cast<std::size_t>(num_relations));
  for (int t = 0; t < num_relations; ++t) {
    rounded_logs[static_cast<std::size_t>(t)] =
        round_to_grid(std::log10(graph.Cardinality(t)));
  }
  std::sort(rounded_logs.begin(), rounded_logs.end(), std::greater<double>());
  for (int j = 0; j < num_joins; ++j) {
    if (options.safe_slack_bounds) {
      double sum = 0.0;
      for (int i = 0; i <= j; ++i) {
        sum += rounded_logs[static_cast<std::size_t>(i)];
      }
      mlc[static_cast<std::size_t>(j)] = sum;
    } else {
      mlc[static_cast<std::size_t>(j)] =
          round_to_grid(MaxLogCardinality(cardinalities, j + 1));
    }
  }
  for (int r = 0; r < num_thresholds; ++r) {
    const double delta_theta =
        r == 0 ? options.thresholds[0]
               : options.thresholds[static_cast<std::size_t>(r)] -
                     options.thresholds[static_cast<std::size_t>(r - 1)];
    for (int j = 1; j < num_joins; ++j) {
      if (options.prune_unreachable_cto &&
          mlc[static_cast<std::size_t>(j)] <=
              log_thresholds[static_cast<std::size_t>(r)] + 1e-12) {
        continue;
      }
      encoding.cto[r][j] =
          bilp.AddVariable(StrFormat("cto_%d_%d", r, j), delta_theta);
    }
  }
  encoding.num_logical = bilp.NumVariables();

  // --- Constraint types 1-6 (single-bit slacks where needed) -------------
  auto add_single_slack = [&](const char* name) {
    ++encoding.num_single_slacks;
    return bilp.AddVariable(name, 0.0);
  };

  {  // Type 1: exactly one relation opens the join tree.
    BilpProblem::Constraint c;
    for (int t = 0; t < num_relations; ++t) {
      c.terms.emplace_back(encoding.tio[t][0], 1.0);
    }
    c.rhs = 1.0;
    bilp.AddConstraint(std::move(c));
  }
  for (int j = 0; j < num_joins; ++j) {  // Type 2: one inner relation.
    BilpProblem::Constraint c;
    for (int t = 0; t < num_relations; ++t) {
      c.terms.emplace_back(encoding.tii[t][j], 1.0);
    }
    c.rhs = 1.0;
    bilp.AddConstraint(std::move(c));
  }
  for (int j = 0; j < num_joins; ++j) {  // Type 3: tio + tii <= 1.
    for (int t = 0; t < num_relations; ++t) {
      BilpProblem::Constraint c;
      c.terms.emplace_back(encoding.tio[t][j], 1.0);
      c.terms.emplace_back(encoding.tii[t][j], 1.0);
      c.terms.emplace_back(
          add_single_slack(StrFormat("sl3_%d_%d", t, j).c_str()), 1.0);
      c.rhs = 1.0;
      bilp.AddConstraint(std::move(c));
    }
  }
  for (int j = 1; j < num_joins; ++j) {  // Type 4: outer accumulates.
    for (int t = 0; t < num_relations; ++t) {
      BilpProblem::Constraint c;
      c.terms.emplace_back(encoding.tio[t][j], 1.0);
      c.terms.emplace_back(encoding.tii[t][j - 1], -1.0);
      c.terms.emplace_back(encoding.tio[t][j - 1], -1.0);
      c.rhs = 0.0;
      bilp.AddConstraint(std::move(c));
    }
  }
  const auto& predicates = graph.Predicates();
  for (int p = 0; p < num_predicates; ++p) {  // Types 5 and 6.
    for (int j = 1; j < num_joins; ++j) {
      for (const int rel : {predicates[static_cast<std::size_t>(p)].rel1,
                            predicates[static_cast<std::size_t>(p)].rel2}) {
        BilpProblem::Constraint c;
        c.terms.emplace_back(encoding.pao[p][j], 1.0);
        c.terms.emplace_back(encoding.tio[rel][j], -1.0);
        c.terms.emplace_back(
            add_single_slack(StrFormat("sl56_%d_%d_%d", p, j, rel).c_str()),
            1.0);
        c.rhs = 0.0;
        bilp.AddConstraint(std::move(c));
      }
    }
  }

  // --- Constraint type 7 (threshold activation, expanded slacks) ---------
  // Worst-case negative contribution of the predicate terms: all
  // log-selectivities are <= 0, so lco can undershoot 0 by up to neg_sum.
  double neg_sum = 0.0;
  for (const auto& pred : predicates) {
    neg_sum += -round_to_grid(std::log10(pred.selectivity));
  }
  for (int r = 0; r < num_thresholds; ++r) {
    const double log_theta = log_thresholds[static_cast<std::size_t>(r)];
    for (int j = 1; j < num_joins; ++j) {
      if (encoding.cto[r][j] < 0) continue;  // pruned
      // Big-M: just large enough to satisfy the constraint whenever the
      // threshold is exceeded (Eq. 51); the safe variant also covers
      // negative log-selectivity undershoot.
      double big_m = mlc[static_cast<std::size_t>(j)] - log_theta;
      if (options.safe_slack_bounds) big_m += neg_sum;
      big_m = std::max(round_to_grid(big_m), omega);
      // Slack upper bound (Eq. 48 uses C = mlc in the paper's setting).
      double slack_bound = options.safe_slack_bounds
                               ? log_theta + big_m + neg_sum
                               : mlc[static_cast<std::size_t>(j)];
      const int bits =
          ExpansionBits(slack_bound, omega, options.safe_slack_bounds);

      BilpProblem::Constraint c;
      for (int t = 0; t < num_relations; ++t) {
        c.terms.emplace_back(
            encoding.tio[t][j],
            round_to_grid(std::log10(graph.Cardinality(t))));
      }
      for (int p = 0; p < num_predicates; ++p) {
        c.terms.emplace_back(
            encoding.pao[p][j],
            round_to_grid(
                std::log10(predicates[static_cast<std::size_t>(p)].selectivity)));
      }
      c.terms.emplace_back(encoding.cto[r][j], -big_m);
      for (int i = 1; i <= bits; ++i) {
        const int slack = bilp.AddVariable(
            StrFormat("sl7_%d_%d_b%d", r, j, i), 0.0);
        ++encoding.num_expansion_slacks;
        c.terms.emplace_back(slack, omega * std::pow(2.0, i - 1));
      }
      c.rhs = log_theta;
      bilp.AddConstraint(std::move(c));
    }
  }

  return encoding;
}

bool DecodeJoinOrder(const JoinOrderEncoding& encoding,
                     const std::vector<std::uint8_t>& bits,
                     std::vector<int>* order) {
  QOPT_CHECK(order != nullptr);
  QOPT_CHECK(static_cast<int>(bits.size()) == encoding.bilp.NumVariables());
  const int num_relations = encoding.num_relations;
  order->assign(static_cast<std::size_t>(num_relations), -1);
  std::vector<bool> used(static_cast<std::size_t>(num_relations), false);

  auto pick_unique = [&](int position, const auto& var_of_relation) {
    int chosen = -1;
    for (int t = 0; t < num_relations; ++t) {
      if (!bits[static_cast<std::size_t>(var_of_relation(t))]) continue;
      if (chosen != -1) return false;  // more than one relation selected
      chosen = t;
    }
    if (chosen == -1 || used[static_cast<std::size_t>(chosen)]) return false;
    used[static_cast<std::size_t>(chosen)] = true;
    (*order)[static_cast<std::size_t>(position)] = chosen;
    return true;
  };

  if (!pick_unique(0, [&](int t) { return encoding.tio[t][0]; })) return false;
  for (int j = 0; j < encoding.num_joins; ++j) {
    if (!pick_unique(j + 1, [&](int t) { return encoding.tii[t][j]; })) {
      return false;
    }
  }
  return true;
}

JoinOrderResourceCounts CountJoinOrderQubits(
    int num_relations, int num_predicates, int num_thresholds, double omega,
    const std::vector<double>& cardinalities) {
  QOPT_CHECK(num_relations >= 2);
  QOPT_CHECK(num_predicates >= 0);
  QOPT_CHECK(num_thresholds >= 0);
  QOPT_CHECK(omega > 0.0);
  const long long t = num_relations;
  const long long j = t - 1;
  const long long p = num_predicates;
  const long long r = num_thresholds;
  JoinOrderResourceCounts counts;
  counts.logical = j * (2 * t + p + r) - p - r;        // Eq. 46
  counts.single_slack = j * (t + 2 * p) - 2 * p;       // Eq. 47
  counts.expansion_slack = 0;                          // Eq. 53
  for (long long join = 1; join < j; ++join) {         // joins 2..J, 1-based
    const double mlc =
        MaxLogCardinality(cardinalities, static_cast<int>(join) + 1);
    counts.expansion_slack +=
        r * ExpansionBits(mlc, omega, /*exact=*/false);
  }
  counts.total = counts.logical + counts.single_slack + counts.expansion_slack;
  return counts;
}

JoinOrderResourceCounts CountJoinOrderQubits(int num_relations,
                                             int num_predicates,
                                             int num_thresholds, double omega,
                                             double uniform_cardinality) {
  return CountJoinOrderQubits(
      num_relations, num_predicates, num_thresholds, omega,
      std::vector<double>(static_cast<std::size_t>(num_relations),
                          uniform_cardinality));
}

}  // namespace qopt
