#include "joinorder/join_order.h"

#include "common/check.h"

namespace qopt {

bool IsValidJoinOrder(const QueryGraph& graph, const std::vector<int>& order) {
  if (static_cast<int>(order.size()) != graph.NumRelations()) return false;
  std::vector<bool> seen(static_cast<std::size_t>(graph.NumRelations()), false);
  for (int r : order) {
    if (r < 0 || r >= graph.NumRelations() ||
        seen[static_cast<std::size_t>(r)]) {
      return false;
    }
    seen[static_cast<std::size_t>(r)] = true;
  }
  return true;
}

double CoutCost(const QueryGraph& graph, const std::vector<int>& order,
                bool include_final_join) {
  QOPT_CHECK_MSG(IsValidJoinOrder(graph, order), "invalid join order");
  const int n = graph.NumRelations();
  if (n == 1) return 0.0;
  std::vector<bool> joined(static_cast<std::size_t>(n), false);
  joined[static_cast<std::size_t>(order[0])] = true;
  double intermediate = graph.Cardinality(order[0]);
  double cost = 0.0;
  const int last = include_final_join ? n : n - 1;
  for (int i = 1; i < n; ++i) {
    const int rel = order[static_cast<std::size_t>(i)];
    intermediate *= graph.Cardinality(rel) *
                    graph.SelectivityAgainst(rel, joined);
    joined[static_cast<std::size_t>(rel)] = true;
    if (i < last) cost += intermediate;
  }
  return cost;
}

double IntermediateCardinality(const QueryGraph& graph,
                               const std::vector<int>& subset) {
  std::vector<bool> joined(static_cast<std::size_t>(graph.NumRelations()),
                           false);
  double cardinality = 1.0;
  for (int rel : subset) {
    QOPT_CHECK(rel >= 0 && rel < graph.NumRelations());
    QOPT_CHECK_MSG(!joined[static_cast<std::size_t>(rel)],
                   "subset contains a relation twice");
    cardinality *=
        graph.Cardinality(rel) * graph.SelectivityAgainst(rel, joined);
    joined[static_cast<std::size_t>(rel)] = true;
  }
  return subset.empty() ? 0.0 : cardinality;
}

}  // namespace qopt
