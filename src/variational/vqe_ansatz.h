#pragma once

#include <vector>

#include "circuit/quantum_circuit.h"

namespace qopt {

/// Entanglement patterns for the hardware-efficient VQE ansatz.
enum class Entanglement {
  kFull,    ///< CX between every qubit pair per block (Qiskit's 2021
            ///< RealAmplitudes default, used by the paper's VQE runs).
  kLinear,  ///< CX chain 0-1, 1-2, ..., n-2 - n-1 per block.
};

/// Builds the RealAmplitudes-style VQE ansatz: (reps+1) RY rotation layers
/// interleaved with `reps` entanglement blocks. `thetas` must contain
/// n * (reps + 1) angles (layer-major). The circuit structure — and hence
/// its depth — is independent of the problem Hamiltonian, which is why the
/// paper's VQE depth depends only on the qubit count, not on QUBO density.
QuantumCircuit BuildRealAmplitudes(int num_qubits, int reps,
                                   const std::vector<double>& thetas,
                                   Entanglement entanglement =
                                       Entanglement::kFull);

/// Number of parameters of the ansatz: n * (reps + 1).
int RealAmplitudesNumParameters(int num_qubits, int reps);

/// Template with small constant angles for depth studies.
QuantumCircuit BuildVqeTemplate(int num_qubits, int reps = 3,
                                Entanglement entanglement =
                                    Entanglement::kFull);

}  // namespace qopt
