#pragma once

#include <vector>

#include "circuit/quantum_circuit.h"
#include "qubo/ising_model.h"

namespace qopt {

/// Builds the QAOA state-preparation circuit |gamma, beta> (Eq. 20):
///
///   |s> = H^(x)n |0..0>, then p repetitions of
///   U(C, gamma_l) = prod RZZ(2 gamma_l J_ij) RZ(2 gamma_l h_i)   and
///   U(B, beta_l)  = prod RX(2 beta_l).
///
/// `gammas` and `betas` must have equal size p >= 1. The number of RZZ
/// gates per cost layer equals the number of non-zero couplings, which is
/// why the circuit depth grows with the number of quadratic QUBO terms
/// (Sec. 3.4.2) — the central effect the paper measures.
QuantumCircuit BuildQaoaCircuit(const IsingModel& ising,
                                const std::vector<double>& gammas,
                                const std::vector<double>& betas);

/// Convenience: the p=1 template circuit with all angles zero, used for
/// depth studies where only the structure matters.
QuantumCircuit BuildQaoaTemplate(const IsingModel& ising, int reps = 1);

}  // namespace qopt
