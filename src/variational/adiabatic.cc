#include "variational/adiabatic.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "circuit/statevector.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qubo/conversions.h"

namespace qopt {
namespace {

using Complex = std::complex<double>;

/// Applies exp(+i a X) to every qubit of the dense state (the mixer slice
/// of a Trotter step; H_B = -sum X so exp(-i dt (1-s) H_B) has a = dt(1-s)).
void ApplyMixerSlice(std::vector<Complex>* amplitudes, int num_qubits,
                     double a) {
  const Complex c = std::cos(a);
  const Complex is = Complex(0.0, 1.0) * std::sin(a);
  for (int q = 0; q < num_qubits; ++q) {
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < amplitudes->size(); base += 2 * stride) {
      for (std::size_t offset = 0; offset < stride; ++offset) {
        const std::size_t i0 = base + offset;
        const std::size_t i1 = i0 + stride;
        const Complex a0 = (*amplitudes)[i0];
        const Complex a1 = (*amplitudes)[i1];
        (*amplitudes)[i0] = c * a0 + is * a1;
        (*amplitudes)[i1] = is * a0 + c * a1;
      }
    }
  }
}

/// Sparse matrix-vector product v -> H(s) v with
/// H(s) = (1-s) * (-sum X) + s * diag(problem energies).
void HamiltonianMatVec(const std::vector<double>& energies, int num_qubits,
                       double s, const std::vector<double>& v,
                       std::vector<double>* out) {
  const std::size_t dim = v.size();
  for (std::size_t j = 0; j < dim; ++j) {
    double value = s * energies[j] * v[j];
    for (int q = 0; q < num_qubits; ++q) {
      value -= (1.0 - s) * v[j ^ (std::size_t{1} << q)];
    }
    (*out)[j] = value;
  }
}

/// Two smallest eigenvalues of the symmetric tridiagonal matrix
/// (alpha, beta) by bisection with Sturm sequence counting.
std::pair<double, double> TridiagTwoSmallest(const std::vector<double>& alpha,
                                             const std::vector<double>& beta) {
  const int m = static_cast<int>(alpha.size());
  QOPT_CHECK(m >= 2);
  // Gershgorin bounds.
  double lo = alpha[0];
  double hi = alpha[0];
  for (int i = 0; i < m; ++i) {
    const double left = i > 0 ? std::abs(beta[static_cast<std::size_t>(i - 1)]) : 0.0;
    const double right =
        i + 1 < m ? std::abs(beta[static_cast<std::size_t>(i)]) : 0.0;
    lo = std::min(lo, alpha[static_cast<std::size_t>(i)] - left - right);
    hi = std::max(hi, alpha[static_cast<std::size_t>(i)] + left + right);
  }
  auto count_below = [&](double x) {
    // Number of eigenvalues < x via the Sturm sequence.
    int count = 0;
    double d = 1.0;
    for (int i = 0; i < m; ++i) {
      const double b2 =
          i > 0 ? beta[static_cast<std::size_t>(i - 1)] *
                      beta[static_cast<std::size_t>(i - 1)]
                : 0.0;
      d = alpha[static_cast<std::size_t>(i)] - x - (i > 0 ? b2 / d : 0.0);
      if (d == 0.0) d = -1e-30;
      if (d < 0.0) ++count;
    }
    return count;
  };
  auto kth_eigenvalue = [&](int k) {
    double a = lo;
    double b = hi;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (a + b);
      if (count_below(mid) > k) {
        b = mid;
      } else {
        a = mid;
      }
    }
    return 0.5 * (a + b);
  };
  return {kth_eigenvalue(0), kth_eigenvalue(1)};
}

/// Two lowest eigenvalues of H(s) by Lanczos with full
/// reorthogonalization.
std::pair<double, double> TwoLowestEigenvalues(
    const std::vector<double>& energies, int num_qubits, double s, Rng* rng) {
  const std::size_t dim = energies.size();
  const int m = std::min<int>(static_cast<int>(dim), 70);
  std::vector<std::vector<double>> basis;
  std::vector<double> alpha;
  std::vector<double> beta;
  std::vector<double> v(dim);
  for (double& x : v) x = rng->NextGaussian();
  auto normalize = [](std::vector<double>* vec) {
    double norm = 0.0;
    for (double x : *vec) norm += x * x;
    norm = std::sqrt(norm);
    for (double& x : *vec) x /= norm;
    return norm;
  };
  normalize(&v);
  std::vector<double> w(dim);
  for (int k = 0; k < m; ++k) {
    basis.push_back(v);
    HamiltonianMatVec(energies, num_qubits, s, v, &w);
    double a = 0.0;
    for (std::size_t j = 0; j < dim; ++j) a += v[j] * w[j];
    alpha.push_back(a);
    // w -= a v + (beta_{k-1}) v_{k-1}, then full reorthogonalization.
    for (std::size_t j = 0; j < dim; ++j) w[j] -= a * v[j];
    if (k > 0) {
      const double b = beta.back();
      for (std::size_t j = 0; j < dim; ++j) {
        w[j] -= b * basis[static_cast<std::size_t>(k - 1)][j];
      }
    }
    for (const auto& u : basis) {
      double overlap = 0.0;
      for (std::size_t j = 0; j < dim; ++j) overlap += u[j] * w[j];
      for (std::size_t j = 0; j < dim; ++j) w[j] -= overlap * u[j];
    }
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12 || k + 1 == m) break;
    beta.push_back(norm);
    for (std::size_t j = 0; j < dim; ++j) v[j] = w[j] / norm;
  }
  if (alpha.size() < 2) {
    // Krylov space collapsed (dim 1): duplicate the single value.
    return {alpha[0], alpha[0]};
  }
  return TridiagTwoSmallest(alpha, beta);
}

}  // namespace

StatusOr<AdiabaticResult> TrySolveQuboAdiabatically(
    const QuboModel& qubo, const AdiabaticOptions& options) {
  QQO_TRACE_SPAN("adiabatic.evolve");
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_CHECK(options.steps >= 1);
  QOPT_CHECK(options.total_time > 0.0);
  QOPT_RETURN_IF_ERROR(options.deadline.Check());
  const int n = qubo.NumVariables();
  QOPT_CHECK_MSG(n <= 20, "adiabatic simulation too large");
  QOPT_FAULT_POINT("statevector.alloc");  // 2^n table + amplitude buffer
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);

  // Start in the uniform superposition (ground state of -sum X).
  const std::size_t dim = std::size_t{1} << n;
  std::vector<Complex> amplitudes(dim, Complex(1.0 / std::sqrt(dim), 0.0));

  const double dt = options.total_time / options.steps;
  // QQO_LOOP(adiabatic.step)
  for (int step = 0; step < options.steps; ++step) {
    QQO_COUNT("adiabatic.steps", 1);
    // A partially evolved state cannot be sampled meaningfully; abort at
    // the step boundary when the budget runs out.
    QOPT_RETURN_IF_ERROR(options.deadline.Check());
    const double s = (step + 0.5) / options.steps;
    // Problem slice: diagonal phases exp(-i dt s E_j).
    for (std::size_t j = 0; j < dim; ++j) {
      amplitudes[j] *= std::exp(Complex(0.0, -dt * s * energies[j]));
    }
    // Mixer slice: exp(-i dt (1-s) H_B) = prod_q exp(+i dt (1-s) X_q).
    ApplyMixerSlice(&amplitudes, n, dt * (1.0 - s));
  }

  // Ground-state probability.
  const double ground_energy =
      *std::min_element(energies.begin(), energies.end());
  AdiabaticResult result;
  for (std::size_t j = 0; j < dim; ++j) {
    if (energies[j] <= ground_energy + 1e-9) {
      result.ground_state_probability += std::norm(amplitudes[j]);
    }
  }
  // Sample and keep the best-energy shot.
  std::vector<double> cumulative(dim);
  double total = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    total += std::norm(amplitudes[j]);
    cumulative[j] = total;
  }
  Rng rng(options.seed);
  std::size_t best_index = 0;
  double best_energy = energies[0];
  bool first = true;
  for (int shot = 0; shot < options.shots; ++shot) {
    const double r = rng.NextDouble() * total;
    const std::size_t index = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), r) -
        cumulative.begin());
    const std::size_t clamped = std::min(index, dim - 1);
    if (first || energies[clamped] < best_energy) {
      best_energy = energies[clamped];
      best_index = clamped;
      first = false;
    }
  }
  result.best_bits.assign(static_cast<std::size_t>(n), 0);
  for (int q = 0; q < n; ++q) {
    result.best_bits[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((best_index >> q) & 1u);
  }
  // The Ising energy table is offset-consistent with the QUBO.
  result.best_energy = qubo.Energy(result.best_bits);
  return result;
}

AdiabaticResult SolveQuboAdiabatically(const QuboModel& qubo,
                                       const AdiabaticOptions& options) {
  StatusOr<AdiabaticResult> result = TrySolveQuboAdiabatically(qubo, options);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return *std::move(result);
}

SpectralGap MinimumSpectralGap(const IsingModel& problem, int sweep_points) {
  QOPT_CHECK(sweep_points >= 2);
  QOPT_CHECK_MSG(problem.NumSpins() <= 12,
                 "spectral-gap sweep too large");
  const std::vector<double> energies = IsingEnergyTable(problem);
  Rng rng(12345);
  SpectralGap gap;
  bool first = true;
  for (int p = 0; p < sweep_points; ++p) {
    const double s = static_cast<double>(p) / (sweep_points - 1);
    const auto [e0, e1] =
        TwoLowestEigenvalues(energies, problem.NumSpins(), s, &rng);
    const double g = e1 - e0;
    if (first || g < gap.min_gap) {
      gap.min_gap = g;
      gap.at_s = s;
      first = false;
    }
  }
  return gap;
}

}  // namespace qopt
