#include "variational/vqe_ansatz.h"

#include "common/check.h"

namespace qopt {

int RealAmplitudesNumParameters(int num_qubits, int reps) {
  QOPT_CHECK(num_qubits >= 1);
  QOPT_CHECK(reps >= 0);
  return num_qubits * (reps + 1);
}

QuantumCircuit BuildRealAmplitudes(int num_qubits, int reps,
                                   const std::vector<double>& thetas,
                                   Entanglement entanglement) {
  QOPT_CHECK(static_cast<int>(thetas.size()) ==
             RealAmplitudesNumParameters(num_qubits, reps));
  QuantumCircuit circuit(num_qubits);
  std::size_t next = 0;
  auto rotation_layer = [&]() {
    for (int q = 0; q < num_qubits; ++q) circuit.Ry(q, thetas[next++]);
  };
  rotation_layer();
  for (int r = 0; r < reps; ++r) {
    switch (entanglement) {
      case Entanglement::kFull:
        for (int i = 0; i < num_qubits; ++i) {
          for (int j = i + 1; j < num_qubits; ++j) circuit.Cx(i, j);
        }
        break;
      case Entanglement::kLinear:
        for (int i = 0; i + 1 < num_qubits; ++i) circuit.Cx(i, i + 1);
        break;
    }
    rotation_layer();
  }
  return circuit;
}

QuantumCircuit BuildVqeTemplate(int num_qubits, int reps,
                                Entanglement entanglement) {
  const std::vector<double> thetas(
      static_cast<std::size_t>(RealAmplitudesNumParameters(num_qubits, reps)),
      0.1);
  return BuildRealAmplitudes(num_qubits, reps, thetas, entanglement);
}

}  // namespace qopt
