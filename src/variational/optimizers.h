#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/deadline.h"

namespace qopt {

/// Objective for the classical outer loop of a variational algorithm.
using Objective = std::function<double(const std::vector<double>&)>;

/// Result of a classical optimization run.
struct OptimizeResult {
  std::vector<double> x;
  double fval = 0.0;
  int evaluations = 0;
  int iterations = 0;
  /// True when the deadline expired or the CancelToken fired before
  /// max_iterations / convergence: x is the best point seen so far, from
  /// fewer iterations than requested. Callers that need to distinguish
  /// expiry from cancellation re-check their own deadline.
  bool interrupted = false;
};

/// All optimizers check `deadline` at every iteration boundary; on expiry
/// or cancellation they stop, return the best point found so far and set
/// `interrupted`. The default deadline is unbounded.

/// Derivative-free Nelder–Mead simplex minimization (the COBYLA stand-in;
/// both are the derivative-free local optimizers Qiskit defaults to).
OptimizeResult MinimizeNelderMead(const Objective& objective,
                                  const std::vector<double>& x0,
                                  int max_iterations = 400,
                                  double tolerance = 1e-6,
                                  double initial_step = 0.5,
                                  const Deadline& deadline = {});

/// Adam-style gradient descent with central finite-difference gradients.
/// On a noiseless statevector backend the gradients are effectively
/// exact, which makes this the strongest (if costly: 2N evaluations per
/// step) outer optimizer for larger parameter counts.
OptimizeResult MinimizeAdam(const Objective& objective,
                            const std::vector<double>& x0,
                            int max_iterations = 100,
                            double learning_rate = 0.1,
                            double gradient_step = 1e-4,
                            const Deadline& deadline = {});

/// Simultaneous perturbation stochastic approximation, the optimizer
/// recommended for noisy quantum objective evaluations.
OptimizeResult MinimizeSpsa(const Objective& objective,
                            const std::vector<double>& x0,
                            int max_iterations = 200,
                            std::uint64_t seed = 0, double a = 0.2,
                            double c = 0.1, const Deadline& deadline = {});

}  // namespace qopt
