#pragma once

#include <cstdint>
#include <vector>

#include "circuit/quantum_circuit.h"
#include "common/deadline.h"
#include "common/status.h"
#include "qubo/qubo_model.h"
#include "variational/vqe_ansatz.h"

namespace qopt {

/// Classical optimizer choice for the variational outer loop.
enum class OuterOptimizer { kNelderMead, kSpsa, kAdam };

/// Options for the hybrid quantum-classical solvers. The defaults match
/// the paper's setup: QAOA with p = 1 repetitions, VQE with the
/// RealAmplitudes ansatz (3 reps, full entanglement).
struct VariationalOptions {
  int qaoa_reps = 1;
  int vqe_reps = 3;
  Entanglement vqe_entanglement = Entanglement::kFull;
  OuterOptimizer optimizer = OuterOptimizer::kNelderMead;
  int max_iterations = 300;
  int shots = 1024;  ///< Samples drawn from the optimal state.
  std::uint64_t seed = 0;
  /// Wall-clock budget, checked at every outer-optimizer iteration and
  /// before every simulated gate of the final sampling circuit. A
  /// variational result from a truncated optimization is not meaningful,
  /// so expiry is an error (kDeadlineExceeded), not a degraded result —
  /// the facade is the layer that falls back classically. Unbounded by
  /// default.
  Deadline deadline;
};

/// Result of a hybrid solve. `best_bits` is the lowest-energy sample drawn
/// from the optimized state (the MinimumEigenOptimizer behaviour).
struct VariationalResult {
  std::vector<std::uint8_t> best_bits;
  double best_energy = 0.0;       ///< QUBO energy of best_bits.
  double expectation = 0.0;       ///< <H> of the optimized state.
  QuantumCircuit optimal_circuit; ///< Ansatz bound to the optimal angles.
  int evaluations = 0;            ///< Objective (circuit) evaluations.
};

/// Status-reporting flavours: kDeadlineExceeded / kCancelled when the
/// budget trips, and the "statevector.alloc" fault point fires before each
/// 2^n amplitude/energy-table allocation.
StatusOr<VariationalResult> TrySolveQuboWithQaoa(
    const QuboModel& qubo, const VariationalOptions& options = {});
StatusOr<VariationalResult> TrySolveQuboWithVqe(
    const QuboModel& qubo, const VariationalOptions& options = {});

/// Solves a QUBO with QAOA simulated on the statevector backend.
VariationalResult SolveQuboWithQaoa(const QuboModel& qubo,
                                    const VariationalOptions& options = {});

/// Solves a QUBO with VQE simulated on the statevector backend.
VariationalResult SolveQuboWithVqe(const QuboModel& qubo,
                                   const VariationalOptions& options = {});

}  // namespace qopt
