#include "variational/variational_solver.h"

#include <cmath>
#include <numbers>

#include "circuit/statevector.h"
#include "common/check.h"
#include "common/random.h"
#include "qubo/conversions.h"
#include "variational/optimizers.h"
#include "variational/qaoa.h"

namespace qopt {
namespace {

OptimizeResult RunOuterLoop(const Objective& objective,
                            const std::vector<double>& x0,
                            const VariationalOptions& options) {
  switch (options.optimizer) {
    case OuterOptimizer::kNelderMead:
      return MinimizeNelderMead(objective, x0, options.max_iterations);
    case OuterOptimizer::kSpsa:
      return MinimizeSpsa(objective, x0, options.max_iterations,
                          options.seed);
    case OuterOptimizer::kAdam:
      return MinimizeAdam(objective, x0,
                          std::max(1, options.max_iterations / 4));
  }
  QOPT_CHECK_MSG(false, "unknown optimizer");
  return {};
}

/// Simulates `circuit`, samples `shots` bit strings and returns the one
/// with the lowest QUBO energy together with the state expectation.
VariationalResult FinalizeFromCircuit(const QuboModel& qubo,
                                      const IsingModel& ising,
                                      QuantumCircuit circuit,
                                      const VariationalOptions& options,
                                      int evaluations) {
  Statevector state = SimulateCircuit(circuit);
  VariationalResult result;
  result.expectation = state.IsingExpectation(ising);
  Rng rng(options.seed + 0x5EED);
  result.best_bits = state.Sample(&rng);
  result.best_energy = qubo.Energy(result.best_bits);
  for (int s = 1; s < options.shots; ++s) {
    const std::vector<std::uint8_t> bits = state.Sample(&rng);
    const double energy = qubo.Energy(bits);
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best_bits = bits;
    }
  }
  result.optimal_circuit = std::move(circuit);
  result.evaluations = evaluations;
  return result;
}

}  // namespace

VariationalResult SolveQuboWithQaoa(const QuboModel& qubo,
                                    const VariationalOptions& options) {
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_CHECK(options.qaoa_reps >= 1);
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);
  const int p = options.qaoa_reps;

  // theta = (gamma_1..gamma_p, beta_1..beta_p); initialized with zeros as
  // in the paper's QAOA setup (Sec. 5.2.2).
  auto split = [p](const std::vector<double>& theta) {
    const std::vector<double> gammas(theta.begin(), theta.begin() + p);
    const std::vector<double> betas(theta.begin() + p, theta.end());
    return std::make_pair(gammas, betas);
  };
  Objective objective = [&](const std::vector<double>& theta) {
    const auto [gammas, betas] = split(theta);
    Statevector state =
        SimulateCircuit(BuildQaoaCircuit(ising, gammas, betas));
    const std::vector<double> probs = state.Probabilities();
    double expectation = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      expectation += probs[i] * energies[i];
    }
    return expectation;
  };

  // Multi-start: the all-zero start of the paper's setup, the INTERP-style
  // linear ramp (gamma rising, beta falling — the adiabatic-inspired
  // schedule that works well for p > 1), and one random point.
  std::vector<std::vector<double>> starts;
  starts.emplace_back(static_cast<std::size_t>(2 * p), 0.0);
  {
    std::vector<double> ramp(static_cast<std::size_t>(2 * p));
    for (int l = 0; l < p; ++l) {
      const double frac = (l + 0.5) / p;
      ramp[static_cast<std::size_t>(l)] = 0.4 * frac;            // gamma
      ramp[static_cast<std::size_t>(p + l)] = 0.4 * (1 - frac);  // beta
    }
    starts.push_back(std::move(ramp));
  }
  {
    Rng rng(options.seed + 17);
    std::vector<double> random_start(static_cast<std::size_t>(2 * p));
    for (double& v : random_start) v = rng.NextDouble(-0.5, 0.5);
    starts.push_back(std::move(random_start));
  }
  OptimizeResult opt;
  bool first = true;
  for (const auto& x0 : starts) {
    OptimizeResult candidate = RunOuterLoop(objective, x0, options);
    if (first || candidate.fval < opt.fval) {
      candidate.evaluations += first ? 0 : opt.evaluations;
      opt = std::move(candidate);
      first = false;
    } else {
      opt.evaluations += candidate.evaluations;
    }
  }
  const auto [gammas, betas] = split(opt.x);
  return FinalizeFromCircuit(qubo, ising, BuildQaoaCircuit(ising, gammas, betas),
                             options, opt.evaluations);
}

VariationalResult SolveQuboWithVqe(const QuboModel& qubo,
                                   const VariationalOptions& options) {
  QOPT_CHECK(qubo.NumVariables() >= 1);
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);
  const int n = qubo.NumVariables();
  const int num_params = RealAmplitudesNumParameters(n, options.vqe_reps);

  Objective objective = [&](const std::vector<double>& theta) {
    Statevector state = SimulateCircuit(BuildRealAmplitudes(
        n, options.vqe_reps, theta, options.vqe_entanglement));
    const std::vector<double> probs = state.Probabilities();
    double expectation = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      expectation += probs[i] * energies[i];
    }
    return expectation;
  };

  // Small random angles break the symmetry of the all-zero start (an RY(0)
  // ansatz would stay in |0..0> for Nelder-Mead's degenerate directions).
  Rng rng(options.seed);
  std::vector<double> x0(static_cast<std::size_t>(num_params));
  for (double& v : x0) {
    v = rng.NextDouble(-std::numbers::pi / 8.0, std::numbers::pi / 8.0);
  }
  OptimizeResult opt = RunOuterLoop(objective, x0, options);
  return FinalizeFromCircuit(
      qubo, ising,
      BuildRealAmplitudes(n, options.vqe_reps, opt.x, options.vqe_entanglement),
      options, opt.evaluations);
}

}  // namespace qopt
