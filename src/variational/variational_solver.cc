#include "variational/variational_solver.h"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "circuit/statevector.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "qubo/conversions.h"
#include "variational/optimizers.h"
#include "variational/qaoa.h"

namespace qopt {
namespace {

OptimizeResult RunOuterLoop(const Objective& objective,
                            const std::vector<double>& x0,
                            const VariationalOptions& options) {
  switch (options.optimizer) {
    case OuterOptimizer::kNelderMead:
      return MinimizeNelderMead(objective, x0, options.max_iterations);
    case OuterOptimizer::kSpsa:
      return MinimizeSpsa(objective, x0, options.max_iterations,
                          options.seed);
    case OuterOptimizer::kAdam:
      return MinimizeAdam(objective, x0,
                          std::max(1, options.max_iterations / 4));
  }
  QOPT_CHECK_MSG(false, "unknown optimizer");
  return {};
}

/// Simulates `circuit` into `state` (reusing its buffer), samples `shots`
/// bit strings via a cumulative-distribution binary search and returns the
/// one with the lowest QUBO energy together with the state expectation.
/// `energies` is the precomputed IsingEnergyTable of `ising`.
VariationalResult FinalizeFromCircuit(const QuboModel& qubo,
                                      QuantumCircuit circuit,
                                      const std::vector<double>& energies,
                                      const VariationalOptions& options,
                                      int evaluations, Statevector* state) {
  state->Reset();
  state->ApplyCircuit(circuit);
  VariationalResult result;
  result.expectation = state->EnergyExpectation(energies);
  // The cumulative distribution is built once; each shot then costs one
  // RNG draw plus a binary search instead of a 2^n scan. Shots landing on
  // an already-scored basis state reuse its energy.
  const std::vector<double> cdf = state->CumulativeProbabilities();
  std::unordered_map<std::size_t, double> energy_of_state;
  auto score = [&](const std::vector<std::uint8_t>& bits) {
    std::size_t index = 0;
    for (std::size_t q = 0; q < bits.size(); ++q) {
      index |= static_cast<std::size_t>(bits[q]) << q;
    }
    const auto it = energy_of_state.find(index);
    if (it != energy_of_state.end()) return it->second;
    const double energy = qubo.Energy(bits);
    energy_of_state.emplace(index, energy);
    return energy;
  };
  Rng rng(options.seed + 0x5EED);
  result.best_bits = state->SampleFromCdf(cdf, &rng);
  result.best_energy = score(result.best_bits);
  for (int s = 1; s < options.shots; ++s) {
    const std::vector<std::uint8_t> bits = state->SampleFromCdf(cdf, &rng);
    const double energy = score(bits);
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best_bits = bits;
    }
  }
  result.optimal_circuit = std::move(circuit);
  result.evaluations = evaluations;
  return result;
}

}  // namespace

VariationalResult SolveQuboWithQaoa(const QuboModel& qubo,
                                    const VariationalOptions& options) {
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_CHECK(options.qaoa_reps >= 1);
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);
  const int n = qubo.NumVariables();
  const int p = options.qaoa_reps;

  // theta = (gamma_1..gamma_p, beta_1..beta_p); initialized with zeros as
  // in the paper's QAOA setup (Sec. 5.2.2).
  auto split = [p](const std::vector<double>& theta) {
    const std::vector<double> gammas(theta.begin(), theta.begin() + p);
    const std::vector<double> betas(theta.begin() + p, theta.end());
    return std::make_pair(gammas, betas);
  };
  // Each objective owns one statevector buffer and reuses it (plus the
  // shared energy table) across every evaluation of the outer loop — no
  // 2^n reallocation or energy-table rebuild per call.
  auto make_objective = [&](Statevector* state) {
    return Objective([&, state](const std::vector<double>& theta) {
      const auto [gammas, betas] = split(theta);
      state->Reset();
      state->ApplyCircuit(BuildQaoaCircuit(ising, gammas, betas));
      return state->EnergyExpectation(energies);
    });
  };

  // Multi-start: the all-zero start of the paper's setup, the INTERP-style
  // linear ramp (gamma rising, beta falling — the adiabatic-inspired
  // schedule that works well for p > 1), and one random point.
  std::vector<std::vector<double>> starts;
  starts.emplace_back(static_cast<std::size_t>(2 * p), 0.0);
  {
    std::vector<double> ramp(static_cast<std::size_t>(2 * p));
    for (int l = 0; l < p; ++l) {
      const double frac = (l + 0.5) / p;
      ramp[static_cast<std::size_t>(l)] = 0.4 * frac;            // gamma
      ramp[static_cast<std::size_t>(p + l)] = 0.4 * (1 - frac);  // beta
    }
    starts.push_back(std::move(ramp));
  }
  {
    Rng rng(options.seed + 17);
    std::vector<double> random_start(static_cast<std::size_t>(2 * p));
    for (double& v : random_start) v = rng.NextDouble(-0.5, 0.5);
    starts.push_back(std::move(random_start));
  }

  // The starts are independent outer-loop runs; results land in the slot
  // of their start, and the winner is picked by scanning slots in order,
  // so the outcome matches the serial sweep at any thread count.
  std::vector<OptimizeResult> candidates(starts.size());
  ThreadPool::Default().ParallelFor(starts.size(), [&](std::size_t s) {
    Statevector state(n);
    const Objective objective = make_objective(&state);
    candidates[s] = RunOuterLoop(objective, starts[s], options);
  });
  OptimizeResult opt = candidates[0];
  int total_evaluations = candidates[0].evaluations;
  for (std::size_t s = 1; s < candidates.size(); ++s) {
    total_evaluations += candidates[s].evaluations;
    if (candidates[s].fval < opt.fval) opt = candidates[s];
  }
  opt.evaluations = total_evaluations;

  const auto [gammas, betas] = split(opt.x);
  Statevector state(n);
  return FinalizeFromCircuit(qubo, BuildQaoaCircuit(ising, gammas, betas),
                             energies, options, opt.evaluations, &state);
}

VariationalResult SolveQuboWithVqe(const QuboModel& qubo,
                                   const VariationalOptions& options) {
  QOPT_CHECK(qubo.NumVariables() >= 1);
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);
  const int n = qubo.NumVariables();
  const int num_params = RealAmplitudesNumParameters(n, options.vqe_reps);

  Statevector state(n);
  Objective objective = [&](const std::vector<double>& theta) {
    state.Reset();
    state.ApplyCircuit(BuildRealAmplitudes(n, options.vqe_reps, theta,
                                           options.vqe_entanglement));
    return state.EnergyExpectation(energies);
  };

  // Small random angles break the symmetry of the all-zero start (an RY(0)
  // ansatz would stay in |0..0> for Nelder-Mead's degenerate directions).
  Rng rng(options.seed);
  std::vector<double> x0(static_cast<std::size_t>(num_params));
  for (double& v : x0) {
    v = rng.NextDouble(-std::numbers::pi / 8.0, std::numbers::pi / 8.0);
  }
  OptimizeResult opt = RunOuterLoop(objective, x0, options);
  return FinalizeFromCircuit(
      qubo,
      BuildRealAmplitudes(n, options.vqe_reps, opt.x, options.vqe_entanglement),
      energies, options, opt.evaluations, &state);
}

}  // namespace qopt
