#include "variational/variational_solver.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <unordered_map>

#include "circuit/statevector.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qubo/conversions.h"
#include "variational/optimizers.h"
#include "variational/qaoa.h"

namespace qopt {
namespace {

OptimizeResult RunOuterLoop(const Objective& objective,
                            const std::vector<double>& x0,
                            const VariationalOptions& options) {
  switch (options.optimizer) {
    case OuterOptimizer::kNelderMead:
      return MinimizeNelderMead(objective, x0, options.max_iterations,
                                /*tolerance=*/1e-6, /*initial_step=*/0.5,
                                options.deadline);
    case OuterOptimizer::kSpsa:
      return MinimizeSpsa(objective, x0, options.max_iterations, options.seed,
                          /*a=*/0.2, /*c=*/0.1, options.deadline);
    case OuterOptimizer::kAdam:
      return MinimizeAdam(objective, x0,
                          std::max(1, options.max_iterations / 4),
                          /*learning_rate=*/0.1, /*gradient_step=*/1e-4,
                          options.deadline);
  }
  QOPT_CHECK_MSG(false, "unknown optimizer");
  return {};
}

/// The non-OK status to report for an interrupted stage: the deadline's
/// own verdict when available, kDeadlineExceeded otherwise.
Status InterruptionStatus(const Deadline& deadline) {
  Status check = deadline.Check();
  if (!check.ok()) return check;
  return DeadlineExceededError("variational optimization interrupted");
}

/// Simulates `circuit` into `state` (reusing its buffer), samples `shots`
/// bit strings via a cumulative-distribution binary search and returns the
/// one with the lowest QUBO energy together with the state expectation.
/// `energies` is the precomputed IsingEnergyTable of `ising`.
StatusOr<VariationalResult> FinalizeFromCircuit(
    const QuboModel& qubo, QuantumCircuit circuit,
    const std::vector<double>& energies, const VariationalOptions& options,
    int evaluations, Statevector* state) {
  QQO_TRACE_SPAN("variational.sample");
  state->Reset();
  QOPT_RETURN_IF_ERROR(state->ApplyCircuit(circuit, options.deadline));
  VariationalResult result;
  result.expectation = state->EnergyExpectation(energies);
  // The cumulative distribution is built once; each shot then costs one
  // RNG draw plus a binary search instead of a 2^n scan. Shots landing on
  // an already-scored basis state reuse its energy.
  const std::vector<double> cdf = state->CumulativeProbabilities();
  std::unordered_map<std::size_t, double> energy_of_state;
  auto score = [&](const std::vector<std::uint8_t>& bits) {
    std::size_t index = 0;
    for (std::size_t q = 0; q < bits.size(); ++q) {
      index |= static_cast<std::size_t>(bits[q]) << q;
    }
    const auto it = energy_of_state.find(index);
    if (it != energy_of_state.end()) return it->second;
    const double energy = qubo.Energy(bits);
    energy_of_state.emplace(index, energy);
    return energy;
  };
  Rng rng(options.seed + 0x5EED);
  result.best_bits = state->SampleFromCdf(cdf, &rng);
  result.best_energy = score(result.best_bits);
  for (int s = 1; s < options.shots; ++s) {
    const std::vector<std::uint8_t> bits = state->SampleFromCdf(cdf, &rng);
    const double energy = score(bits);
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best_bits = bits;
    }
  }
  result.optimal_circuit = std::move(circuit);
  result.evaluations = evaluations;
  return result;
}

}  // namespace

StatusOr<VariationalResult> TrySolveQuboWithQaoa(
    const QuboModel& qubo, const VariationalOptions& options) {
  QQO_TRACE_SPAN("variational.qaoa");
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_CHECK(options.qaoa_reps >= 1);
  QOPT_RETURN_IF_ERROR(options.deadline.Check());
  QOPT_FAULT_POINT("statevector.alloc");  // 2^n energy table comes first
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);
  const int n = qubo.NumVariables();
  const int p = options.qaoa_reps;

  // theta = (gamma_1..gamma_p, beta_1..beta_p); initialized with zeros as
  // in the paper's QAOA setup (Sec. 5.2.2).
  auto split = [p](const std::vector<double>& theta) {
    const std::vector<double> gammas(theta.begin(), theta.begin() + p);
    const std::vector<double> betas(theta.begin() + p, theta.end());
    return std::make_pair(gammas, betas);
  };
  // Each objective owns one statevector buffer and reuses it (plus the
  // shared energy table) across every evaluation of the outer loop — no
  // 2^n reallocation or energy-table rebuild per call.
  auto make_objective = [&](Statevector* state) {
    return Objective([&, state](const std::vector<double>& theta) {
      const auto [gammas, betas] = split(theta);
      state->Reset();
      // An evaluation cut short by the deadline must not feed a half-built
      // state into the optimizer; +inf makes the point uncompetitive and
      // the outer loop's own deadline check terminates the sweep.
      if (!state
               ->ApplyCircuit(BuildQaoaCircuit(ising, gammas, betas),
                              options.deadline)
               .ok()) {
        return std::numeric_limits<double>::infinity();
      }
      return state->EnergyExpectation(energies);
    });
  };

  // Multi-start: the all-zero start of the paper's setup, the INTERP-style
  // linear ramp (gamma rising, beta falling — the adiabatic-inspired
  // schedule that works well for p > 1), and one random point.
  std::vector<std::vector<double>> starts;
  starts.emplace_back(static_cast<std::size_t>(2 * p), 0.0);
  {
    std::vector<double> ramp(static_cast<std::size_t>(2 * p));
    for (int l = 0; l < p; ++l) {
      const double frac = (l + 0.5) / p;
      ramp[static_cast<std::size_t>(l)] = 0.4 * frac;            // gamma
      ramp[static_cast<std::size_t>(p + l)] = 0.4 * (1 - frac);  // beta
    }
    starts.push_back(std::move(ramp));
  }
  {
    Rng rng(options.seed + 17);
    std::vector<double> random_start(static_cast<std::size_t>(2 * p));
    for (double& v : random_start) v = rng.NextDouble(-0.5, 0.5);
    starts.push_back(std::move(random_start));
  }

  // The starts are independent outer-loop runs; results land in the slot
  // of their start, and the winner is picked by scanning slots in order,
  // so the outcome matches the serial sweep at any thread count. Starts
  // not yet claimed when the deadline trips are skipped.
  std::vector<OptimizeResult> candidates(starts.size());
  std::vector<Status> start_status(starts.size());
  const Status loop_status = ThreadPool::Default().ParallelFor(
      starts.size(), options.deadline, [&](std::size_t s) {
        QQO_TRACE_SPAN("variational.start");
        QQO_COUNT("variational.starts", 1);
        // Each start allocates its own 2^n statevector buffer.
        if (Status fault = CheckFaultPoint("statevector.alloc"); !fault.ok()) {
          start_status[s] = std::move(fault);
          return;
        }
        Statevector state(n);
        const Objective objective = make_objective(&state);
        candidates[s] = RunOuterLoop(objective, starts[s], options);
      });
  for (const Status& status : start_status) {
    if (!status.ok()) return status;
  }
  QOPT_RETURN_IF_ERROR(loop_status);
  OptimizeResult opt = candidates[0];
  int total_evaluations = candidates[0].evaluations;
  bool interrupted = candidates[0].interrupted;
  for (std::size_t s = 1; s < candidates.size(); ++s) {
    total_evaluations += candidates[s].evaluations;
    interrupted = interrupted || candidates[s].interrupted;
    if (candidates[s].fval < opt.fval) opt = candidates[s];
  }
  if (interrupted) return InterruptionStatus(options.deadline);
  opt.evaluations = total_evaluations;

  const auto [gammas, betas] = split(opt.x);
  QOPT_FAULT_POINT("statevector.alloc");  // final sampling buffer
  Statevector state(n);
  return FinalizeFromCircuit(qubo, BuildQaoaCircuit(ising, gammas, betas),
                             energies, options, opt.evaluations, &state);
}

StatusOr<VariationalResult> TrySolveQuboWithVqe(
    const QuboModel& qubo, const VariationalOptions& options) {
  QQO_TRACE_SPAN("variational.vqe");
  QOPT_CHECK(qubo.NumVariables() >= 1);
  QOPT_RETURN_IF_ERROR(options.deadline.Check());
  QOPT_FAULT_POINT("statevector.alloc");
  const IsingModel ising = QuboToIsing(qubo);
  const std::vector<double> energies = IsingEnergyTable(ising);
  const int n = qubo.NumVariables();
  const int num_params = RealAmplitudesNumParameters(n, options.vqe_reps);

  Statevector state(n);
  Objective objective = [&](const std::vector<double>& theta) {
    state.Reset();
    // Same contract as the QAOA objective: a deadline-truncated evaluation
    // returns +inf instead of the energy of a half-applied ansatz.
    if (!state
             .ApplyCircuit(BuildRealAmplitudes(n, options.vqe_reps, theta,
                                               options.vqe_entanglement),
                           options.deadline)
             .ok()) {
      return std::numeric_limits<double>::infinity();
    }
    return state.EnergyExpectation(energies);
  };

  // Small random angles break the symmetry of the all-zero start (an RY(0)
  // ansatz would stay in |0..0> for Nelder-Mead's degenerate directions).
  Rng rng(options.seed);
  std::vector<double> x0(static_cast<std::size_t>(num_params));
  for (double& v : x0) {
    v = rng.NextDouble(-std::numbers::pi / 8.0, std::numbers::pi / 8.0);
  }
  OptimizeResult opt = RunOuterLoop(objective, x0, options);
  if (opt.interrupted) return InterruptionStatus(options.deadline);
  return FinalizeFromCircuit(
      qubo,
      BuildRealAmplitudes(n, options.vqe_reps, opt.x, options.vqe_entanglement),
      energies, options, opt.evaluations, &state);
}

VariationalResult SolveQuboWithQaoa(const QuboModel& qubo,
                                    const VariationalOptions& options) {
  StatusOr<VariationalResult> result = TrySolveQuboWithQaoa(qubo, options);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return *std::move(result);
}

VariationalResult SolveQuboWithVqe(const QuboModel& qubo,
                                   const VariationalOptions& options) {
  StatusOr<VariationalResult> result = TrySolveQuboWithVqe(qubo, options);
  QOPT_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return *std::move(result);
}

}  // namespace qopt
