#pragma once

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "qubo/ising_model.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// Options for the Trotterized adiabatic-evolution simulation (Sec. 3.5):
/// the state starts in the ground state of the mixer H_B = -sum X (the
/// uniform superposition) and evolves under
///   H(t) = (1 - t/T) H_B + (t/T) H_P
/// discretized into `steps` first-order Trotter slices. Larger
/// `total_time` T keeps the system closer to the instantaneous ground
/// state (the adiabatic theorem, Eq. 24); the simulation makes the
/// T ~ 1/g_min^2 tradeoff directly observable.
struct AdiabaticOptions {
  double total_time = 20.0;  ///< Evolution duration T.
  int steps = 200;           ///< Trotter slices.
  int shots = 1024;          ///< Samples drawn from the final state.
  std::uint64_t seed = 0;
  /// Wall-clock budget, checked at every Trotter-step boundary. A
  /// partially evolved state is physically meaningless, so expiry is an
  /// error, not a degraded result. Unbounded by default.
  Deadline deadline;
};

/// Result of an adiabatic evolution run.
struct AdiabaticResult {
  std::vector<std::uint8_t> best_bits;  ///< Lowest-energy sample.
  double best_energy = 0.0;             ///< QUBO energy of best_bits.
  /// Probability mass on the exact ground state(s) of the problem
  /// Hamiltonian in the final state — the success probability the
  /// adiabatic theorem governs.
  double ground_state_probability = 0.0;
};

/// Status-reporting flavour: kDeadlineExceeded / kCancelled when the
/// budget trips mid-evolution, and the "statevector.alloc" fault point
/// fires before the 2^n amplitude buffer is allocated.
StatusOr<AdiabaticResult> TrySolveQuboAdiabatically(
    const QuboModel& qubo, const AdiabaticOptions& options = {});

/// Simulates adiabatic evolution for the Ising form of `qubo` on the
/// statevector backend (exponential in qubits; <= ~20 qubits).
AdiabaticResult SolveQuboAdiabatically(const QuboModel& qubo,
                                       const AdiabaticOptions& options = {});

/// Spectral-gap diagnostics: the minimum gap g_min between the ground and
/// first excited energy of H(s) over the sweep s in [0,1], computed by
/// dense diagonalization-free power iteration on the 2^n Hamiltonian —
/// feasible only for very small systems (n <= 10).
struct SpectralGap {
  double min_gap = 0.0;
  double at_s = 0.0;  ///< Interpolation point of the minimum.
};

SpectralGap MinimumSpectralGap(const IsingModel& problem, int sweep_points = 51);

}  // namespace qopt
