#include "variational/qaoa.h"

#include "common/check.h"

namespace qopt {

QuantumCircuit BuildQaoaCircuit(const IsingModel& ising,
                                const std::vector<double>& gammas,
                                const std::vector<double>& betas) {
  QOPT_CHECK(!gammas.empty());
  QOPT_CHECK(gammas.size() == betas.size());
  const int n = ising.NumSpins();
  QuantumCircuit circuit(n);
  for (int q = 0; q < n; ++q) circuit.H(q);
  const auto couplings = ising.Couplings();
  for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
    const double gamma = gammas[layer];
    // Cost unitary U(C, gamma) = exp(-i gamma C). For a coupling J s_i s_j
    // this is RZZ(2 gamma J); for a field h s_i it is RZ(2 gamma h).
    for (const auto& [edge, j] : couplings) {
      if (j != 0.0) circuit.Rzz(edge.first, edge.second, 2.0 * gamma * j);
    }
    for (int q = 0; q < n; ++q) {
      const double h = ising.Field(q);
      if (h != 0.0) circuit.Rz(q, 2.0 * gamma * h);
    }
    // Mixer unitary U(B, beta) = exp(-i beta sum X) = RX(2 beta) each.
    const double beta = betas[layer];
    for (int q = 0; q < n; ++q) circuit.Rx(q, 2.0 * beta);
  }
  return circuit;
}

QuantumCircuit BuildQaoaTemplate(const IsingModel& ising, int reps) {
  QOPT_CHECK(reps >= 1);
  // Zero angles still emit every gate, so the structure (and thus depth
  // after transpilation) matches a bound circuit. MergeAdjacentRz would
  // remove zero-angle rotations, so depth studies bind small non-zero
  // angles instead.
  const std::vector<double> gammas(static_cast<std::size_t>(reps), 0.1);
  const std::vector<double> betas(static_cast<std::size_t>(reps), 0.1);
  return BuildQaoaCircuit(ising, gammas, betas);
}

}  // namespace qopt
