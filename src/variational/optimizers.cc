#include "variational/optimizers.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace qopt {

OptimizeResult MinimizeNelderMead(const Objective& objective,
                                  const std::vector<double>& x0,
                                  int max_iterations, double tolerance,
                                  double initial_step,
                                  const Deadline& deadline) {
  const std::size_t n = x0.size();
  QOPT_CHECK(n >= 1);
  OptimizeResult result;

  // Build the initial simplex: x0 plus one vertex per coordinate.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += initial_step;
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    fvals[i] = objective(simplex[i]);
    ++result.evaluations;
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  // QQO_LOOP(opt.nelder_mead)
  for (int iter = 0; iter < max_iterations; ++iter) {
    if (!deadline.Check().ok()) {
      result.interrupted = true;
      break;
    }
    ++result.iterations;
    QQO_COUNT("variational.iterations", 1);
    // Order vertices by objective value.
    std::vector<std::size_t> order(n + 1);
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });
    {
      std::vector<std::vector<double>> new_simplex(n + 1);
      std::vector<double> new_fvals(n + 1);
      for (std::size_t i = 0; i <= n; ++i) {
        new_simplex[i] = std::move(simplex[order[i]]);
        new_fvals[i] = fvals[order[i]];
      }
      simplex = std::move(new_simplex);
      fvals = std::move(new_fvals);
    }
    if (std::abs(fvals[n] - fvals[0]) < tolerance) break;

    // Centroid of the n best vertices.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto affine = [&](double t) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d) {
        p[d] = centroid[d] + t * (simplex[n][d] - centroid[d]);
      }
      return p;
    };

    const std::vector<double> reflected = affine(-kAlpha);
    const double f_reflected = objective(reflected);
    ++result.evaluations;
    if (f_reflected < fvals[0]) {
      const std::vector<double> expanded = affine(-kGamma);
      const double f_expanded = objective(expanded);
      ++result.evaluations;
      if (f_expanded < f_reflected) {
        simplex[n] = expanded;
        fvals[n] = f_expanded;
      } else {
        simplex[n] = reflected;
        fvals[n] = f_reflected;
      }
      continue;
    }
    if (f_reflected < fvals[n - 1]) {
      simplex[n] = reflected;
      fvals[n] = f_reflected;
      continue;
    }
    const std::vector<double> contracted = affine(kRho);
    const double f_contracted = objective(contracted);
    ++result.evaluations;
    if (f_contracted < fvals[n]) {
      simplex[n] = contracted;
      fvals[n] = f_contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t d = 0; d < n; ++d) {
        simplex[i][d] = simplex[0][d] + kSigma * (simplex[i][d] - simplex[0][d]);
      }
      fvals[i] = objective(simplex[i]);
      ++result.evaluations;
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fvals[i] < fvals[best]) best = i;
  }
  result.x = simplex[best];
  result.fval = fvals[best];
  return result;
}

OptimizeResult MinimizeAdam(const Objective& objective,
                            const std::vector<double>& x0, int max_iterations,
                            double learning_rate, double gradient_step,
                            const Deadline& deadline) {
  const std::size_t n = x0.size();
  QOPT_CHECK(n >= 1);
  QOPT_CHECK(gradient_step > 0.0);
  OptimizeResult result;
  std::vector<double> x = x0;
  std::vector<double> m(n, 0.0);
  std::vector<double> v(n, 0.0);
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEpsilon = 1e-8;
  double best_f = objective(x);
  ++result.evaluations;
  std::vector<double> best_x = x;
  std::vector<double> probe = x;
  // QQO_LOOP(opt.adam)
  for (int k = 1; k <= max_iterations; ++k) {
    if (!deadline.Check().ok()) {
      result.interrupted = true;
      break;
    }
    ++result.iterations;
    QQO_COUNT("variational.iterations", 1);
    // Central-difference gradient.
    std::vector<double> gradient(n);
    for (std::size_t d = 0; d < n; ++d) {
      probe = x;
      probe[d] += gradient_step;
      const double f_plus = objective(probe);
      probe[d] -= 2.0 * gradient_step;
      const double f_minus = objective(probe);
      result.evaluations += 2;
      gradient[d] = (f_plus - f_minus) / (2.0 * gradient_step);
    }
    for (std::size_t d = 0; d < n; ++d) {
      m[d] = kBeta1 * m[d] + (1.0 - kBeta1) * gradient[d];
      v[d] = kBeta2 * v[d] + (1.0 - kBeta2) * gradient[d] * gradient[d];
      const double m_hat = m[d] / (1.0 - std::pow(kBeta1, k));
      const double v_hat = v[d] / (1.0 - std::pow(kBeta2, k));
      x[d] -= learning_rate * m_hat / (std::sqrt(v_hat) + kEpsilon);
    }
    const double f = objective(x);
    ++result.evaluations;
    if (f < best_f) {
      best_f = f;
      best_x = x;
    }
  }
  result.x = best_x;
  result.fval = best_f;
  return result;
}

OptimizeResult MinimizeSpsa(const Objective& objective,
                            const std::vector<double>& x0, int max_iterations,
                            std::uint64_t seed, double a, double c,
                            const Deadline& deadline) {
  const std::size_t n = x0.size();
  QOPT_CHECK(n >= 1);
  Rng rng(seed);
  OptimizeResult result;
  std::vector<double> x = x0;
  std::vector<double> best_x = x0;
  double best_f = objective(x0);
  ++result.evaluations;

  constexpr double kAlphaExp = 0.602;
  constexpr double kGammaExp = 0.101;
  constexpr double kStability = 10.0;
  std::vector<double> delta(n);
  std::vector<double> x_plus(n);
  std::vector<double> x_minus(n);
  // QQO_LOOP(opt.spsa)
  for (int k = 0; k < max_iterations; ++k) {
    if (!deadline.Check().ok()) {
      result.interrupted = true;
      break;
    }
    ++result.iterations;
    QQO_COUNT("variational.iterations", 1);
    const double ak = a / std::pow(k + 1 + kStability, kAlphaExp);
    const double ck = c / std::pow(k + 1, kGammaExp);
    for (std::size_t d = 0; d < n; ++d) {
      delta[d] = rng.NextBool() ? 1.0 : -1.0;
      x_plus[d] = x[d] + ck * delta[d];
      x_minus[d] = x[d] - ck * delta[d];
    }
    const double f_plus = objective(x_plus);
    const double f_minus = objective(x_minus);
    result.evaluations += 2;
    const double diff = (f_plus - f_minus) / (2.0 * ck);
    for (std::size_t d = 0; d < n; ++d) x[d] -= ak * diff / delta[d];
    const double f = std::min(f_plus, f_minus);
    if (f < best_f) {
      best_f = f;
      best_x = f_plus < f_minus ? x_plus : x_minus;
    }
  }
  const double f_final = objective(x);
  ++result.evaluations;
  if (f_final < best_f) {
    best_f = f_final;
    best_x = x;
  }
  result.x = best_x;
  result.fval = best_f;
  return result;
}

}  // namespace qopt
