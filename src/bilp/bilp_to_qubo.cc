#include "bilp/bilp_to_qubo.h"

#include "common/check.h"

namespace qopt {

BilpQuboEncoding EncodeBilpAsQubo(const BilpProblem& bilp, double penalty_a,
                                  double penalty_b) {
  QOPT_CHECK(penalty_b > 0.0);
  BilpQuboEncoding encoding;
  encoding.penalty_b = penalty_b;
  if (penalty_a > 0.0) {
    encoding.penalty_a = penalty_a;
  } else {
    // Eq. 44: A > B * C / omega^2. The +1 keeps A strictly dominant even
    // for an all-zero objective.
    const double omega = bilp.Granularity();
    encoding.penalty_a =
        penalty_b * (bilp.ObjectiveUpperBound() + 1.0) / (omega * omega);
  }

  QuboModel qubo(bilp.NumVariables());
  // H_B = B * sum c_i x_i.
  for (int i = 0; i < bilp.NumVariables(); ++i) {
    const double c = bilp.ObjectiveCoefficient(i);
    if (c != 0.0) qubo.AddLinear(i, penalty_b * c);
  }
  // H_A = A * sum_j (b_j - sum_i S_ji x_i)^2. Expanding (x_i^2 = x_i):
  //   b^2  - 2 b S_i x_i + S_i^2 x_i  (diagonal)  + 2 S_i S_k x_i x_k (i<k).
  for (const auto& constraint : bilp.Constraints()) {
    const double b = constraint.rhs;
    qubo.AddOffset(encoding.penalty_a * b * b);
    const auto& terms = constraint.terms;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const auto& [var_i, s_i] = terms[i];
      qubo.AddLinear(var_i, encoding.penalty_a * (s_i * s_i - 2.0 * b * s_i));
      for (std::size_t k = i + 1; k < terms.size(); ++k) {
        const auto& [var_k, s_k] = terms[k];
        QOPT_CHECK_MSG(var_i != var_k,
                       "constraint mentions a variable twice");
        qubo.AddQuadratic(var_i, var_k, 2.0 * encoding.penalty_a * s_i * s_k);
      }
    }
  }
  // Coefficients that cancelled exactly would otherwise inflate the
  // quadratic-term count the paper reports.
  qubo.Compress(0.0);
  encoding.qubo = std::move(qubo);
  return encoding;
}

}  // namespace qopt
