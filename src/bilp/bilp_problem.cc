#include "bilp/bilp_problem.h"

#include <cmath>

#include "common/check.h"

namespace qopt {

int BilpProblem::AddVariable(std::string name, double objective_coefficient) {
  QOPT_CHECK_MSG(objective_coefficient >= 0.0,
                 "objective coefficients must be non-negative");
  names_.push_back(std::move(name));
  objective_.push_back(objective_coefficient);
  return static_cast<int>(objective_.size()) - 1;
}

void BilpProblem::AddConstraint(Constraint constraint) {
  for (const auto& [var, coeff] : constraint.terms) {
    (void)coeff;
    QOPT_CHECK(var >= 0 && var < NumVariables());
  }
  constraints_.push_back(std::move(constraint));
}

const std::string& BilpProblem::VariableName(int i) const {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  return names_[static_cast<std::size_t>(i)];
}

double BilpProblem::ObjectiveCoefficient(int i) const {
  QOPT_CHECK(i >= 0 && i < NumVariables());
  return objective_[static_cast<std::size_t>(i)];
}

double BilpProblem::ObjectiveUpperBound() const {
  double total = 0.0;
  for (double c : objective_) total += c;
  return total;
}

double BilpProblem::ObjectiveValue(const std::vector<std::uint8_t>& bits) const {
  QOPT_CHECK(static_cast<int>(bits.size()) == NumVariables());
  double value = 0.0;
  for (int i = 0; i < NumVariables(); ++i) {
    if (bits[static_cast<std::size_t>(i)]) {
      value += objective_[static_cast<std::size_t>(i)];
    }
  }
  return value;
}

bool BilpProblem::IsFeasible(const std::vector<std::uint8_t>& bits,
                             double tolerance) const {
  QOPT_CHECK(static_cast<int>(bits.size()) == NumVariables());
  for (const Constraint& constraint : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : constraint.terms) {
      if (bits[static_cast<std::size_t>(var)]) lhs += coeff;
    }
    if (std::abs(lhs - constraint.rhs) > tolerance) return false;
  }
  return true;
}

void BilpProblem::SetGranularity(double granularity) {
  QOPT_CHECK(granularity > 0.0);
  granularity_ = granularity;
}

}  // namespace qopt
