#pragma once

#include "bilp/bilp_problem.h"
#include "qubo/qubo_model.h"

namespace qopt {

/// QUBO form of a BILP problem after Lucas [20] (Sec. 6.1.4):
///
///   H = A * sum_j (b_j - sum_i S_ji x_i)^2  +  B * sum_i c_i x_i.
///
/// The ground state of H encodes the optimal feasible BILP assignment
/// provided A > B * C / omega^2 (Eq. 44), where C = sum_i c_i and omega is
/// the coefficient granularity.
struct BilpQuboEncoding {
  QuboModel qubo;
  double penalty_a = 0.0;
  double penalty_b = 1.0;
};

/// Encodes `bilp` as a QUBO. `penalty_a <= 0` derives A automatically from
/// Eq. 44 with a safety margin; `penalty_b` is the objective scale B.
BilpQuboEncoding EncodeBilpAsQubo(const BilpProblem& bilp,
                                  double penalty_a = 0.0,
                                  double penalty_b = 1.0);

}  // namespace qopt
