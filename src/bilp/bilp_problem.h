#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qopt {

/// Binary integer linear program in equality form (Sec. 6.1.3 — all
/// inequalities have already been converted with slack variables):
///
///   minimize   c^T x     subject to   S x = b,   x in {0,1}^N.
///
/// This is the intermediate representation between the join-ordering MILP
/// model (Trummer & Koch [16]) and the Ising/QUBO form (Lucas [20]).
class BilpProblem {
 public:
  /// One equality constraint: sum of coeff * x_var == rhs.
  struct Constraint {
    std::vector<std::pair<int, double>> terms;
    double rhs = 0.0;
  };

  BilpProblem() = default;

  /// Adds a binary variable with the given objective coefficient; returns
  /// its index. Objective coefficients must be >= 0 (required by the
  /// penalty-weight rule Eq. 43/44).
  int AddVariable(std::string name, double objective_coefficient);

  /// Adds an equality constraint (all variable indices must exist).
  void AddConstraint(Constraint constraint);

  int NumVariables() const { return static_cast<int>(objective_.size()); }
  int NumConstraints() const { return static_cast<int>(constraints_.size()); }

  const std::string& VariableName(int i) const;
  double ObjectiveCoefficient(int i) const;
  const std::vector<Constraint>& Constraints() const { return constraints_; }

  /// Sum of all objective coefficients (the C of Eq. 43).
  double ObjectiveUpperBound() const;

  /// Objective value of an assignment.
  double ObjectiveValue(const std::vector<std::uint8_t>& bits) const;

  /// True iff every constraint holds within `tolerance`.
  bool IsFeasible(const std::vector<std::uint8_t>& bits,
                  double tolerance = 1e-6) const;

  /// Smallest representable coefficient step (the precision factor omega
  /// of Sec. 6.1.3/6.1.4); used to derive the QUBO penalty weight.
  double Granularity() const { return granularity_; }
  void SetGranularity(double granularity);

 private:
  std::vector<std::string> names_;
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
  double granularity_ = 1.0;
};

}  // namespace qopt
