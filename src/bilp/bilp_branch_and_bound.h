#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bilp/bilp_problem.h"

namespace qopt {

/// Result of an exact BILP solve.
struct BilpSolution {
  std::vector<std::uint8_t> bits;
  double objective = 0.0;
};

/// Options for the branch-and-bound solver.
struct BilpSolveOptions {
  /// Hard cap on explored nodes; 0 disables the cap. When the cap is hit
  /// the best incumbent found so far is returned (or nullopt if none).
  std::uint64_t max_nodes = 50'000'000;
  double tolerance = 1e-6;
};

/// Exact depth-first branch-and-bound over the binary variables with
/// per-constraint interval propagation: a partial assignment is pruned as
/// soon as some equality constraint can no longer reach its right-hand
/// side, or the (non-negative) objective already matches the incumbent.
/// This is the classical comparator standing in for the MILP solver of
/// [16]. Returns nullopt for infeasible problems.
std::optional<BilpSolution> SolveBilpBranchAndBound(
    const BilpProblem& bilp, const BilpSolveOptions& options = {});

}  // namespace qopt
