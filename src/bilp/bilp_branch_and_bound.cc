#include "bilp/bilp_branch_and_bound.h"

#include <limits>

#include "common/check.h"

namespace qopt {
namespace {

class Solver {
 public:
  Solver(const BilpProblem& bilp, const BilpSolveOptions& options)
      : bilp_(bilp), options_(options) {
    const int n = bilp.NumVariables();
    const int m = bilp.NumConstraints();
    lhs_.assign(static_cast<std::size_t>(m), 0.0);
    min_add_.assign(static_cast<std::size_t>(m), 0.0);
    max_add_.assign(static_cast<std::size_t>(m), 0.0);
    rhs_.assign(static_cast<std::size_t>(m), 0.0);
    terms_of_var_.assign(static_cast<std::size_t>(n), {});
    for (int j = 0; j < m; ++j) {
      const auto& constraint = bilp.Constraints()[static_cast<std::size_t>(j)];
      rhs_[static_cast<std::size_t>(j)] = constraint.rhs;
      for (const auto& [var, coeff] : constraint.terms) {
        terms_of_var_[static_cast<std::size_t>(var)].emplace_back(j, coeff);
        if (coeff < 0.0) {
          min_add_[static_cast<std::size_t>(j)] += coeff;
        } else {
          max_add_[static_cast<std::size_t>(j)] += coeff;
        }
      }
    }
    bits_.assign(static_cast<std::size_t>(n), 0);
  }

  std::optional<BilpSolution> Solve() {
    best_objective_ = std::numeric_limits<double>::infinity();
    Search(0, 0.0);
    if (best_objective_ == std::numeric_limits<double>::infinity()) {
      return std::nullopt;
    }
    BilpSolution solution;
    solution.bits = best_bits_;
    solution.objective = best_objective_;
    return solution;
  }

 private:
  bool Prunable() const {
    for (std::size_t j = 0; j < lhs_.size(); ++j) {
      if (lhs_[j] + max_add_[j] < rhs_[j] - options_.tolerance ||
          lhs_[j] + min_add_[j] > rhs_[j] + options_.tolerance) {
        return true;
      }
    }
    return false;
  }

  void Assign(int var, int value) {
    for (const auto& [j, coeff] : terms_of_var_[static_cast<std::size_t>(var)]) {
      if (coeff < 0.0) {
        min_add_[static_cast<std::size_t>(j)] -= coeff;
      } else {
        max_add_[static_cast<std::size_t>(j)] -= coeff;
      }
      if (value) lhs_[static_cast<std::size_t>(j)] += coeff;
    }
    bits_[static_cast<std::size_t>(var)] = static_cast<std::uint8_t>(value);
  }

  void Unassign(int var, int value) {
    for (const auto& [j, coeff] : terms_of_var_[static_cast<std::size_t>(var)]) {
      if (coeff < 0.0) {
        min_add_[static_cast<std::size_t>(j)] += coeff;
      } else {
        max_add_[static_cast<std::size_t>(j)] += coeff;
      }
      if (value) lhs_[static_cast<std::size_t>(j)] -= coeff;
    }
  }

  void Search(int var, double objective) {
    if (options_.max_nodes != 0 && ++nodes_ > options_.max_nodes) return;
    if (objective >= best_objective_ - options_.tolerance) return;
    if (Prunable()) return;
    if (var == bilp_.NumVariables()) {
      best_objective_ = objective;
      best_bits_ = bits_;
      return;
    }
    // Objective coefficients are non-negative: try 0 first for better
    // incumbents early.
    for (int value : {0, 1}) {
      Assign(var, value);
      Search(var + 1,
             objective + (value ? bilp_.ObjectiveCoefficient(var) : 0.0));
      Unassign(var, value);
    }
  }

  const BilpProblem& bilp_;
  const BilpSolveOptions& options_;
  std::vector<double> lhs_, min_add_, max_add_, rhs_;
  std::vector<std::vector<std::pair<int, double>>> terms_of_var_;
  std::vector<std::uint8_t> bits_;
  std::vector<std::uint8_t> best_bits_;
  double best_objective_ = 0.0;
  std::uint64_t nodes_ = 0;
};

}  // namespace

std::optional<BilpSolution> SolveBilpBranchAndBound(
    const BilpProblem& bilp, const BilpSolveOptions& options) {
  QOPT_CHECK(bilp.NumVariables() >= 1);
  Solver solver(bilp, options);
  return solver.Solve();
}

}  // namespace qopt
