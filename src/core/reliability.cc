#include "core/reliability.h"

#include <cmath>

#include "common/check.h"

namespace qopt {

ReliabilityEstimate EstimateCircuitReliability(const DeviceModel& device,
                                               const QuantumCircuit& circuit) {
  ReliabilityEstimate estimate;
  estimate.depth = circuit.Depth();
  estimate.within_coherence = estimate.depth <= device.MaxReliableDepth();

  double log_no_gate_error = 0.0;
  for (const Gate& g : circuit.Gates()) {
    const double e = g.NumQubits() == 2 ? device.cx_error : device.sx_error;
    QOPT_CHECK(e >= 0.0 && e < 1.0);
    log_no_gate_error += std::log1p(-e);
  }
  estimate.gate_error = 1.0 - std::exp(log_no_gate_error);
  estimate.decoherence_error =
      device.DecoherenceErrorProbability(estimate.depth);
  estimate.readout_error =
      1.0 - std::pow(1.0 - device.readout_error, circuit.NumQubits());
  estimate.success_probability = (1.0 - estimate.gate_error) *
                                 (1.0 - estimate.decoherence_error) *
                                 (1.0 - estimate.readout_error);
  return estimate;
}

}  // namespace qopt
