#pragma once

#include <cstdint>

#include "core/device_model.h"
#include "qubo/qubo_model.h"
#include "transpile/coupling_map.h"

namespace qopt {

/// Gate-based resource estimate for solving a QUBO on a device — the
/// quantities the paper reports in Figs. 8/9/13 and Table 4.
struct GateResourceEstimate {
  int logical_qubits = 0;
  int quadratic_terms = 0;
  /// Depth on an all-to-all ("optimal") topology.
  int qaoa_depth_ideal = 0;
  int vqe_depth_ideal = 0;
  /// Mean depth over `transpile_trials` routings onto the device topology;
  /// -1 when the problem needs more qubits than the device offers.
  double qaoa_depth_device = -1.0;
  double vqe_depth_device = -1.0;
  /// Whether the device-mean depth fits MaxReliableDepth() (Eq. 37/55).
  bool qaoa_within_coherence = false;
  bool vqe_within_coherence = false;
  int max_reliable_depth = 0;
};

/// Options for gate-resource estimation.
struct GateEstimateOptions {
  int transpile_trials = 20;  ///< Paper: mean over 20 transpilations.
  int qaoa_reps = 1;
  int vqe_reps = 3;
  std::uint64_t seed = 0;
};

/// Builds the QAOA (p = qaoa_reps) and VQE (RealAmplitudes, full
/// entanglement) circuits for `qubo`, measures their ideal depths, routes
/// them onto `coupling` and compares against `device` coherence limits.
GateResourceEstimate EstimateGateResources(
    const QuboModel& qubo, const CouplingMap& coupling,
    const DeviceModel& device, const GateEstimateOptions& options = {});

}  // namespace qopt
