#pragma once

#include <string>

namespace qopt {

/// Calibration summary of a gate-based quantum device: everything the
/// paper uses to judge whether a circuit can run reliably.
struct DeviceModel {
  std::string name;
  int num_qubits = 0;
  double t1_us = 0.0;            ///< Relaxation time T1 in microseconds.
  double t2_us = 0.0;            ///< Dephasing time T2 in microseconds.
  double avg_gate_time_ns = 0.0; ///< Mean gate duration in nanoseconds.
  double cx_error = 0.0;         ///< Mean two-qubit (CX) gate error rate.
  double sx_error = 0.0;         ///< Mean single-qubit gate error rate.
  double readout_error = 0.0;    ///< Mean per-qubit readout error rate.

  /// Maximum circuit depth executable within the coherence time
  /// (Eq. 37/55): floor(min(T1, T2) / g_avg).
  int MaxReliableDepth() const;

  /// Decoherence-error probability after executing a circuit of the given
  /// depth (Eq. 36): 1 - exp(-t / T) with t = depth * g_avg.
  double DecoherenceErrorProbability(int depth) const;
};

/// IBM-Q Mumbai (27-qubit Falcon) with the calibration constants quoted in
/// Sec. 5.3.2 — MaxReliableDepth() == 248.
DeviceModel MumbaiDevice();

/// IBM-Q Brooklyn (65-qubit Hummingbird) with the constants of Sec. 6.3.4
/// — MaxReliableDepth() == 178.
DeviceModel BrooklynDevice();

/// Summary of a quantum annealer.
struct AnnealerModel {
  std::string name;
  int pegasus_m = 0;   ///< Pegasus size parameter (0 for Chimera devices).
  int chimera_m = 0;   ///< Chimera grid size (0 for Pegasus devices).
  int num_qubits = 0;  ///< Physical qubits in the working fabric.
};

/// D-Wave Advantage (Pegasus P16, > 5000 qubits).
AnnealerModel AdvantageAnnealer();

/// D-Wave 2X (Chimera C(12,12,4), ~1000 qubits) — the system of [9].
AnnealerModel DWave2xAnnealer();

}  // namespace qopt
