#include "core/quantum_optimizer.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <future>
#include <limits>
#include <mutex>
#include <utility>

#include "anneal/pegasus.h"
#include "bilp/bilp_to_qubo.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "decompose/decomposer.h"
#include "mqo/mqo_qubo_encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

/// Simulation budgets that turn an over-sized request into a recoverable
/// error instead of an unbounded (or aborting) computation. They mirror
/// the hard CHECKs of the underlying kernels.
constexpr int kMaxBruteForceQubits = 26;    // brute_force_solver.h
constexpr int kMaxStatevectorQubits = 26;   // statevector.cc
constexpr int kMaxAdiabaticQubits = 20;     // adiabatic.cc
/// Above this size the classical fallback uses SA instead of the exact
/// oracle (2^n enumeration stays sub-second up to here).
constexpr int kMaxExactFallbackQubits = 20;

bool IsQuantumBackend(Backend backend) {
  switch (backend) {
    case Backend::kQaoa:
    case Backend::kVqe:
    case Backend::kAdiabatic:
    case Backend::kAnnealerEmulation:
      return true;
    case Backend::kExact:
    case Backend::kSimulatedAnnealing:
      return false;
  }
  return false;
}

/// Dispatches a QUBO to the selected backend and returns the bit string it
/// found (plus its energy).
struct BackendResult {
  std::vector<std::uint8_t> bits;
  double energy = 0.0;
  /// The backend expired mid-run but returned a valid best-so-far state
  /// (anytime backends: SA and the annealer emulation).
  bool timed_out = false;
};

/// The stage deadline applies only when the sub-options did not already
/// carry their own (explicitly configured) deadline or token.
Deadline ComposeStageDeadline(const Deadline& local, const Deadline& stage) {
  const bool local_unset = local.unbounded() && local.token() == nullptr;
  return local_unset ? stage : local;
}

StatusOr<BackendResult> TrySolveQuboWithBackend(
    const QuboModel& qubo, const OptimizerOptions& options, Backend backend,
    const Deadline& stage_deadline) {
  const int n = qubo.NumVariables();
  if (n < 1) return InvalidArgumentError("QUBO has no variables");
  BackendResult result;
  switch (backend) {
    case Backend::kExact: {
      if (n > kMaxBruteForceQubits) {
        return ResourceExhaustedError(StrFormat(
            "exact oracle enumerates 2^%d assignments; limit is %d "
            "variables",
            n, kMaxBruteForceQubits));
      }
      // The 2^n enumeration is not interruptible, but the qubit cap keeps
      // it sub-second; refuse to even start once the budget is gone.
      QOPT_RETURN_IF_ERROR(stage_deadline.Check());
      QOPT_ASSIGN_OR_RETURN(BruteForceResult exact,
                            TrySolveQuboBruteForce(qubo));
      result.bits = std::move(exact.best_bits);
      result.energy = exact.best_energy;
      return result;
    }
    case Backend::kSimulatedAnnealing: {
      AnnealOptions anneal = options.anneal;
      if (anneal.num_reads < 1 || anneal.num_sweeps < 1) {
        return InvalidArgumentError(
            StrFormat("SA needs num_reads >= 1 and num_sweeps >= 1, got "
                      "%d / %d",
                      anneal.num_reads, anneal.num_sweeps));
      }
      if (anneal.seed == 0) anneal.seed = options.seed;
      anneal.deadline = ComposeStageDeadline(anneal.deadline, stage_deadline);
      QOPT_ASSIGN_OR_RETURN(AnnealResult sa,
                            TrySolveQuboWithAnnealing(qubo, anneal));
      result.bits = std::move(sa.best_bits);
      result.energy = sa.best_energy;
      result.timed_out = sa.timed_out;
      return result;
    }
    case Backend::kQaoa:
    case Backend::kVqe: {
      if (n > kMaxStatevectorQubits) {
        return ResourceExhaustedError(StrFormat(
            "%s circuit needs %d qubits; the statevector simulator "
            "supports at most %d",
            backend == Backend::kQaoa ? "QAOA" : "VQE", n,
            kMaxStatevectorQubits));
      }
      VariationalOptions variational = options.variational;
      if (variational.qaoa_reps < 1 || variational.vqe_reps < 0 ||
          variational.max_iterations < 1 || variational.shots < 1) {
        return InvalidArgumentError(
            "variational options out of range (need qaoa_reps >= 1, "
            "vqe_reps >= 0, max_iterations >= 1, shots >= 1)");
      }
      if (variational.seed == 0) variational.seed = options.seed;
      variational.deadline =
          ComposeStageDeadline(variational.deadline, stage_deadline);
      QOPT_ASSIGN_OR_RETURN(
          VariationalResult hybrid,
          backend == Backend::kQaoa ? TrySolveQuboWithQaoa(qubo, variational)
                                    : TrySolveQuboWithVqe(qubo, variational));
      result.bits = std::move(hybrid.best_bits);
      result.energy = hybrid.best_energy;
      return result;
    }
    case Backend::kAdiabatic: {
      if (n > kMaxAdiabaticQubits) {
        return ResourceExhaustedError(StrFormat(
            "adiabatic evolution needs %d qubits; the dense propagator "
            "supports at most %d",
            n, kMaxAdiabaticQubits));
      }
      AdiabaticOptions adiabatic = options.adiabatic;
      if (adiabatic.steps < 1 || !(adiabatic.total_time > 0.0) ||
          adiabatic.shots < 1) {
        return InvalidArgumentError(
            "adiabatic options out of range (need steps >= 1, "
            "total_time > 0, shots >= 1)");
      }
      if (adiabatic.seed == 0) adiabatic.seed = options.seed;
      adiabatic.deadline =
          ComposeStageDeadline(adiabatic.deadline, stage_deadline);
      QOPT_ASSIGN_OR_RETURN(AdiabaticResult evolved,
                            TrySolveQuboAdiabatically(qubo, adiabatic));
      result.bits = std::move(evolved.best_bits);
      result.energy = evolved.best_energy;
      return result;
    }
    case Backend::kAnnealerEmulation: {
      if (options.pegasus_m < 2) {
        return InvalidArgumentError(StrFormat(
            "pegasus_m must be >= 2, got %d", options.pegasus_m));
      }
      EmbeddedSolveOptions embedded = options.embedded;
      if (embedded.anneal.num_reads < 1 || embedded.anneal.num_sweeps < 1) {
        return InvalidArgumentError(
            "embedded SA needs num_reads >= 1 and num_sweeps >= 1");
      }
      if (embedded.embed.seed == 0) embedded.embed.seed = options.seed;
      if (embedded.anneal.seed == 0) embedded.anneal.seed = options.seed;
      embedded.embed.deadline =
          ComposeStageDeadline(embedded.embed.deadline, stage_deadline);
      embedded.anneal.deadline =
          ComposeStageDeadline(embedded.anneal.deadline, stage_deadline);
      const SimpleGraph topology = MakePegasus(options.pegasus_m);
      if (n > topology.NumVertices()) {
        return UnavailableError(StrFormat(
            "QUBO has %d variables but the Pegasus P%d fabric offers only "
            "%d qubits; use a larger pegasus_m",
            n, options.pegasus_m, topology.NumVertices()));
      }
      StatusOr<EmbeddedSolveResult> embedded_result =
          TrySolveQuboOnTopology(qubo, topology, embedded);
      if (!embedded_result.ok()) {
        if (embedded_result.status().code() == StatusCode::kUnavailable) {
          return UnavailableError(StrFormat(
              "no minor embedding of the %d-variable QUBO into Pegasus P%d "
              "was found; use a larger pegasus_m",
              n, options.pegasus_m));
        }
        return embedded_result.status();
      }
      result.bits = std::move(embedded_result->bits);
      result.energy = embedded_result->energy;
      result.timed_out = embedded_result->timed_out;
      return result;
    }
  }
  return InternalError("unknown backend");
}

/// Backend dispatch with retries and graceful degradation: transient
/// failures (kUnavailable) are retried with deterministic backoff and a
/// fresh seed, a failed quantum backend falls back to a classical one
/// (exact for small problems, SA otherwise) when options.classical_fallback
/// is set, and a quantum stage that hits the deadline degrades to the
/// cheapest classical stand-in while overall budget remains.
struct DispatchOutcome {
  BackendResult result;
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;
  std::string degradation_reason;
  SolveStats stats;
};

StatusOr<DispatchOutcome> DispatchWithFallback(
    const QuboModel& qubo, const OptimizerOptions& options) {
  const SolveBudget& budget = options.budget;
  QQO_TRACE_SPAN("solve.dispatch");
  Stopwatch watch;
  // An already-exhausted budget (e.g. --timeout-ms=0) fails fast before
  // any backend runs.
  QOPT_RETURN_IF_ERROR(budget.deadline.Check());

  DispatchOutcome outcome;
  Status failure = OkStatus();
  const int max_attempts = std::max(1, budget.retry.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.stats.attempts = attempt;
    QQO_COUNT("solve.attempts", 1);
    OptimizerOptions attempt_options = options;
    attempt_options.seed = AttemptSeed(options.seed, attempt);
    // A quantum stage gets at most 80% of the remaining budget, reserving
    // slack for a classical fallback if it runs out of time. Classical
    // backends get the full remainder: there is nothing cheaper to save
    // time for.
    Deadline stage = budget.deadline;
    if (IsQuantumBackend(options.backend) && !budget.deadline.unbounded()) {
      stage = budget.deadline.WithBudgetMillis(
          0.8 * budget.deadline.RemainingMillis());
    }
    StatusOr<BackendResult> primary = [&] {
      QQO_TRACE_SPAN("solve.attempt");
      return TrySolveQuboWithBackend(qubo, attempt_options, options.backend,
                                     stage);
    }();
    if (primary.ok()) {
      outcome.result = *std::move(primary);
      outcome.backend_used = options.backend;
      outcome.stats.timed_out = outcome.result.timed_out;
      if (outcome.result.timed_out) {
        // Anytime backends (SA, annealer emulation) can expire mid-run yet
        // return a valid best-so-far state; mark it degraded so the
        // timed_out => degraded-or-error invariant holds.
        outcome.degraded = true;
        outcome.degradation_reason = StrFormat(
            "%s backend stopped at the deadline with its best-so-far state",
            BackendName(options.backend).c_str());
      }
      outcome.stats.elapsed_ms = watch.ElapsedMillis();
      return outcome;
    }
    failure = primary.status();
    // Cancellation is a caller decision: never retried, never degraded.
    if (failure.code() == StatusCode::kCancelled) return failure;
    if (failure.code() == StatusCode::kDeadlineExceeded) break;
    if (attempt == max_attempts || !IsRetryableStatus(failure.code())) break;
    QQO_TRACE_SPAN("solve.backoff");
    if (!SleepWithDeadline(BackoffMillis(budget.retry, attempt),
                           budget.deadline)) {
      // SleepWithDeadline reports expiry and cancellation with the same
      // `false`. A fired token must surface as kCancelled here — reporting
      // it as a deadline would route a cancelled solve into the salvage
      // path below and degrade it, violating the "kCancelled is never
      // retried or degraded" contract.
      if (budget.deadline.Cancelled()) {
        return CancelledError("operation cancelled during retry backoff");
      }
      failure = DeadlineExceededError("deadline exceeded during retry backoff");
      break;
    }
  }

  if (!options.classical_fallback || !IsQuantumBackend(options.backend) ||
      failure.code() == StatusCode::kInvalidArgument) {
    // Invalid caller input is reported, not papered over by a fallback.
    return failure;
  }

  if (failure.code() == StatusCode::kDeadlineExceeded) {
    // The quantum stage burned its 80% share of the budget. If the
    // reserved slack is gone too, give up; otherwise degrade to the
    // cheapest classical stand-in — one deadline-aware anytime SA read,
    // which always returns a valid state within the remaining budget.
    if (Status remaining = budget.deadline.Check(); !remaining.ok()) {
      // A token that fired while the quantum stage was timing out still
      // wins: report kCancelled, never degrade a cancelled solve.
      return remaining.code() == StatusCode::kCancelled ? remaining : failure;
    }
    QQO_TRACE_SPAN("solve.salvage");
    // The salvage read is a real backend attempt: count it and continue
    // the attempt-seed sequence past the N quantum attempts so its RNG
    // stream is never correlated with any of them.
    outcome.stats.attempts += 1;
    QQO_COUNT("solve.attempts", 1);
    AnnealOptions cheap;
    cheap.num_reads = 1;
    cheap.num_sweeps = std::max(1, std::min(options.anneal.num_sweeps, 256));
    cheap.seed = AttemptSeed(options.seed, outcome.stats.attempts);
    cheap.deadline = budget.deadline;
    StatusOr<AnnealResult> salvage = TrySolveQuboWithAnnealing(qubo, cheap);
    if (!salvage.ok()) {
      return salvage.status().code() == StatusCode::kCancelled
                 ? salvage.status()
                 : failure;
    }
    outcome.result.bits = std::move(salvage->best_bits);
    outcome.result.energy = salvage->best_energy;
    outcome.backend_used = Backend::kSimulatedAnnealing;
    outcome.degraded = true;
    outcome.degradation_reason =
        StrFormat("%s backend failed (%s)",
                  BackendName(options.backend).c_str(),
                  failure.ToString().c_str());
    // The quantum stage timing out is what we degraded *from*; the report
    // is timed_out only when the salvage read itself was truncated by the
    // deadline instead of completing inside the reserved slack.
    outcome.stats.timed_out = salvage->timed_out;
    outcome.stats.elapsed_ms = watch.ElapsedMillis();
    return outcome;
  }

  const Backend fallback = qubo.NumVariables() <= kMaxExactFallbackQubits
                               ? Backend::kExact
                               : Backend::kSimulatedAnnealing;
  QQO_TRACE_SPAN("solve.fallback");
  // Like the salvage read: the fallback solve is one more attempt, with
  // the next seed in the attempt sequence (the original seed was consumed
  // by attempt 1 already).
  outcome.stats.attempts += 1;
  QQO_COUNT("solve.attempts", 1);
  OptimizerOptions fallback_options = options;
  fallback_options.seed = AttemptSeed(options.seed, outcome.stats.attempts);
  StatusOr<BackendResult> secondary = TrySolveQuboWithBackend(
      qubo, fallback_options, fallback, budget.deadline);
  if (!secondary.ok()) return failure;
  outcome.result = *std::move(secondary);
  outcome.backend_used = fallback;
  outcome.degraded = true;
  outcome.degradation_reason =
      StrFormat("%s backend failed (%s)", BackendName(options.backend).c_str(),
                failure.ToString().c_str());
  outcome.stats.timed_out = outcome.result.timed_out;
  outcome.stats.elapsed_ms = watch.ElapsedMillis();
  return outcome;
}

// ---------------------------------------------------------------------------
// Portfolio racing (DispatchMode::kRace).
// ---------------------------------------------------------------------------

/// Fixed backend priority order for winner tie-breaks: on equal incumbent
/// energy the lower rank wins, independent of which lane finished first.
/// The exact oracle ranks first — it is the one *decisive* lane: its
/// completion proves the global optimum, so it may cancel the survivors
/// without ever changing the selected winner.
int BackendRank(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return 0;
    case Backend::kSimulatedAnnealing:
      return 1;
    case Backend::kQaoa:
      return 2;
    case Backend::kVqe:
      return 3;
    case Backend::kAdiabatic:
      return 4;
    case Backend::kAnnealerEmulation:
      return 5;
  }
  return 6;
}

/// Race-lane qubit caps for the *extra* lanes the racer adds next to the
/// requested backend. They are deliberately tighter than the serial caps:
/// an extra lane must stay cheap (the 2^25-amplitude statevector a
/// 25-qubit QAOA lane would allocate is half a gigabyte the caller never
/// asked for). The requested backend itself keeps its serial caps.
constexpr int kMaxRaceQaoaQubits = 16;
constexpr int kMaxRaceAdiabaticQubits = 14;

/// The deterministic lane set for one raced solve: the requested backend
/// plus whichever cheap stand-ins fit the problem size, ordered by
/// BackendRank. Depends only on (num_variables, options), never on
/// timing. With classical_fallback off the portfolio collapses to the
/// requested backend alone — racing stand-ins *is* a fallback by another
/// name, and --no-fallback promised the caller we would not do that.
std::vector<Backend> RacePortfolio(int num_variables,
                                   const OptimizerOptions& options) {
  std::vector<Backend> portfolio;
  portfolio.reserve(4);
  portfolio.push_back(options.backend);
  if (options.classical_fallback) {
    const auto add = [&](Backend backend, int max_qubits) {
      if (num_variables > max_qubits) return;
      if (std::find(portfolio.begin(), portfolio.end(), backend) !=
          portfolio.end()) {
        return;
      }
      portfolio.push_back(backend);
    };
    add(Backend::kExact, kMaxExactFallbackQubits);
    add(Backend::kSimulatedAnnealing, std::numeric_limits<int>::max());
    add(Backend::kQaoa, kMaxRaceQaoaQubits);
    add(Backend::kAdiabatic, kMaxRaceAdiabaticQubits);
  }
  std::sort(portfolio.begin(), portfolio.end(),
            [](Backend a, Backend b) { return BackendRank(a) < BackendRank(b); });
  return portfolio;
}

/// Seeded tie-break key for one lane. Ranks are already unique per lane,
/// so this third key only matters if two lanes ever share a rank; it
/// keeps the selection total order seed-deterministic regardless.
std::uint64_t LaneTieKey(std::uint64_t seed, int rank) {
  return AttemptSeed(seed, 1000 + rank);
}

/// Shared best-so-far cell the racing lanes stream their incumbents
/// through. The energy mirror is a lock-free peek (metrics, leading-lane
/// checks); the full incumbent — bits plus the deterministic tie-break
/// tuple — lives behind the mutex. Publish order is timing-dependent but
/// the comparison is a total order over timing-independent values, so the
/// final content is the minimum over published lanes no matter how the
/// race interleaved.
class IncumbentCell {
 public:
  /// Installs (energy, rank, tie_key) if it beats the current incumbent
  /// lexicographically. Returns true when the candidate took the cell.
  bool Publish(double energy, int rank, std::uint64_t tie_key,
               const std::vector<std::uint8_t>& bits, Backend backend,
               bool timed_out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_value_) {
      const bool better =
          energy < energy_ ||
          (energy == energy_ &&
           (rank < rank_ || (rank == rank_ && tie_key < tie_key_)));
      if (!better) return false;
    }
    has_value_ = true;
    energy_ = energy;
    rank_ = rank;
    tie_key_ = tie_key;
    bits_ = bits;
    backend_ = backend;
    timed_out_ = timed_out;
    fast_energy_.store(energy, std::memory_order_release);
    return true;
  }

  bool has_value() const {
    std::lock_guard<std::mutex> lock(mu_);
    return has_value_;
  }

  /// Lock-free peek at the leading energy (meaningful once a lane
  /// published; +inf before that).
  double PeekEnergy() const {
    return fast_energy_.load(std::memory_order_acquire);
  }

  /// Moves the winning incumbent out. Call once, after the race settled.
  BackendResult TakeWinner(Backend* backend) {
    std::lock_guard<std::mutex> lock(mu_);
    BackendResult result;
    result.bits = std::move(bits_);
    result.energy = energy_;
    result.timed_out = timed_out_;
    *backend = backend_;
    return result;
  }

 private:
  mutable std::mutex mu_;
  std::atomic<double> fast_energy_{
      std::numeric_limits<double>::infinity()};
  bool has_value_ = false;
  double energy_ = 0.0;
  int rank_ = 0;
  std::uint64_t tie_key_ = 0;
  std::vector<std::uint8_t> bits_;
  Backend backend_ = Backend::kSimulatedAnnealing;
  bool timed_out_ = false;
};

/// Per-lane bookkeeping the race fills in; read only after every lane
/// future is drained.
struct RaceLaneState {
  Status status = OkStatus();
  bool ok = false;
  bool published = false;
  double published_energy = 0.0;
  double elapsed_ms = 0.0;
};

/// Portfolio racer: every lane of RacePortfolio() runs concurrently on
/// the default ThreadPool against the caller's deadline plus a shared
/// race CancelToken. Lanes publish their finished state to the incumbent
/// cell; only the exact oracle is decisive (fires the token early, see
/// BackendRank). Winner selection is the cell minimum — deterministic at
/// any thread count because a cancelled lane can only be beaten to the
/// cell by the exact lane, which outranks everything it could have
/// published. At pool size 1 Submit() runs lanes inline in priority
/// order, so the exact lane completes first and the survivors cancel at
/// their first deadline poll — the race costs about one exact solve.
StatusOr<DispatchOutcome> DispatchRace(const QuboModel& qubo,
                                       const OptimizerOptions& options) {
  const SolveBudget& budget = options.budget;
  QQO_TRACE_SPAN("solve.race");
  Stopwatch watch;
  QOPT_RETURN_IF_ERROR(budget.deadline.Check());

  const std::vector<Backend> portfolio =
      RacePortfolio(qubo.NumVariables(), options);
  const int num_lanes = static_cast<int>(portfolio.size());
  QQO_COUNT("race.lanes", num_lanes);

  // The race token is linked to the caller's own token: a caller-side
  // cancellation trips every lane at its next poll with no forwarding
  // thread in between (essential at pool size 1, where lanes run inline
  // on this very thread and nobody could forward).
  CancelToken race_token(budget.deadline.token());
  IncumbentCell cell;
  std::vector<RaceLaneState> lanes(portfolio.size());
  std::mutex mu;
  std::condition_variable lanes_done;
  int outstanding = num_lanes;

  ThreadPool& pool = ThreadPool::Default();
  std::vector<std::future<void>> futures;
  futures.reserve(portfolio.size());
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    futures.push_back(pool.Submit([&, i] {
      QQO_TRACE_SPAN("race.lane");
      const Backend backend = portfolio[i];
      const int rank = BackendRank(backend);
      RaceLaneState& lane = lanes[i];
      Stopwatch lane_watch;
      // Each lane consumes one real backend attempt (even a lane the
      // token cancels mid-run did real work before stopping).
      QQO_COUNT("solve.attempts", 1);
      // The race deadline keeps the caller's wall-clock budget but swaps
      // in the linked race token, which observes the caller's token too.
      const Deadline lane_deadline = budget.deadline.WithToken(&race_token);
      StatusOr<BackendResult> run = [&]() -> StatusOr<BackendResult> {
        QOPT_RETURN_IF_ERROR(CheckFaultPoint("race.lane"));
        try {
          return TrySolveQuboWithBackend(qubo, options, backend,
                                         lane_deadline);
        } catch (const std::exception& e) {
          return InternalError(StrFormat("race lane %s threw: %s",
                                         BackendName(backend).c_str(),
                                         e.what()));
        }
      }();
      lane.elapsed_ms = lane_watch.ElapsedMillis();
      if (run.ok()) {
        lane.ok = true;
        lane.published_energy = run->energy;
        lane.published = cell.Publish(run->energy, rank,
                                      LaneTieKey(options.seed, rank),
                                      run->bits, backend, run->timed_out);
        if (lane.published) QQO_COUNT("race.incumbents", 1);
        if (backend == Backend::kExact) {
          // Decisive: the oracle's energy is the global minimum and its
          // rank beats every survivor, so no lane still running can
          // displace it — cancel them instead of paying for their tail.
          race_token.Cancel();
        }
      } else {
        lane.status = run.status();
        if (lane.status.code() == StatusCode::kCancelled) {
          QQO_COUNT("race.cancelled_lanes", 1);
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        --outstanding;
      }
      lanes_done.notify_one();
    }));
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    // QQO_LOOP(race.wait)
    while (outstanding > 0) {
      lanes_done.wait_for(lock, std::chrono::milliseconds(10));
      QQO_COUNT("race.wait_polls", 1);
      // Cancellation needs no forwarding here — the linked race token
      // already reflects the caller's token — and deadline *expiry* is
      // deliberately never turned into a cancel: lanes share the
      // wall-clock budget, and the anytime backends must keep returning
      // their best-so-far state (OK + timed_out) instead of kCancelled
      // when time runs out. The wait only drains surviving lanes.
      if (budget.deadline.Cancelled()) QQO_COUNT("race.cancel_waits", 1);
    }
  }
  for (std::future<void>& future : futures) future.get();

  // The caller cancelled: the whole solve is kCancelled, never a report.
  if (budget.deadline.Cancelled()) {
    return CancelledError("solve cancelled during backend race");
  }

  // Invalid caller input is reported, never masked by a sibling lane
  // that happened to win. Backend option validation runs before any
  // deadline poll, so this failure is timing-independent.
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    if (portfolio[i] == options.backend &&
        lanes[i].status.code() == StatusCode::kInvalidArgument) {
      return lanes[i].status;
    }
  }

  DispatchOutcome outcome;
  outcome.stats.attempts = num_lanes;
  outcome.stats.elapsed_ms = watch.ElapsedMillis();

  Status requested_failure = OkStatus();
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    if (portfolio[i] == options.backend) requested_failure = lanes[i].status;
  }

  if (!cell.has_value()) {
    // Every lane failed. Surface the requested backend's own failure;
    // when even that is somehow OK-but-unpublished, fall back to the
    // highest-priority lane failure.
    if (!requested_failure.ok()) return requested_failure;
    for (const RaceLaneState& lane : lanes) {
      if (!lane.status.ok()) return lane.status;
    }
    return InternalError("race finished with no incumbent and no failure");
  }

  Backend winner_backend = Backend::kSimulatedAnnealing;
  outcome.result = cell.TakeWinner(&winner_backend);
  outcome.backend_used = winner_backend;
  outcome.stats.timed_out = outcome.result.timed_out;
  if (outcome.result.timed_out) {
    outcome.degraded = true;
    outcome.degradation_reason = StrFormat(
        "%s race winner stopped at the deadline with its best-so-far state",
        BackendName(winner_backend).c_str());
  } else if (winner_backend != options.backend && !requested_failure.ok() &&
             requested_failure.code() != StatusCode::kCancelled) {
    // The lane the caller asked for genuinely failed and a stand-in won.
    // (A lane merely out-raced — or cancelled by the decisive oracle — is
    // not a degradation: the winner is at least as good a result.)
    outcome.degraded = true;
    outcome.degradation_reason = StrFormat(
        "%s backend failed (%s)", BackendName(options.backend).c_str(),
        requested_failure.ToString().c_str());
  }

  outcome.stats.lanes.reserve(portfolio.size());
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    RaceLaneStats lane_stats;
    lane_stats.backend = portfolio[i];
    const RaceLaneState& lane = lanes[i];
    if (lane.ok) {
      lane_stats.outcome = "ok";
      lane_stats.incumbent = true;
      lane_stats.incumbent_energy = lane.published_energy;
    } else if (lane.status.code() == StatusCode::kCancelled) {
      lane_stats.outcome = "cancelled";
    } else if (lane.status.code() == StatusCode::kDeadlineExceeded) {
      lane_stats.outcome = "deadline";
    } else {
      std::string code_name(StatusCodeName(lane.status.code()));
      for (char& c : code_name) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
      lane_stats.outcome = std::move(code_name);
    }
    lane_stats.elapsed_ms = lane.elapsed_ms;
    lane_stats.won = lane.ok && portfolio[i] == winner_backend;
    outcome.stats.lanes.push_back(std::move(lane_stats));
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Hybrid decomposition (OptimizerOptions::decompose > 0).
// ---------------------------------------------------------------------------

/// Serial-cap routing for one decomposition block: the requested backend
/// handles the block when it fits that backend's qubit budget, SA (which
/// takes any size) stands in otherwise. Deterministic in the block size.
Backend SubproblemBackend(int num_variables, const OptimizerOptions& options) {
  int cap = 0;
  switch (options.backend) {
    case Backend::kExact:
      cap = kMaxBruteForceQubits;
      break;
    case Backend::kSimulatedAnnealing:
      return Backend::kSimulatedAnnealing;
    case Backend::kQaoa:
    case Backend::kVqe:
      cap = kMaxStatevectorQubits;
      break;
    case Backend::kAdiabatic:
      cap = kMaxAdiabaticQubits;
      break;
    case Backend::kAnnealerEmulation:
      // The fabric size bounds what can possibly embed; actual embedding
      // failures fall back per block inside the subproblem dispatch.
      cap = MakePegasus(options.pegasus_m).NumVertices();
      break;
  }
  return num_variables <= cap ? options.backend
                              : Backend::kSimulatedAnnealing;
}

/// Solves one clamped block through the serial dispatch pipeline
/// (named helper: runs inside the decomposer's ParallelFor workers, where
/// any nested ParallelFor the backends issue executes inline serially).
/// Retries are disabled per block — a transient failure just keeps the
/// incumbent for this block, it must not sleep a pool worker through a
/// backoff — and the per-block SA budget is clamped so a 400-block round
/// costs what one facade SA solve costs, not 400 of them.
StatusOr<SubproblemResult> SolveDecomposeSubproblem(
    const QuboModel& subproblem, std::uint64_t seed, const Deadline& deadline,
    const OptimizerOptions& base) {
  QOPT_RETURN_IF_ERROR(CheckFaultPoint("decompose.subproblem"));
  OptimizerOptions options = base;
  options.decompose = 0;
  options.dispatch = DispatchMode::kSerial;
  options.backend = SubproblemBackend(subproblem.NumVariables(), base);
  options.seed = seed;
  options.budget.deadline = deadline;
  options.budget.retry = RetryPolicy{};
  // Every backend re-derives its stream from the block's AttemptSeed-
  // derived seed; a caller-pinned kernel seed would correlate all blocks.
  options.anneal.seed = 0;
  options.variational.seed = 0;
  options.adiabatic.seed = 0;
  options.embedded.embed.seed = 0;
  options.embedded.anneal.seed = 0;
  options.anneal.num_reads = std::min(std::max(1, base.anneal.num_reads), 8);
  options.anneal.num_sweeps =
      std::min(std::max(1, base.anneal.num_sweeps), 1000);
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchWithFallback(subproblem, options));
  SubproblemResult result;
  result.bits = std::move(outcome.result.bits);
  return result;
}

/// Decomposed dispatch: run the qbsolv-style round loop with the serial
/// pipeline as the block solver, then surface the incumbent as a regular
/// dispatch outcome. backend_used reports the *requested* backend — the
/// blocks routed through it wherever they fit its budget — and a
/// deadline-truncated loop degrades (timed_out => degraded-or-error).
StatusOr<DispatchOutcome> DispatchDecomposed(const QuboModel& qubo,
                                             const OptimizerOptions& options) {
  QQO_TRACE_SPAN("solve.decompose");
  Stopwatch watch;
  DecomposeOptions decompose;
  decompose.max_subproblem_size = options.decompose;
  decompose.seed = options.seed;
  decompose.deadline = options.budget.deadline;
  const SubproblemSolver solver =
      [&options](const QuboModel& subproblem, std::uint64_t seed,
                 const Deadline& deadline) {
        return SolveDecomposeSubproblem(subproblem, seed, deadline, options);
      };
  QOPT_ASSIGN_OR_RETURN(DecomposeResult solved,
                        SolveQuboDecomposed(qubo, decompose, solver));
  DispatchOutcome outcome;
  outcome.result.bits = std::move(solved.bits);
  outcome.result.energy = solved.energy;
  outcome.result.timed_out = solved.timed_out;
  outcome.backend_used = options.backend;
  outcome.stats.attempts = std::max(1, solved.subproblems);
  outcome.stats.timed_out = solved.timed_out;
  outcome.stats.decompose_rounds = solved.rounds;
  outcome.stats.decompose_subproblems = solved.subproblems;
  outcome.stats.decompose_round_energies = std::move(solved.round_energies);
  if (solved.timed_out) {
    outcome.degraded = true;
    outcome.degradation_reason =
        "decomposition stopped at the deadline with its best incumbent";
  }
  outcome.stats.elapsed_ms = watch.ElapsedMillis();
  return outcome;
}

/// Routes one QUBO solve to the configured dispatch strategy.
StatusOr<DispatchOutcome> DispatchQubo(const QuboModel& qubo,
                                       const OptimizerOptions& options) {
  if (options.decompose != 0 && options.decompose < 2) {
    return InvalidArgumentError(StrFormat(
        "decompose must be 0 (off) or >= 2, got %d", options.decompose));
  }
  if (options.decompose > 0 && qubo.NumVariables() > options.decompose) {
    return DispatchDecomposed(qubo, options);
  }
  if (options.dispatch == DispatchMode::kRace) {
    return DispatchRace(qubo, options);
  }
  return DispatchWithFallback(qubo, options);
}

}  // namespace

std::string BackendName(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return "exact";
    case Backend::kSimulatedAnnealing:
      return "sa";
    case Backend::kQaoa:
      return "qaoa";
    case Backend::kVqe:
      return "vqe";
    case Backend::kAdiabatic:
      return "adiabatic";
    case Backend::kAnnealerEmulation:
      return "annealer";
  }
  return "unknown";
}

std::string DispatchModeName(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kSerial:
      return "serial";
    case DispatchMode::kRace:
      return "race";
  }
  return "unknown";
}

StatusOr<DispatchMode> ParseDispatchMode(const std::string& text) {
  if (text == "serial") return DispatchMode::kSerial;
  if (text == "race") return DispatchMode::kRace;
  return InvalidArgumentError(StrFormat(
      "unknown dispatch mode '%s' (expected serial|race)", text.c_str()));
}

StatusOr<MqoSolveReport> TrySolveMqo(const MqoProblem& problem,
                                     const OptimizerOptions& options) {
  QQO_TRACE_SPAN("solve.mqo");
  QOPT_RETURN_IF_ERROR(options.budget.deadline.Check());
  QOPT_ASSIGN_OR_RETURN(const MqoQuboEncoding encoding,
                        TryEncodeMqoAsQubo(problem));
  MqoSolveReport report;
  report.qubits = encoding.qubo.NumVariables();
  report.quadratic_terms = encoding.qubo.NumQuadraticTerms();
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchQubo(encoding.qubo, options));
  report.backend_used = outcome.backend_used;
  report.degraded = outcome.degraded;
  report.degradation_reason = std::move(outcome.degradation_reason);
  report.stats = outcome.stats;
  report.qubo_energy = outcome.result.energy;
  std::vector<int> selection;
  report.valid = problem.DecodeBits(outcome.result.bits, &selection);
  if (report.valid) {
    report.solution.cost = problem.SelectionCost(selection);
    report.solution.selection = std::move(selection);
  }
  report.bits = std::move(outcome.result.bits);
  return report;
}

MqoSolveReport SolveMqo(const MqoProblem& problem,
                        const OptimizerOptions& options) {
  StatusOr<MqoSolveReport> report = TrySolveMqo(problem, options);
  QOPT_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  return *std::move(report);
}

StatusOr<JoinOrderSolveReport> TrySolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  QQO_TRACE_SPAN("solve.join");
  QOPT_RETURN_IF_ERROR(options.budget.deadline.Check());
  QOPT_ASSIGN_OR_RETURN(const JoinOrderEncoding encoding,
                        TryEncodeJoinOrderAsBilp(graph, encoder_options));
  const BilpQuboEncoding qubo_encoding = EncodeBilpAsQubo(encoding.bilp);
  JoinOrderSolveReport report;
  report.qubits = qubo_encoding.qubo.NumVariables();
  report.quadratic_terms = qubo_encoding.qubo.NumQuadraticTerms();
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchQubo(qubo_encoding.qubo, options));
  report.backend_used = outcome.backend_used;
  report.degraded = outcome.degraded;
  report.degradation_reason = std::move(outcome.degradation_reason);
  report.stats = outcome.stats;
  report.qubo_energy = outcome.result.energy;
  std::vector<int> order;
  report.valid = DecodeJoinOrder(encoding, outcome.result.bits, &order);
  if (report.valid) {
    report.solution.cost = CoutCost(graph, order);
    report.solution.order = std::move(order);
  }
  report.bits = std::move(outcome.result.bits);
  return report;
}

JoinOrderSolveReport SolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  StatusOr<JoinOrderSolveReport> report =
      TrySolveJoinOrder(graph, encoder_options, options);
  QOPT_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  return *std::move(report);
}

}  // namespace qopt
