#include "core/quantum_optimizer.h"

#include "anneal/pegasus.h"
#include "bilp/bilp_to_qubo.h"
#include "common/check.h"
#include "common/table_printer.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

/// Simulation budgets that turn an over-sized request into a recoverable
/// error instead of an unbounded (or aborting) computation. They mirror
/// the hard CHECKs of the underlying kernels.
constexpr int kMaxBruteForceQubits = 26;    // brute_force_solver.h
constexpr int kMaxStatevectorQubits = 26;   // statevector.cc
constexpr int kMaxAdiabaticQubits = 20;     // adiabatic.cc
/// Above this size the classical fallback uses SA instead of the exact
/// oracle (2^n enumeration stays sub-second up to here).
constexpr int kMaxExactFallbackQubits = 20;

bool IsQuantumBackend(Backend backend) {
  switch (backend) {
    case Backend::kQaoa:
    case Backend::kVqe:
    case Backend::kAdiabatic:
    case Backend::kAnnealerEmulation:
      return true;
    case Backend::kExact:
    case Backend::kSimulatedAnnealing:
      return false;
  }
  return false;
}

/// Dispatches a QUBO to the selected backend and returns the bit string it
/// found (plus its energy).
struct BackendResult {
  std::vector<std::uint8_t> bits;
  double energy = 0.0;
};

StatusOr<BackendResult> TrySolveQuboWithBackend(
    const QuboModel& qubo, const OptimizerOptions& options, Backend backend) {
  const int n = qubo.NumVariables();
  if (n < 1) return InvalidArgumentError("QUBO has no variables");
  BackendResult result;
  switch (backend) {
    case Backend::kExact: {
      if (n > kMaxBruteForceQubits) {
        return ResourceExhaustedError(StrFormat(
            "exact oracle enumerates 2^%d assignments; limit is %d "
            "variables",
            n, kMaxBruteForceQubits));
      }
      BruteForceResult exact = SolveQuboBruteForce(qubo);
      result.bits = std::move(exact.best_bits);
      result.energy = exact.best_energy;
      return result;
    }
    case Backend::kSimulatedAnnealing: {
      AnnealOptions anneal = options.anneal;
      if (anneal.num_reads < 1 || anneal.num_sweeps < 1) {
        return InvalidArgumentError(
            StrFormat("SA needs num_reads >= 1 and num_sweeps >= 1, got "
                      "%d / %d",
                      anneal.num_reads, anneal.num_sweeps));
      }
      if (anneal.seed == 0) anneal.seed = options.seed;
      AnnealResult sa = SolveQuboWithAnnealing(qubo, anneal);
      result.bits = std::move(sa.best_bits);
      result.energy = sa.best_energy;
      return result;
    }
    case Backend::kQaoa:
    case Backend::kVqe: {
      if (n > kMaxStatevectorQubits) {
        return ResourceExhaustedError(StrFormat(
            "%s circuit needs %d qubits; the statevector simulator "
            "supports at most %d",
            backend == Backend::kQaoa ? "QAOA" : "VQE", n,
            kMaxStatevectorQubits));
      }
      VariationalOptions variational = options.variational;
      if (variational.qaoa_reps < 1 || variational.vqe_reps < 0 ||
          variational.max_iterations < 1 || variational.shots < 1) {
        return InvalidArgumentError(
            "variational options out of range (need qaoa_reps >= 1, "
            "vqe_reps >= 0, max_iterations >= 1, shots >= 1)");
      }
      if (variational.seed == 0) variational.seed = options.seed;
      VariationalResult hybrid = backend == Backend::kQaoa
                                     ? SolveQuboWithQaoa(qubo, variational)
                                     : SolveQuboWithVqe(qubo, variational);
      result.bits = std::move(hybrid.best_bits);
      result.energy = hybrid.best_energy;
      return result;
    }
    case Backend::kAdiabatic: {
      if (n > kMaxAdiabaticQubits) {
        return ResourceExhaustedError(StrFormat(
            "adiabatic evolution needs %d qubits; the dense propagator "
            "supports at most %d",
            n, kMaxAdiabaticQubits));
      }
      AdiabaticOptions adiabatic = options.adiabatic;
      if (adiabatic.steps < 1 || !(adiabatic.total_time > 0.0) ||
          adiabatic.shots < 1) {
        return InvalidArgumentError(
            "adiabatic options out of range (need steps >= 1, "
            "total_time > 0, shots >= 1)");
      }
      if (adiabatic.seed == 0) adiabatic.seed = options.seed;
      AdiabaticResult evolved = SolveQuboAdiabatically(qubo, adiabatic);
      result.bits = std::move(evolved.best_bits);
      result.energy = evolved.best_energy;
      return result;
    }
    case Backend::kAnnealerEmulation: {
      if (options.pegasus_m < 2) {
        return InvalidArgumentError(StrFormat(
            "pegasus_m must be >= 2, got %d", options.pegasus_m));
      }
      EmbeddedSolveOptions embedded = options.embedded;
      if (embedded.anneal.num_reads < 1 || embedded.anneal.num_sweeps < 1) {
        return InvalidArgumentError(
            "embedded SA needs num_reads >= 1 and num_sweeps >= 1");
      }
      if (embedded.embed.seed == 0) embedded.embed.seed = options.seed;
      if (embedded.anneal.seed == 0) embedded.anneal.seed = options.seed;
      const SimpleGraph topology = MakePegasus(options.pegasus_m);
      if (n > topology.NumVertices()) {
        return UnavailableError(StrFormat(
            "QUBO has %d variables but the Pegasus P%d fabric offers only "
            "%d qubits; use a larger pegasus_m",
            n, options.pegasus_m, topology.NumVertices()));
      }
      std::optional<EmbeddedSolveResult> embedded_result =
          SolveQuboOnTopology(qubo, topology, embedded);
      if (!embedded_result.has_value()) {
        return UnavailableError(StrFormat(
            "no minor embedding of the %d-variable QUBO into Pegasus P%d "
            "was found; use a larger pegasus_m",
            n, options.pegasus_m));
      }
      result.bits = std::move(embedded_result->bits);
      result.energy = embedded_result->energy;
      return result;
    }
  }
  return InternalError("unknown backend");
}

/// Backend dispatch with graceful degradation: a failed quantum backend
/// falls back to a classical one (exact for small problems, SA otherwise)
/// when options.classical_fallback is set.
struct DispatchOutcome {
  BackendResult result;
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;
  std::string degradation_reason;
};

StatusOr<DispatchOutcome> DispatchWithFallback(
    const QuboModel& qubo, const OptimizerOptions& options) {
  StatusOr<BackendResult> primary =
      TrySolveQuboWithBackend(qubo, options, options.backend);
  if (primary.ok()) {
    DispatchOutcome outcome;
    outcome.result = *std::move(primary);
    outcome.backend_used = options.backend;
    return outcome;
  }
  if (!options.classical_fallback || !IsQuantumBackend(options.backend) ||
      primary.status().code() == StatusCode::kInvalidArgument) {
    // Invalid caller input is reported, not papered over by a fallback.
    return primary.status();
  }
  const Backend fallback = qubo.NumVariables() <= kMaxExactFallbackQubits
                               ? Backend::kExact
                               : Backend::kSimulatedAnnealing;
  StatusOr<BackendResult> secondary =
      TrySolveQuboWithBackend(qubo, options, fallback);
  if (!secondary.ok()) return primary.status();
  DispatchOutcome outcome;
  outcome.result = *std::move(secondary);
  outcome.backend_used = fallback;
  outcome.degraded = true;
  outcome.degradation_reason =
      StrFormat("%s backend failed (%s)", BackendName(options.backend).c_str(),
                primary.status().ToString().c_str());
  return outcome;
}

}  // namespace

std::string BackendName(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return "exact";
    case Backend::kSimulatedAnnealing:
      return "sa";
    case Backend::kQaoa:
      return "qaoa";
    case Backend::kVqe:
      return "vqe";
    case Backend::kAdiabatic:
      return "adiabatic";
    case Backend::kAnnealerEmulation:
      return "annealer";
  }
  return "unknown";
}

StatusOr<MqoSolveReport> TrySolveMqo(const MqoProblem& problem,
                                     const OptimizerOptions& options) {
  QOPT_ASSIGN_OR_RETURN(const MqoQuboEncoding encoding,
                        TryEncodeMqoAsQubo(problem));
  MqoSolveReport report;
  report.qubits = encoding.qubo.NumVariables();
  report.quadratic_terms = encoding.qubo.NumQuadraticTerms();
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchWithFallback(encoding.qubo, options));
  report.backend_used = outcome.backend_used;
  report.degraded = outcome.degraded;
  report.degradation_reason = std::move(outcome.degradation_reason);
  report.qubo_energy = outcome.result.energy;
  std::vector<int> selection;
  report.valid = problem.DecodeBits(outcome.result.bits, &selection);
  if (report.valid) {
    report.solution.cost = problem.SelectionCost(selection);
    report.solution.selection = std::move(selection);
  }
  return report;
}

MqoSolveReport SolveMqo(const MqoProblem& problem,
                        const OptimizerOptions& options) {
  StatusOr<MqoSolveReport> report = TrySolveMqo(problem, options);
  QOPT_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  return *std::move(report);
}

StatusOr<JoinOrderSolveReport> TrySolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  QOPT_ASSIGN_OR_RETURN(const JoinOrderEncoding encoding,
                        TryEncodeJoinOrderAsBilp(graph, encoder_options));
  const BilpQuboEncoding qubo_encoding = EncodeBilpAsQubo(encoding.bilp);
  JoinOrderSolveReport report;
  report.qubits = qubo_encoding.qubo.NumVariables();
  report.quadratic_terms = qubo_encoding.qubo.NumQuadraticTerms();
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchWithFallback(qubo_encoding.qubo, options));
  report.backend_used = outcome.backend_used;
  report.degraded = outcome.degraded;
  report.degradation_reason = std::move(outcome.degradation_reason);
  report.qubo_energy = outcome.result.energy;
  std::vector<int> order;
  report.valid = DecodeJoinOrder(encoding, outcome.result.bits, &order);
  if (report.valid) {
    report.solution.cost = CoutCost(graph, order);
    report.solution.order = std::move(order);
  }
  return report;
}

JoinOrderSolveReport SolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  StatusOr<JoinOrderSolveReport> report =
      TrySolveJoinOrder(graph, encoder_options, options);
  QOPT_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  return *std::move(report);
}

}  // namespace qopt
