#include "core/quantum_optimizer.h"

#include <algorithm>

#include "anneal/pegasus.h"
#include "bilp/bilp_to_qubo.h"
#include "common/check.h"
#include "common/table_printer.h"
#include "mqo/mqo_qubo_encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

/// Simulation budgets that turn an over-sized request into a recoverable
/// error instead of an unbounded (or aborting) computation. They mirror
/// the hard CHECKs of the underlying kernels.
constexpr int kMaxBruteForceQubits = 26;    // brute_force_solver.h
constexpr int kMaxStatevectorQubits = 26;   // statevector.cc
constexpr int kMaxAdiabaticQubits = 20;     // adiabatic.cc
/// Above this size the classical fallback uses SA instead of the exact
/// oracle (2^n enumeration stays sub-second up to here).
constexpr int kMaxExactFallbackQubits = 20;

bool IsQuantumBackend(Backend backend) {
  switch (backend) {
    case Backend::kQaoa:
    case Backend::kVqe:
    case Backend::kAdiabatic:
    case Backend::kAnnealerEmulation:
      return true;
    case Backend::kExact:
    case Backend::kSimulatedAnnealing:
      return false;
  }
  return false;
}

/// Dispatches a QUBO to the selected backend and returns the bit string it
/// found (plus its energy).
struct BackendResult {
  std::vector<std::uint8_t> bits;
  double energy = 0.0;
  /// The backend expired mid-run but returned a valid best-so-far state
  /// (anytime backends: SA and the annealer emulation).
  bool timed_out = false;
};

/// Deterministic per-attempt seed stream (splitmix64 finalizer). Attempt 1
/// keeps the caller's seed so retry-free runs reproduce historical output
/// bit-for-bit; every retry jumps to an unrelated stream so re-seeded
/// embedding/annealing attempts explore fresh state instead of repeating
/// the failure.
std::uint64_t AttemptSeed(std::uint64_t seed, int attempt) {
  if (attempt <= 1) return seed;
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// The stage deadline applies only when the sub-options did not already
/// carry their own (explicitly configured) deadline or token.
Deadline ComposeStageDeadline(const Deadline& local, const Deadline& stage) {
  const bool local_unset = local.unbounded() && local.token() == nullptr;
  return local_unset ? stage : local;
}

StatusOr<BackendResult> TrySolveQuboWithBackend(
    const QuboModel& qubo, const OptimizerOptions& options, Backend backend,
    const Deadline& stage_deadline) {
  const int n = qubo.NumVariables();
  if (n < 1) return InvalidArgumentError("QUBO has no variables");
  BackendResult result;
  switch (backend) {
    case Backend::kExact: {
      if (n > kMaxBruteForceQubits) {
        return ResourceExhaustedError(StrFormat(
            "exact oracle enumerates 2^%d assignments; limit is %d "
            "variables",
            n, kMaxBruteForceQubits));
      }
      // The 2^n enumeration is not interruptible, but the qubit cap keeps
      // it sub-second; refuse to even start once the budget is gone.
      QOPT_RETURN_IF_ERROR(stage_deadline.Check());
      BruteForceResult exact = SolveQuboBruteForce(qubo);
      result.bits = std::move(exact.best_bits);
      result.energy = exact.best_energy;
      return result;
    }
    case Backend::kSimulatedAnnealing: {
      AnnealOptions anneal = options.anneal;
      if (anneal.num_reads < 1 || anneal.num_sweeps < 1) {
        return InvalidArgumentError(
            StrFormat("SA needs num_reads >= 1 and num_sweeps >= 1, got "
                      "%d / %d",
                      anneal.num_reads, anneal.num_sweeps));
      }
      if (anneal.seed == 0) anneal.seed = options.seed;
      anneal.deadline = ComposeStageDeadline(anneal.deadline, stage_deadline);
      QOPT_ASSIGN_OR_RETURN(AnnealResult sa,
                            TrySolveQuboWithAnnealing(qubo, anneal));
      result.bits = std::move(sa.best_bits);
      result.energy = sa.best_energy;
      result.timed_out = sa.timed_out;
      return result;
    }
    case Backend::kQaoa:
    case Backend::kVqe: {
      if (n > kMaxStatevectorQubits) {
        return ResourceExhaustedError(StrFormat(
            "%s circuit needs %d qubits; the statevector simulator "
            "supports at most %d",
            backend == Backend::kQaoa ? "QAOA" : "VQE", n,
            kMaxStatevectorQubits));
      }
      VariationalOptions variational = options.variational;
      if (variational.qaoa_reps < 1 || variational.vqe_reps < 0 ||
          variational.max_iterations < 1 || variational.shots < 1) {
        return InvalidArgumentError(
            "variational options out of range (need qaoa_reps >= 1, "
            "vqe_reps >= 0, max_iterations >= 1, shots >= 1)");
      }
      if (variational.seed == 0) variational.seed = options.seed;
      variational.deadline =
          ComposeStageDeadline(variational.deadline, stage_deadline);
      QOPT_ASSIGN_OR_RETURN(
          VariationalResult hybrid,
          backend == Backend::kQaoa ? TrySolveQuboWithQaoa(qubo, variational)
                                    : TrySolveQuboWithVqe(qubo, variational));
      result.bits = std::move(hybrid.best_bits);
      result.energy = hybrid.best_energy;
      return result;
    }
    case Backend::kAdiabatic: {
      if (n > kMaxAdiabaticQubits) {
        return ResourceExhaustedError(StrFormat(
            "adiabatic evolution needs %d qubits; the dense propagator "
            "supports at most %d",
            n, kMaxAdiabaticQubits));
      }
      AdiabaticOptions adiabatic = options.adiabatic;
      if (adiabatic.steps < 1 || !(adiabatic.total_time > 0.0) ||
          adiabatic.shots < 1) {
        return InvalidArgumentError(
            "adiabatic options out of range (need steps >= 1, "
            "total_time > 0, shots >= 1)");
      }
      if (adiabatic.seed == 0) adiabatic.seed = options.seed;
      adiabatic.deadline =
          ComposeStageDeadline(adiabatic.deadline, stage_deadline);
      QOPT_ASSIGN_OR_RETURN(AdiabaticResult evolved,
                            TrySolveQuboAdiabatically(qubo, adiabatic));
      result.bits = std::move(evolved.best_bits);
      result.energy = evolved.best_energy;
      return result;
    }
    case Backend::kAnnealerEmulation: {
      if (options.pegasus_m < 2) {
        return InvalidArgumentError(StrFormat(
            "pegasus_m must be >= 2, got %d", options.pegasus_m));
      }
      EmbeddedSolveOptions embedded = options.embedded;
      if (embedded.anneal.num_reads < 1 || embedded.anneal.num_sweeps < 1) {
        return InvalidArgumentError(
            "embedded SA needs num_reads >= 1 and num_sweeps >= 1");
      }
      if (embedded.embed.seed == 0) embedded.embed.seed = options.seed;
      if (embedded.anneal.seed == 0) embedded.anneal.seed = options.seed;
      embedded.embed.deadline =
          ComposeStageDeadline(embedded.embed.deadline, stage_deadline);
      embedded.anneal.deadline =
          ComposeStageDeadline(embedded.anneal.deadline, stage_deadline);
      const SimpleGraph topology = MakePegasus(options.pegasus_m);
      if (n > topology.NumVertices()) {
        return UnavailableError(StrFormat(
            "QUBO has %d variables but the Pegasus P%d fabric offers only "
            "%d qubits; use a larger pegasus_m",
            n, options.pegasus_m, topology.NumVertices()));
      }
      StatusOr<EmbeddedSolveResult> embedded_result =
          TrySolveQuboOnTopology(qubo, topology, embedded);
      if (!embedded_result.ok()) {
        if (embedded_result.status().code() == StatusCode::kUnavailable) {
          return UnavailableError(StrFormat(
              "no minor embedding of the %d-variable QUBO into Pegasus P%d "
              "was found; use a larger pegasus_m",
              n, options.pegasus_m));
        }
        return embedded_result.status();
      }
      result.bits = std::move(embedded_result->bits);
      result.energy = embedded_result->energy;
      result.timed_out = embedded_result->timed_out;
      return result;
    }
  }
  return InternalError("unknown backend");
}

/// Backend dispatch with retries and graceful degradation: transient
/// failures (kUnavailable) are retried with deterministic backoff and a
/// fresh seed, a failed quantum backend falls back to a classical one
/// (exact for small problems, SA otherwise) when options.classical_fallback
/// is set, and a quantum stage that hits the deadline degrades to the
/// cheapest classical stand-in while overall budget remains.
struct DispatchOutcome {
  BackendResult result;
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;
  std::string degradation_reason;
  SolveStats stats;
};

StatusOr<DispatchOutcome> DispatchWithFallback(
    const QuboModel& qubo, const OptimizerOptions& options) {
  const SolveBudget& budget = options.budget;
  QQO_TRACE_SPAN("solve.dispatch");
  Stopwatch watch;
  // An already-exhausted budget (e.g. --timeout-ms=0) fails fast before
  // any backend runs.
  QOPT_RETURN_IF_ERROR(budget.deadline.Check());

  DispatchOutcome outcome;
  Status failure = OkStatus();
  const int max_attempts = std::max(1, budget.retry.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.stats.attempts = attempt;
    QQO_COUNT("solve.attempts", 1);
    OptimizerOptions attempt_options = options;
    attempt_options.seed = AttemptSeed(options.seed, attempt);
    // A quantum stage gets at most 80% of the remaining budget, reserving
    // slack for a classical fallback if it runs out of time. Classical
    // backends get the full remainder: there is nothing cheaper to save
    // time for.
    Deadline stage = budget.deadline;
    if (IsQuantumBackend(options.backend) && !budget.deadline.unbounded()) {
      stage = budget.deadline.WithBudgetMillis(
          0.8 * budget.deadline.RemainingMillis());
    }
    StatusOr<BackendResult> primary = [&] {
      QQO_TRACE_SPAN("solve.attempt");
      return TrySolveQuboWithBackend(qubo, attempt_options, options.backend,
                                     stage);
    }();
    if (primary.ok()) {
      outcome.result = *std::move(primary);
      outcome.backend_used = options.backend;
      outcome.stats.timed_out = outcome.result.timed_out;
      if (outcome.result.timed_out) {
        // Anytime backends (SA, annealer emulation) can expire mid-run yet
        // return a valid best-so-far state; mark it degraded so the
        // timed_out => degraded-or-error invariant holds.
        outcome.degraded = true;
        outcome.degradation_reason = StrFormat(
            "%s backend stopped at the deadline with its best-so-far state",
            BackendName(options.backend).c_str());
      }
      outcome.stats.elapsed_ms = watch.ElapsedMillis();
      return outcome;
    }
    failure = primary.status();
    // Cancellation is a caller decision: never retried, never degraded.
    if (failure.code() == StatusCode::kCancelled) return failure;
    if (failure.code() == StatusCode::kDeadlineExceeded) break;
    if (attempt == max_attempts || !IsRetryableStatus(failure.code())) break;
    QQO_TRACE_SPAN("solve.backoff");
    if (!SleepWithDeadline(BackoffMillis(budget.retry, attempt),
                           budget.deadline)) {
      // SleepWithDeadline reports expiry and cancellation with the same
      // `false`. A fired token must surface as kCancelled here — reporting
      // it as a deadline would route a cancelled solve into the salvage
      // path below and degrade it, violating the "kCancelled is never
      // retried or degraded" contract.
      if (budget.deadline.Cancelled()) {
        return CancelledError("operation cancelled during retry backoff");
      }
      failure = DeadlineExceededError("deadline exceeded during retry backoff");
      break;
    }
  }

  if (!options.classical_fallback || !IsQuantumBackend(options.backend) ||
      failure.code() == StatusCode::kInvalidArgument) {
    // Invalid caller input is reported, not papered over by a fallback.
    return failure;
  }

  if (failure.code() == StatusCode::kDeadlineExceeded) {
    // The quantum stage burned its 80% share of the budget. If the
    // reserved slack is gone too, give up; otherwise degrade to the
    // cheapest classical stand-in — one deadline-aware anytime SA read,
    // which always returns a valid state within the remaining budget.
    if (Status remaining = budget.deadline.Check(); !remaining.ok()) {
      // A token that fired while the quantum stage was timing out still
      // wins: report kCancelled, never degrade a cancelled solve.
      return remaining.code() == StatusCode::kCancelled ? remaining : failure;
    }
    QQO_TRACE_SPAN("solve.salvage");
    AnnealOptions cheap;
    cheap.num_reads = 1;
    cheap.num_sweeps = std::max(1, std::min(options.anneal.num_sweeps, 256));
    cheap.seed = options.seed;
    cheap.deadline = budget.deadline;
    StatusOr<AnnealResult> salvage = TrySolveQuboWithAnnealing(qubo, cheap);
    if (!salvage.ok()) {
      return salvage.status().code() == StatusCode::kCancelled
                 ? salvage.status()
                 : failure;
    }
    outcome.result.bits = std::move(salvage->best_bits);
    outcome.result.energy = salvage->best_energy;
    outcome.backend_used = Backend::kSimulatedAnnealing;
    outcome.degraded = true;
    outcome.degradation_reason =
        StrFormat("%s backend failed (%s)",
                  BackendName(options.backend).c_str(),
                  failure.ToString().c_str());
    outcome.stats.timed_out = true;
    outcome.stats.elapsed_ms = watch.ElapsedMillis();
    return outcome;
  }

  const Backend fallback = qubo.NumVariables() <= kMaxExactFallbackQubits
                               ? Backend::kExact
                               : Backend::kSimulatedAnnealing;
  QQO_TRACE_SPAN("solve.fallback");
  StatusOr<BackendResult> secondary =
      TrySolveQuboWithBackend(qubo, options, fallback, budget.deadline);
  if (!secondary.ok()) return failure;
  outcome.result = *std::move(secondary);
  outcome.backend_used = fallback;
  outcome.degraded = true;
  outcome.degradation_reason =
      StrFormat("%s backend failed (%s)", BackendName(options.backend).c_str(),
                failure.ToString().c_str());
  outcome.stats.timed_out = outcome.result.timed_out;
  outcome.stats.elapsed_ms = watch.ElapsedMillis();
  return outcome;
}

}  // namespace

std::string BackendName(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return "exact";
    case Backend::kSimulatedAnnealing:
      return "sa";
    case Backend::kQaoa:
      return "qaoa";
    case Backend::kVqe:
      return "vqe";
    case Backend::kAdiabatic:
      return "adiabatic";
    case Backend::kAnnealerEmulation:
      return "annealer";
  }
  return "unknown";
}

StatusOr<MqoSolveReport> TrySolveMqo(const MqoProblem& problem,
                                     const OptimizerOptions& options) {
  QQO_TRACE_SPAN("solve.mqo");
  QOPT_RETURN_IF_ERROR(options.budget.deadline.Check());
  QOPT_ASSIGN_OR_RETURN(const MqoQuboEncoding encoding,
                        TryEncodeMqoAsQubo(problem));
  MqoSolveReport report;
  report.qubits = encoding.qubo.NumVariables();
  report.quadratic_terms = encoding.qubo.NumQuadraticTerms();
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchWithFallback(encoding.qubo, options));
  report.backend_used = outcome.backend_used;
  report.degraded = outcome.degraded;
  report.degradation_reason = std::move(outcome.degradation_reason);
  report.stats = outcome.stats;
  report.qubo_energy = outcome.result.energy;
  std::vector<int> selection;
  report.valid = problem.DecodeBits(outcome.result.bits, &selection);
  if (report.valid) {
    report.solution.cost = problem.SelectionCost(selection);
    report.solution.selection = std::move(selection);
  }
  return report;
}

MqoSolveReport SolveMqo(const MqoProblem& problem,
                        const OptimizerOptions& options) {
  StatusOr<MqoSolveReport> report = TrySolveMqo(problem, options);
  QOPT_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  return *std::move(report);
}

StatusOr<JoinOrderSolveReport> TrySolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  QQO_TRACE_SPAN("solve.join");
  QOPT_RETURN_IF_ERROR(options.budget.deadline.Check());
  QOPT_ASSIGN_OR_RETURN(const JoinOrderEncoding encoding,
                        TryEncodeJoinOrderAsBilp(graph, encoder_options));
  const BilpQuboEncoding qubo_encoding = EncodeBilpAsQubo(encoding.bilp);
  JoinOrderSolveReport report;
  report.qubits = qubo_encoding.qubo.NumVariables();
  report.quadratic_terms = qubo_encoding.qubo.NumQuadraticTerms();
  QOPT_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                        DispatchWithFallback(qubo_encoding.qubo, options));
  report.backend_used = outcome.backend_used;
  report.degraded = outcome.degraded;
  report.degradation_reason = std::move(outcome.degradation_reason);
  report.stats = outcome.stats;
  report.qubo_energy = outcome.result.energy;
  std::vector<int> order;
  report.valid = DecodeJoinOrder(encoding, outcome.result.bits, &order);
  if (report.valid) {
    report.solution.cost = CoutCost(graph, order);
    report.solution.order = std::move(order);
  }
  return report;
}

JoinOrderSolveReport SolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  StatusOr<JoinOrderSolveReport> report =
      TrySolveJoinOrder(graph, encoder_options, options);
  QOPT_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  return *std::move(report);
}

}  // namespace qopt
