#include "core/quantum_optimizer.h"

#include "anneal/pegasus.h"
#include "common/check.h"
#include "bilp/bilp_to_qubo.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

/// Dispatches a QUBO to the selected backend and returns the bit string it
/// found (plus its energy).
struct BackendResult {
  std::vector<std::uint8_t> bits;
  double energy = 0.0;
};

BackendResult SolveQuboWithBackend(const QuboModel& qubo,
                                   const OptimizerOptions& options) {
  BackendResult result;
  switch (options.backend) {
    case Backend::kExact: {
      BruteForceResult exact = SolveQuboBruteForce(qubo);
      result.bits = std::move(exact.best_bits);
      result.energy = exact.best_energy;
      return result;
    }
    case Backend::kSimulatedAnnealing: {
      AnnealOptions anneal = options.anneal;
      if (anneal.seed == 0) anneal.seed = options.seed;
      AnnealResult sa = SolveQuboWithAnnealing(qubo, anneal);
      result.bits = std::move(sa.best_bits);
      result.energy = sa.best_energy;
      return result;
    }
    case Backend::kQaoa:
    case Backend::kVqe: {
      VariationalOptions variational = options.variational;
      if (variational.seed == 0) variational.seed = options.seed;
      VariationalResult hybrid = options.backend == Backend::kQaoa
                                     ? SolveQuboWithQaoa(qubo, variational)
                                     : SolveQuboWithVqe(qubo, variational);
      result.bits = std::move(hybrid.best_bits);
      result.energy = hybrid.best_energy;
      return result;
    }
    case Backend::kAdiabatic: {
      AdiabaticOptions adiabatic = options.adiabatic;
      if (adiabatic.seed == 0) adiabatic.seed = options.seed;
      AdiabaticResult evolved = SolveQuboAdiabatically(qubo, adiabatic);
      result.bits = std::move(evolved.best_bits);
      result.energy = evolved.best_energy;
      return result;
    }
    case Backend::kAnnealerEmulation: {
      EmbeddedSolveOptions embedded = options.embedded;
      if (embedded.embed.seed == 0) embedded.embed.seed = options.seed;
      if (embedded.anneal.seed == 0) embedded.anneal.seed = options.seed;
      const SimpleGraph topology = MakePegasus(options.pegasus_m);
      std::optional<EmbeddedSolveResult> embedded_result =
          SolveQuboOnTopology(qubo, topology, embedded);
      QOPT_CHECK_MSG(embedded_result.has_value(),
                     "no embedding found; use a larger pegasus_m");
      result.bits = std::move(embedded_result->bits);
      result.energy = embedded_result->energy;
      return result;
    }
  }
  QOPT_CHECK_MSG(false, "unknown backend");
  return result;
}

}  // namespace

std::string BackendName(Backend backend) {
  switch (backend) {
    case Backend::kExact:
      return "exact";
    case Backend::kSimulatedAnnealing:
      return "sa";
    case Backend::kQaoa:
      return "qaoa";
    case Backend::kVqe:
      return "vqe";
    case Backend::kAdiabatic:
      return "adiabatic";
    case Backend::kAnnealerEmulation:
      return "annealer";
  }
  return "unknown";
}

MqoSolveReport SolveMqo(const MqoProblem& problem,
                        const OptimizerOptions& options) {
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  MqoSolveReport report;
  report.qubits = encoding.qubo.NumVariables();
  report.quadratic_terms = encoding.qubo.NumQuadraticTerms();
  BackendResult backend = SolveQuboWithBackend(encoding.qubo, options);
  report.qubo_energy = backend.energy;
  std::vector<int> selection;
  report.valid = problem.DecodeBits(backend.bits, &selection);
  if (report.valid) {
    report.solution.cost = problem.SelectionCost(selection);
    report.solution.selection = std::move(selection);
  }
  return report;
}

JoinOrderSolveReport SolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options) {
  const JoinOrderEncoding encoding =
      EncodeJoinOrderAsBilp(graph, encoder_options);
  const BilpQuboEncoding qubo_encoding = EncodeBilpAsQubo(encoding.bilp);
  JoinOrderSolveReport report;
  report.qubits = qubo_encoding.qubo.NumVariables();
  report.quadratic_terms = qubo_encoding.qubo.NumQuadraticTerms();
  BackendResult backend = SolveQuboWithBackend(qubo_encoding.qubo, options);
  report.qubo_energy = backend.energy;
  std::vector<int> order;
  report.valid = DecodeJoinOrder(encoding, backend.bits, &order);
  if (report.valid) {
    report.solution.cost = CoutCost(graph, order);
    report.solution.order = std::move(order);
  }
  return report;
}

}  // namespace qopt
