#pragma once

#include "circuit/quantum_circuit.h"
#include "core/device_model.h"

namespace qopt {

/// Error budget of running one circuit on a calibrated device, combining
/// the three noise sources the paper discusses in Sec. 3.6.1: gate errors,
/// decoherence over the execution time (Eq. 36), and readout errors.
struct ReliabilityEstimate {
  double gate_error = 0.0;         ///< 1 - prod(1 - e_gate) over all gates.
  double decoherence_error = 0.0;  ///< Eq. 36 at the circuit's depth.
  double readout_error = 0.0;      ///< 1 - (1 - e_ro)^num_qubits.
  /// Probability that no error of any kind occurs (independent model).
  double success_probability = 0.0;
  bool within_coherence = false;   ///< depth <= MaxReliableDepth().
  int depth = 0;
};

/// Estimates the reliability of executing `circuit` on `device`. The
/// circuit should already be transpiled (physical qubits, basis gates) for
/// the estimate to be meaningful.
ReliabilityEstimate EstimateCircuitReliability(const DeviceModel& device,
                                               const QuantumCircuit& circuit);

}  // namespace qopt
