#include "core/resource_estimator.h"

#include "common/check.h"
#include "qubo/conversions.h"
#include "transpile/basis_decomposer.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace qopt {

GateResourceEstimate EstimateGateResources(const QuboModel& qubo,
                                           const CouplingMap& coupling,
                                           const DeviceModel& device,
                                           const GateEstimateOptions& options) {
  QOPT_CHECK(qubo.NumVariables() >= 1);
  GateResourceEstimate estimate;
  estimate.logical_qubits = qubo.NumVariables();
  estimate.quadratic_terms = qubo.NumQuadraticTerms();
  estimate.max_reliable_depth = device.MaxReliableDepth();

  const IsingModel ising = QuboToIsing(qubo);
  const QuantumCircuit qaoa = BuildQaoaTemplate(ising, options.qaoa_reps);
  const QuantumCircuit vqe =
      BuildVqeTemplate(qubo.NumVariables(), options.vqe_reps);

  // Ideal topology: basis decomposition only, no routing.
  estimate.qaoa_depth_ideal = MergeAdjacentRz(DecomposeToBasis(qaoa)).Depth();
  estimate.vqe_depth_ideal = MergeAdjacentRz(DecomposeToBasis(vqe)).Depth();

  if (qubo.NumVariables() <= coupling.NumQubits()) {
    estimate.qaoa_depth_device =
        TranspiledDepthStats(qaoa, coupling, options.transpile_trials,
                             options.seed)
            .mean;
    estimate.vqe_depth_device =
        TranspiledDepthStats(vqe, coupling, options.transpile_trials,
                             options.seed)
            .mean;
    estimate.qaoa_within_coherence =
        estimate.qaoa_depth_device <= estimate.max_reliable_depth;
    estimate.vqe_within_coherence =
        estimate.vqe_depth_device <= estimate.max_reliable_depth;
  }
  return estimate;
}

}  // namespace qopt
