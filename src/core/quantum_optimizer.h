#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/retry.h"
#include "common/status.h"
#include "anneal/embedding_composite.h"
#include "anneal/simulated_annealer.h"
#include "joinorder/join_order.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_problem.h"
#include "variational/adiabatic.h"
#include "variational/variational_solver.h"

namespace qopt {

/// Solver backends of the unified optimizer facade. All quantum backends
/// run on classical simulation substrates (statevector / simulated
/// annealing), mirroring the paper's all-simulation methodology.
enum class Backend {
  kExact,               ///< Brute-force QUBO ground state (oracle).
  kSimulatedAnnealing,  ///< Classical SA on the QUBO (neal equivalent).
  kQaoa,                ///< Hybrid QAOA on the statevector simulator.
  kVqe,                 ///< Hybrid VQE on the statevector simulator.
  kAdiabatic,           ///< Trotterized adiabatic evolution (Sec. 3.5).
  kAnnealerEmulation,   ///< Minor-embed into a Pegasus fabric, then SA.
};

/// Readable backend name ("exact", "sa", "qaoa", "vqe", "adiabatic",
/// "annealer").
std::string BackendName(Backend backend);

/// How the facade schedules backends for one solve.
enum class DispatchMode {
  /// PR 2/3 semantics: run the requested backend (with retries), then
  /// degrade to a classical fallback when it fails recoverably.
  kSerial,
  /// Portfolio racing: launch the requested backend plus cheap classical
  /// and quantum lanes concurrently on the default ThreadPool, stream
  /// incumbents through a shared best-so-far cell and return the winner.
  /// Winner selection is deterministic (energy, then a fixed backend
  /// priority order, then a seeded tie-break key) regardless of thread
  /// count or lane timing.
  kRace,
};

/// Readable dispatch-mode name ("serial", "race").
std::string DispatchModeName(DispatchMode mode);

/// Parses "serial" / "race"; anything else is kInvalidArgument.
StatusOr<DispatchMode> ParseDispatchMode(const std::string& text);

/// Wall-clock / retry budget for one facade solve.
struct SolveBudget {
  /// Overall deadline (with optional CancelToken) for the solve,
  /// including retries, backoff waits and any classical fallback. A
  /// quantum backend stage is clamped to 80% of the remaining budget so
  /// that a cheap classical fallback still fits when the stage times out.
  Deadline deadline;
  /// Attempt budget and deterministic seeded backoff. retry.max_attempts
  /// is the total number of backend attempts (1 = no retries); every
  /// retry re-seeds the backend (deterministically, from the attempt
  /// index) before running, so e.g. embedding retries explore fresh
  /// vertex orders. Only kUnavailable failures are retried.
  RetryPolicy retry;
};

/// Per-lane attribution for a raced solve (DispatchMode::kRace). One
/// entry per launched lane, always ordered by backend priority rank so
/// the vector is deterministic even though lane *timings* are not.
struct RaceLaneStats {
  Backend backend = Backend::kSimulatedAnnealing;
  /// "ok", "cancelled", "deadline", or an error code name ("unavailable",
  /// "internal", ...) when the lane failed.
  std::string outcome;
  double elapsed_ms = 0.0;    ///< Wall-clock of this lane (not stable).
  /// Best energy this lane reported to the incumbent cell; meaningful
  /// only when incumbent == true.
  double incumbent_energy = 0.0;
  bool incumbent = false;     ///< Lane published at least one incumbent.
  bool won = false;           ///< Lane produced the returned result.
};

/// Per-solve accounting, filled on every successful report.
struct SolveStats {
  /// Backend attempts consumed (>= 1). Counts every real backend run:
  /// retried attempts, the salvage SA read after a quantum-stage timeout
  /// and the classical fallback solve all increment this.
  int attempts = 1;
  double elapsed_ms = 0.0;  ///< Wall-clock of the dispatch (all attempts).
  /// The solve's own deadline expired along the way and the returned
  /// result is budget-truncated (e.g. the salvage read itself ran out of
  /// time). A quantum-stage timeout whose salvage completed comfortably
  /// inside the reserved slack is reported as degraded, NOT timed_out.
  /// Invariant: timed_out implies either degraded == true on the report
  /// or a kDeadlineExceeded error instead of a report.
  bool timed_out = false;
  /// Reserved: a cancelled solve never produces a report (kCancelled is
  /// returned instead), so this stays false on success paths.
  bool cancelled = false;
  /// Raced dispatch only: one entry per launched lane, in backend
  /// priority order. Empty for serial dispatch.
  std::vector<RaceLaneStats> lanes;
  /// Decomposed dispatch only (OptimizerOptions::decompose > 0 on a
  /// problem larger than one block): rounds completed, subproblem solves
  /// dispatched, and the incumbent energy after each round. All three are
  /// deterministic (no wall-clock content) whenever the deadline did not
  /// truncate the solve. Zero / empty otherwise.
  int decompose_rounds = 0;
  int decompose_subproblems = 0;
  std::vector<double> decompose_round_energies;
};

/// Options shared by the facade entry points.
struct OptimizerOptions {
  Backend backend = Backend::kSimulatedAnnealing;
  /// Serial quantum-then-fallback dispatch (default) or portfolio racing
  /// across backends (see DispatchMode). Race mode keeps the *report*
  /// byte-identical across thread counts; per-lane timing lives in
  /// SolveStats::lanes and is not stable.
  DispatchMode dispatch = DispatchMode::kSerial;
  /// Deadline / retry / backoff budget for the whole solve.
  SolveBudget budget;
  VariationalOptions variational;      ///< For kQaoa / kVqe.
  AdiabaticOptions adiabatic;          ///< For kAdiabatic.
  AnnealOptions anneal;                ///< For kSimulatedAnnealing.
  EmbeddedSolveOptions embedded;       ///< For kAnnealerEmulation.
  /// Pegasus size for kAnnealerEmulation (P16 = Advantage; smaller
  /// fabrics keep demos fast).
  int pegasus_m = 4;
  std::uint64_t seed = 0;
  /// Hybrid decomposition (qbsolv-style, see DESIGN.md "Decomposition"):
  /// when > 0 and the encoded QUBO has more variables than this, the
  /// facade partitions it into blocks of at most `decompose` variables,
  /// solves each block through the serial backend pipeline (the requested
  /// backend where the block fits its qubit budget, SA otherwise) and
  /// stitches with a tabu refinement loop. 0 disables decomposition; a
  /// problem that already fits in one block dispatches normally. Values
  /// below 2 (other than 0) are kInvalidArgument. Per-block seeds derive
  /// from `seed` via the AttemptSeed sequence, so decomposed solves stay
  /// byte-identical across QQO_THREADS (absent deadline truncation).
  int decompose = 0;
  /// Graceful degradation: when a *quantum* backend fails recoverably
  /// (no minor embedding, circuit exceeds the simulable qubit budget,
  /// ...), retry with a classical backend (exact for small problems,
  /// simulated annealing otherwise) and mark the report as degraded
  /// instead of failing the whole solve.
  bool classical_fallback = true;
};

/// Outcome of solving an MQO problem through the QUBO pipeline.
struct MqoSolveReport {
  bool valid = false;       ///< Solution decodes to one plan per query.
  MqoSolution solution;     ///< Meaningful only when valid.
  double qubo_energy = 0.0; ///< Energy of the returned bit string.
  int qubits = 0;
  int quadratic_terms = 0;
  /// Backend that actually produced the bits (differs from
  /// options.backend after a degraded fallback).
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;  ///< Quantum backend failed; classical stood in.
  std::string degradation_reason;  ///< Why, when degraded.
  SolveStats stats;       ///< Attempt / timing accounting.
  /// Raw QUBO assignment the report was decoded from (one byte per
  /// variable). The serving layer's canonical-form solution cache stores
  /// this so isomorphic repeat requests can transport the solution.
  std::vector<std::uint8_t> bits;
};

/// Encodes `problem` as a QUBO (Sec. 5.1), solves it with the selected
/// backend and decodes the plan selection. Recoverable failures (invalid
/// problem/options, backend budget exceeded with fallback disabled) come
/// back as a Status instead of aborting.
StatusOr<MqoSolveReport> TrySolveMqo(const MqoProblem& problem,
                                     const OptimizerOptions& options = {});

/// Abort-on-error flavour for internal callers with trusted input.
MqoSolveReport SolveMqo(const MqoProblem& problem,
                        const OptimizerOptions& options = {});

/// Outcome of solving a join ordering problem through the two-step
/// BILP -> QUBO pipeline.
struct JoinOrderSolveReport {
  bool valid = false;          ///< Bits decode to a permutation.
  JoinOrderSolution solution;  ///< Meaningful only when valid.
  double qubo_energy = 0.0;
  int qubits = 0;
  int quadratic_terms = 0;
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;
  std::string degradation_reason;
  SolveStats stats;  ///< Attempt / timing accounting.
  /// Raw QUBO assignment the report was decoded from (see MqoSolveReport).
  std::vector<std::uint8_t> bits;
};

/// Encodes `graph` as BILP (Sec. 6.1.2/6.1.3), then QUBO (Sec. 6.1.4),
/// solves with the selected backend and decodes the join order. Same
/// error/degradation contract as TrySolveMqo.
StatusOr<JoinOrderSolveReport> TrySolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options = {});

/// Abort-on-error flavour for internal callers with trusted input.
JoinOrderSolveReport SolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options = {});

}  // namespace qopt
