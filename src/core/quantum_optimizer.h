#pragma once

#include <cstdint>
#include <string>

#include "common/deadline.h"
#include "common/retry.h"
#include "common/status.h"
#include "anneal/embedding_composite.h"
#include "anneal/simulated_annealer.h"
#include "joinorder/join_order.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_problem.h"
#include "variational/adiabatic.h"
#include "variational/variational_solver.h"

namespace qopt {

/// Solver backends of the unified optimizer facade. All quantum backends
/// run on classical simulation substrates (statevector / simulated
/// annealing), mirroring the paper's all-simulation methodology.
enum class Backend {
  kExact,               ///< Brute-force QUBO ground state (oracle).
  kSimulatedAnnealing,  ///< Classical SA on the QUBO (neal equivalent).
  kQaoa,                ///< Hybrid QAOA on the statevector simulator.
  kVqe,                 ///< Hybrid VQE on the statevector simulator.
  kAdiabatic,           ///< Trotterized adiabatic evolution (Sec. 3.5).
  kAnnealerEmulation,   ///< Minor-embed into a Pegasus fabric, then SA.
};

/// Readable backend name ("exact", "sa", "qaoa", "vqe", "adiabatic",
/// "annealer").
std::string BackendName(Backend backend);

/// Wall-clock / retry budget for one facade solve.
struct SolveBudget {
  /// Overall deadline (with optional CancelToken) for the solve,
  /// including retries, backoff waits and any classical fallback. A
  /// quantum backend stage is clamped to 80% of the remaining budget so
  /// that a cheap classical fallback still fits when the stage times out.
  Deadline deadline;
  /// Attempt budget and deterministic seeded backoff. retry.max_attempts
  /// is the total number of backend attempts (1 = no retries); every
  /// retry re-seeds the backend (deterministically, from the attempt
  /// index) before running, so e.g. embedding retries explore fresh
  /// vertex orders. Only kUnavailable failures are retried.
  RetryPolicy retry;
};

/// Per-solve accounting, filled on every successful report.
struct SolveStats {
  int attempts = 1;         ///< Backend attempts consumed (>= 1).
  double elapsed_ms = 0.0;  ///< Wall-clock of the dispatch (all attempts).
  /// The deadline expired somewhere along the way but a valid (degraded)
  /// result was still produced. Invariant: timed_out implies either
  /// degraded == true on the report or a kDeadlineExceeded error instead
  /// of a report.
  bool timed_out = false;
  /// Reserved: a cancelled solve never produces a report (kCancelled is
  /// returned instead), so this stays false on success paths.
  bool cancelled = false;
};

/// Options shared by the facade entry points.
struct OptimizerOptions {
  Backend backend = Backend::kSimulatedAnnealing;
  /// Deadline / retry / backoff budget for the whole solve.
  SolveBudget budget;
  VariationalOptions variational;      ///< For kQaoa / kVqe.
  AdiabaticOptions adiabatic;          ///< For kAdiabatic.
  AnnealOptions anneal;                ///< For kSimulatedAnnealing.
  EmbeddedSolveOptions embedded;       ///< For kAnnealerEmulation.
  /// Pegasus size for kAnnealerEmulation (P16 = Advantage; smaller
  /// fabrics keep demos fast).
  int pegasus_m = 4;
  std::uint64_t seed = 0;
  /// Graceful degradation: when a *quantum* backend fails recoverably
  /// (no minor embedding, circuit exceeds the simulable qubit budget,
  /// ...), retry with a classical backend (exact for small problems,
  /// simulated annealing otherwise) and mark the report as degraded
  /// instead of failing the whole solve.
  bool classical_fallback = true;
};

/// Outcome of solving an MQO problem through the QUBO pipeline.
struct MqoSolveReport {
  bool valid = false;       ///< Solution decodes to one plan per query.
  MqoSolution solution;     ///< Meaningful only when valid.
  double qubo_energy = 0.0; ///< Energy of the returned bit string.
  int qubits = 0;
  int quadratic_terms = 0;
  /// Backend that actually produced the bits (differs from
  /// options.backend after a degraded fallback).
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;  ///< Quantum backend failed; classical stood in.
  std::string degradation_reason;  ///< Why, when degraded.
  SolveStats stats;       ///< Attempt / timing accounting.
};

/// Encodes `problem` as a QUBO (Sec. 5.1), solves it with the selected
/// backend and decodes the plan selection. Recoverable failures (invalid
/// problem/options, backend budget exceeded with fallback disabled) come
/// back as a Status instead of aborting.
StatusOr<MqoSolveReport> TrySolveMqo(const MqoProblem& problem,
                                     const OptimizerOptions& options = {});

/// Abort-on-error flavour for internal callers with trusted input.
MqoSolveReport SolveMqo(const MqoProblem& problem,
                        const OptimizerOptions& options = {});

/// Outcome of solving a join ordering problem through the two-step
/// BILP -> QUBO pipeline.
struct JoinOrderSolveReport {
  bool valid = false;          ///< Bits decode to a permutation.
  JoinOrderSolution solution;  ///< Meaningful only when valid.
  double qubo_energy = 0.0;
  int qubits = 0;
  int quadratic_terms = 0;
  Backend backend_used = Backend::kSimulatedAnnealing;
  bool degraded = false;
  std::string degradation_reason;
  SolveStats stats;  ///< Attempt / timing accounting.
};

/// Encodes `graph` as BILP (Sec. 6.1.2/6.1.3), then QUBO (Sec. 6.1.4),
/// solves with the selected backend and decodes the join order. Same
/// error/degradation contract as TrySolveMqo.
StatusOr<JoinOrderSolveReport> TrySolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options = {});

/// Abort-on-error flavour for internal callers with trusted input.
JoinOrderSolveReport SolveJoinOrder(
    const QueryGraph& graph, const JoinOrderEncoderOptions& encoder_options,
    const OptimizerOptions& options = {});

}  // namespace qopt
