#include "core/device_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qopt {

int DeviceModel::MaxReliableDepth() const {
  QOPT_CHECK(avg_gate_time_ns > 0.0);
  const double coherence_ns = std::min(t1_us, t2_us) * 1000.0;
  return static_cast<int>(std::floor(coherence_ns / avg_gate_time_ns));
}

double DeviceModel::DecoherenceErrorProbability(int depth) const {
  QOPT_CHECK(depth >= 0);
  const double coherence_ns = std::min(t1_us, t2_us) * 1000.0;
  const double execution_ns = static_cast<double>(depth) * avg_gate_time_ns;
  return 1.0 - std::exp(-execution_ns / coherence_ns);
}

DeviceModel MumbaiDevice() {
  // Coherence/gate-time constants from Sec. 5.3.2; error rates are
  // representative 2021 Falcon calibration values.
  return {"ibmq_mumbai", 27, 117.22, 118.47, 471.111,
          /*cx_error=*/8.7e-3, /*sx_error=*/2.1e-4, /*readout_error=*/1.8e-2};
}

DeviceModel BrooklynDevice() {
  // Coherence/gate-time constants from Sec. 6.3.4; error rates are
  // representative 2021 Hummingbird calibration values.
  return {"ibmq_brooklyn", 65, 66.02, 79.44, 370.469,
          /*cx_error=*/1.3e-2, /*sx_error=*/3.1e-4, /*readout_error=*/2.5e-2};
}

AnnealerModel AdvantageAnnealer() {
  return {"dwave_advantage", /*pegasus_m=*/16, /*chimera_m=*/0,
          /*num_qubits=*/5640};
}

AnnealerModel DWave2xAnnealer() {
  return {"dwave_2x", /*pegasus_m=*/0, /*chimera_m=*/12,
          /*num_qubits=*/1152};
}

}  // namespace qopt
