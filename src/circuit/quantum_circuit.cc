#include "circuit/quantum_circuit.h"

#include <algorithm>

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

QuantumCircuit::QuantumCircuit(int num_qubits) : num_qubits_(num_qubits) {
  QOPT_CHECK(num_qubits >= 0);
}

void QuantumCircuit::Append(const Gate& gate) {
  QOPT_CHECK(gate.qubit0 >= 0 && gate.qubit0 < num_qubits_);
  if (IsTwoQubitKind(gate.kind)) {
    QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
    QOPT_CHECK_MSG(gate.qubit0 != gate.qubit1,
                   "two-qubit gate on identical qubits");
  } else {
    QOPT_CHECK(gate.qubit1 == -1);
  }
  gates_.push_back(gate);
}

void QuantumCircuit::H(int q) { Append({GateKind::kH, q, -1, 0.0}); }
void QuantumCircuit::X(int q) { Append({GateKind::kX, q, -1, 0.0}); }
void QuantumCircuit::Y(int q) { Append({GateKind::kY, q, -1, 0.0}); }
void QuantumCircuit::Z(int q) { Append({GateKind::kZ, q, -1, 0.0}); }
void QuantumCircuit::Sx(int q) { Append({GateKind::kSx, q, -1, 0.0}); }
void QuantumCircuit::Rx(int q, double theta) {
  Append({GateKind::kRx, q, -1, theta});
}
void QuantumCircuit::Ry(int q, double theta) {
  Append({GateKind::kRy, q, -1, theta});
}
void QuantumCircuit::Rz(int q, double theta) {
  Append({GateKind::kRz, q, -1, theta});
}
void QuantumCircuit::Cx(int control, int target) {
  Append({GateKind::kCx, control, target, 0.0});
}
void QuantumCircuit::Cz(int a, int b) { Append({GateKind::kCz, a, b, 0.0}); }
void QuantumCircuit::Rzz(int a, int b, double theta) {
  Append({GateKind::kRzz, a, b, theta});
}
void QuantumCircuit::Swap(int a, int b) {
  Append({GateKind::kSwap, a, b, 0.0});
}

void QuantumCircuit::Extend(const QuantumCircuit& other) {
  QOPT_CHECK(other.NumQubits() <= NumQubits());
  for (const Gate& g : other.gates_) Append(g);
}

int QuantumCircuit::Depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int depth = 0;
  for (const Gate& g : gates_) {
    int layer = level[static_cast<std::size_t>(g.qubit0)];
    if (g.NumQubits() == 2) {
      layer = std::max(layer, level[static_cast<std::size_t>(g.qubit1)]);
    }
    ++layer;
    level[static_cast<std::size_t>(g.qubit0)] = layer;
    if (g.NumQubits() == 2) {
      level[static_cast<std::size_t>(g.qubit1)] = layer;
    }
    depth = std::max(depth, layer);
  }
  return depth;
}

int QuantumCircuit::TwoQubitGateCount() const {
  int count = 0;
  for (const Gate& g : gates_) {
    if (g.NumQubits() == 2) ++count;
  }
  return count;
}

std::map<std::string, int> QuantumCircuit::CountOps() const {
  std::map<std::string, int> counts;
  for (const Gate& g : gates_) ++counts[GateKindName(g.kind)];
  return counts;
}

int QuantumCircuit::NumParameters() const {
  int count = 0;
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::kRx:
      case GateKind::kRy:
      case GateKind::kRz:
      case GateKind::kRzz:
        ++count;
        break;
      default:
        break;
    }
  }
  return count;
}

QuantumCircuit QuantumCircuit::Bind(const std::vector<double>& params) const {
  QOPT_CHECK(static_cast<int>(params.size()) == NumParameters());
  QuantumCircuit bound(num_qubits_);
  std::size_t next = 0;
  for (Gate g : gates_) {
    switch (g.kind) {
      case GateKind::kRx:
      case GateKind::kRy:
      case GateKind::kRz:
      case GateKind::kRzz:
        g.param = params[next++];
        break;
      default:
        break;
    }
    bound.Append(g);
  }
  return bound;
}

std::string QuantumCircuit::ToString() const {
  std::string out = StrFormat("circuit(%d qubits, %d gates, depth %d)\n",
                              num_qubits_, NumGates(), Depth());
  for (const Gate& g : gates_) {
    if (g.NumQubits() == 1) {
      out += StrFormat("  %-4s q%d", GateKindName(g.kind).c_str(), g.qubit0);
    } else {
      out += StrFormat("  %-4s q%d,q%d", GateKindName(g.kind).c_str(),
                       g.qubit0, g.qubit1);
    }
    switch (g.kind) {
      case GateKind::kRx:
      case GateKind::kRy:
      case GateKind::kRz:
      case GateKind::kRzz:
        out += StrFormat("  (%.6f)", g.param);
        break;
      default:
        break;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace qopt
