#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace qopt {

/// An ordered list of gates over `num_qubits` qubits. Qubits are indices
/// 0..num_qubits-1; for transpiled circuits they denote *physical* device
/// qubits.
class QuantumCircuit {
 public:
  QuantumCircuit() = default;
  explicit QuantumCircuit(int num_qubits);

  int NumQubits() const { return num_qubits_; }
  int NumGates() const { return static_cast<int>(gates_.size()); }
  const std::vector<Gate>& Gates() const { return gates_; }

  // -- Gate emitters ------------------------------------------------------
  void H(int q);
  void X(int q);
  void Y(int q);
  void Z(int q);
  void Sx(int q);
  void Rx(int q, double theta);
  void Ry(int q, double theta);
  void Rz(int q, double theta);
  void Cx(int control, int target);
  void Cz(int a, int b);
  void Rzz(int a, int b, double theta);
  void Swap(int a, int b);

  /// Appends an arbitrary gate (validated).
  void Append(const Gate& gate);

  /// Appends every gate of `other` (must have <= NumQubits() qubits).
  void Extend(const QuantumCircuit& other);

  /// Circuit depth: length of the longest chain of gates that act on
  /// overlapping qubits — i.e. the number of parallel execution layers,
  /// the metric the paper reports for every gate-based experiment.
  int Depth() const;

  /// Number of two-qubit gates.
  int TwoQubitGateCount() const;

  /// Gate counts by mnemonic (like Qiskit's count_ops).
  std::map<std::string, int> CountOps() const;

  /// Total number of rotation parameters (Rx/Ry/Rz/Rzz gates).
  int NumParameters() const;

  /// Returns a copy with every rotation angle replaced from `params` in
  /// emission order. `params.size()` must equal NumParameters().
  QuantumCircuit Bind(const std::vector<double>& params) const;

  /// Multi-line text rendering for debugging ("h q0 / cx q0,q1 / ...").
  std::string ToString() const;

 private:
  int num_qubits_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qopt
