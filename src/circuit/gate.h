#pragma once

#include <string>

namespace qopt {

/// Gate kinds supported by the circuit IR. The set covers everything the
/// QAOA / VQE ansatz builders emit plus the device basis gates the
/// transpiler targets ({RZ, SX, X, CX} is the IBM-Q Falcon basis; we keep
/// the richer set and decompose on demand).
enum class GateKind {
  kH,     ///< Hadamard.
  kX,     ///< Pauli X.
  kY,     ///< Pauli Y.
  kZ,     ///< Pauli Z.
  kSx,    ///< sqrt(X).
  kRx,    ///< Rotation around X by `param`.
  kRy,    ///< Rotation around Y by `param`.
  kRz,    ///< Rotation around Z by `param`.
  kCx,    ///< Controlled-NOT; qubit0 = control, qubit1 = target.
  kCz,    ///< Controlled-Z (symmetric).
  kRzz,   ///< exp(-i * param/2 * Z (x) Z) two-qubit interaction (symmetric).
  kSwap,  ///< SWAP (symmetric).
};

/// One gate instance: kind, acted-on qubits, and rotation angle where
/// applicable.
struct Gate {
  GateKind kind;
  int qubit0 = -1;
  int qubit1 = -1;      ///< -1 for single-qubit gates.
  double param = 0.0;   ///< Rotation angle; unused for non-rotation gates.

  /// Number of qubits the gate acts on (1 or 2).
  int NumQubits() const { return qubit1 < 0 ? 1 : 2; }
};

/// True for two-qubit gate kinds.
bool IsTwoQubitKind(GateKind kind);

/// True if the gate's action is symmetric in its two qubits (CZ, RZZ, SWAP).
bool IsSymmetricKind(GateKind kind);

/// Short lowercase mnemonic ("h", "cx", "rzz", ...).
std::string GateKindName(GateKind kind);

}  // namespace qopt
