#include "circuit/gate.h"

#include "common/check.h"

namespace qopt {

bool IsTwoQubitKind(GateKind kind) {
  switch (kind) {
    case GateKind::kCx:
    case GateKind::kCz:
    case GateKind::kRzz:
    case GateKind::kSwap:
      return true;
    default:
      return false;
  }
}

bool IsSymmetricKind(GateKind kind) {
  switch (kind) {
    case GateKind::kCz:
    case GateKind::kRzz:
    case GateKind::kSwap:
      return true;
    default:
      return false;
  }
}

std::string GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kH:
      return "h";
    case GateKind::kX:
      return "x";
    case GateKind::kY:
      return "y";
    case GateKind::kZ:
      return "z";
    case GateKind::kSx:
      return "sx";
    case GateKind::kRx:
      return "rx";
    case GateKind::kRy:
      return "ry";
    case GateKind::kRz:
      return "rz";
    case GateKind::kCx:
      return "cx";
    case GateKind::kCz:
      return "cz";
    case GateKind::kRzz:
      return "rzz";
    case GateKind::kSwap:
      return "swap";
  }
  QOPT_CHECK_MSG(false, "unknown gate kind");
  return "";
}

}  // namespace qopt
