#include "circuit/statevector.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <numbers>

#include "common/check.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

#if QQO_SIMD_X86
#include <immintrin.h>
#endif
#if QQO_SIMD_NEON
#include <arm_neon.h>
#endif

namespace qopt {

namespace {
using Complex = std::complex<double>;
constexpr Complex kI{0.0, 1.0};

/// States below this width are too small for threading to pay off; every
/// elementwise pass on them stays on the calling thread.
constexpr int kParallelMinQubits = 14;
/// Elementwise passes are split into blocks of this many iterations. The
/// block size is independent of the pool size, so any blockwise arithmetic
/// is reproducible across QQO_THREADS settings.
constexpr std::size_t kParallelBlock = std::size_t{1} << 12;

/// Spreads the bits of `k` apart so that bit position q (with
/// stride = 1 << q) becomes zero: the standard index expansion that
/// enumerates exactly the basis states with a fixed 0 at one qubit.
inline std::size_t InsertZeroBit(std::size_t k, std::size_t stride) {
  return ((k & ~(stride - 1)) << 1) | (k & (stride - 1));
}

/// Scalar reference kernel for one block of single-qubit-gate pairs. Every
/// vector kernel below performs exactly these primitive FP operations in
/// exactly this order per pair, so the paths are byte-identical.
void ApplySingleQubitScalar(Complex* amp, std::size_t begin, std::size_t end,
                            std::size_t stride, Complex m00, Complex m01,
                            Complex m10, Complex m11) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i0 = InsertZeroBit(k, stride);
    const std::size_t i1 = i0 + stride;
    const Complex a0 = amp[i0];
    const Complex a1 = amp[i1];
    amp[i0] = m00 * a0 + m01 * a1;
    amp[i1] = m10 * a0 + m11 * a1;
  }
}

#if QQO_SIMD_X86

/// Multiplies each 128-bit complex<double> lane of `v` by the matching
/// lane of `c`. addsub keeps the scalar operation order: the real lane is
/// c.re*v.re - c.im*v.im (two multiplies, one subtraction), the imaginary
/// lane c.re*v.im + c.im*v.re (two multiplies, one addition) — the exact
/// formula libstdc++ uses for finite complex products. No FMA contraction
/// (the target attribute enables avx2 only), so rounding matches the
/// scalar path bit for bit.
QQO_SIMD_TARGET_AVX2 inline __m256d CMulAvx2(__m256d c, __m256d v) {
  const __m256d c_re = _mm256_movedup_pd(c);       // [c.re, c.re | ...]
  const __m256d c_im = _mm256_permute_pd(c, 0xF);  // [c.im, c.im | ...]
  const __m256d v_sw = _mm256_permute_pd(v, 0x5);  // [v.im, v.re | ...]
  return _mm256_addsub_pd(_mm256_mul_pd(c_re, v), _mm256_mul_pd(c_im, v_sw));
}

QQO_SIMD_TARGET_AVX2 inline __m256d BroadcastComplexAvx2(Complex c) {
  return _mm256_setr_pd(c.real(), c.imag(), c.real(), c.imag());
}

/// AVX2 single-qubit kernel over pair indices [begin, end). For stride >=
/// 2 both pair halves are contiguous runs (runs are stride-aligned, stride
/// and begin are even), so two adjacent pairs load as one 256-bit vector
/// per half. For stride == 1 each pair is two adjacent amplitudes in one
/// vector, transformed in-register with per-lane matrix columns.
QQO_SIMD_TARGET_AVX2 void ApplySingleQubitAvx2(Complex* amp,
                                               std::size_t begin,
                                               std::size_t end,
                                               std::size_t stride, Complex m00,
                                               Complex m01, Complex m10,
                                               Complex m11) {
  std::size_t k = begin;
  if (stride >= 2) {
    const __m256d vm00 = BroadcastComplexAvx2(m00);
    const __m256d vm01 = BroadcastComplexAvx2(m01);
    const __m256d vm10 = BroadcastComplexAvx2(m10);
    const __m256d vm11 = BroadcastComplexAvx2(m11);
    for (; k + 2 <= end; k += 2) {
      const std::size_t i0 = InsertZeroBit(k, stride);
      double* p0 = reinterpret_cast<double*>(amp + i0);
      double* p1 = reinterpret_cast<double*>(amp + i0 + stride);
      const __m256d a0 = _mm256_loadu_pd(p0);  // pairs k, k+1: |q>=0 half
      const __m256d a1 = _mm256_loadu_pd(p1);  // pairs k, k+1: |q>=1 half
      _mm256_storeu_pd(p0, _mm256_add_pd(CMulAvx2(vm00, a0),
                                         CMulAvx2(vm01, a1)));
      _mm256_storeu_pd(p1, _mm256_add_pd(CMulAvx2(vm10, a0),
                                         CMulAvx2(vm11, a1)));
    }
  } else {
    // Lane 0 of the column vectors transforms into the new a0, lane 1
    // into the new a1: [m00|m10] * [a0|a0] + [m01|m11] * [a1|a1].
    const __m256d vlo = _mm256_setr_pd(m00.real(), m00.imag(), m10.real(),
                                       m10.imag());
    const __m256d vhi = _mm256_setr_pd(m01.real(), m01.imag(), m11.real(),
                                       m11.imag());
    for (; k < end; ++k) {
      double* p = reinterpret_cast<double*>(amp + 2 * k);
      const __m256d v = _mm256_loadu_pd(p);                   // [a0 | a1]
      const __m256d va = _mm256_permute2f128_pd(v, v, 0x00);  // [a0 | a0]
      const __m256d vb = _mm256_permute2f128_pd(v, v, 0x11);  // [a1 | a1]
      _mm256_storeu_pd(p, _mm256_add_pd(CMulAvx2(vlo, va), CMulAvx2(vhi, vb)));
    }
  }
  // Odd tail (only possible for degenerate block sizes; blocks and pair
  // counts are even for every real state width).
  ApplySingleQubitScalar(amp, k, end, stride, m00, m01, m10, m11);
}

#endif  // QQO_SIMD_X86

#if QQO_SIMD_NEON

/// One complex<double> per 128-bit vector. The sign-flip multiply makes
/// the real lane t1.re + (-(c.im*v.im)) — IEEE addition of a negation is
/// bit-identical to the scalar subtraction c.re*v.re - c.im*v.im.
inline float64x2_t CMulNeon(float64x2_t c_re, float64x2_t c_im,
                            float64x2_t v) {
  const float64x2_t kSign = {-1.0, 1.0};
  const float64x2_t v_sw = vextq_f64(v, v, 1);  // [v.im, v.re]
  const float64x2_t t1 = vmulq_f64(c_re, v);
  const float64x2_t t2 = vmulq_f64(vmulq_f64(c_im, v_sw), kSign);
  return vaddq_f64(t1, t2);
}

void ApplySingleQubitNeon(Complex* amp, std::size_t begin, std::size_t end,
                          std::size_t stride, Complex m00, Complex m01,
                          Complex m10, Complex m11) {
  const float64x2_t m00r = vdupq_n_f64(m00.real());
  const float64x2_t m00i = vdupq_n_f64(m00.imag());
  const float64x2_t m01r = vdupq_n_f64(m01.real());
  const float64x2_t m01i = vdupq_n_f64(m01.imag());
  const float64x2_t m10r = vdupq_n_f64(m10.real());
  const float64x2_t m10i = vdupq_n_f64(m10.imag());
  const float64x2_t m11r = vdupq_n_f64(m11.real());
  const float64x2_t m11i = vdupq_n_f64(m11.imag());
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i0 = InsertZeroBit(k, stride);
    const std::size_t i1 = i0 + stride;
    double* p0 = reinterpret_cast<double*>(amp + i0);
    double* p1 = reinterpret_cast<double*>(amp + i1);
    const float64x2_t a0 = vld1q_f64(p0);
    const float64x2_t a1 = vld1q_f64(p1);
    vst1q_f64(p0, vaddq_f64(CMulNeon(m00r, m00i, a0), CMulNeon(m01r, m01i, a1)));
    vst1q_f64(p1, vaddq_f64(CMulNeon(m10r, m10i, a0), CMulNeon(m11r, m11i, a1)));
  }
}

#endif  // QQO_SIMD_NEON

/// Runs fn over [0, n) in fixed-size blocks, on the default pool when the
/// pass is large enough. fn must only touch slots derived from its own
/// indices (all callers below write disjoint amplitudes).
template <typename Fn>
void ForEachBlock(std::size_t n, int num_qubits, const Fn& fn) {
  if (num_qubits >= kParallelMinQubits &&
      ThreadPool::Default().NumThreads() > 1) {
    ThreadPool::Default().ParallelForRange(
        n, kParallelBlock,
        [&fn](std::size_t begin, std::size_t end) { fn(begin, end); });
  } else {
    fn(0, n);
  }
}

}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  QOPT_CHECK(num_qubits >= 0);
  QOPT_CHECK_MSG(num_qubits <= 26, "statevector too large to simulate");
  amplitudes_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amplitudes_[0] = Complex{1.0, 0.0};
}

void Statevector::Reset() {
  std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{0.0, 0.0});
  amplitudes_[0] = Complex{1.0, 0.0};
}

void Statevector::ApplySingleQubit(int q, const Complex m[2][2]) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t pairs = amplitudes_.size() / 2;
  Complex* amp = amplitudes_.data();
  const Complex m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  const SimdLevel level = ActiveSimdLevel();
  (void)level;  // unused when no vector kernel is compiled in
#if QQO_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    ForEachBlock(pairs, num_qubits_, [&](std::size_t begin, std::size_t end) {
      ApplySingleQubitAvx2(amp, begin, end, stride, m00, m01, m10, m11);
    });
    return;
  }
#endif
#if QQO_SIMD_NEON
  if (level == SimdLevel::kNeon) {
    ForEachBlock(pairs, num_qubits_, [&](std::size_t begin, std::size_t end) {
      ApplySingleQubitNeon(amp, begin, end, stride, m00, m01, m10, m11);
    });
    return;
  }
#endif
  ForEachBlock(pairs, num_qubits_, [&](std::size_t begin, std::size_t end) {
    ApplySingleQubitScalar(amp, begin, end, stride, m00, m01, m10, m11);
  });
}

void Statevector::ApplyGate(const Gate& gate) {
  QOPT_CHECK(gate.qubit0 >= 0 && gate.qubit0 < num_qubits_);
  const double half = gate.param / 2.0;
  switch (gate.kind) {
    case GateKind::kH: {
      const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
      const Complex m[2][2] = {{inv_sqrt2, inv_sqrt2},
                               {inv_sqrt2, -inv_sqrt2}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kX: {
      const Complex m[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kY: {
      const Complex m[2][2] = {{0.0, -kI}, {kI, 0.0}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kZ: {
      const Complex m[2][2] = {{1.0, 0.0}, {0.0, -1.0}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kSx: {
      const Complex a = (1.0 + kI) / 2.0;
      const Complex b = (1.0 - kI) / 2.0;
      const Complex m[2][2] = {{a, b}, {b, a}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kRx: {
      const Complex c = std::cos(half);
      const Complex s = -kI * std::sin(half);
      const Complex m[2][2] = {{c, s}, {s, c}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kRy: {
      const double c = std::cos(half);
      const double s = std::sin(half);
      const Complex m[2][2] = {{c, -s}, {s, c}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kRz: {
      const Complex m[2][2] = {{std::exp(-kI * half), 0.0},
                               {0.0, std::exp(kI * half)}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kCx: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      const std::size_t control = std::size_t{1} << gate.qubit0;
      const std::size_t target = std::size_t{1} << gate.qubit1;
      const std::size_t low = std::min(control, target);
      const std::size_t high = std::max(control, target);
      const std::size_t quarter = amplitudes_.size() / 4;
      Complex* amp = amplitudes_.data();
      // Enumerate the quarter of basis states with control = 1, target = 0
      // directly instead of scanning and branching over all 2^n.
      ForEachBlock(quarter, num_qubits_,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t k = begin; k < end; ++k) {
                       const std::size_t base =
                           InsertZeroBit(InsertZeroBit(k, low), high);
                       const std::size_t i0 = base | control;
                       std::swap(amp[i0], amp[i0 | target]);
                     }
                   });
      return;
    }
    case GateKind::kCz: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      const std::size_t b0 = std::size_t{1} << gate.qubit0;
      const std::size_t b1 = std::size_t{1} << gate.qubit1;
      const std::size_t low = std::min(b0, b1);
      const std::size_t high = std::max(b0, b1);
      const std::size_t quarter = amplitudes_.size() / 4;
      Complex* amp = amplitudes_.data();
      ForEachBlock(quarter, num_qubits_,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t k = begin; k < end; ++k) {
                       const std::size_t i =
                           InsertZeroBit(InsertZeroBit(k, low), high) | b0 |
                           b1;
                       amp[i] = -amp[i];
                     }
                   });
      return;
    }
    case GateKind::kRzz: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      // exp(-i theta/2 Z(x)Z): phase e^{-i theta/2} when the two bits are
      // equal (Z(x)Z eigenvalue +1), e^{+i theta/2} otherwise.
      const Complex equal_phase = std::exp(-kI * half);
      const Complex diff_phase = std::exp(kI * half);
      const std::size_t b0 = std::size_t{1} << gate.qubit0;
      const std::size_t b1 = std::size_t{1} << gate.qubit1;
      const std::size_t low = std::min(b0, b1);
      const std::size_t high = std::max(b0, b1);
      const std::size_t quarter = amplitudes_.size() / 4;
      Complex* amp = amplitudes_.data();
      ForEachBlock(quarter, num_qubits_,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t k = begin; k < end; ++k) {
                       const std::size_t base =
                           InsertZeroBit(InsertZeroBit(k, low), high);
                       amp[base] *= equal_phase;
                       amp[base | b0 | b1] *= equal_phase;
                       amp[base | b0] *= diff_phase;
                       amp[base | b1] *= diff_phase;
                     }
                   });
      return;
    }
    case GateKind::kSwap: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      const std::size_t b0 = std::size_t{1} << gate.qubit0;
      const std::size_t b1 = std::size_t{1} << gate.qubit1;
      const std::size_t low = std::min(b0, b1);
      const std::size_t high = std::max(b0, b1);
      const std::size_t quarter = amplitudes_.size() / 4;
      Complex* amp = amplitudes_.data();
      ForEachBlock(quarter, num_qubits_,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t k = begin; k < end; ++k) {
                       const std::size_t base =
                           InsertZeroBit(InsertZeroBit(k, low), high);
                       std::swap(amp[base | b0], amp[base | b1]);
                     }
                   });
      return;
    }
  }
  QOPT_CHECK_MSG(false, "unknown gate kind");
}

bool IsDiagonalGate(GateKind kind) {
  return kind == GateKind::kZ || kind == GateKind::kRz ||
         kind == GateKind::kCz || kind == GateKind::kRzz;
}

void Statevector::ApplyFusedDiagonal(const std::vector<Gate>& gates,
                                     std::size_t begin, std::size_t end) {
  const int n = num_qubits_;
  constexpr double kPi = std::numbers::pi;
  // A run of diagonal gates multiplies each basis state |b> by
  // e^{i angle(b)} with angle(b) = c + sum_i f_i s_i + sum_{i<j} J_ij
  // s_i s_j over spins s = 2b - 1 — an Ising energy function. Accumulate
  // its coefficients, then fill the angle table with the same Gray-code
  // walk IsingEnergyTable uses: O(2^n) total instead of one 2^n pass per
  // gate.
  double constant = 0.0;
  std::vector<double> field(static_cast<std::size_t>(n), 0.0);
  std::map<std::pair<int, int>, double> coupling;  // ordered => reproducible
  for (std::size_t g = begin; g < end; ++g) {
    const Gate& gate = gates[g];
    QOPT_CHECK(gate.qubit0 >= 0 && gate.qubit0 < n);
    const std::size_t q0 = static_cast<std::size_t>(gate.qubit0);
    switch (gate.kind) {
      case GateKind::kRz:
        // diag(e^{-i t/2}, e^{+i t/2}): angle = (t/2) s.
        field[q0] += gate.param / 2.0;
        break;
      case GateKind::kZ:
        // diag(1, -1): angle = pi b = (pi/2)(1 + s).
        constant += kPi / 2.0;
        field[q0] += kPi / 2.0;
        break;
      case GateKind::kCz: {
        QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < n);
        // angle = pi b0 b1 = (pi/4)(1 + s0)(1 + s1).
        const auto [a, b] = std::minmax(gate.qubit0, gate.qubit1);
        constant += kPi / 4.0;
        field[static_cast<std::size_t>(a)] += kPi / 4.0;
        field[static_cast<std::size_t>(b)] += kPi / 4.0;
        coupling[{a, b}] += kPi / 4.0;
        break;
      }
      case GateKind::kRzz: {
        QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < n);
        // e^{-i t/2} on equal bits, e^{+i t/2} otherwise: angle =
        // -(t/2) s0 s1.
        const auto [a, b] = std::minmax(gate.qubit0, gate.qubit1);
        coupling[{a, b}] -= gate.param / 2.0;
        break;
      }
      default:
        QOPT_CHECK_MSG(false, "non-diagonal gate in fused run");
    }
  }

  std::vector<std::vector<std::pair<int, double>>> adjacency(
      static_cast<std::size_t>(n));
  for (const auto& [edge, j] : coupling) {
    adjacency[static_cast<std::size_t>(edge.first)].emplace_back(edge.second,
                                                                 j);
    adjacency[static_cast<std::size_t>(edge.second)].emplace_back(edge.first,
                                                                  j);
  }

  const std::size_t total = amplitudes_.size();
  phase_scratch_.resize(total);
  // State 0 has every spin -1.
  double angle = constant;
  for (int q = 0; q < n; ++q) angle -= field[static_cast<std::size_t>(q)];
  for (const auto& [edge, j] : coupling) {
    (void)edge;
    angle += j;
  }
  std::vector<int> spins(static_cast<std::size_t>(n), -1);
  phase_scratch_[0] = angle;
  std::size_t gray = 0;
  for (std::size_t k = 1; k < total; ++k) {
    const int flip = std::countr_zero(k);
    const int s = spins[static_cast<std::size_t>(flip)];
    double local = field[static_cast<std::size_t>(flip)];
    for (const auto& [j, coeff] : adjacency[static_cast<std::size_t>(flip)]) {
      local += coeff * spins[static_cast<std::size_t>(j)];
    }
    angle -= 2.0 * s * local;
    spins[static_cast<std::size_t>(flip)] = -s;
    gray ^= std::size_t{1} << flip;
    phase_scratch_[gray] = angle;
  }

  Complex* amp = amplitudes_.data();
  const double* phase = phase_scratch_.data();
  ForEachBlock(total, num_qubits_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      amp[i] *= Complex(std::cos(phase[i]), std::sin(phase[i]));
    }
  });
}

void Statevector::ApplyCircuit(const QuantumCircuit& circuit) {
  ApplyCircuit(circuit, Deadline::Infinite()).IgnoreError();
}

Status Statevector::ApplyCircuit(const QuantumCircuit& circuit,
                                 const Deadline& deadline) {
  QOPT_CHECK(circuit.NumQubits() == num_qubits_);
  const std::vector<Gate>& gates = circuit.Gates();
  const bool bounded = !deadline.unbounded() || deadline.token() != nullptr;
  std::size_t i = 0;
  // QQO_LOOP(statevector.gate)
  while (i < gates.size()) {
    if (bounded) QOPT_RETURN_IF_ERROR(deadline.Check());
    if (IsDiagonalGate(gates[i].kind)) {
      std::size_t j = i + 1;
      while (j < gates.size() && IsDiagonalGate(gates[j].kind)) ++j;
      if (j - i >= 2) {
        ApplyFusedDiagonal(gates, i, j);
        QQO_COUNT("statevector.gates", static_cast<long long>(j - i));
        i = j;
        continue;
      }
    }
    ApplyGate(gates[i]);
    QQO_COUNT("statevector.gates", 1);
    ++i;
  }
  return OkStatus();
}

std::vector<double> Statevector::Probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    probs[i] = std::norm(amplitudes_[i]);
  }
  return probs;
}

std::vector<double> Statevector::CumulativeProbabilities() const {
  std::vector<double> cdf(amplitudes_.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    cumulative += std::norm(amplitudes_[i]);
    cdf[i] = cumulative;
  }
  return cdf;
}

double Statevector::NormSquared() const {
  double norm = 0.0;
  for (const Complex& a : amplitudes_) norm += std::norm(a);
  return norm;
}

double Statevector::IsingExpectation(const IsingModel& ising) const {
  QOPT_CHECK(ising.NumSpins() == num_qubits_);
  return EnergyExpectation(IsingEnergyTable(ising));
}

double Statevector::EnergyExpectation(
    const std::vector<double>& energies) const {
  QOPT_CHECK(energies.size() == amplitudes_.size());
  double expectation = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    expectation += std::norm(amplitudes_[i]) * energies[i];
  }
  return expectation;
}

std::vector<std::uint8_t> Statevector::Sample(Rng* rng) const {
  const double r = rng->NextDouble();
  double cumulative = 0.0;
  std::size_t chosen = amplitudes_.size() - 1;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    cumulative += std::norm(amplitudes_[i]);
    if (r < cumulative) {
      chosen = i;
      break;
    }
  }
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(num_qubits_));
  for (int q = 0; q < num_qubits_; ++q) {
    bits[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((chosen >> q) & 1u);
  }
  return bits;
}

std::vector<std::uint8_t> Statevector::SampleFromCdf(
    const std::vector<double>& cdf, Rng* rng) const {
  QOPT_CHECK(cdf.size() == amplitudes_.size());
  const double r = rng->NextDouble();
  // First index with r < cdf[i] — the same state the linear scan in
  // Sample() picks, because cdf holds the identical partial sums.
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
  const std::size_t chosen = it == cdf.end()
                                 ? cdf.size() - 1
                                 : static_cast<std::size_t>(it - cdf.begin());
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(num_qubits_));
  for (int q = 0; q < num_qubits_; ++q) {
    bits[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((chosen >> q) & 1u);
  }
  return bits;
}

std::vector<std::uint8_t> Statevector::MostProbableBits() const {
  std::size_t best = 0;
  double best_prob = -1.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    const double p = std::norm(amplitudes_[i]);
    if (p > best_prob) {
      best_prob = p;
      best = i;
    }
  }
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(num_qubits_));
  for (int q = 0; q < num_qubits_; ++q) {
    bits[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((best >> q) & 1u);
  }
  return bits;
}

std::vector<double> IsingEnergyTable(const IsingModel& ising) {
  const int n = ising.NumSpins();
  QOPT_CHECK_MSG(n <= 26, "energy table too large");
  // Adjacency for O(degree) spin-flip deltas.
  std::vector<std::vector<std::pair<int, double>>> adjacency(
      static_cast<std::size_t>(n));
  for (const auto& [edge, j] : ising.Couplings()) {
    adjacency[static_cast<std::size_t>(edge.first)].emplace_back(edge.second,
                                                                 j);
    adjacency[static_cast<std::size_t>(edge.second)].emplace_back(edge.first,
                                                                  j);
  }
  const std::size_t total = std::size_t{1} << n;
  std::vector<double> table(total, 0.0);
  // Walk basis states in Gray-code order, tracking the spin configuration
  // (basis bit b -> spin 2b-1) and updating the energy incrementally.
  std::vector<int> spins(static_cast<std::size_t>(n), -1);
  double energy = ising.Energy(spins);
  std::size_t gray = 0;
  table[0] = energy;  // Gray code 0 == basis index 0.
  for (std::size_t k = 1; k < total; ++k) {
    const int flip = std::countr_zero(k);
    const int s = spins[static_cast<std::size_t>(flip)];
    double local = ising.Field(flip);
    for (const auto& [j, coeff] : adjacency[static_cast<std::size_t>(flip)]) {
      local += coeff * spins[static_cast<std::size_t>(j)];
    }
    energy -= 2.0 * s * local;
    spins[static_cast<std::size_t>(flip)] = -s;
    gray ^= std::size_t{1} << flip;
    table[gray] = energy;
  }
  return table;
}

Statevector SimulateCircuit(const QuantumCircuit& circuit) {
  Statevector state(circuit.NumQubits());
  state.ApplyCircuit(circuit);
  return state;
}

}  // namespace qopt
