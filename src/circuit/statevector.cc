#include "circuit/statevector.h"

#include <bit>
#include <cmath>

#include "common/check.h"

namespace qopt {

namespace {
using Complex = std::complex<double>;
constexpr Complex kI{0.0, 1.0};
}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  QOPT_CHECK(num_qubits >= 0);
  QOPT_CHECK_MSG(num_qubits <= 26, "statevector too large to simulate");
  amplitudes_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amplitudes_[0] = Complex{1.0, 0.0};
}

void Statevector::ApplySingleQubit(int q, const Complex m[2][2]) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t size = amplitudes_.size();
  for (std::size_t base = 0; base < size; base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = base + offset;
      const std::size_t i1 = i0 + stride;
      const Complex a0 = amplitudes_[i0];
      const Complex a1 = amplitudes_[i1];
      amplitudes_[i0] = m[0][0] * a0 + m[0][1] * a1;
      amplitudes_[i1] = m[1][0] * a0 + m[1][1] * a1;
    }
  }
}

void Statevector::ApplyGate(const Gate& gate) {
  QOPT_CHECK(gate.qubit0 >= 0 && gate.qubit0 < num_qubits_);
  const double half = gate.param / 2.0;
  switch (gate.kind) {
    case GateKind::kH: {
      const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
      const Complex m[2][2] = {{inv_sqrt2, inv_sqrt2},
                               {inv_sqrt2, -inv_sqrt2}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kX: {
      const Complex m[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kY: {
      const Complex m[2][2] = {{0.0, -kI}, {kI, 0.0}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kZ: {
      const Complex m[2][2] = {{1.0, 0.0}, {0.0, -1.0}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kSx: {
      const Complex a = (1.0 + kI) / 2.0;
      const Complex b = (1.0 - kI) / 2.0;
      const Complex m[2][2] = {{a, b}, {b, a}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kRx: {
      const Complex c = std::cos(half);
      const Complex s = -kI * std::sin(half);
      const Complex m[2][2] = {{c, s}, {s, c}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kRy: {
      const double c = std::cos(half);
      const double s = std::sin(half);
      const Complex m[2][2] = {{c, -s}, {s, c}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kRz: {
      const Complex m[2][2] = {{std::exp(-kI * half), 0.0},
                               {0.0, std::exp(kI * half)}};
      ApplySingleQubit(gate.qubit0, m);
      return;
    }
    case GateKind::kCx: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      const std::size_t control = std::size_t{1} << gate.qubit0;
      const std::size_t target = std::size_t{1} << gate.qubit1;
      for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        if ((i & control) != 0 && (i & target) == 0) {
          std::swap(amplitudes_[i], amplitudes_[i | target]);
        }
      }
      return;
    }
    case GateKind::kCz: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      const std::size_t mask = (std::size_t{1} << gate.qubit0) |
                               (std::size_t{1} << gate.qubit1);
      for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        if ((i & mask) == mask) amplitudes_[i] = -amplitudes_[i];
      }
      return;
    }
    case GateKind::kRzz: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      // exp(-i theta/2 Z(x)Z): phase e^{-i theta/2} when the two bits are
      // equal (Z(x)Z eigenvalue +1), e^{+i theta/2} otherwise.
      const Complex equal_phase = std::exp(-kI * half);
      const Complex diff_phase = std::exp(kI * half);
      const std::size_t b0 = std::size_t{1} << gate.qubit0;
      const std::size_t b1 = std::size_t{1} << gate.qubit1;
      for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        const bool v0 = (i & b0) != 0;
        const bool v1 = (i & b1) != 0;
        amplitudes_[i] *= (v0 == v1) ? equal_phase : diff_phase;
      }
      return;
    }
    case GateKind::kSwap: {
      QOPT_CHECK(gate.qubit1 >= 0 && gate.qubit1 < num_qubits_);
      const std::size_t b0 = std::size_t{1} << gate.qubit0;
      const std::size_t b1 = std::size_t{1} << gate.qubit1;
      for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        const bool v0 = (i & b0) != 0;
        const bool v1 = (i & b1) != 0;
        if (v0 && !v1) std::swap(amplitudes_[i], amplitudes_[(i ^ b0) | b1]);
      }
      return;
    }
  }
  QOPT_CHECK_MSG(false, "unknown gate kind");
}

void Statevector::ApplyCircuit(const QuantumCircuit& circuit) {
  QOPT_CHECK(circuit.NumQubits() == num_qubits_);
  for (const Gate& g : circuit.Gates()) ApplyGate(g);
}

std::vector<double> Statevector::Probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    probs[i] = std::norm(amplitudes_[i]);
  }
  return probs;
}

double Statevector::NormSquared() const {
  double norm = 0.0;
  for (const Complex& a : amplitudes_) norm += std::norm(a);
  return norm;
}

double Statevector::IsingExpectation(const IsingModel& ising) const {
  QOPT_CHECK(ising.NumSpins() == num_qubits_);
  const std::vector<double> energies = IsingEnergyTable(ising);
  double expectation = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    expectation += std::norm(amplitudes_[i]) * energies[i];
  }
  return expectation;
}

std::vector<std::uint8_t> Statevector::Sample(Rng* rng) const {
  const double r = rng->NextDouble();
  double cumulative = 0.0;
  std::size_t chosen = amplitudes_.size() - 1;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    cumulative += std::norm(amplitudes_[i]);
    if (r < cumulative) {
      chosen = i;
      break;
    }
  }
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(num_qubits_));
  for (int q = 0; q < num_qubits_; ++q) {
    bits[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((chosen >> q) & 1u);
  }
  return bits;
}

std::vector<std::uint8_t> Statevector::MostProbableBits() const {
  std::size_t best = 0;
  double best_prob = -1.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    const double p = std::norm(amplitudes_[i]);
    if (p > best_prob) {
      best_prob = p;
      best = i;
    }
  }
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(num_qubits_));
  for (int q = 0; q < num_qubits_; ++q) {
    bits[static_cast<std::size_t>(q)] =
        static_cast<std::uint8_t>((best >> q) & 1u);
  }
  return bits;
}

std::vector<double> IsingEnergyTable(const IsingModel& ising) {
  const int n = ising.NumSpins();
  QOPT_CHECK_MSG(n <= 26, "energy table too large");
  // Adjacency for O(degree) spin-flip deltas.
  std::vector<std::vector<std::pair<int, double>>> adjacency(
      static_cast<std::size_t>(n));
  for (const auto& [edge, j] : ising.Couplings()) {
    adjacency[static_cast<std::size_t>(edge.first)].emplace_back(edge.second,
                                                                 j);
    adjacency[static_cast<std::size_t>(edge.second)].emplace_back(edge.first,
                                                                  j);
  }
  const std::size_t total = std::size_t{1} << n;
  std::vector<double> table(total, 0.0);
  // Walk basis states in Gray-code order, tracking the spin configuration
  // (basis bit b -> spin 2b-1) and updating the energy incrementally.
  std::vector<int> spins(static_cast<std::size_t>(n), -1);
  double energy = ising.Energy(spins);
  std::size_t gray = 0;
  table[0] = energy;  // Gray code 0 == basis index 0.
  for (std::size_t k = 1; k < total; ++k) {
    const int flip = std::countr_zero(k);
    const int s = spins[static_cast<std::size_t>(flip)];
    double local = ising.Field(flip);
    for (const auto& [j, coeff] : adjacency[static_cast<std::size_t>(flip)]) {
      local += coeff * spins[static_cast<std::size_t>(j)];
    }
    energy -= 2.0 * s * local;
    spins[static_cast<std::size_t>(flip)] = -s;
    gray ^= std::size_t{1} << flip;
    table[gray] = energy;
  }
  return table;
}

Statevector SimulateCircuit(const QuantumCircuit& circuit) {
  Statevector state(circuit.NumQubits());
  state.ApplyCircuit(circuit);
  return state;
}

}  // namespace qopt
