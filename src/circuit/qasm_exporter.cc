#include "circuit/qasm_exporter.h"

#include "common/check.h"
#include "common/table_printer.h"

namespace qopt {

std::string ToQasm2(const QuantumCircuit& circuit, bool measure_all) {
  const int n = circuit.NumQubits();
  std::string out = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  out += StrFormat("qreg q[%d];\n", n);
  if (measure_all) out += StrFormat("creg c[%d];\n", n);
  for (const Gate& g : circuit.Gates()) {
    switch (g.kind) {
      case GateKind::kH:
        out += StrFormat("h q[%d];\n", g.qubit0);
        break;
      case GateKind::kX:
        out += StrFormat("x q[%d];\n", g.qubit0);
        break;
      case GateKind::kY:
        out += StrFormat("y q[%d];\n", g.qubit0);
        break;
      case GateKind::kZ:
        out += StrFormat("z q[%d];\n", g.qubit0);
        break;
      case GateKind::kSx:
        out += StrFormat("sx q[%d];\n", g.qubit0);
        break;
      case GateKind::kRx:
        out += StrFormat("rx(%.12g) q[%d];\n", g.param, g.qubit0);
        break;
      case GateKind::kRy:
        out += StrFormat("ry(%.12g) q[%d];\n", g.param, g.qubit0);
        break;
      case GateKind::kRz:
        out += StrFormat("rz(%.12g) q[%d];\n", g.param, g.qubit0);
        break;
      case GateKind::kCx:
        out += StrFormat("cx q[%d],q[%d];\n", g.qubit0, g.qubit1);
        break;
      case GateKind::kCz:
        out += StrFormat("cz q[%d],q[%d];\n", g.qubit0, g.qubit1);
        break;
      case GateKind::kRzz:
        // qelib1 has no rzz; emit the exact CX-RZ-CX decomposition.
        out += StrFormat("cx q[%d],q[%d];\n", g.qubit0, g.qubit1);
        out += StrFormat("rz(%.12g) q[%d];\n", g.param, g.qubit1);
        out += StrFormat("cx q[%d],q[%d];\n", g.qubit0, g.qubit1);
        break;
      case GateKind::kSwap:
        out += StrFormat("swap q[%d],q[%d];\n", g.qubit0, g.qubit1);
        break;
    }
  }
  if (measure_all) {
    for (int q = 0; q < n; ++q) {
      out += StrFormat("measure q[%d] -> c[%d];\n", q, q);
    }
  }
  return out;
}

}  // namespace qopt
