#pragma once

#include <cstdint>

#include "circuit/quantum_circuit.h"
#include "common/random.h"

namespace qopt {

/// Depolarizing noise model: after every gate, each involved qubit
/// suffers a uniformly random Pauli error with the corresponding
/// probability. This is the standard Monte-Carlo (quantum trajectory)
/// treatment of the NISQ gate errors of Sec. 3.6.1 and lets the library
/// demonstrate *why* the paper's coherence-depth thresholds matter: the
/// probability of a clean shot decays exponentially with gate count.
struct NoiseModel {
  double single_qubit_error = 0.0;  ///< Pauli error prob per 1q gate.
  double two_qubit_error = 0.0;     ///< Pauli error prob per 2q gate qubit.

  /// Builds a noise model from a device's calibration data.
  static NoiseModel FromDevice(double sx_error, double cx_error) {
    return {sx_error, cx_error};
  }
};

/// One noisy execution: a copy of `circuit` with random Pauli errors
/// inserted according to `noise`. `num_errors` (optional) receives the
/// number of injected errors, so callers can post-select clean shots.
QuantumCircuit InjectPauliNoise(const QuantumCircuit& circuit,
                                const NoiseModel& noise, Rng* rng,
                                int* num_errors = nullptr);

/// Result of running many noisy trajectories of a circuit.
struct NoisySamplingResult {
  /// Fraction of trajectories with no injected error.
  double clean_fraction = 0.0;
  /// Mean fidelity |<ideal|noisy>|^2 over trajectories.
  double mean_fidelity = 0.0;
  int trajectories = 0;
};

/// Simulates `trajectories` noisy executions and compares each final
/// state against the ideal one. Exponential in qubits — intended for the
/// small circuits the statevector backend handles anyway.
NoisySamplingResult SampleNoisyCircuit(const QuantumCircuit& circuit,
                                       const NoiseModel& noise,
                                       int trajectories,
                                       std::uint64_t seed = 0);

}  // namespace qopt
