#include "circuit/noise_model.h"

#include <complex>

#include "circuit/statevector.h"
#include "common/check.h"

namespace qopt {
namespace {

void MaybeInjectPauli(QuantumCircuit* out, int qubit, double error_prob,
                      Rng* rng, int* num_errors) {
  if (!rng->NextBool(error_prob)) return;
  switch (rng->NextInt(0, 2)) {
    case 0:
      out->X(qubit);
      break;
    case 1:
      out->Y(qubit);
      break;
    default:
      out->Z(qubit);
      break;
  }
  if (num_errors != nullptr) ++*num_errors;
}

}  // namespace

QuantumCircuit InjectPauliNoise(const QuantumCircuit& circuit,
                                const NoiseModel& noise, Rng* rng,
                                int* num_errors) {
  QOPT_CHECK(noise.single_qubit_error >= 0.0 &&
             noise.single_qubit_error < 1.0);
  QOPT_CHECK(noise.two_qubit_error >= 0.0 && noise.two_qubit_error < 1.0);
  if (num_errors != nullptr) *num_errors = 0;
  QuantumCircuit noisy(circuit.NumQubits());
  for (const Gate& g : circuit.Gates()) {
    noisy.Append(g);
    if (g.NumQubits() == 1) {
      MaybeInjectPauli(&noisy, g.qubit0, noise.single_qubit_error, rng,
                       num_errors);
    } else {
      MaybeInjectPauli(&noisy, g.qubit0, noise.two_qubit_error, rng,
                       num_errors);
      MaybeInjectPauli(&noisy, g.qubit1, noise.two_qubit_error, rng,
                       num_errors);
    }
  }
  return noisy;
}

NoisySamplingResult SampleNoisyCircuit(const QuantumCircuit& circuit,
                                       const NoiseModel& noise,
                                       int trajectories, std::uint64_t seed) {
  QOPT_CHECK(trajectories >= 1);
  const Statevector ideal = SimulateCircuit(circuit);
  Rng rng(seed);
  NoisySamplingResult result;
  result.trajectories = trajectories;
  int clean = 0;
  double fidelity_sum = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    int errors = 0;
    const QuantumCircuit noisy = InjectPauliNoise(circuit, noise, &rng,
                                                  &errors);
    if (errors == 0) {
      ++clean;
      fidelity_sum += 1.0;
      continue;
    }
    const Statevector state = SimulateCircuit(noisy);
    std::complex<double> inner = 0.0;
    for (std::size_t i = 0; i < state.Amplitudes().size(); ++i) {
      inner += std::conj(ideal.Amplitudes()[i]) * state.Amplitudes()[i];
    }
    fidelity_sum += std::norm(inner);
  }
  result.clean_fraction = static_cast<double>(clean) / trajectories;
  result.mean_fidelity = fidelity_sum / trajectories;
  return result;
}

}  // namespace qopt
