#pragma once

#include <string>

#include "circuit/quantum_circuit.h"

namespace qopt {

/// Serializes a circuit as OpenQASM 2.0 (qelib1 gate set), so circuits
/// produced by this library can be inspected or executed with external
/// toolchains such as Qiskit. RZZ gates are emitted as their CX-RZ-CX
/// decomposition because qelib1 has no native rzz. A trailing measurement
/// of all qubits into a classical register is appended when
/// `measure_all` is set.
std::string ToQasm2(const QuantumCircuit& circuit, bool measure_all = false);

}  // namespace qopt
