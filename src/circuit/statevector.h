#ifndef QQO_CIRCUIT_STATEVECTOR_H_
#define QQO_CIRCUIT_STATEVECTOR_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/quantum_circuit.h"
#include "common/random.h"
#include "qubo/ising_model.h"

namespace qopt {

/// Dense statevector simulator (the stand-in for the remote IBM-Q qasm
/// simulator). Basis states are indexed little-endian: bit q of the index
/// is the value of qubit q. Practical up to ~20 qubits.
class Statevector {
 public:
  /// Initializes |0...0>.
  explicit Statevector(int num_qubits);

  int NumQubits() const { return num_qubits_; }
  const std::vector<std::complex<double>>& Amplitudes() const {
    return amplitudes_;
  }

  /// Applies one gate in place.
  void ApplyGate(const Gate& gate);

  /// Applies every gate of the circuit (must match NumQubits()).
  void ApplyCircuit(const QuantumCircuit& circuit);

  /// Measurement probabilities |amplitude|^2 per basis state.
  std::vector<double> Probabilities() const;

  /// Sum of |amplitude|^2 (should stay 1 up to rounding; exposed for
  /// unitarity tests).
  double NormSquared() const;

  /// Expectation value <psi| H |psi> of a diagonal-in-Z Ising Hamiltonian
  /// (the quantity VQE/QAOA minimize, Eq. 15/21).
  double IsingExpectation(const IsingModel& ising) const;

  /// Draws one computational-basis sample.
  std::vector<std::uint8_t> Sample(Rng* rng) const;

  /// Basis state with the largest probability, as a bit vector.
  std::vector<std::uint8_t> MostProbableBits() const;

 private:
  void ApplySingleQubit(int q, const std::complex<double> m[2][2]);

  int num_qubits_;
  std::vector<std::complex<double>> amplitudes_;
};

/// Energy of every computational basis state under `ising`, indexed by the
/// little-endian basis index. Size 2^NumSpins(); O(2^n * couplings) via a
/// Gray-code walk. Shared by expectation evaluation and tests.
std::vector<double> IsingEnergyTable(const IsingModel& ising);

/// Runs `circuit` on |0..0> and returns the final state.
Statevector SimulateCircuit(const QuantumCircuit& circuit);

}  // namespace qopt

#endif  // QQO_CIRCUIT_STATEVECTOR_H_
