#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/quantum_circuit.h"
#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "qubo/ising_model.h"

namespace qopt {

/// Dense statevector simulator (the stand-in for the remote IBM-Q qasm
/// simulator). Basis states are indexed little-endian: bit q of the index
/// is the value of qubit q. Practical up to ~20 qubits.
///
/// Hot-path design: two-qubit gates iterate only over the affected
/// quarter/half of the amplitudes (stride-based index expansion instead of
/// a branchy full-2^n scan); runs of diagonal gates (Z, RZ, CZ, RZZ — the
/// bulk of a QAOA cost layer) are fused into a single per-basis-state phase
/// pass whose angles come from a Gray-code walk; and elementwise passes are
/// parallelized over amplitude blocks on ThreadPool::Default() once the
/// state is large enough. All parallel passes write disjoint slots with
/// thread-count-independent arithmetic, so results are bit-identical for
/// any QQO_THREADS setting.
///
/// The single-qubit gate pass (every H/X/Y/RX/RY layer — the bulk of QAOA
/// mixer and VQE ansatz work) additionally dispatches to AVX2 or NEON
/// vector kernels via qopt::ActiveSimdLevel() (QQO_SIMD env override,
/// runtime CPUID probe, scalar fallback). The vector kernels perform the
/// same primitive FP operations in the same order as the scalar path and
/// never use FMA contraction, so scalar and SIMD amplitudes are
/// byte-identical — see DESIGN.md "Performance".
class Statevector {
 public:
  /// Initializes |0...0>.
  explicit Statevector(int num_qubits);

  int NumQubits() const { return num_qubits_; }
  const std::vector<std::complex<double>>& Amplitudes() const {
    return amplitudes_;
  }

  /// Resets to |0...0> without reallocating — the reuse path for
  /// variational outer loops that simulate hundreds of circuits of the
  /// same width.
  void Reset();

  /// Applies one gate in place.
  void ApplyGate(const Gate& gate);

  /// Applies every gate of the circuit (must match NumQubits()), fusing
  /// runs of consecutive diagonal gates into single phase passes.
  void ApplyCircuit(const QuantumCircuit& circuit);

  /// Deadline-aware flavour: the deadline is checked before every gate (or
  /// fused diagonal run). On expiry or cancellation the remaining gates
  /// are NOT applied and kDeadlineExceeded/kCancelled is returned; the
  /// state is then mid-circuit garbage and the caller must Reset() before
  /// reuse. Runs that return OK applied exactly the gate sequence of the
  /// plain overload.
  Status ApplyCircuit(const QuantumCircuit& circuit, const Deadline& deadline);

  /// Measurement probabilities |amplitude|^2 per basis state.
  std::vector<double> Probabilities() const;

  /// Running sums of the probabilities in basis order: cdf[i] =
  /// sum_{j <= i} |amplitude_j|^2. Computed once, it turns each
  /// subsequent Sample draw into a binary search.
  std::vector<double> CumulativeProbabilities() const;

  /// Sum of |amplitude|^2 (should stay 1 up to rounding; exposed for
  /// unitarity tests).
  double NormSquared() const;

  /// Expectation value <psi| H |psi> of a diagonal-in-Z Ising Hamiltonian
  /// (the quantity VQE/QAOA minimize, Eq. 15/21).
  double IsingExpectation(const IsingModel& ising) const;

  /// Same expectation from a precomputed IsingEnergyTable — the reuse path
  /// that avoids rebuilding the O(2^n) table on every objective call.
  double EnergyExpectation(const std::vector<double>& energies) const;

  /// Draws one computational-basis sample (linear scan; one NextDouble).
  std::vector<std::uint8_t> Sample(Rng* rng) const;

  /// Draws one sample by binary search over a CumulativeProbabilities()
  /// vector. Consumes the same single NextDouble per shot and selects the
  /// same basis state as Sample(), in O(n) instead of O(2^n).
  std::vector<std::uint8_t> SampleFromCdf(const std::vector<double>& cdf,
                                          Rng* rng) const;

  /// Basis state with the largest probability, as a bit vector.
  std::vector<std::uint8_t> MostProbableBits() const;

 private:
  void ApplySingleQubit(int q, const std::complex<double> m[2][2]);
  /// Applies gates [begin, end) of `gates`, all diagonal in the
  /// computational basis, as one fused phase multiplication.
  void ApplyFusedDiagonal(const std::vector<Gate>& gates, std::size_t begin,
                          std::size_t end);

  int num_qubits_;
  std::vector<std::complex<double>> amplitudes_;
  std::vector<double> phase_scratch_;  ///< Reused by ApplyFusedDiagonal.
};

/// True for gates that are diagonal in the computational basis and hence
/// fusable into a single phase pass (Z, RZ, CZ, RZZ).
bool IsDiagonalGate(GateKind kind);

/// Energy of every computational basis state under `ising`, indexed by the
/// little-endian basis index. Size 2^NumSpins(); O(2^n * couplings) via a
/// Gray-code walk. Shared by expectation evaluation and tests.
std::vector<double> IsingEnergyTable(const IsingModel& ising);

/// Runs `circuit` on |0..0> and returns the final state.
Statevector SimulateCircuit(const QuantumCircuit& circuit);

}  // namespace qopt
