// Annealer embedding walkthrough: encode a join ordering problem as a
// QUBO, minor-embed its interaction graph into D-Wave topologies (Chimera
// as on the 2X, Pegasus as on the Advantage) and compare chain statistics
// — the machinery behind the paper's Fig. 14.
//
// Build & run:  ./build/examples/annealer_embedding

#include <cstdio>

#include "anneal/chimera.h"
#include "anneal/embedding_composite.h"
#include "anneal/minor_embedder.h"
#include "anneal/pegasus.h"
#include "common/table_printer.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "qubo/brute_force_solver.h"

int main() {
  using namespace qopt;

  // 4-relation chain query, 1 threshold, omega = 1.
  QueryGraph graph({10.0, 100.0, 100.0, 1000.0});
  graph.AddPredicate(0, 1, 0.1);
  graph.AddPredicate(1, 2, 0.05);
  graph.AddPredicate(2, 3, 0.2);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {100.0};
  encoder.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, encoder);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  const SimpleGraph source = qubo.qubo.InteractionGraph();
  std::printf("Join-ordering QUBO: %d logical qubits, %d quadratic terms "
              "(max degree %d)\n\n",
              source.NumVertices(), qubo.qubo.NumQuadraticTerms(),
              source.MaxDegree());

  TablePrinter table({"topology", "fabric qubits", "physical qubits",
                      "mean chain", "max chain"});
  struct Target {
    const char* name;
    SimpleGraph graph;
  };
  for (Target& target :
       std::vector<Target>{{"Chimera C(8,8,4)  [2X-like]", MakeChimera(8, 8, 4)},
                           {"Pegasus P6        [Advantage-like]", MakePegasus(6)},
                           {"Pegasus P16       [Advantage]", MakePegasus(16)}}) {
    EmbedOptions options;
    options.seed = 7;
    const auto embedding = FindMinorEmbedding(source, target.graph, options);
    if (!embedding.has_value()) {
      table.AddRow({target.name, StrFormat("%d", target.graph.NumVertices()),
                    "no embedding found", "-", "-"});
      continue;
    }
    table.AddRow({target.name, StrFormat("%d", target.graph.NumVertices()),
                  StrFormat("%d", embedding->NumPhysicalQubits()),
                  StrFormat("%.2f", embedding->MeanChainLength()),
                  StrFormat("%d", embedding->MaxChainLength())});
  }
  table.Print();

  // Full embedded solve on the small Pegasus fabric and a ground-truth
  // check via simulated annealing on the unembedded QUBO.
  EmbeddedSolveOptions solve_options;
  solve_options.embed.seed = 7;
  solve_options.anneal.num_reads = 200;
  solve_options.anneal.num_sweeps = 8000;
  solve_options.anneal.seed = 7;
  const auto result =
      SolveQuboOnTopology(qubo.qubo, MakePegasus(6), solve_options);
  if (result.has_value()) {
    std::vector<int> order;
    const bool valid = DecodeJoinOrder(encoding, result->bits, &order);
    std::printf("\nEmbedded anneal on Pegasus P6: energy %.2f, chain breaks "
                "%.1f%%, decoded order %s\n",
                result->energy, 100.0 * result->chain_break_fraction,
                valid ? "valid" : "invalid");
    if (valid) {
      std::printf("  join order:");
      for (int r : order) std::printf(" R%d", r);
      std::printf("  (C_out %.0f)\n", CoutCost(graph, order));
    }
  } else {
    std::printf("\nNo embedding found for the solve.\n");
  }
  return 0;
}
