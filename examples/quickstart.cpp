// Quickstart: solve a small multi query optimization problem with every
// backend of the library — classical oracle, simulated annealing, the two
// hybrid quantum-classical algorithms (QAOA, VQE) on the statevector
// simulator, Trotterized adiabatic evolution, and an emulated quantum
// annealer (minor embedding into a Pegasus fabric + annealing).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/table_printer.h"
#include "core/quantum_optimizer.h"
#include "mqo/mqo_generator.h"

int main() {
  using namespace qopt;

  // The paper's example workload (Tables 1 and 2): three queries with
  // eight alternative plans and five pairwise cost savings.
  const MqoProblem problem = MakePaperExampleMqo();
  std::printf("MQO problem: %d queries, %d plans, %d savings\n",
              problem.NumQueries(), problem.NumPlans(), problem.NumSavings());
  std::printf("Locally optimal (greedy) cost: %.0f\n",
              SolveMqoGreedy(problem).cost);

  TablePrinter table({"backend", "valid", "cost", "plans (query: plan)"});
  for (Backend backend :
       {Backend::kExact, Backend::kSimulatedAnnealing, Backend::kQaoa,
        Backend::kVqe, Backend::kAdiabatic, Backend::kAnnealerEmulation}) {
    OptimizerOptions options;
    options.backend = backend;
    options.seed = 7;
    options.variational.max_iterations = 200;
    options.variational.shots = 4096;
    options.pegasus_m = 3;
    options.embedded.anneal.num_reads = 50;
    options.embedded.anneal.num_sweeps = 2000;
    const MqoSolveReport report = SolveMqo(problem, options);
    std::string plans;
    if (report.valid) {
      for (int q = 0; q < problem.NumQueries(); ++q) {
        plans += StrFormat("%d:%d ", q,
                           report.solution.selection[static_cast<std::size_t>(q)]);
      }
    }
    table.AddRow({BackendName(backend), report.valid ? "yes" : "no",
                  report.valid ? StrFormat("%.0f", report.solution.cost) : "-",
                  plans});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nThe optimal batch cost is 21 (plans 2, 4 and 8 in the paper's\n"
      "numbering), beating the locally optimal 26 by exploiting shared\n"
      "subexpressions.\n");
  return 0;
}
