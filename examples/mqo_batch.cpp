// MQO batch scenario: a randomly generated batch of reporting queries with
// shared subexpressions, optimized with the classical baselines (greedy,
// genetic, local search, exhaustive) and the QUBO pipeline, plus the gate-
// resource estimate an IBM-Q Mumbai deployment would need (Fig. 8/9 style).
//
// Build & run:  ./build/examples/mqo_batch

#include <cstdio>

#include "common/table_printer.h"
#include "core/device_model.h"
#include "core/quantum_optimizer.h"
#include "core/resource_estimator.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "transpile/ibm_topologies.h"

int main() {
  using namespace qopt;

  // A nightly batch: 4 reporting queries, 4 candidate plans each, dense
  // sharing opportunities.
  MqoGeneratorOptions gen;
  gen.num_queries = 4;
  gen.plans_per_query = 4;
  gen.cost_min = 10.0;
  gen.cost_max = 80.0;
  gen.saving_density = 0.35;
  gen.seed = 2022;
  const MqoProblem batch = GenerateMqoProblem(gen);
  std::printf("Batch: %d queries x %d plans, %d sharing opportunities\n\n",
              batch.NumQueries(), gen.plans_per_query, batch.NumSavings());

  // Classical optimizers.
  const MqoSolution exact = SolveMqoExhaustive(batch);
  const MqoSolution greedy = SolveMqoGreedy(batch);
  const MqoSolution genetic = SolveMqoGenetic(batch, {.seed = 1});
  const MqoSolution local = SolveMqoLocalSearch(batch, 10, 2);

  TablePrinter classical({"algorithm", "cost", "gap vs optimal"});
  auto gap = [&](double cost) {
    return StrFormat("%.1f%%", 100.0 * (cost - exact.cost) / exact.cost);
  };
  classical.AddRow({"exhaustive", StrFormat("%.2f", exact.cost), "0.0%"});
  classical.AddRow({"greedy (local plans)", StrFormat("%.2f", greedy.cost),
                    gap(greedy.cost)});
  classical.AddRow({"genetic [14]", StrFormat("%.2f", genetic.cost),
                    gap(genetic.cost)});
  classical.AddRow({"local search", StrFormat("%.2f", local.cost),
                    gap(local.cost)});
  classical.Print();

  // Quantum pipeline via simulated annealing (the D-Wave-style solve).
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 50;
  options.anneal.num_sweeps = 2000;
  options.seed = 3;
  const MqoSolveReport report = SolveMqo(batch, options);
  std::printf("\nQUBO pipeline (SA backend): valid=%s cost=%.2f "
              "(%d qubits, %d quadratic terms)\n",
              report.valid ? "yes" : "no",
              report.valid ? report.solution.cost : 0.0, report.qubits,
              report.quadratic_terms);

  // What would running this on IBM-Q Mumbai take?
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(batch);
  GateEstimateOptions estimate_options;
  estimate_options.transpile_trials = 10;
  const GateResourceEstimate estimate = EstimateGateResources(
      encoding.qubo, MakeMumbai27(), MumbaiDevice(), estimate_options);
  std::printf(
      "\nIBM-Q Mumbai resource estimate:\n"
      "  QAOA depth: %d (ideal) -> %.1f (routed), %s coherence budget %d\n"
      "  VQE  depth: %d (ideal) -> %.1f (routed), %s coherence budget %d\n",
      estimate.qaoa_depth_ideal, estimate.qaoa_depth_device,
      estimate.qaoa_within_coherence ? "within" : "EXCEEDS",
      estimate.max_reliable_depth, estimate.vqe_depth_ideal,
      estimate.vqe_depth_device,
      estimate.vqe_within_coherence ? "within" : "EXCEEDS",
      estimate.max_reliable_depth);
  return 0;
}
