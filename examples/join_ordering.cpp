// Join ordering scenario: the paper's R/S/T example query (Fig. 6 and
// Table 3) plus a 5-relation snowflake-ish query, solved classically
// (exhaustive, DP, greedy) and through the two-step BILP -> QUBO quantum
// pipeline of Ch. 6.
//
// Build & run:  ./build/examples/join_ordering

#include <cstdio>

#include "common/table_printer.h"
#include "core/quantum_optimizer.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order_baselines.h"

namespace {

std::string OrderToString(const std::vector<int>& order,
                          const char* names = nullptr) {
  std::string out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += " |><| ";
    if (names != nullptr) {
      out += names[order[i]];
    } else {
      out += qopt::StrFormat("R%d", order[i]);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace qopt;

  // --- Part 1: Table 3, reproduced ---------------------------------------
  const QueryGraph example = MakePaperExampleQuery();
  std::printf("Paper example (Fig. 6): |R|=10, |S|=1000, |T|=1000, "
              "f_RS=0.1, f_ST=0.05\n\n");
  TablePrinter table3({"join order", "C_out cost"});
  const char kNames[] = "RST";
  for (const std::vector<int>& order :
       {std::vector<int>{0, 1, 2}, {0, 2, 1}, {1, 2, 0}}) {
    table3.AddRow({OrderToString(order, kNames),
                   StrFormat("%.0f", CoutCost(example, order))});
  }
  table3.Print();

  const JoinOrderSolution best = SolveJoinOrderExhaustive(example);
  std::printf("\nOptimal order: %s with cost %.0f\n\n",
              OrderToString(best.order, kNames).c_str(), best.cost);

  // --- Part 2: quantum pipeline on the 3-relation model -------------------
  QueryGraph small({10.0, 10.0, 10.0});
  small.AddPredicate(0, 1, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 60;
  options.anneal.num_sweeps = 2000;
  options.seed = 11;
  const JoinOrderSolveReport report = SolveJoinOrder(small, encoder, options);
  std::printf("BILP -> QUBO pipeline on the Sec. 6.1.2 example:\n"
              "  qubits: %d, quadratic terms: %d\n",
              report.qubits, report.quadratic_terms);
  if (report.valid) {
    std::printf("  decoded order: %s (C_out %.0f)\n\n",
                OrderToString(report.solution.order).c_str(),
                report.solution.cost);
  } else {
    std::printf("  solver returned an invalid assignment\n\n");
  }

  // --- Part 3: a larger query, classical comparison -----------------------
  QueryGeneratorOptions gen;
  gen.num_relations = 7;
  gen.num_predicates = 9;
  gen.cardinality_min = 100.0;
  gen.cardinality_max = 100000.0;
  gen.selectivity_min = 0.0005;
  gen.selectivity_max = 0.2;
  gen.seed = 42;
  const QueryGraph big = GenerateRandomQuery(gen);
  const JoinOrderSolution dp = SolveJoinOrderDp(big);
  const JoinOrderSolution greedy = SolveJoinOrderGreedy(big);
  const JoinOrderSolution exhaustive = SolveJoinOrderExhaustive(big);
  std::printf("7-relation random query (9 predicates):\n");
  TablePrinter compare({"algorithm", "order", "C_out cost"});
  compare.AddRow({"exhaustive", OrderToString(exhaustive.order),
                  StrFormat("%.3g", exhaustive.cost)});
  compare.AddRow({"subset DP", OrderToString(dp.order),
                  StrFormat("%.3g", dp.cost)});
  compare.AddRow({"greedy", OrderToString(greedy.order),
                  StrFormat("%.3g", greedy.cost)});
  compare.Print();
  std::printf("\nA quantum solve of this query would already need %lld "
              "logical qubits\n(1 threshold, omega = 1; Eq. 54).\n",
              CountJoinOrderQubits(7, 9, 1, 1.0).total);
  return 0;
}
