// Adiabatic evolution walkthrough (Sec. 3.5 of the paper): encode a small
// join ordering problem as a QUBO, sweep the annealing time T, and watch
// the ground-state probability obey the adiabatic theorem. Also inspects
// the minimum spectral gap that dictates the required T (Eq. 24), and
// contrasts bushy vs left-deep join trees on the same query.
//
// Build & run:  ./build/examples/adiabatic_evolution

#include <cstdio>

#include "bilp/bilp_to_qubo.h"
#include "common/table_printer.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/join_tree.h"
#include "joinorder/query_graph.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "variational/adiabatic.h"

int main() {
  using namespace qopt;

  // Three relations, one selective predicate: the Sec. 6.1.2 model.
  QueryGraph graph({10.0, 10.0, 10.0});
  graph.AddPredicate(0, 1, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0};
  encoder.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, encoder);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  std::printf("Join-ordering QUBO: %d qubits, %d quadratic terms\n\n",
              qubo.qubo.NumVariables(), qubo.qubo.NumQuadraticTerms());

  // Adiabatic evolution is exponential in qubits; 25 qubits = 2^25
  // amplitudes, which the statevector handles but slowly — demonstrate on
  // a reduced MQO-style instance instead and keep the join-ordering QUBO
  // for the exact solver.
  QuboModel demo(8);
  {
    const BruteForceResult exact = SolveQuboBruteForce(qubo.qubo);
    std::vector<int> order;
    if (DecodeJoinOrder(encoding, exact.best_bits, &order)) {
      std::printf("Exact QUBO ground state joins R%d and R%d first "
                  "(the selective pair), C_out %.0f\n\n",
                  order[0], order[1], CoutCost(graph, order));
    }
    // 8-variable demo Hamiltonian: pick one of 4, pick one of 4.
    for (int i = 0; i < 8; ++i) demo.AddLinear(i, -10.0 + i * 0.5);
    for (int g = 0; g < 2; ++g) {
      for (int a = 4 * g; a < 4 * (g + 1); ++a) {
        for (int b = a + 1; b < 4 * (g + 1); ++b) {
          demo.AddQuadratic(a, b, 25.0);
        }
      }
    }
  }

  std::printf("Adiabatic theorem on an 8-qubit constraint Hamiltonian:\n");
  TablePrinter sweep({"annealing time T", "P(ground state)"});
  for (double total_time : {0.5, 2.0, 8.0, 32.0}) {
    AdiabaticOptions options;
    options.total_time = total_time;
    options.steps = 400;
    const AdiabaticResult result = SolveQuboAdiabatically(demo, options);
    sweep.AddRow({total_time, result.ground_state_probability}, 3);
  }
  sweep.Print();

  const SpectralGap gap = MinimumSpectralGap(QuboToIsing(demo), 31);
  std::printf("\nMinimum spectral gap: %.3f at s = %.2f -> Eq. 24 wants "
              "T >> %.2f\n",
              gap.min_gap, gap.at_s, 1.0 / (gap.min_gap * gap.min_gap));

  // Bushy vs left-deep on a slightly larger query.
  QueryGeneratorOptions gen;
  gen.num_relations = 8;
  gen.num_predicates = 10;
  gen.cardinality_min = 100.0;
  gen.cardinality_max = 100000.0;
  gen.selectivity_min = 0.0002;
  gen.selectivity_max = 0.05;
  gen.seed = 13;
  const QueryGraph big = GenerateRandomQuery(gen);
  const JoinOrderSolution left_deep = SolveJoinOrderDp(big);
  const BushyDpResult bushy = SolveJoinOrderBushyDp(big);
  std::printf("\n8-relation query: optimal left-deep C_out %.3g vs optimal "
              "bushy %.3g\n",
              left_deep.cost, bushy.cost);
  std::printf("bushy tree: %s\n", bushy.tree.ToString().c_str());
  std::printf("(The paper restricts itself to left-deep trees; bushy DP is\n"
              "the [16]-style extension its future-work section names.)\n");
  return 0;
}
