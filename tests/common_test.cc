#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/env.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table_printer.h"

namespace qopt {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextUint64CoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(StatsTest, EmptyInputIsZeroed) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(Summarize({3.0, 1.0, 2.0}).median, 2.0);
}

TEST(StatsTest, SingleElement) {
  const Summary s = Summarize({42.0});
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
}

TEST(StatsTest, TwoElementStddevUsesSampleVariance) {
  // The smallest n where the n-1 divisor is exercised at all: sample
  // stddev of {1, 3} is sqrt(((1-2)^2 + (3-2)^2) / 1) = sqrt(2).
  const Summary s = Summarize({1.0, 3.0});
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, MedianEvenCountOnUnsortedInput) {
  // Median of an even-count sample must average the two MIDDLE order
  // statistics of the sorted data, not of the input order.
  EXPECT_DOUBLE_EQ(Summarize({9.0, 1.0, 3.0, 7.0}).median, 5.0);
}

TEST(StatsTest, MeanHelper) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(ParseEnvIntTest, AcceptsPlainIntegersInRange) {
  const StatusOr<long long> parsed = ParseEnvInt("X", "42", 1, 100);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 42);
  EXPECT_EQ(*ParseEnvInt("X", "-7", -10, 10), -7);
}

TEST(ParseEnvIntTest, RejectsNonNumericBeforeRange) {
  // Regression for the from_chars errc ordering: on invalid input the
  // output value is untouched, so a range-first check misreported "abc"
  // below min as "0 out of range" instead of "expected an integer".
  const StatusOr<long long> parsed = ParseEnvInt("X", "abc", 1, 100);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("expected an integer"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ParseEnvIntTest, RejectsTrailingGarbageEmptyOverflowAndOutOfRange) {
  EXPECT_EQ(ParseEnvInt("X", "4x", 1, 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseEnvInt("X", "", 1, 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseEnvInt("X", "99999999999999999999", 1, 100).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseEnvInt("X", "0", 1, 100).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseEnvInt("X", "101", 1, 100).status().code(),
            StatusCode::kOutOfRange);
  // Every message names the variable, so CLI errors are actionable.
  EXPECT_NE(ParseEnvInt("QQO_THREADS", "zz", 1, 100)
                .status()
                .message()
                .find("QQO_THREADS"),
            std::string::npos);
}

TEST(EnvIntOrStatusTest, UnsetAndEmptyYieldNullopt) {
  unsetenv("QQO_TEST_ENV_INT");
  StatusOr<std::optional<long long>> unset =
      EnvIntOrStatus("QQO_TEST_ENV_INT", 1, 10);
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->has_value());

  setenv("QQO_TEST_ENV_INT", "", 1);
  StatusOr<std::optional<long long>> empty =
      EnvIntOrStatus("QQO_TEST_ENV_INT", 1, 10);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());

  setenv("QQO_TEST_ENV_INT", "7", 1);
  StatusOr<std::optional<long long>> set =
      EnvIntOrStatus("QQO_TEST_ENV_INT", 1, 10);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(**set, 7);

  setenv("QQO_TEST_ENV_INT", "junk", 1);
  EXPECT_FALSE(EnvIntOrStatus("QQO_TEST_ENV_INT", 1, 10).ok());
  unsetenv("QQO_TEST_ENV_INT");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(StrFormatTest, LongOutput) {
  const std::string s = StrFormat("%0512d", 3);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '3');
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "bbbb"});
  table.AddRow(std::vector<std::string>{"123", "4"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
  // Header row and data row have equal width.
  const auto first_newline = out.find('\n');
  const auto second_newline = out.find('\n', first_newline + 1);
  const auto third_newline = out.find('\n', second_newline + 1);
  EXPECT_EQ(first_newline, third_newline - second_newline - 1);
}

TEST(TablePrinterTest, NumericRowsFormatIntegersWithoutFraction) {
  TablePrinter table({"x", "y"});
  table.AddRow({3.0, 2.5}, 1);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("3 "), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(out.find("3.0"), std::string::npos);
}

}  // namespace
}  // namespace qopt
