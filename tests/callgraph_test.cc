// Unit tests for the cross-TU program index behind qqo-deadline-plumbing,
// qqo-lock-discipline, and qqo-pool-reentrancy (tools/lint/callgraph.h):
// the declaration index, the budget-type fixed point, call capture with
// lambda deferral, and charge harvesting. The rule-level behavior over the
// fixture corpus is covered by lint_test.cc.
#include "lint/callgraph.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.h"

namespace qopt::lint {
namespace {

TEST(DeclarationIndexTest, SignaturesOrderedByFileThenLine) {
  ProgramIndex index;
  index.AddFile("b.cc",
                "int Solve(int n);\n"
                "int Solve(int n, const Deadline& d) { return n; }\n");
  index.AddFile("a.cc", "int Solve(const Problem& problem);\n");
  index.Finalize();

  const std::vector<const SignatureInfo*> sigs = index.SignaturesOf("Solve");
  ASSERT_EQ(sigs.size(), 3u);
  EXPECT_EQ(sigs[0]->file, "a.cc");
  EXPECT_EQ(sigs[1]->file, "b.cc");
  EXPECT_EQ(sigs[1]->line, 1);
  EXPECT_EQ(sigs[2]->line, 2);
  EXPECT_FALSE(sigs[1]->is_definition);
  EXPECT_TRUE(sigs[2]->is_definition);

  ASSERT_EQ(sigs[0]->params.size(), 1u);
  EXPECT_EQ(sigs[0]->params[0].name, "problem");
  // The trailing name stays in type_idents (see ParamInfo's contract).
  const std::vector<std::string> want_type = {"const", "Problem", "problem"};
  EXPECT_EQ(sigs[0]->params[0].type_idents, want_type);

  ASSERT_EQ(sigs[2]->params.size(), 2u);
  EXPECT_EQ(sigs[2]->params[1].name, "d");
  const std::vector<std::string> want_deadline = {"const", "Deadline", "d"};
  EXPECT_EQ(sigs[2]->params[1].type_idents, want_deadline);

  EXPECT_TRUE(index.SignaturesOf("NoSuchFunction").empty());
}

TEST(DeclarationIndexTest, BudgetTypeFixedPointClosesOverMembers) {
  ProgramIndex index;
  index.AddFile("t.cc",
                "struct Deadline { int reason; };\n"
                "struct SolveOptions { Deadline deadline; int sweeps; };\n"
                "struct Outer { SolveOptions options; };\n"
                "struct Plain { int a; double b; };\n");
  index.Finalize();

  // Base set, present even without a harvested definition.
  EXPECT_TRUE(index.IsBudgetType("Deadline"));
  EXPECT_TRUE(index.IsBudgetType("CancelToken"));
  EXPECT_TRUE(index.IsBudgetType("SolveBudget"));
  // Structs reach the set transitively through budget-typed members.
  EXPECT_TRUE(index.IsBudgetType("SolveOptions"));
  EXPECT_TRUE(index.IsBudgetType("Outer"));
  EXPECT_FALSE(index.IsBudgetType("Plain"));
  EXPECT_FALSE(index.IsBudgetType("int"));
}

TEST(DeclarationIndexTest, HasBudgetOverloadSeesAnySignature) {
  ProgramIndex index;
  index.AddFile("decls.cc",
                "int Simulate(int n);\n"
                "int Plain(int n);\n");
  index.AddFile("impl.cc",
                "int Simulate(int n, const Deadline& deadline) { return n; }\n");
  index.Finalize();

  EXPECT_TRUE(index.HasBudgetOverload("Simulate"));
  EXPECT_FALSE(index.HasBudgetOverload("Plain"));
  EXPECT_FALSE(index.HasBudgetOverload("Unknown"));
}

TEST(CallGraphTest, CallsFlattenArgumentChainsAndMarkDeferral) {
  ProgramIndex index;
  index.AddFile("t.cc",
                "void Run(int n) {\n"
                "  Solve(n, options.anneal);\n"
                "  auto task = [n] { Stage(n); };\n"
                "  task();\n"
                "}\n");
  index.Finalize();

  const std::vector<DefinitionInfo>& defs = index.DefinitionsIn("t.cc");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].signature.name, "Run");
  ASSERT_EQ(defs[0].calls.size(), 3u);

  EXPECT_EQ(defs[0].calls[0].callee, "Solve");
  const std::vector<std::string> want_args = {"n", "options", "anneal"};
  EXPECT_EQ(defs[0].calls[0].arg_idents, want_args);
  EXPECT_FALSE(defs[0].calls[0].deferred);

  // Stage(n) sits inside the lambda body: it runs later, not here.
  EXPECT_EQ(defs[0].calls[1].callee, "Stage");
  EXPECT_TRUE(defs[0].calls[1].deferred);

  // Invoking the lambda itself is an executed call.
  EXPECT_EQ(defs[0].calls[2].callee, "task");
  EXPECT_FALSE(defs[0].calls[2].deferred);
}

TEST(CallGraphTest, ChargesRecordMemberWritesAndSkipLambdas) {
  ProgramIndex index;
  index.AddFile("t.cc",
                "void Run(const SolveOptions& options, const Problem& p) {\n"
                "  SolveOptions stage = Narrow(p);\n"
                "  stage.deadline = options.deadline;\n"
                "  int reps = options.sweeps;\n"
                "  auto fn = [&options] { return options.sweeps; };\n"
                "}\n");
  index.Finalize();

  const std::vector<DefinitionInfo>& defs = index.DefinitionsIn("t.cc");
  ASSERT_EQ(defs.size(), 1u);
  // The lambda assignment must NOT charge `fn` — three charges only.
  ASSERT_EQ(defs[0].charges.size(), 3u);

  EXPECT_EQ(defs[0].charges[0].target, "stage");
  EXPECT_FALSE(defs[0].charges[0].member);
  const std::vector<std::string> want_init = {"Narrow", "p"};
  EXPECT_EQ(defs[0].charges[0].rhs_idents, want_init);

  EXPECT_EQ(defs[0].charges[1].target, "stage");
  EXPECT_TRUE(defs[0].charges[1].member);
  const std::vector<std::string> want_member = {"options", "deadline"};
  EXPECT_EQ(defs[0].charges[1].rhs_idents, want_member);

  EXPECT_EQ(defs[0].charges[2].target, "reps");
  EXPECT_FALSE(defs[0].charges[2].member);
}

TEST(CallGraphTest, ConstructorStyleDeclarationCharges) {
  ProgramIndex index;
  index.AddFile("t.cc",
                "void Race(const Deadline& parent) {\n"
                "  CancelToken race_token(parent);\n"
                "  Dispatch(race_token);\n"
                "}\n");
  index.Finalize();

  const std::vector<DefinitionInfo>& defs = index.DefinitionsIn("t.cc");
  ASSERT_EQ(defs.size(), 1u);
  ASSERT_EQ(defs[0].charges.size(), 1u);
  EXPECT_EQ(defs[0].charges[0].target, "race_token");
  const std::vector<std::string> want_rhs = {"parent"};
  EXPECT_EQ(defs[0].charges[0].rhs_idents, want_rhs);
}

TEST(CallGraphTest, LockAcquisitionsExcludeLambdaBodies) {
  ProgramIndex index;
  index.AddFile("t.cc",
                "void Touch() {\n"
                "  std::lock_guard<std::mutex> lock(state_mutex_);\n"
                "  pool_->Submit([&] {\n"
                "    std::lock_guard<std::mutex> task_lock(task_mutex_);\n"
                "  });\n"
                "}\n");
  index.Finalize();

  const std::vector<DefinitionInfo>& defs = index.DefinitionsIn("t.cc");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].acquires.count("state_mutex_"), 1u);
  // The task's lock is taken when the pool runs the lambda, not here.
  EXPECT_EQ(defs[0].acquires.count("task_mutex_"), 0u);
  EXPECT_FALSE(defs[0].blocks_directly);
}

TEST(CallGraphTest, DirectBlockingIsAnExecutedOnlyFact) {
  ProgramIndex index;
  index.AddFile("t.cc",
                "void Flush() { pool_->WaitFor(pending_); }\n"
                "void Defer() { pool_->Submit([&] { pool_->WaitFor(0); }); }\n");
  index.Finalize();

  const std::vector<DefinitionInfo>& defs = index.DefinitionsIn("t.cc");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].signature.name, "Flush");
  EXPECT_TRUE(defs[0].blocks_directly);
  // Defer's own stack never parks; the WaitFor belongs to the lambda (and
  // is qqo-pool-reentrancy's business, not a direct-blocking fact).
  EXPECT_EQ(defs[1].signature.name, "Defer");
  EXPECT_FALSE(defs[1].blocks_directly);
}

TEST(ProgramIndexTest, FindingsForReportsPerFileAndStaysEmptyWhenClean) {
  ProgramIndex index;
  index.AddFile("api.h",
                "int Simulate(int n);\n"
                "int Simulate(int n, const Deadline& deadline);\n");
  index.AddFile("drop.cc",
                "int Run(int n, const Deadline& deadline) {\n"
                "  return Simulate(n);\n"
                "}\n");
  index.AddFile("clean.cc",
                "int Run2(int n, const Deadline& deadline) {\n"
                "  return Simulate(n, deadline);\n"
                "}\n");
  index.Finalize();

  const std::vector<Finding>& drop = index.FindingsFor("drop.cc");
  ASSERT_EQ(drop.size(), 1u);
  EXPECT_EQ(drop[0].rule, kDeadlinePlumbingRule);
  EXPECT_EQ(drop[0].line, 2);
  EXPECT_NE(drop[0].message.find("'Run' receives a budget"),
            std::string::npos);
  EXPECT_TRUE(index.FindingsFor("clean.cc").empty());
  EXPECT_TRUE(index.FindingsFor("api.h").empty());
}

}  // namespace
}  // namespace qopt::lint
