#include <gtest/gtest.h>

#include "io/workload_io.h"
#include "mqo/mqo_generator.h"
#include "joinorder/query_graph.h"

namespace qopt {
namespace {

TEST(MqoIoTest, JsonRoundTripPreservesProblem) {
  const MqoProblem original = MakePaperExampleMqo();
  const JsonValue json = MqoProblemToJson(original);
  std::string error;
  const auto restored = MqoProblemFromJson(json, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->NumQueries(), original.NumQueries());
  EXPECT_EQ(restored->NumPlans(), original.NumPlans());
  EXPECT_EQ(restored->NumSavings(), original.NumSavings());
  for (int p = 0; p < original.NumPlans(); ++p) {
    EXPECT_DOUBLE_EQ(restored->PlanCost(p), original.PlanCost(p));
    EXPECT_EQ(restored->QueryOfPlan(p), original.QueryOfPlan(p));
  }
  EXPECT_DOUBLE_EQ(restored->SelectionCost({1, 3, 7}),
                   original.SelectionCost({1, 3, 7}));
}

TEST(MqoIoTest, FileRoundTrip) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 4;
  gen.seed = 7;
  const MqoProblem original = GenerateMqoProblem(gen);
  const std::string path = ::testing::TempDir() + "/qqo_mqo_test.json";
  ASSERT_TRUE(SaveMqoProblem(original, path));
  std::string error;
  const auto restored = LoadMqoProblem(path, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->NumPlans(), original.NumPlans());
  EXPECT_EQ(restored->NumSavings(), original.NumSavings());
}

TEST(MqoIoTest, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad : {
           R"({})",                                             // no queries
           R"({"queries": [{}]})",                              // no plans
           R"({"queries": [{"plans": []}]})",                   // empty plans
           R"({"queries": [{"plans": [{"cost": -1}]}]})",       // negative
           R"({"queries": [{"plans": [{"cost": "x"}]}]})",      // wrong type
       }) {
    const auto json = JsonValue::Parse(bad);
    ASSERT_TRUE(json.has_value()) << bad;
    EXPECT_FALSE(MqoProblemFromJson(*json, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(MqoIoTest, RejectsInvalidSavings) {
  std::string error;
  // Saving between two plans of the same query.
  const char* doc =
      R"({"queries": [{"plans": [{"cost": 1}, {"cost": 2}]}],
          "savings": [{"plan1": 0, "plan2": 1, "saving": 0.5}]})";
  const auto json = JsonValue::Parse(doc);
  ASSERT_TRUE(json.has_value());
  EXPECT_FALSE(MqoProblemFromJson(*json, &error).has_value());
}

TEST(QueryGraphIoTest, JsonRoundTripPreservesGraph) {
  const QueryGraph original = MakePaperExampleQuery();
  const JsonValue json = QueryGraphToJson(original);
  std::string error;
  const auto restored = QueryGraphFromJson(json, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->NumRelations(), original.NumRelations());
  EXPECT_EQ(restored->NumPredicates(), original.NumPredicates());
  for (int r = 0; r < original.NumRelations(); ++r) {
    EXPECT_DOUBLE_EQ(restored->Cardinality(r), original.Cardinality(r));
  }
  for (std::size_t p = 0; p < original.Predicates().size(); ++p) {
    EXPECT_DOUBLE_EQ(restored->Predicates()[p].selectivity,
                     original.Predicates()[p].selectivity);
  }
}

TEST(QueryGraphIoTest, FileRoundTrip) {
  QueryGeneratorOptions gen;
  gen.num_relations = 6;
  gen.num_predicates = 8;
  gen.seed = 11;
  const QueryGraph original = GenerateRandomQuery(gen);
  const std::string path = ::testing::TempDir() + "/qqo_graph_test.json";
  ASSERT_TRUE(SaveQueryGraph(original, path));
  std::string error;
  const auto restored = LoadQueryGraph(path, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->NumPredicates(), original.NumPredicates());
}

TEST(QueryGraphIoTest, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad : {
           R"({})",
           R"({"relations": []})",
           R"({"relations": [{"cardinality": 0.5}]})",
           R"({"relations": [{"cardinality": 10}],
               "predicates": [{"rel1": 0, "rel2": 0, "selectivity": 0.5}]})",
           R"({"relations": [{"cardinality": 10}, {"cardinality": 10}],
               "predicates": [{"rel1": 0, "rel2": 1, "selectivity": 2.0}]})",
       }) {
    const auto json = JsonValue::Parse(bad);
    ASSERT_TRUE(json.has_value()) << bad;
    EXPECT_FALSE(QueryGraphFromJson(*json, &error).has_value()) << bad;
  }
}

TEST(QueryGraphIoTest, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(LoadQueryGraph("/no/such/file.json", &error).has_value());
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

}  // namespace
}  // namespace qopt
