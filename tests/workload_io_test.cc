#include <gtest/gtest.h>

#include "io/workload_io.h"
#include "mqo/mqo_generator.h"
#include "joinorder/query_graph.h"

namespace qopt {
namespace {

TEST(MqoIoTest, JsonRoundTripPreservesProblem) {
  const MqoProblem original = MakePaperExampleMqo();
  const JsonValue json = MqoProblemToJson(original);
  const auto restored = MqoProblemFromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumQueries(), original.NumQueries());
  EXPECT_EQ(restored->NumPlans(), original.NumPlans());
  EXPECT_EQ(restored->NumSavings(), original.NumSavings());
  for (int p = 0; p < original.NumPlans(); ++p) {
    EXPECT_DOUBLE_EQ(restored->PlanCost(p), original.PlanCost(p));
    EXPECT_EQ(restored->QueryOfPlan(p), original.QueryOfPlan(p));
  }
  EXPECT_DOUBLE_EQ(restored->SelectionCost({1, 3, 7}),
                   original.SelectionCost({1, 3, 7}));
}

TEST(MqoIoTest, FileRoundTrip) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 4;
  gen.seed = 7;
  const MqoProblem original = GenerateMqoProblem(gen);
  const std::string path = ::testing::TempDir() + "/qqo_mqo_test.json";
  ASSERT_TRUE(SaveMqoProblem(original, path).ok());
  const auto restored = LoadMqoProblem(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumPlans(), original.NumPlans());
  EXPECT_EQ(restored->NumSavings(), original.NumSavings());
}

TEST(MqoIoTest, RejectsMalformedDocuments) {
  for (const char* bad : {
           R"({})",                                             // no queries
           R"({"queries": [{}]})",                              // no plans
           R"({"queries": [{"plans": []}]})",                   // empty plans
           R"({"queries": [{"plans": [{"cost": -1}]}]})",       // negative
           R"({"queries": [{"plans": [{"cost": "x"}]}]})",      // wrong type
       }) {
    const auto json = JsonValue::Parse(bad);
    ASSERT_TRUE(json.has_value()) << bad;
    const auto problem = MqoProblemFromJson(*json);
    EXPECT_FALSE(problem.ok()) << bad;
    EXPECT_FALSE(problem.status().message().empty()) << bad;
  }
}

TEST(MqoIoTest, RejectsInvalidSavings) {
  // Saving between two plans of the same query.
  const char* doc =
      R"({"queries": [{"plans": [{"cost": 1}, {"cost": 2}]}],
          "savings": [{"plan1": 0, "plan2": 1, "saving": 0.5}]})";
  const auto json = JsonValue::Parse(doc);
  ASSERT_TRUE(json.has_value());
  EXPECT_FALSE(MqoProblemFromJson(*json).ok());
}

TEST(MqoIoTest, RejectsFractionalAndHugePlanIndices) {
  // These used to hit the abort-on-CHECK AsInt(); they must be Status
  // errors naming the field now.
  for (const char* bad : {
           R"({"queries": [{"plans": [{"cost": 1}]},
                           {"plans": [{"cost": 2}]}],
               "savings": [{"plan1": 0.5, "plan2": 1, "saving": 1}]})",
           R"({"queries": [{"plans": [{"cost": 1}]},
                           {"plans": [{"cost": 2}]}],
               "savings": [{"plan1": 0, "plan2": 1e20, "saving": 1}]})",
       }) {
    const auto json = JsonValue::Parse(bad);
    ASSERT_TRUE(json.has_value()) << bad;
    const auto problem = MqoProblemFromJson(*json);
    EXPECT_FALSE(problem.ok()) << bad;
    EXPECT_NE(problem.status().message().find("savings[0]"),
              std::string::npos)
        << problem.status().ToString();
  }
}

TEST(MqoIoTest, ErrorsNameTheOffendingField) {
  const char* doc = R"({"queries": [{"plans": [{"cost": 1}]},
                                    {"plans": [{"cost": "x"}]}]})";
  const auto json = JsonValue::Parse(doc);
  ASSERT_TRUE(json.has_value());
  const auto problem = MqoProblemFromJson(*json);
  ASSERT_FALSE(problem.ok());
  EXPECT_NE(problem.status().message().find("queries[1].plans[0]"),
            std::string::npos)
      << problem.status().ToString();
}

TEST(QueryGraphIoTest, JsonRoundTripPreservesGraph) {
  const QueryGraph original = MakePaperExampleQuery();
  const JsonValue json = QueryGraphToJson(original);
  const auto restored = QueryGraphFromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumRelations(), original.NumRelations());
  EXPECT_EQ(restored->NumPredicates(), original.NumPredicates());
  for (int r = 0; r < original.NumRelations(); ++r) {
    EXPECT_DOUBLE_EQ(restored->Cardinality(r), original.Cardinality(r));
  }
  for (std::size_t p = 0; p < original.Predicates().size(); ++p) {
    EXPECT_DOUBLE_EQ(restored->Predicates()[p].selectivity,
                     original.Predicates()[p].selectivity);
  }
}

TEST(QueryGraphIoTest, FileRoundTrip) {
  QueryGeneratorOptions gen;
  gen.num_relations = 6;
  gen.num_predicates = 8;
  gen.seed = 11;
  const QueryGraph original = GenerateRandomQuery(gen);
  const std::string path = ::testing::TempDir() + "/qqo_graph_test.json";
  ASSERT_TRUE(SaveQueryGraph(original, path).ok());
  const auto restored = LoadQueryGraph(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumPredicates(), original.NumPredicates());
}

TEST(QueryGraphIoTest, RejectsMalformedDocuments) {
  for (const char* bad : {
           R"({})",
           R"({"relations": []})",
           R"({"relations": [{"cardinality": 0.5}]})",
           R"({"relations": [{"cardinality": 10}],
               "predicates": [{"rel1": 0, "rel2": 0, "selectivity": 0.5}]})",
           R"({"relations": [{"cardinality": 10}, {"cardinality": 10}],
               "predicates": [{"rel1": 0, "rel2": 1, "selectivity": 2.0}]})",
       }) {
    const auto json = JsonValue::Parse(bad);
    ASSERT_TRUE(json.has_value()) << bad;
    EXPECT_FALSE(QueryGraphFromJson(*json).ok()) << bad;
  }
}

TEST(QueryGraphIoTest, LoadReportsMissingFile) {
  const auto graph = LoadQueryGraph("/no/such/file.json");
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kNotFound);
  EXPECT_NE(graph.status().message().find("cannot read"), std::string::npos);
}

TEST(QueryGraphIoTest, SaveReportsUnwritablePath) {
  const Status status =
      SaveQueryGraph(MakePaperExampleQuery(), "/no/such/dir/graph.json");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cannot write"), std::string::npos);
}

}  // namespace
}  // namespace qopt
