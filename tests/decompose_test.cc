// Hybrid qbsolv-style decomposition (src/decompose): partition cover and
// determinism, exact-subsolver optimality pins, facade wiring
// (--decompose / OptimizerOptions::decompose), byte-identical results
// across QQO_THREADS on the large-instance workloads, decomposed-vs-plain
// SA quality, and the anytime deadline / cancellation / fault-injection
// regressions of the bugfix sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "bilp/bilp_to_qubo.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/quantum_optimizer.h"
#include "decompose/decomposer.h"
#include "decompose/partition.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_problem.h"
#include "qubo/brute_force_solver.h"
#include "qubo/qubo_model.h"

namespace qopt {
namespace {

/// Random-ish dense QUBO with negative couplings so the optimum is far
/// from the all-zeros start incumbent.
QuboModel MakeTestQubo(int n) {
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) {
    qubo.AddLinear(i, ((i % 3) - 1) * 1.5 + 0.125 * i);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if ((i * 7 + j * 3) % 4 == 0) {
        qubo.AddQuadratic(i, j, ((i + j) % 5) * 0.5 - 1.25);
      }
    }
  }
  return qubo;
}

/// Subproblem solver backed by the exact oracle (subproblems are sized to
/// fit under the brute-force cap by construction).
StatusOr<SubproblemResult> ExactSubproblemSolver(const QuboModel& subproblem,
                                                 std::uint64_t /*seed*/,
                                                 const Deadline& deadline) {
  QOPT_RETURN_IF_ERROR(deadline.Check());
  QOPT_ASSIGN_OR_RETURN(const BruteForceResult exact,
                        TrySolveQuboBruteForce(subproblem));
  SubproblemResult result;
  result.bits = exact.best_bits;
  return result;
}

TEST(PartitionTest, CoversEveryVariableExactlyOnceWithinTheSizeCap) {
  const QuboModel qubo = MakeTestQubo(57);
  const CsrAdjacency adjacency = qubo.BuildCsrAdjacency();
  const std::vector<std::vector<int>> blocks =
      PartitionQuboVariables(qubo, adjacency, /*max_block_size=*/10,
                             /*seed=*/42);
  std::set<int> seen;
  for (const std::vector<int>& block : blocks) {
    ASSERT_FALSE(block.empty());
    EXPECT_LE(static_cast<int>(block.size()), 10);
    EXPECT_TRUE(std::is_sorted(block.begin(), block.end()));
    for (int v : block) {
      EXPECT_TRUE(seen.insert(v).second) << "variable in two blocks: " << v;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), qubo.NumVariables());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), qubo.NumVariables() - 1);
  // Canonical block order: ascending by smallest member.
  for (std::size_t b = 1; b < blocks.size(); ++b) {
    EXPECT_LT(blocks[b - 1].front(), blocks[b].front());
  }
}

TEST(PartitionTest, IsAPureFunctionOfTheSeed) {
  const QuboModel qubo = MakeTestQubo(40);
  const CsrAdjacency adjacency = qubo.BuildCsrAdjacency();
  const auto a = PartitionQuboVariables(qubo, adjacency, 8, 7);
  const auto b = PartitionQuboVariables(qubo, adjacency, 8, 7);
  EXPECT_EQ(a, b);
  // Different seeds shuffle the BFS roots; on a graph this size at least
  // one boundary must move.
  const auto c = PartitionQuboVariables(qubo, adjacency, 8, 8);
  EXPECT_NE(a, c);
}

TEST(PartitionTest, PacksFragmentsUpToTheBlockCap) {
  // BFS from shuffled roots strands late roots in tiny leftover blocks;
  // the packing pass must merge those, keeping the block count near the
  // ceil(n / max) floor instead of fragmenting into dozens of singletons.
  const QueryGraph graph = GenerateChainQuery(8, 1000.0, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;
  const auto encoding = TryEncodeJoinOrderAsBilp(graph, encoder);
  ASSERT_TRUE(encoding.ok()) << encoding.status().ToString();
  const QuboModel qubo = EncodeBilpAsQubo(encoding->bilp).qubo;
  const CsrAdjacency adjacency = qubo.BuildCsrAdjacency();
  const auto blocks = PartitionQuboVariables(qubo, adjacency, 26, 3);
  const int floor_blocks = (qubo.NumVariables() + 25) / 26;
  EXPECT_LE(static_cast<int>(blocks.size()), 2 * floor_blocks);
}

TEST(DecomposeTest, OneBlockCoveringEverythingFindsTheExactOptimum) {
  // With the whole problem in a single block and an exact subsolver, the
  // very first round must land on the proven global optimum.
  const QuboModel qubo = MakeTestQubo(14);
  DecomposeOptions options;
  options.max_subproblem_size = 20;
  options.seed = 5;
  const auto result = SolveQuboDecomposed(qubo, options,
                                          ExactSubproblemSolver);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  EXPECT_NEAR(result->energy, exact.best_energy, 1e-9);
  EXPECT_EQ(result->energy, qubo.Energy(result->bits));
  EXPECT_FALSE(result->timed_out);
  EXPECT_GE(result->rounds, 1);
}

TEST(DecomposeTest, SmallBlocksStillReachTheOptimumOnAChainQubo) {
  // A 1D chain decomposes cleanly: clamped 4-variable blocks plus tabu
  // refinement must recover the global optimum across rounds.
  QuboModel qubo(16);
  for (int i = 0; i < 16; ++i) qubo.AddLinear(i, (i % 2 == 0) ? 0.5 : -0.5);
  for (int i = 0; i + 1 < 16; ++i) qubo.AddQuadratic(i, i + 1, -1.0);
  DecomposeOptions options;
  options.max_subproblem_size = 4;
  options.seed = 11;
  const auto result = SolveQuboDecomposed(qubo, options,
                                          ExactSubproblemSolver);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  EXPECT_NEAR(result->energy, exact.best_energy, 1e-9);
}

TEST(DecomposeTest, RoundEnergiesAreMonotoneAndAnchoredToTheBits) {
  const QuboModel qubo = MakeTestQubo(48);
  DecomposeOptions options;
  options.max_subproblem_size = 12;
  options.seed = 19;
  const auto result = SolveQuboDecomposed(qubo, options,
                                          ExactSubproblemSolver);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(static_cast<int>(result->round_energies.size()), result->rounds);
  for (std::size_t r = 1; r < result->round_energies.size(); ++r) {
    EXPECT_LE(result->round_energies[r], result->round_energies[r - 1] + 1e-9);
  }
  EXPECT_EQ(result->energy, result->round_energies.back());
  EXPECT_EQ(result->energy, qubo.Energy(result->bits));
  EXPECT_GT(result->subproblems, 0);
}

TEST(DecomposeTest, ResultIsByteIdenticalAcrossThreadCounts) {
  const QuboModel qubo = MakeTestQubo(60);
  DecomposeOptions options;
  options.max_subproblem_size = 10;
  options.seed = 23;
  std::vector<DecomposeResult> runs;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    const auto result = SolveQuboDecomposed(qubo, options,
                                            ExactSubproblemSolver);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status().ToString();
    runs.push_back(*result);
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].bits, runs[i].bits);
    EXPECT_EQ(runs[0].energy, runs[i].energy);
    EXPECT_EQ(runs[0].rounds, runs[i].rounds);
    EXPECT_EQ(runs[0].subproblems, runs[i].subproblems);
    EXPECT_EQ(runs[0].round_energies, runs[i].round_energies);
  }
}

TEST(DecomposeTest, MalformedInputsAreInvalidArgument) {
  const QuboModel empty(0);
  const QuboModel qubo = MakeTestQubo(8);
  DecomposeOptions options;
  EXPECT_EQ(SolveQuboDecomposed(empty, options, ExactSubproblemSolver)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.max_subproblem_size = 1;
  EXPECT_EQ(SolveQuboDecomposed(qubo, options, ExactSubproblemSolver)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.max_subproblem_size = 8;
  options.max_rounds = 0;
  EXPECT_EQ(SolveQuboDecomposed(qubo, options, ExactSubproblemSolver)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.max_rounds = 1;
  EXPECT_EQ(SolveQuboDecomposed(qubo, options, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DecomposeTest, FailedSubproblemsKeepTheIncumbentInsteadOfFailing) {
  // Every block solve dies; the decomposition must still return the
  // (unimproved) incumbent rather than surfacing the block error.
  const QuboModel qubo = MakeTestQubo(12);
  DecomposeOptions options;
  options.max_subproblem_size = 4;
  options.refine_passes = 0;  // isolate the stitch path from refinement
  options.max_rounds = 2;
  const auto result = SolveQuboDecomposed(
      qubo, options,
      [](const QuboModel&, std::uint64_t, const Deadline&)
          -> StatusOr<SubproblemResult> {
        return UnavailableError("injected block failure");
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<std::uint8_t> zeros(12, 0);
  EXPECT_EQ(result->bits, zeros);
  EXPECT_EQ(result->energy, qubo.Energy(zeros));
}

TEST(DecomposeTest, CancelledSubproblemAbortsTheWholeSolve) {
  const QuboModel qubo = MakeTestQubo(12);
  DecomposeOptions options;
  options.max_subproblem_size = 4;
  const auto result = SolveQuboDecomposed(
      qubo, options,
      [](const QuboModel&, std::uint64_t, const Deadline&)
          -> StatusOr<SubproblemResult> {
        return CancelledError("caller gave up");
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(DecomposeTest, FiredTokenSurfacesCancelledNotATruncatedResult) {
  const QuboModel qubo = MakeTestQubo(24);
  CancelToken token;
  token.Cancel();
  DecomposeOptions options;
  options.max_subproblem_size = 6;
  options.deadline = Deadline::Infinite().WithToken(&token);
  const auto result = SolveQuboDecomposed(qubo, options,
                                          ExactSubproblemSolver);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(DecomposeTest, DeadlineMidSolvePreservesTheAnytimeInvariant) {
  // Slow blocks against a short wall: the solve must come back OK and
  // timed_out with a fully stitched incumbent whose energy matches its
  // bits exactly — never a half-applied block, never an error.
  const QuboModel qubo = MakeTestQubo(40);
  DecomposeOptions options;
  options.max_subproblem_size = 5;
  options.max_rounds = 50;
  options.seed = 3;
  options.deadline = Deadline::AfterMillis(60);
  const auto result = SolveQuboDecomposed(
      qubo, options,
      [](const QuboModel& subproblem, std::uint64_t seed,
         const Deadline& deadline) -> StatusOr<SubproblemResult> {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return ExactSubproblemSolver(subproblem, seed, deadline);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timed_out);
  ASSERT_EQ(static_cast<int>(result->bits.size()), qubo.NumVariables());
  EXPECT_EQ(result->energy, qubo.Energy(result->bits));
  // The incumbent can only have moved downhill from the all-zeros start.
  EXPECT_LE(result->energy,
            qubo.Energy(std::vector<std::uint8_t>(40, 0)) + 1e-9);
}

TEST(DecomposeTest, ExpiredDeadlineAtEntryFailsFastWithNoResult) {
  const QuboModel qubo = MakeTestQubo(12);
  DecomposeOptions options;
  options.deadline = Deadline::AfterMillis(0);
  const auto result = SolveQuboDecomposed(qubo, options,
                                          ExactSubproblemSolver);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Facade wiring: OptimizerOptions::decompose through TrySolveMqo /
// TrySolveJoinOrder on the large-instance workloads.
// ---------------------------------------------------------------------------

/// Cheap per-block anneal settings so the large-instance suites stay
/// comfortably inside the test watchdog (the dispatcher clamps per-block
/// reads/sweeps from these).
OptimizerOptions CheapDecomposeOptions(int decompose, std::uint64_t seed) {
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.decompose = decompose;
  options.seed = seed;
  options.anneal.num_reads = 2;
  options.anneal.num_sweeps = 200;
  return options;
}

class DecomposeFacadeTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisarmAll(); }
};

TEST_F(DecomposeFacadeTest, RejectsDecomposeOfOne) {
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.decompose = 1;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DecomposeFacadeTest, FittingProblemsDispatchNormally) {
  // decompose only fires above the threshold: the 8-qubit paper MQO with
  // decompose=100 must take the ordinary serial path (no rounds).
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kExact;
  options.decompose = 100;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->valid);
  EXPECT_EQ(report->stats.decompose_rounds, 0);
  EXPECT_TRUE(report->stats.decompose_round_energies.empty());
}

TEST_F(DecomposeFacadeTest, FortyRelationChainIsByteIdenticalAcrossThreads) {
  // The ISSUE's headline acceptance: a join graph whose QUBO (~9.8k
  // qubits) dwarfs every backend cap solves via --decompose, and the full
  // report is byte-identical at QQO_THREADS = 1 / 2 / 8.
  const QueryGraph graph = GenerateChainQuery(40, 1000.0, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options = CheapDecomposeOptions(26, 17);

  std::vector<JoinOrderSolveReport> runs;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    const auto report = TrySolveJoinOrder(graph, encoder, options);
    ASSERT_TRUE(report.ok())
        << "threads=" << threads << ": " << report.status().ToString();
    runs.push_back(*report);
  }
  const JoinOrderSolveReport& base = runs[0];
  EXPECT_GT(base.qubits, 1000);
  EXPECT_GT(base.stats.decompose_rounds, 0);
  EXPECT_GT(base.stats.decompose_subproblems, 0);
  EXPECT_FALSE(base.stats.timed_out);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(base.bits, runs[i].bits);
    EXPECT_EQ(base.qubo_energy, runs[i].qubo_energy);
    EXPECT_EQ(base.valid, runs[i].valid);
    EXPECT_EQ(base.stats.attempts, runs[i].stats.attempts);
    EXPECT_EQ(base.stats.decompose_rounds, runs[i].stats.decompose_rounds);
    EXPECT_EQ(base.stats.decompose_subproblems,
              runs[i].stats.decompose_subproblems);
    EXPECT_EQ(base.stats.decompose_round_energies,
              runs[i].stats.decompose_round_energies);
  }
}

TEST_F(DecomposeFacadeTest, TenByTenMqoBatchIsByteIdenticalAcrossThreads) {
  MqoGeneratorOptions gen;
  gen.num_queries = 10;
  gen.plans_per_query = 10;
  gen.seed = 4;
  const MqoProblem problem = GenerateMqoProblem(gen);
  OptimizerOptions options = CheapDecomposeOptions(26, 29);

  std::vector<MqoSolveReport> runs;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    const auto report = TrySolveMqo(problem, options);
    ASSERT_TRUE(report.ok())
        << "threads=" << threads << ": " << report.status().ToString();
    runs.push_back(*report);
  }
  const MqoSolveReport& base = runs[0];
  EXPECT_EQ(base.qubits, 100);
  EXPECT_GT(base.stats.decompose_rounds, 0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(base.bits, runs[i].bits);
    EXPECT_EQ(base.qubo_energy, runs[i].qubo_energy);
    EXPECT_EQ(base.valid, runs[i].valid);
    EXPECT_EQ(base.stats.decompose_rounds, runs[i].stats.decompose_rounds);
    EXPECT_EQ(base.stats.decompose_round_energies,
              runs[i].stats.decompose_round_energies);
  }
}

TEST_F(DecomposeFacadeTest, DecomposedBeatsPlainSaAtEqualPerAttemptBudget) {
  // The quality claim from the ISSUE: on a 20-relation chain (~2.4k
  // qubits) the decomposed solve must reach an energy at least as low as
  // one plain SA attempt run with the same anneal settings and seed.
  const QueryGraph graph = GenerateChainQuery(20, 1000.0, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;

  OptimizerOptions plain;
  plain.backend = Backend::kSimulatedAnnealing;
  plain.seed = 13;
  plain.anneal.num_reads = 8;
  plain.anneal.num_sweeps = 1000;
  const auto plain_report = TrySolveJoinOrder(graph, encoder, plain);
  ASSERT_TRUE(plain_report.ok()) << plain_report.status().ToString();

  OptimizerOptions decomposed = plain;
  decomposed.decompose = 26;
  const auto decomposed_report =
      TrySolveJoinOrder(graph, encoder, decomposed);
  ASSERT_TRUE(decomposed_report.ok())
      << decomposed_report.status().ToString();

  EXPECT_GT(decomposed_report->stats.decompose_rounds, 0);
  EXPECT_LE(decomposed_report->qubo_energy, plain_report->qubo_energy + 1e-9);
}

TEST_F(DecomposeFacadeTest, DeadlineMidDecomposeReportsTimedOutDegraded) {
  // Satellite regression: a deadline that lands mid-round must yield an
  // OK, degraded, timed_out report carrying the best incumbent — the
  // same anytime contract the plain SA path honors.
  const QueryGraph graph = GenerateChainQuery(20, 1000.0, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.decompose = 26;
  options.seed = 31;
  options.anneal.num_reads = 8;
  options.anneal.num_sweeps = 1000;
  options.budget.deadline = Deadline::AfterMillis(80);
  const auto report = TrySolveJoinOrder(graph, encoder, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->stats.timed_out);
  EXPECT_TRUE(report->degraded);
  EXPECT_FALSE(report->degradation_reason.empty());
  EXPECT_FALSE(report->bits.empty());
}

TEST_F(DecomposeFacadeTest, MidDecomposeCancellationReturnsCancelled) {
  const QueryGraph graph = GenerateChainQuery(20, 1000.0, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.decompose = 26;
  options.seed = 31;
  options.anneal.num_reads = 8;
  options.anneal.num_sweeps = 2000;
  CancelToken token;
  options.budget.deadline = Deadline::Infinite().WithToken(&token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    token.Cancel();
  });
  const auto report = TrySolveJoinOrder(graph, encoder, options);
  canceller.join();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
}

TEST_F(DecomposeFacadeTest, FaultedSubproblemDegradesGracefully) {
  // A fault-killed block keeps its incumbent for the round; the overall
  // decomposed solve must still succeed.
  FaultInjection::Instance().Arm("decompose.subproblem",
                                 UnavailableError("injected block death"),
                                 /*after_n=*/0, /*times=*/3);
  MqoGeneratorOptions gen;
  gen.num_queries = 10;
  gen.plans_per_query = 10;
  gen.seed = 4;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const OptimizerOptions options = CheapDecomposeOptions(26, 29);
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->stats.decompose_rounds, 0);
}

}  // namespace
}  // namespace qopt
