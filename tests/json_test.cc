#include <gtest/gtest.h>

#include "common/json.h"

namespace qopt {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->IsNull());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-0.25e2")->AsNumber(), -25.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const auto value = JsonValue::Parse("  {\n \"a\" : [ 1 , 2 ] }\t");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Find("a")->Size(), 2u);
}

TEST(JsonParseTest, NestedStructures) {
  const auto value = JsonValue::Parse(
      R"({"x": {"y": [1, {"z": true}, null]}, "w": "s"})");
  ASSERT_TRUE(value.has_value());
  const JsonValue* x = value->Find("x");
  ASSERT_NE(x, nullptr);
  const JsonValue* y = x->Find("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->Size(), 3u);
  EXPECT_TRUE(y->At(1).Find("z")->AsBool());
  EXPECT_TRUE(y->At(2).IsNull());
}

TEST(JsonParseTest, StringEscapes) {
  const auto value = JsonValue::Parse(R"("a\"b\\c\nd\te")");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->AsString(), "a\"b\\c\nd\te");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string error;
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "[1] garbage", "{\"a\":1,}x", "nul", "\"\x01\""}) {
    EXPECT_FALSE(JsonValue::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Parse("[]")->Size(), 0u);
  EXPECT_EQ(JsonValue::Parse("{}")->Size(), 0u);
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const char* doc = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  const auto value = JsonValue::Parse(doc);
  ASSERT_TRUE(value.has_value());
  const auto reparsed = JsonValue::Parse(value->Dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Dump(), value->Dump());
}

TEST(JsonDumpTest, PrettyOutputReparses) {
  JsonValue object = JsonValue::Object();
  object.Set("list", JsonValue::Array());
  JsonValue* unused = nullptr;
  (void)unused;
  JsonValue list = JsonValue::Array();
  list.Append(JsonValue::Number(1));
  list.Append(JsonValue::String("two"));
  object.Set("list", std::move(list));
  object.Set("flag", JsonValue::Bool(true));
  const std::string pretty = object.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto reparsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Dump(), object.Dump());
}

TEST(JsonDumpTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-3.0).Dump(), "-3");
  EXPECT_EQ(JsonValue::Number(0.5).Dump(), "0.5");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue::String("a\"b\nc").Dump(), R"("a\"b\nc")");
}

TEST(JsonValueTest, AsIntValidation) {
  EXPECT_EQ(JsonValue::Parse("7")->AsInt(), 7);
  EXPECT_EQ(JsonValue::Parse("-7")->AsInt(), -7);
}

TEST(JsonValueTest, FindOnMissingKeyReturnsNull) {
  const auto value = JsonValue::Parse(R"({"a": 1})");
  EXPECT_EQ(value->Find("b"), nullptr);
  EXPECT_TRUE(value->Has("a"));
  EXPECT_FALSE(value->Has("b"));
}

TEST(JsonFileTest, ReadWriteRoundTrip) {
  const std::string path = ::testing::TempDir() + "/qqo_json_test.json";
  ASSERT_TRUE(WriteStringToFile(path, "{\"k\": [1, 2]}"));
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.has_value());
  const auto value = JsonValue::Parse(*content);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Find("k")->Size(), 2u);
}

TEST(JsonFileTest, MissingFileYieldsNullopt) {
  EXPECT_FALSE(ReadFileToString("/nonexistent/qqo/file.json").has_value());
}

}  // namespace
}  // namespace qopt
