#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include "anneal/minor_embedder.h"
#include "anneal/pegasus.h"
#include "anneal/simulated_annealer.h"
#include "common/status.h"
#include "core/quantum_optimizer.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/adiabatic.h"
#include "variational/variational_solver.h"

namespace qopt {
namespace {

/// Every test leaves the registry clean so ordering cannot leak faults.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisarmAll(); }
};

QuboModel SmallQubo() {
  QuboModel qubo(4);
  qubo.AddLinear(0, 1.0);
  qubo.AddLinear(1, -2.0);
  qubo.AddQuadratic(0, 1, 1.5);
  qubo.AddQuadratic(1, 2, -0.5);
  qubo.AddQuadratic(2, 3, 2.0);
  return qubo;
}

// --- Registry semantics -----------------------------------------------------

TEST_F(FaultInjectionTest, DisarmedSiteFiresNothing) {
  EXPECT_FALSE(FaultInjection::AnyArmed());
  EXPECT_TRUE(CheckFaultPoint("annealer.sweep").ok());
  EXPECT_EQ(FaultInjection::Instance().PassCount("annealer.sweep"), 0);
}

TEST_F(FaultInjectionTest, ArmedSiteFiresAfterNPassesForMTimes) {
  auto& registry = FaultInjection::Instance();
  registry.Arm("test.site", InternalError("boom"), /*after_n=*/2, /*times=*/2);
  EXPECT_TRUE(FaultInjection::AnyArmed());
  EXPECT_TRUE(registry.Fire("test.site").ok());   // pass 1
  EXPECT_TRUE(registry.Fire("test.site").ok());   // pass 2
  EXPECT_EQ(registry.Fire("test.site").code(), StatusCode::kInternal);
  EXPECT_EQ(registry.Fire("test.site").code(), StatusCode::kInternal);
  // Budget exhausted: the site auto-disarmed; later passes are neither
  // intercepted nor counted (the disarmed fast path skips the registry).
  EXPECT_TRUE(registry.Fire("test.site").ok());
  EXPECT_FALSE(FaultInjection::AnyArmed());
  EXPECT_EQ(registry.PassCount("test.site"), 4);
}

TEST_F(FaultInjectionTest, UnlimitedTimesKeepsFiringUntilDisarmed) {
  auto& registry = FaultInjection::Instance();
  registry.Arm("test.site", UnavailableError("flaky"), 0, /*times=*/-1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(registry.Fire("test.site").code(), StatusCode::kUnavailable);
  }
  registry.Disarm("test.site");
  EXPECT_TRUE(registry.Fire("test.site").ok());
  EXPECT_FALSE(FaultInjection::AnyArmed());
}

TEST_F(FaultInjectionTest, ReArmingReplacesTheRule) {
  auto& registry = FaultInjection::Instance();
  registry.Arm("test.site", InternalError("a"), 0, 1);
  registry.Arm("test.site", NotFoundError("b"), 1, 1);
  EXPECT_TRUE(registry.Fire("test.site").ok());  // after_n reset to 1
  EXPECT_EQ(registry.Fire("test.site").code(), StatusCode::kNotFound);
}

TEST_F(FaultInjectionTest, ArmFromSpecParsesAndArms) {
  auto& registry = FaultInjection::Instance();
  ASSERT_TRUE(registry
                  .ArmFromSpec("site.a:0:unavailable,site.b:1:internal")
                  .ok());
  EXPECT_EQ(registry.ArmedSites().size(), 2u);
  EXPECT_EQ(registry.Fire("site.a").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(registry.Fire("site.b").ok());
  EXPECT_EQ(registry.Fire("site.b").code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, ArmFromSpecRejectsGarbage) {
  auto& registry = FaultInjection::Instance();
  EXPECT_FALSE(registry.ArmFromSpec("missing-colons").ok());
  EXPECT_FALSE(registry.ArmFromSpec("site:notanumber:internal").ok());
  EXPECT_FALSE(registry.ArmFromSpec("site:0:no_such_status").ok());
  EXPECT_FALSE(registry.ArmFromSpec("site:0:ok").ok());
  EXPECT_EQ(registry.ArmedSites().size(), 0u);
}

// --- Recovery paths, one per catalog site -----------------------------------

TEST_F(FaultInjectionTest, EmbedderAttemptFaultConsumesOneRetry) {
  // First attempt eats the injected transient fault; the re-seeded second
  // attempt still finds the (trivial) embedding.
  FaultInjection::Instance().Arm("embedder.attempt",
                                 UnavailableError("injected"), 0, 1);
  SimpleGraph source(3);
  source.AddEdge(0, 1);
  source.AddEdge(1, 2);
  const SimpleGraph target = MakePegasus(2);
  EmbedOptions options;
  options.tries = 3;
  options.seed = 5;
  StatusOr<Embedding> embedding =
      TryFindMinorEmbedding(source, target, options);
  // Success proves the recovery: the injected fault consumed attempt 1
  // (the one recorded pass before auto-disarm), and a later re-seeded
  // attempt embedded anyway.
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_EQ(FaultInjection::Instance().PassCount("embedder.attempt"), 1);
}

TEST_F(FaultInjectionTest, EmbedderNonRetryableFaultSurfacesVerbatim) {
  FaultInjection::Instance().Arm("embedder.attempt",
                                 InternalError("injected hard fault"), 0, 1);
  SimpleGraph source(3);
  source.AddEdge(0, 1);
  source.AddEdge(1, 2);
  StatusOr<Embedding> embedding =
      TryFindMinorEmbedding(source, MakePegasus(2), EmbedOptions{});
  ASSERT_FALSE(embedding.ok());
  EXPECT_EQ(embedding.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, AnnealerSweepFaultFailsTheRead) {
  FaultInjection::Instance().Arm("annealer.sweep",
                                 InternalError("injected"), 0, 1);
  AnnealOptions options;
  options.num_reads = 2;
  options.num_sweeps = 50;
  options.seed = 3;
  StatusOr<AnnealResult> result = TrySolveQuboWithAnnealing(SmallQubo(),
                                                            options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, AnnealerSweepFaultRecoversViaFacadeRetry) {
  // One transient sweep fault: attempt 1 fails, the re-seeded attempt 2
  // runs clean — the facade's retry-with-backoff recovery path.
  FaultInjection::Instance().Arm("annealer.sweep",
                                 UnavailableError("injected transient"), 0, 1);
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 4;
  options.anneal.num_sweeps = 100;
  options.seed = 7;
  options.budget.retry.max_attempts = 2;
  StatusOr<MqoSolveReport> report = TrySolveMqo(MakePaperExampleMqo(),
                                                options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->valid);
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(report->stats.attempts, 2);
}

TEST_F(FaultInjectionTest, RetryBackoffCountsTowardElapsedMs) {
  // stats.elapsed_ms is the wall clock of the WHOLE dispatch — attempts
  // plus the backoff waits between them — not just backend compute time.
  FaultInjection::Instance().Arm("annealer.sweep",
                                 UnavailableError("injected transient"), 0, 1);
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 2;
  options.anneal.num_sweeps = 50;
  options.seed = 7;
  options.budget.retry.max_attempts = 2;
  options.budget.retry.initial_backoff_ms = 80.0;
  StatusOr<MqoSolveReport> report = TrySolveMqo(MakePaperExampleMqo(),
                                                options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.attempts, 2);
  // The jitter floor is 0.5x, so the one backoff alone is >= 40 ms.
  EXPECT_GE(report->stats.elapsed_ms, 40.0);
}

TEST_F(FaultInjectionTest, TranspileRouteFaultAbortsTheTranspile) {
  FaultInjection::Instance().Arm("transpile.route",
                                 InternalError("injected"), 0, 1);
  QuantumCircuit circuit(3);
  circuit.Cx(0, 2);
  circuit.Cx(1, 2);
  StatusOr<TranspileResult> result =
      TryTranspile(circuit, MakeMumbai27(), TranspileOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // Disarmed again (times=1 consumed): the same call now succeeds — the
  // deterministic-trigger property recovery tests rely on.
  StatusOr<TranspileResult> retry =
      TryTranspile(circuit, MakeMumbai27(), TranspileOptions{});
  EXPECT_TRUE(retry.ok());
}

TEST_F(FaultInjectionTest, StatevectorAllocFaultDegradesQaoaToClassical) {
  FaultInjection::Instance().Arm("statevector.alloc",
                                 ResourceExhaustedError("injected"), 0, -1);
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.variational.max_iterations = 20;
  options.variational.shots = 64;
  options.seed = 2;
  StatusOr<MqoSolveReport> report = TrySolveMqo(MakePaperExampleMqo(),
                                                options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->valid);
  EXPECT_TRUE(report->degraded);
  EXPECT_NE(report->backend_used, Backend::kQaoa);
  FaultInjection::Instance().DisarmAll();
}

TEST_F(FaultInjectionTest, StatevectorAllocFaultFailsAdiabaticDirectly) {
  FaultInjection::Instance().Arm("statevector.alloc",
                                 ResourceExhaustedError("injected"), 0, 1);
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(MakePaperExampleMqo());
  AdiabaticOptions options;
  options.steps = 10;
  options.shots = 8;
  StatusOr<AdiabaticResult> result =
      TrySolveQuboAdiabatically(encoding.qubo, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultInjectionTest, NonRetryableBackendFaultStillFallsBackClassically) {
  // An internal VQE fault is not retryable, but the classical fallback
  // still rescues the solve and reports why.
  FaultInjection::Instance().Arm("statevector.alloc",
                                 InternalError("injected vqe fault"), 0, -1);
  OptimizerOptions options;
  options.backend = Backend::kVqe;
  options.variational.max_iterations = 20;
  options.seed = 4;
  StatusOr<MqoSolveReport> report = TrySolveMqo(MakePaperExampleMqo(),
                                                options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_NE(report->degradation_reason.find("injected vqe fault"),
            std::string::npos);
  FaultInjection::Instance().DisarmAll();
}

TEST_F(FaultInjectionTest, NoFallbackSurfacesTheInjectedFault) {
  FaultInjection::Instance().Arm("statevector.alloc",
                                 InternalError("injected"), 0, -1);
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.classical_fallback = false;
  StatusOr<MqoSolveReport> report = TrySolveMqo(MakePaperExampleMqo(),
                                                options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  FaultInjection::Instance().DisarmAll();
}

}  // namespace
}  // namespace qopt
