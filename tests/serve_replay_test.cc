// Deterministic replay harness for qqo_serve: streams the request corpus
// in tests/data/serve/ through fresh Server instances at QQO_THREADS-
// equivalent pool sizes 1 / 2 / 8 and byte-compares the full response
// streams. The corpus mixes valid solves, a duplicate (exact cache hit),
// an isomorphic relabeling (canonical-form hit), malformed / oversized /
// invalid-workload requests, a pre-cancel pair, a zero-budget timeout and
// a trailing stats barrier — so equality pins in-order emission, single-
// flight coalescing, the stats barrier and the stable metrics snapshot
// all at once.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace qopt::serve {
namespace {

std::string LoadCorpus() {
  const std::string path = std::string(QQO_TEST_DATA_DIR) +
                           "/serve/corpus.jsonl";
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "missing corpus: " << path;
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

/// One full serve session over the corpus on a pool of `threads`. Metrics
/// are reset per run: the stats response embeds the stable snapshot, which
/// must be a pure function of the request history, not of prior runs.
std::string RunCorpus(const std::string& corpus, int threads) {
  obs::Metrics::Instance().Reset();
  obs::Metrics::Instance().Enable();
  ThreadPool pool(threads);
  ScopedDefaultPool guard(&pool);
  ServerOptions options;
  options.max_line_bytes = 4096;  // The corpus carries a >4KiB line.
  Server server(options);
  std::istringstream in(corpus);
  std::ostringstream out;
  const Status status = server.Serve(in, out);
  obs::Metrics::Instance().Disable();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ServeReplayTest, ResponseStreamByteIdenticalAcrossPoolSizes) {
  const std::string corpus = LoadCorpus();
  ASSERT_FALSE(corpus.empty());
  const std::string serial = RunCorpus(corpus, 1);
  const std::string two = RunCorpus(corpus, 2);
  const std::string eight = RunCorpus(corpus, 8);
  EXPECT_EQ(serial, two) << "2-thread replay diverged from serial";
  EXPECT_EQ(serial, eight) << "8-thread replay diverged from serial";
}

TEST(ServeReplayTest, CorpusExercisesTheAdvertisedPaths) {
  const std::string corpus = LoadCorpus();
  const std::string output = RunCorpus(corpus, 2);
  const std::vector<std::string> responses = SplitLines(output);
  const std::vector<std::string> requests = SplitLines(corpus);
  // Exactly one response line per request line, in request order.
  ASSERT_EQ(responses.size(), requests.size());

  int cached = 0, errors = 0;
  for (const std::string& line : responses) {
    if (line.find("\"cached\":true") != std::string::npos) ++cached;
    if (line.find("\"ok\":false") != std::string::npos) ++errors;
  }
  // m2 replays m1 byte-for-byte (exact) and m3 hits through the canonical
  // form (isomorphic).
  EXPECT_EQ(cached, 2);
  // x1 (malformed), b2 (bad seed type), b3 (unknown type), b4 (unknown
  // field), m9 (pre-cancelled), b5 (invalid workload), t1 (zero budget,
  // no fallback), big1 (oversized).
  EXPECT_EQ(errors, 8);

  // The exact and isomorphic hits agree on the optimum they replay.
  EXPECT_NE(output.find("\"cost\":9"), std::string::npos);
  // Structured error codes, not crashes: the oversized line names the
  // limit and the pre-cancelled solve reports CANCELLED.
  EXPECT_NE(output.find("RESOURCE_EXHAUSTED"), std::string::npos);
  EXPECT_NE(output.find("CANCELLED"), std::string::npos);
  EXPECT_NE(output.find("INVALID_ARGUMENT"), std::string::npos);
  // The trailing stats barrier reports both cache hit kinds.
  const std::string& stats = responses.back();
  EXPECT_NE(stats.find("\"hits_exact\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"hits_isomorphic\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"rejections\":0"), std::string::npos) << stats;
}

}  // namespace
}  // namespace qopt::serve
