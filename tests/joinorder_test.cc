#include <gtest/gtest.h>

#include <cmath>

#include "anneal/simulated_annealer.h"
#include "common/random.h"
#include "bilp/bilp_branch_and_bound.h"
#include "bilp/bilp_problem.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

/// The worked example of Sec. 6.1.2: relations A, B, C with 10 tuples
/// each, one predicate A-B with selectivity 0.1, one threshold value 10.
QueryGraph MakeSection612Example() {
  QueryGraph graph({10.0, 10.0, 10.0});
  graph.AddPredicate(0, 1, 0.1);
  return graph;
}

// --- Query graph -------------------------------------------------------------

TEST(QueryGraphTest, BasicAccessors) {
  const QueryGraph graph = MakePaperExampleQuery();
  EXPECT_EQ(graph.NumRelations(), 3);
  EXPECT_EQ(graph.NumPredicates(), 2);
  EXPECT_EQ(graph.NumJoins(), 2);
  EXPECT_DOUBLE_EQ(graph.Cardinality(0), 10.0);
  EXPECT_DOUBLE_EQ(graph.Cardinality(2), 1000.0);
}

TEST(QueryGraphTest, SelectivityAgainstSet) {
  const QueryGraph graph = MakePaperExampleQuery();
  // S against {R}: predicate RS applies.
  EXPECT_DOUBLE_EQ(graph.SelectivityAgainst(1, {true, false, false}), 0.1);
  // S against {R, T}: both predicates apply.
  EXPECT_DOUBLE_EQ(graph.SelectivityAgainst(1, {true, false, true}), 0.005);
  // T against {R}: cross product.
  EXPECT_DOUBLE_EQ(graph.SelectivityAgainst(2, {true, false, false}), 1.0);
}

TEST(QueryGraphTest, RandomGeneratorShape) {
  QueryGeneratorOptions gen;
  gen.num_relations = 8;
  gen.num_predicates = 14;  // 2J
  gen.seed = 5;
  const QueryGraph graph = GenerateRandomQuery(gen);
  EXPECT_EQ(graph.NumRelations(), 8);
  EXPECT_EQ(graph.NumPredicates(), 14);
  // All predicate pairs distinct.
  for (std::size_t a = 0; a < graph.Predicates().size(); ++a) {
    for (std::size_t b = a + 1; b < graph.Predicates().size(); ++b) {
      const auto& pa = graph.Predicates()[a];
      const auto& pb = graph.Predicates()[b];
      EXPECT_FALSE(pa.rel1 == pb.rel1 && pa.rel2 == pb.rel2);
    }
  }
}

TEST(QueryGraphTest, ChainAndStarGenerators) {
  const QueryGraph chain = GenerateChainQuery(5, 100.0, 0.1);
  EXPECT_EQ(chain.NumPredicates(), 4);
  const QueryGraph star = GenerateStarQuery(5, 100.0, 0.1);
  EXPECT_EQ(star.NumPredicates(), 4);
  for (const auto& p : star.Predicates()) EXPECT_EQ(p.rel1, 0);
}

// --- Cost function (Table 3) ----------------------------------------------------

TEST(CoutCostTest, PaperTable3Values) {
  const QueryGraph graph = MakePaperExampleQuery();
  EXPECT_DOUBLE_EQ(CoutCost(graph, {0, 1, 2}), 51000.0);   // (R|><|S)|><|T
  EXPECT_DOUBLE_EQ(CoutCost(graph, {0, 2, 1}), 60000.0);   // (R|><|T)|><|S
  EXPECT_DOUBLE_EQ(CoutCost(graph, {1, 2, 0}), 100000.0);  // (S|><|T)|><|R
}

TEST(CoutCostTest, FirstPairOrderIrrelevant) {
  const QueryGraph graph = MakePaperExampleQuery();
  EXPECT_DOUBLE_EQ(CoutCost(graph, {0, 1, 2}), CoutCost(graph, {1, 0, 2}));
}

TEST(CoutCostTest, ExcludingFinalJoinDropsLastTerm) {
  const QueryGraph graph = MakePaperExampleQuery();
  EXPECT_DOUBLE_EQ(CoutCost(graph, {0, 1, 2}, false), 1000.0);
}

TEST(CoutCostTest, IntermediateCardinality) {
  const QueryGraph graph = MakePaperExampleQuery();
  EXPECT_DOUBLE_EQ(IntermediateCardinality(graph, {0, 1}), 1000.0);
  EXPECT_DOUBLE_EQ(IntermediateCardinality(graph, {0, 1, 2}), 50000.0);
  EXPECT_DOUBLE_EQ(IntermediateCardinality(graph, {0, 2}), 10000.0);
}

TEST(JoinOrderTest, Validation) {
  const QueryGraph graph = MakePaperExampleQuery();
  EXPECT_TRUE(IsValidJoinOrder(graph, {2, 0, 1}));
  EXPECT_FALSE(IsValidJoinOrder(graph, {0, 1}));
  EXPECT_FALSE(IsValidJoinOrder(graph, {0, 1, 1}));
  EXPECT_FALSE(IsValidJoinOrder(graph, {0, 1, 3}));
}

// --- Classical baselines -----------------------------------------------------------

TEST(JoinOrderBaselinesTest, ExhaustiveFindsTable3Optimum) {
  const QueryGraph graph = MakePaperExampleQuery();
  const JoinOrderSolution best = SolveJoinOrderExhaustive(graph);
  EXPECT_DOUBLE_EQ(best.cost, 51000.0);
}

class JoinOrderDpParamTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinOrderDpParamTest, DpMatchesExhaustive) {
  QueryGeneratorOptions gen;
  gen.num_relations = 6;
  gen.num_predicates = 5 + (GetParam() % 4);
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 10000.0;
  gen.selectivity_min = 0.001;
  gen.selectivity_max = 0.9;
  gen.seed = GetParam();
  const QueryGraph graph = GenerateRandomQuery(gen);
  const JoinOrderSolution exhaustive = SolveJoinOrderExhaustive(graph);
  const JoinOrderSolution dp = SolveJoinOrderDp(graph);
  EXPECT_TRUE(IsValidJoinOrder(graph, dp.order));
  EXPECT_NEAR(dp.cost / exhaustive.cost, 1.0, 1e-9);
}

TEST_P(JoinOrderDpParamTest, GreedyIsValidAndNotBetterThanOptimal) {
  QueryGeneratorOptions gen;
  gen.num_relations = 7;
  gen.num_predicates = 6 + (GetParam() % 5);
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 100000.0;
  gen.selectivity_min = 0.0001;
  gen.selectivity_max = 1.0;
  gen.seed = GetParam() + 40;
  const QueryGraph graph = GenerateRandomQuery(gen);
  const JoinOrderSolution greedy = SolveJoinOrderGreedy(graph);
  const JoinOrderSolution dp = SolveJoinOrderDp(graph);
  EXPECT_TRUE(IsValidJoinOrder(graph, greedy.order));
  EXPECT_GE(greedy.cost, dp.cost * (1.0 - 1e-12));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JoinOrderDpParamTest,
                         ::testing::Range(0, 10));

// --- Resource-count formulas (Eq. 45-54, Table 4) -----------------------------------

TEST(ResourceCountTest, Table4Problem1) {
  const auto counts = CountJoinOrderQubits(3, 3, 1, 1.0);
  EXPECT_EQ(counts.logical, 16);
  EXPECT_EQ(counts.single_slack, 12);
  EXPECT_EQ(counts.expansion_slack, 2);
  EXPECT_EQ(counts.total, 30);
}

TEST(ResourceCountTest, Table4Problem2) {
  const auto counts = CountJoinOrderQubits(3, 0, 4, 1.0);
  EXPECT_EQ(counts.logical, 16);
  EXPECT_EQ(counts.single_slack, 6);
  EXPECT_EQ(counts.expansion_slack, 8);
  EXPECT_EQ(counts.total, 30);
}

TEST(ResourceCountTest, Table4Problem3) {
  const auto counts = CountJoinOrderQubits(3, 0, 1, 0.001);
  EXPECT_EQ(counts.logical, 13);
  EXPECT_EQ(counts.single_slack, 6);
  EXPECT_EQ(counts.expansion_slack, 11);
  EXPECT_EQ(counts.total, 30);
}

TEST(ResourceCountTest, Figure12ReferencePoint) {
  // T = 20, P = J = 19, R = 20, omega = 1 -> 3886 qubits (~4000 in Fig. 12).
  const auto counts = CountJoinOrderQubits(20, 19, 20, 1.0);
  EXPECT_EQ(counts.total, 3886);
}

TEST(ResourceCountTest, Figure11ReferencePoint) {
  // T = 42, P = J = 41, R = 1, omega = 1: about 10,000 qubits.
  const auto counts = CountJoinOrderQubits(42, 41, 1, 1.0);
  EXPECT_GT(counts.total, 9500);
  EXPECT_LT(counts.total, 11000);
}

TEST(ResourceCountTest, MorePredicatesMoreQubits) {
  const auto p1 = CountJoinOrderQubits(20, 19, 1, 1.0);
  const auto p2 = CountJoinOrderQubits(20, 38, 1, 1.0);
  const auto p3 = CountJoinOrderQubits(20, 57, 1, 1.0);
  EXPECT_LT(p1.total, p2.total);
  EXPECT_LT(p2.total, p3.total);
}

TEST(ResourceCountTest, SmallerOmegaMoreQubits) {
  const auto coarse = CountJoinOrderQubits(20, 19, 10, 1.0);
  const auto fine = CountJoinOrderQubits(20, 19, 10, 0.0001);
  EXPECT_GT(fine.total, coarse.total);
  EXPECT_EQ(fine.logical, coarse.logical);  // omega only affects slacks
}

// --- BILP encoder --------------------------------------------------------------------

TEST(JoinOrderEncoderTest, VariableCountsMatchClosedForm) {
  for (const auto& [t, p, r, decimals] :
       std::vector<std::tuple<int, int, int, int>>{
           {3, 3, 1, 0}, {3, 0, 4, 0}, {3, 0, 1, 3}, {4, 3, 2, 1},
           {5, 4, 3, 0}, {6, 5, 1, 2}}) {
    QueryGeneratorOptions gen;
    gen.num_relations = t;
    gen.num_predicates = p;
    gen.seed = 7;
    QueryGraph graph = p >= t - 1
                           ? GenerateRandomQuery(gen)
                           : QueryGraph(std::vector<double>(t, 10.0));
    JoinOrderEncoderOptions options;
    options.thresholds.clear();
    for (int i = 0; i < r; ++i) {
      options.thresholds.push_back(10.0 * (i + 1));
    }
    options.precision_decimals = decimals;
    const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
    const auto counts = CountJoinOrderQubits(t, graph.NumPredicates(), r,
                                             encoding.omega, 10.0);
    EXPECT_EQ(encoding.num_logical, counts.logical);
    EXPECT_EQ(encoding.num_single_slacks, counts.single_slack);
    EXPECT_EQ(encoding.num_expansion_slacks, counts.expansion_slack);
    EXPECT_EQ(encoding.bilp.NumVariables(), counts.total);
  }
}

TEST(JoinOrderEncoderTest, PruningRemovesUnreachableThresholds) {
  QueryGraph graph({10.0, 10.0, 10.0, 10.0});
  JoinOrderEncoderOptions base;
  base.thresholds = {10.0, 1e6};  // 1e6 unreachable: max card is 10^4
  const JoinOrderEncoding unpruned = EncodeJoinOrderAsBilp(graph, base);
  JoinOrderEncoderOptions pruning = base;
  pruning.prune_unreachable_cto = true;
  const JoinOrderEncoding pruned = EncodeJoinOrderAsBilp(graph, pruning);
  EXPECT_LT(pruned.bilp.NumVariables(), unpruned.bilp.NumVariables());
}

TEST(JoinOrderEncoderTest, BranchAndBoundFindsOptimalOrderOnExample) {
  const QueryGraph graph = MakeSection612Example();
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  options.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  const auto solution = SolveBilpBranchAndBound(encoding.bilp);
  ASSERT_TRUE(solution.has_value());
  // Optimal orders keep the intermediate cardinality at 10 = threshold, so
  // no threshold variable fires.
  EXPECT_NEAR(solution->objective, 0.0, 1e-9);
  std::vector<int> order;
  ASSERT_TRUE(DecodeJoinOrder(encoding, solution->bits, &order));
  // A (0) and B (1) must be joined first in some order.
  EXPECT_TRUE((order[0] == 0 && order[1] == 1) ||
              (order[0] == 1 && order[1] == 0))
      << order[0] << "," << order[1] << "," << order[2];
}

TEST(JoinOrderEncoderTest, SuboptimalOrdersPayThresholdPenalty) {
  const QueryGraph graph = MakeSection612Example();
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  options.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  // Enumerate all feasible assignments with branch and bound repeatedly is
  // overkill; instead check the objective structure: delta theta for the
  // single threshold is 10.
  EXPECT_DOUBLE_EQ(
      encoding.bilp.ObjectiveCoefficient(encoding.cto[0][1]), 10.0);
  EXPECT_EQ(encoding.cto[0][0], -1);  // pruned for the first join
}

TEST(JoinOrderEncoderTest, DecodeRejectsNonPermutations) {
  const QueryGraph graph = MakeSection612Example();
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, {});
  std::vector<std::uint8_t> bits(
      static_cast<std::size_t>(encoding.bilp.NumVariables()), 0);
  std::vector<int> order;
  EXPECT_FALSE(DecodeJoinOrder(encoding, bits, &order));  // nothing selected
  bits[static_cast<std::size_t>(encoding.tio[0][0])] = 1;
  bits[static_cast<std::size_t>(encoding.tii[0][0])] = 1;  // reuses relation 0
  bits[static_cast<std::size_t>(encoding.tii[1][1])] = 1;
  EXPECT_FALSE(DecodeJoinOrder(encoding, bits, &order));
}

TEST(JoinOrderEncoderTest, DecodeAcceptsValidAssignment) {
  const QueryGraph graph = MakeSection612Example();
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, {});
  std::vector<std::uint8_t> bits(
      static_cast<std::size_t>(encoding.bilp.NumVariables()), 0);
  bits[static_cast<std::size_t>(encoding.tio[2][0])] = 1;
  bits[static_cast<std::size_t>(encoding.tii[0][0])] = 1;
  bits[static_cast<std::size_t>(encoding.tii[1][1])] = 1;
  std::vector<int> order;
  ASSERT_TRUE(DecodeJoinOrder(encoding, bits, &order));
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

// --- BILP -> QUBO ----------------------------------------------------------------------

TEST(BilpToQuboTest, PenaltyWeightSatisfiesEq44) {
  const QueryGraph graph = MakeSection612Example();
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, {});
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  EXPECT_GT(qubo.penalty_a,
            encoding.bilp.ObjectiveUpperBound() /
                (encoding.omega * encoding.omega));
}

TEST(BilpToQuboTest, FeasibleAssignmentsKeepObjectiveEnergy) {
  // For a feasible x, all penalty terms vanish: energy == B * c^T x.
  BilpProblem bilp;
  const int x0 = bilp.AddVariable("x0", 1.0);
  const int x1 = bilp.AddVariable("x1", 2.0);
  const int x2 = bilp.AddVariable("x2", 0.0);
  bilp.AddConstraint({{{x0, 1.0}, {x1, 1.0}}, 1.0});      // x0 + x1 = 1
  bilp.AddConstraint({{{x1, 1.0}, {x2, -1.0}}, 0.0});     // x1 = x2
  const BilpQuboEncoding encoding = EncodeBilpAsQubo(bilp);
  EXPECT_NEAR(encoding.qubo.Energy({1, 0, 0}), 1.0, 1e-9);
  EXPECT_NEAR(encoding.qubo.Energy({0, 1, 1}), 2.0, 1e-9);
  // Infeasible assignments pay at least A.
  EXPECT_GE(encoding.qubo.Energy({0, 0, 0}), encoding.penalty_a - 1e-9);
  EXPECT_GE(encoding.qubo.Energy({1, 1, 1}), encoding.penalty_a - 1e-9);
}

TEST(BilpToQuboTest, GroundStateIsOptimalFeasibleAssignment) {
  BilpProblem bilp;
  const int a = bilp.AddVariable("a", 3.0);
  const int b = bilp.AddVariable("b", 1.0);
  const int c = bilp.AddVariable("c", 2.0);
  bilp.AddConstraint({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, 1.0});  // pick one
  const BilpQuboEncoding encoding = EncodeBilpAsQubo(bilp);
  const BruteForceResult ground = SolveQuboBruteForce(encoding.qubo);
  EXPECT_EQ(ground.best_bits, (std::vector<std::uint8_t>{0, 1, 0}));
  EXPECT_NEAR(ground.best_energy, 1.0, 1e-9);
}

TEST(JoinOrderQuboTest, GroundStateDecodesToOptimalOrder) {
  // Full pipeline on the Sec. 6.1.2 example: 24 binary variables, still
  // within brute-force reach.
  const QueryGraph graph = MakeSection612Example();
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  options.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  ASSERT_LE(encoding.bilp.NumVariables(), 26);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  const BruteForceResult ground = SolveQuboBruteForce(qubo.qubo);
  EXPECT_TRUE(encoding.bilp.IsFeasible(ground.best_bits, encoding.omega / 2));
  std::vector<int> order;
  ASSERT_TRUE(DecodeJoinOrder(encoding, ground.best_bits, &order));
  EXPECT_TRUE((order[0] == 0 && order[1] == 1) ||
              (order[0] == 1 && order[1] == 0));
  // Ground energy equals the optimal BILP objective (0 here).
  EXPECT_NEAR(ground.best_energy, 0.0, 1e-6);
}

TEST(JoinOrderQuboTest, SimulatedAnnealingSolvesExample) {
  const QueryGraph graph = MakeSection612Example();
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  options.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  AnnealOptions anneal;
  anneal.num_reads = 60;
  anneal.num_sweeps = 2000;
  anneal.seed = 12;
  const AnnealResult result = SolveQuboWithAnnealing(qubo.qubo, anneal);
  std::vector<int> order;
  ASSERT_TRUE(DecodeJoinOrder(encoding, result.best_bits, &order));
  EXPECT_TRUE(encoding.bilp.IsFeasible(result.best_bits, encoding.omega / 2));
}

// --- Branch and bound ---------------------------------------------------------------------

TEST(BranchAndBoundTest, InfeasibleReturnsNullopt) {
  BilpProblem bilp;
  const int x = bilp.AddVariable("x", 0.0);
  bilp.AddConstraint({{{x, 1.0}}, 2.0});  // x = 2 impossible
  EXPECT_FALSE(SolveBilpBranchAndBound(bilp).has_value());
}

TEST(BranchAndBoundTest, RespectsAllConstraints) {
  BilpProblem bilp;
  std::vector<int> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(bilp.AddVariable("x", static_cast<double>(i)));
  }
  // Exactly two of the six, and x0 = x5.
  BilpProblem::Constraint sum;
  for (int v : vars) sum.terms.emplace_back(v, 1.0);
  sum.rhs = 2.0;
  bilp.AddConstraint(sum);
  bilp.AddConstraint({{{vars[0], 1.0}, {vars[5], -1.0}}, 0.0});
  const auto solution = SolveBilpBranchAndBound(bilp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(bilp.IsFeasible(solution->bits));
  // Cheapest pair excluding the x0=x5 coupling: x1 + x2 = 3.
  EXPECT_NEAR(solution->objective, 3.0, 1e-9);
}

class JoinOrderBnbParamTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinOrderBnbParamTest, BnbDecodesValidOrders) {
  QueryGeneratorOptions gen;
  gen.num_relations = 3 + (GetParam() % 2);
  gen.num_predicates = gen.num_relations - 1;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 1000.0;
  gen.selectivity_min = 0.1;
  gen.selectivity_max = 1.0;
  gen.seed = GetParam();
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0, 100.0, 1000.0};
  options.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  const auto solution = SolveBilpBranchAndBound(encoding.bilp);
  ASSERT_TRUE(solution.has_value());
  std::vector<int> order;
  EXPECT_TRUE(DecodeJoinOrder(encoding, solution->bits, &order));
  EXPECT_TRUE(IsValidJoinOrder(graph, order));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JoinOrderBnbParamTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace qopt
