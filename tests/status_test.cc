// Tests for the recoverable-error layer: Status / StatusOr semantics,
// the checked JSON accessors, and fault injection of the malformed
// workload corpus through the loaders and the real CLI code path.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "io/workload_io.h"
#include "qqo_cli.h"

#ifndef QQO_TEST_DATA_DIR
#error "QQO_TEST_DATA_DIR must be defined by the build"
#endif

namespace qopt {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr semantics.

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, OkStatus());
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  const Status status = InvalidArgumentError("bad knob");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad knob");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad knob");
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, AnnotatePrefixesContext) {
  const Status annotated =
      Annotate(NotFoundError("no such key"), "workload.json");
  EXPECT_EQ(annotated.code(), StatusCode::kNotFound);
  EXPECT_EQ(annotated.message(), "workload.json: no such key");
  EXPECT_TRUE(Annotate(OkStatus(), "ignored").ok());
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  const StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(-1), 42);
  EXPECT_TRUE(good.status().ok());

  const StatusOr<int> bad = OutOfRangeError("too big");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusOrTest, WorksWithMoveOnlyFriendlyTypes) {
  StatusOr<std::vector<std::string>> words =
      std::vector<std::string>{"join", "order"};
  ASSERT_TRUE(words.ok());
  const std::vector<std::string> taken = std::move(words).value();
  EXPECT_EQ(taken.size(), 2u);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status CheckBoth(int a, int b) {
  QOPT_RETURN_IF_ERROR(FailIfNegative(a));
  QOPT_RETURN_IF_ERROR(FailIfNegative(b));
  return OkStatus();
}

StatusOr<int> HalveEven(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

StatusOr<int> QuarterViaMacro(int x) {
  QOPT_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  QOPT_ASSIGN_OR_RETURN(const int quarter, HalveEven(half));
  return quarter;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(-1, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckBoth(1, -2).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  const StatusOr<int> ok = QuarterViaMacro(12);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  EXPECT_FALSE(QuarterViaMacro(13).ok());  // fails at the first halving
  EXPECT_FALSE(QuarterViaMacro(6).ok());   // fails at the second halving
}

// ---------------------------------------------------------------------------
// Checked JSON accessors.

TEST(JsonStatusTest, ParseOrStatusReportsPosition) {
  const StatusOr<JsonValue> parsed =
      JsonValue::ParseOrStatus("{\"a\": 1,\n  \"b\": }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().ToString();
}

TEST(JsonStatusTest, ParseOrStatusRejectsTrailingGarbage) {
  const StatusOr<JsonValue> parsed = JsonValue::ParseOrStatus("{} extra");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("trailing"), std::string::npos)
      << parsed.status().ToString();
}

TEST(JsonStatusTest, GetAccessorsCheckKinds) {
  const auto doc = JsonValue::ParseOrStatus(
      R"({"n": 2.5, "i": 7, "s": "text", "b": true})");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(*doc->Find("n")->GetNumber(), 2.5);
  EXPECT_EQ(*doc->Find("i")->GetInt(), 7);
  EXPECT_EQ(*doc->Find("s")->GetString(), "text");
  EXPECT_TRUE(*doc->Find("b")->GetBool());

  const StatusOr<double> not_a_number = doc->Find("s")->GetNumber();
  ASSERT_FALSE(not_a_number.ok());
  EXPECT_NE(not_a_number.status().message().find("string"),
            std::string::npos);
  EXPECT_FALSE(doc->Find("n")->GetString().ok());
  EXPECT_FALSE(doc->Find("i")->GetBool().ok());
}

TEST(JsonStatusTest, GetIntRejectsFractionalAndHugeValues) {
  const auto doc = JsonValue::ParseOrStatus(
      R"({"frac": 0.5, "huge": 1e20, "neg": -3})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->Find("frac")->GetInt().ok());
  EXPECT_FALSE(doc->Find("huge")->GetInt().ok());
  EXPECT_EQ(*doc->Find("neg")->GetInt(), -3);
}

// ---------------------------------------------------------------------------
// Malformed-corpus fault injection.

std::vector<std::filesystem::path> CorpusFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(QQO_TEST_DATA_DIR) / "malformed";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  return files;
}

TEST(MalformedCorpusTest, CorpusIsPresent) {
  // Guards against the data directory silently not being found, which
  // would make the fault-injection loops below vacuous.
  EXPECT_GE(CorpusFiles().size(), 20u);
}

TEST(MalformedCorpusTest, LoadersReturnErrorsNotAborts) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.string());
    const std::string name = path.filename().string();
    if (name.rfind("join_", 0) == 0) {
      const auto graph = LoadQueryGraph(path.string());
      EXPECT_FALSE(graph.ok());
      EXPECT_FALSE(graph.status().message().empty());
      // Errors carry the file path so the user can tell which input of a
      // batch was bad.
      EXPECT_NE(graph.status().message().find(name), std::string::npos)
          << graph.status().ToString();
    } else {
      const auto problem = LoadMqoProblem(path.string());
      EXPECT_FALSE(problem.ok());
      EXPECT_FALSE(problem.status().message().empty());
      EXPECT_NE(problem.status().message().find(name), std::string::npos)
          << problem.status().ToString();
    }
  }
}

TEST(MalformedCorpusTest, CliExitsNonZeroOnEveryCorpusFile) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.string());
    const std::string name = path.filename().string();
    const std::string subcommand =
        name.rfind("join_", 0) == 0 ? "join" : "mqo";
    const int exit_code =
        cli::RunQqoCli({"qqo", subcommand, path.string()});
    EXPECT_EQ(exit_code, cli::kExitError);
  }
}

// ---------------------------------------------------------------------------
// CLI flag fault injection. Flag validation happens before any file is
// read, so a nonexistent path is fine for the usage-error cases.

TEST(CliFlagTest, UnknownFlagIsRejected) {
  // The "--sed=5" typo must not silently run with the default seed.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--sed=5"}),
            cli::kExitUsage);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "join", "g.json", "--tresholds=1,2"}),
            cli::kExitUsage);
}

TEST(CliFlagTest, NonNumericIntegerFlagIsRejected) {
  // --queries=abc used to become 0 via std::atoi.
  EXPECT_EQ(cli::RunQqoCli(
                {"qqo", "generate", "mqo", "/tmp/out.json", "--queries=abc"}),
            cli::kExitUsage);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--seed=abc"}),
            cli::kExitUsage);
}

TEST(CliFlagTest, OverflowingIntegerFlagIsRejected) {
  // --seed=9999999999999 used to overflow std::atoi silently.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "generate", "mqo", "/tmp/out.json",
                            "--queries=9999999999999"}),
            cli::kExitUsage);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--seed=-1"}),
            cli::kExitUsage);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json",
                            "--seed=99999999999999999999999999"}),
            cli::kExitUsage);
}

TEST(CliFlagTest, NonNumericFlagErrorSaysSoNotOutOfRange) {
  // Regression for the from_chars errc ordering in ParseIntToken: on
  // invalid input the parsed value is untouched, so the old range-first
  // check reported --retries=abc as "0 out of range" instead of naming
  // the real problem.
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--retries=abc"}),
            cli::kExitUsage);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("expected an integer"), std::string::npos) << err;
  EXPECT_EQ(err.find("out of range"), std::string::npos) << err;
}

TEST(CliFlagTest, InvalidQqoThreadsIsUsageErrorOnEverySubcommand) {
  // Regression: QQO_THREADS=abc used to atoi to 0 and silently fall back
  // to hardware concurrency; the CLI now refuses to run.
  for (const char* bad : {"abc", "0", "-3"}) {
    setenv("QQO_THREADS", bad, 1);
    EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json"}), cli::kExitUsage)
        << "QQO_THREADS=" << bad;
  }
  unsetenv("QQO_THREADS");
}

TEST(CliFlagTest, InvalidQqoDispatchIsUsageErrorBeforeAnyWork) {
  // Env knobs are validated up front: a QQO_DISPATCH typo is command-line
  // misuse even when the workload path does not exist.
  ::testing::internal::CaptureStderr();
  setenv("QQO_DISPATCH", "parallel", 1);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json"}), cli::kExitUsage);
  unsetenv("QQO_DISPATCH");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("QQO_DISPATCH"), std::string::npos) << err;
}

TEST(CliFlagTest, InvalidDispatchFlagIsUsageError) {
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--dispatch=bogus"}),
            cli::kExitUsage);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--dispatch"), std::string::npos) << err;
}

TEST(CliFlagTest, TraceOutRequiresAFilename) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--trace-out"}),
            cli::kExitUsage);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--trace-out="}),
            cli::kExitUsage);
}

TEST(CliFlagTest, DuplicateFlagIsRejected) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "--seed=1", "--seed=2"}),
            cli::kExitUsage);
}

TEST(CliFlagTest, StrayPositionalIsRejected) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "w.json", "extra.json"}),
            cli::kExitUsage);
}

TEST(CliFlagTest, FlagInPlaceOfPathIsUsageError) {
  // `qqo mqo --backend=sa` with the workload file forgotten used to treat
  // the flag as a path.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "--backend=sa"}),
            cli::kExitUsage);
}

TEST(CliFlagTest, UnknownCommandIsUsageError) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "optimise", "w.json"}), cli::kExitUsage);
  EXPECT_EQ(cli::RunQqoCli({"qqo"}), cli::kExitUsage);
}

TEST(CliFlagTest, MissingWorkloadFileIsRuntimeError) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", "/no/such/file.json"}),
            cli::kExitError);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "join", "/no/such/file.json"}),
            cli::kExitError);
}

TEST(CliFlagTest, UnwritableOutputPathIsRuntimeError) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "generate", "mqo",
                            "/no/such/dir/out.json", "--queries=2",
                            "--ppq=2"}),
            cli::kExitError);
}

class CliWorkloadTest : public ::testing::Test {
 protected:
  // A small valid workload generated through the real CLI, for fault
  // cases that must get past the load stage.
  void SetUp() override {
    mqo_path_ = ::testing::TempDir() + "/status_cli_mqo.json";
    join_path_ = ::testing::TempDir() + "/status_cli_join.json";
    ASSERT_EQ(cli::RunQqoCli({"qqo", "generate", "mqo", mqo_path_,
                              "--queries=2", "--ppq=2", "--seed=3"}),
              cli::kExitOk);
    ASSERT_EQ(cli::RunQqoCli({"qqo", "generate", "join", join_path_,
                              "--relations=3", "--seed=3"}),
              cli::kExitOk);
  }

  std::string mqo_path_;
  std::string join_path_;
};

TEST_F(CliWorkloadTest, UnknownBackendIsUsageError) {
  EXPECT_EQ(
      cli::RunQqoCli({"qqo", "mqo", mqo_path_, "--backend=dwave9000"}),
      cli::kExitUsage);
}

TEST_F(CliWorkloadTest, MalformedThresholdsAreUsageErrors) {
  // std::atof would have read all of these as 0 and the encoder CHECK
  // would have aborted the process.
  for (const char* bad : {"--thresholds=abc", "--thresholds=1,,2",
                          "--thresholds=1,2x", "--thresholds=nan"}) {
    SCOPED_TRACE(bad);
    EXPECT_EQ(cli::RunQqoCli({"qqo", "join", join_path_, bad}),
              cli::kExitUsage);
  }
}

TEST_F(CliWorkloadTest, NonAscendingThresholdsAreRejectedNotAborted) {
  // Used to die on an encoder CHECK.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "join", join_path_, "--thresholds=5,2"}),
            cli::kExitError);
}

TEST_F(CliWorkloadTest, ExcessivePrecisionIsUsageError) {
  // --precision=400 used to underflow 0.1^p inside the encoder and abort.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "join", join_path_, "--precision=400"}),
            cli::kExitUsage);
}

TEST_F(CliWorkloadTest, SolveRunsCleanlyOnValidInput) {
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", mqo_path_, "--backend=exact"}),
            cli::kExitOk);
  // The 3-relation join QUBO already has ~34 variables, beyond the exact
  // oracle's enumeration budget — simulated annealing handles it.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "join", join_path_, "--backend=sa"}),
            cli::kExitOk);
}

TEST_F(CliWorkloadTest, RacedSolveRunsCleanlyAndReportsLanes) {
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", mqo_path_, "--backend=sa",
                            "--dispatch=race"}),
            cli::kExitOk);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("race lanes:"), std::string::npos) << out;
  // QQO_DISPATCH supplies the default when the flag is absent.
  setenv("QQO_DISPATCH", "race", 1);
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", mqo_path_, "--backend=sa"}),
            cli::kExitOk);
  const std::string env_out = ::testing::internal::GetCapturedStdout();
  unsetenv("QQO_DISPATCH");
  EXPECT_NE(env_out.find("race lanes:"), std::string::npos) << env_out;
}

TEST_F(CliWorkloadTest, ExactBackendOverBudgetIsRuntimeError) {
  // Exact is a classical backend: exceeding its enumeration budget is a
  // hard error, never a silent fallback.
  EXPECT_EQ(cli::RunQqoCli({"qqo", "join", join_path_, "--backend=exact"}),
            cli::kExitError);
}

TEST_F(CliWorkloadTest, TracedSolveWritesValidChromeTrace) {
  const std::string trace_path =
      ::testing::TempDir() + "/status_cli_trace.json";
  std::filesystem::remove(trace_path);
  EXPECT_EQ(cli::RunQqoCli({"qqo", "mqo", mqo_path_, "--backend=sa",
                            "--trace-out=" + trace_path, "--metrics"}),
            cli::kExitOk);
  const std::optional<std::string> content = ReadFileToString(trace_path);
  ASSERT_TRUE(content.has_value());
  StatusOr<JsonValue> parsed = JsonValue::ParseOrStatus(*content);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  EXPECT_GT(events->Size(), 0u);
}

TEST_F(CliWorkloadTest, UnknownDeviceAndAlgorithmAreUsageErrors) {
  EXPECT_EQ(
      cli::RunQqoCli({"qqo", "estimate", "mqo", mqo_path_, "--device=osprey"}),
      cli::kExitUsage);
  EXPECT_EQ(
      cli::RunQqoCli({"qqo", "qasm", "mqo", mqo_path_, "--algorithm=grover"}),
      cli::kExitUsage);
}

}  // namespace
}  // namespace qopt
