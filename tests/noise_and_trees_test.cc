// Tests for the Pauli noise model and the bushy join-tree extension.
#include <gtest/gtest.h>

#include "circuit/noise_model.h"
#include "circuit/statevector.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/join_tree.h"
#include "joinorder/query_graph.h"

namespace qopt {
namespace {

// --- Noise model ----------------------------------------------------------

TEST(NoiseModelTest, ZeroNoiseIsIdentity) {
  QuantumCircuit c(2);
  c.H(0);
  c.Cx(0, 1);
  Rng rng(1);
  int errors = -1;
  const QuantumCircuit noisy =
      InjectPauliNoise(c, NoiseModel{0.0, 0.0}, &rng, &errors);
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(noisy.NumGates(), c.NumGates());
}

TEST(NoiseModelTest, CertainNoiseInjectsEveryGate) {
  QuantumCircuit c(2);
  c.H(0);
  c.Cx(0, 1);
  Rng rng(1);
  int errors = 0;
  const QuantumCircuit noisy =
      InjectPauliNoise(c, NoiseModel{0.999999, 0.999999}, &rng, &errors);
  // 1 error after H + 2 after CX (one per involved qubit).
  EXPECT_EQ(errors, 3);
  EXPECT_EQ(noisy.NumGates(), c.NumGates() + errors);
}

TEST(NoiseModelTest, ErrorRateMatchesExpectation) {
  QuantumCircuit c(1);
  for (int i = 0; i < 100; ++i) c.Sx(0);
  Rng rng(5);
  const double p = 0.03;
  int total_errors = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    int errors = 0;
    InjectPauliNoise(c, NoiseModel{p, 0.0}, &rng, &errors);
    total_errors += errors;
  }
  const double mean = static_cast<double>(total_errors) / trials;
  EXPECT_NEAR(mean, 100 * p, 0.5);
}

TEST(NoiseModelTest, CleanFractionDecaysWithDepth) {
  const NoiseModel noise{0.01, 0.02};
  auto clean_fraction = [&](int layers) {
    QuantumCircuit c(3);
    for (int l = 0; l < layers; ++l) {
      c.H(0);
      c.Cx(0, 1);
      c.Cx(1, 2);
    }
    return SampleNoisyCircuit(c, noise, 300, 7).clean_fraction;
  };
  const double shallow = clean_fraction(2);
  const double deep = clean_fraction(20);
  EXPECT_GT(shallow, deep);
  EXPECT_LT(deep, 0.5);
}

TEST(NoiseModelTest, FidelityBoundedAndHighForLowNoise) {
  QuantumCircuit c(3);
  c.H(0);
  c.Cx(0, 1);
  c.Cx(1, 2);
  const NoisySamplingResult result =
      SampleNoisyCircuit(c, NoiseModel{0.001, 0.002}, 200, 3);
  EXPECT_GE(result.mean_fidelity, 0.9);
  EXPECT_LE(result.mean_fidelity, 1.0 + 1e-12);
  EXPECT_GT(result.clean_fraction, 0.9);
}

// --- Join trees -------------------------------------------------------------

TEST(JoinTreeTest, LeftDeepConstructionAndCost) {
  const QueryGraph graph = MakePaperExampleQuery();
  const JoinTree tree = JoinTree::FromLeftDeepOrder({0, 1, 2});
  EXPECT_TRUE(tree.IsLeftDeep());
  EXPECT_EQ(tree.Relations(), (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(tree.Cost(graph), 51000.0);  // Table 3
  EXPECT_DOUBLE_EQ(tree.Cost(graph, false), 1000.0);
  EXPECT_EQ(tree.ToString(), "((R0 |><| R1) |><| R2)");
}

TEST(JoinTreeTest, BushyTreeIsNotLeftDeep) {
  const JoinTree bushy = JoinTree::Join(
      JoinTree::Join(JoinTree::Leaf(0), JoinTree::Leaf(1)),
      JoinTree::Join(JoinTree::Leaf(2), JoinTree::Leaf(3)));
  EXPECT_FALSE(bushy.IsLeftDeep());
  EXPECT_EQ(bushy.Relations(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(JoinTreeTest, CostMatchesCoutForLeftDeepOrders) {
  QueryGeneratorOptions gen;
  gen.num_relations = 6;
  gen.num_predicates = 8;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 10000.0;
  gen.selectivity_min = 0.001;
  gen.seed = 3;
  const QueryGraph graph = GenerateRandomQuery(gen);
  const JoinOrderSolution dp = SolveJoinOrderDp(graph);
  const JoinTree tree = JoinTree::FromLeftDeepOrder(dp.order);
  EXPECT_NEAR(tree.Cost(graph) / CoutCost(graph, dp.order), 1.0, 1e-12);
}

class BushyDpParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BushyDpParamTest, BushyNeverWorseThanLeftDeep) {
  QueryGeneratorOptions gen;
  gen.num_relations = 7;
  gen.num_predicates = 8 + (GetParam() % 4);
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 100000.0;
  gen.selectivity_min = 0.0005;
  gen.seed = GetParam();
  const QueryGraph graph = GenerateRandomQuery(gen);
  const JoinOrderSolution left_deep = SolveJoinOrderDp(graph);
  const BushyDpResult bushy = SolveJoinOrderBushyDp(graph);
  EXPECT_LE(bushy.cost, left_deep.cost * (1.0 + 1e-12));
  // The tree's own cost evaluation agrees with the DP value.
  EXPECT_NEAR(bushy.tree.Cost(graph) / bushy.cost, 1.0, 1e-12);
  // Every relation appears exactly once.
  std::vector<int> relations = bushy.tree.Relations();
  std::sort(relations.begin(), relations.end());
  for (int r = 0; r < graph.NumRelations(); ++r) {
    EXPECT_EQ(relations[static_cast<std::size_t>(r)], r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BushyDpParamTest, ::testing::Range(0, 8));

TEST(BushyDpTest, StarQueryBushyCanBeatLeftDeepOrTie) {
  // On a star query with uniform selectivities bushy trees tie left-deep;
  // the DP must not return anything worse.
  const QueryGraph star = GenerateStarQuery(6, 100.0, 0.01);
  const JoinOrderSolution left_deep = SolveJoinOrderDp(star);
  const BushyDpResult bushy = SolveJoinOrderBushyDp(star);
  EXPECT_LE(bushy.cost, left_deep.cost * (1.0 + 1e-12));
}

TEST(BushyDpTest, SingleRelation) {
  QueryGraph graph({42.0});
  const BushyDpResult result = SolveJoinOrderBushyDp(graph);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_TRUE(result.tree.IsLeaf());
}

TEST(BushyDpTest, TwoRelations) {
  QueryGraph graph({10.0, 20.0});
  graph.AddPredicate(0, 1, 0.5);
  const BushyDpResult result = SolveJoinOrderBushyDp(graph);
  EXPECT_DOUBLE_EQ(result.cost, 100.0);  // 10 * 20 * 0.5
}

TEST(JoinTreeTest, EmptyDefaultTree) {
  JoinTree tree;
  EXPECT_TRUE(tree.IsEmpty());
  EXPECT_FALSE(tree.IsLeaf());
}

}  // namespace
}  // namespace qopt
