#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/edge_coloring.h"
#include "graph/shortest_paths.h"
#include "graph/simple_graph.h"

namespace qopt {
namespace {

SimpleGraph MakePath(int n) {
  SimpleGraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

SimpleGraph MakeRandomGraph(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  SimpleGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(density)) g.AddEdge(i, j);
    }
  }
  return g;
}

TEST(SimpleGraphTest, EmptyGraph) {
  SimpleGraph g(0);
  EXPECT_EQ(g.NumVertices(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_TRUE(g.IsConnected());
}

TEST(SimpleGraphTest, AddEdgeAndQuery) {
  SimpleGraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(SimpleGraphTest, DuplicateEdgeIgnored) {
  SimpleGraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(SimpleGraphTest, DegreesAndMaxDegree) {
  SimpleGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(3), 1);
  EXPECT_EQ(g.MaxDegree(), 3);
}

TEST(SimpleGraphTest, EdgesAreNormalized) {
  SimpleGraph g(3);
  g.AddEdge(2, 0);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], std::make_pair(0, 2));
}

TEST(SimpleGraphTest, Connectivity) {
  SimpleGraph g = MakePath(4);
  EXPECT_TRUE(g.IsConnected());
  SimpleGraph h(4);
  h.AddEdge(0, 1);
  h.AddEdge(2, 3);
  EXPECT_FALSE(h.IsConnected());
}

TEST(SimpleGraphTest, ConnectedSubset) {
  SimpleGraph g = MakePath(5);
  EXPECT_TRUE(g.IsConnectedSubset({1, 2, 3}));
  EXPECT_FALSE(g.IsConnectedSubset({0, 2}));
  EXPECT_TRUE(g.IsConnectedSubset({}));
  EXPECT_TRUE(g.IsConnectedSubset({4}));
}

TEST(SimpleGraphTest, InducedSubgraphRelabels) {
  SimpleGraph g = MakePath(5);
  std::vector<bool> removed = {false, true, false, false, false};
  std::vector<int> relabel;
  SimpleGraph sub = g.InducedSubgraph(removed, &relabel);
  EXPECT_EQ(sub.NumVertices(), 4);
  EXPECT_EQ(relabel[0], 0);
  EXPECT_EQ(relabel[1], -1);
  EXPECT_EQ(relabel[2], 1);
  // Path 0-1-2-3-4 minus vertex 1 leaves edges (2,3),(3,4) -> (1,2),(2,3).
  EXPECT_EQ(sub.NumEdges(), 2);
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_TRUE(sub.HasEdge(2, 3));
  EXPECT_FALSE(sub.IsConnected());
}

TEST(ShortestPathsTest, BfsDistancesOnPath) {
  SimpleGraph g = MakePath(5);
  const ShortestPathTree tree = BfsShortestPaths(g, 0);
  for (int v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(tree.distance[static_cast<std::size_t>(v)], v);
  }
  EXPECT_EQ(tree.parent[4], 3);
  EXPECT_EQ(tree.parent[0], -1);
}

TEST(ShortestPathsTest, UnreachableIsInfinite) {
  SimpleGraph g(3);
  g.AddEdge(0, 1);
  const ShortestPathTree tree = BfsShortestPaths(g, 0);
  EXPECT_EQ(tree.distance[2], kInfiniteDistance);
}

TEST(ShortestPathsTest, AllPairsMatchesSingleSource) {
  SimpleGraph g = MakeRandomGraph(12, 0.3, 5);
  const auto all = AllPairsBfsDistances(g);
  for (int s = 0; s < 12; ++s) {
    const ShortestPathTree tree = BfsShortestPaths(g, s);
    for (int v = 0; v < 12; ++v) {
      const double d = tree.distance[static_cast<std::size_t>(v)];
      if (d == kInfiniteDistance) {
        EXPECT_EQ(all[s][v], -1);
      } else {
        EXPECT_EQ(all[s][v], static_cast<int>(d));
      }
    }
  }
}

TEST(ShortestPathsTest, VertexWeightedPrefersCheapVertices) {
  // 0 - 1 - 3 and 0 - 2 - 3; vertex 1 is expensive.
  SimpleGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  const std::vector<double> cost = {1.0, 100.0, 1.0, 1.0};
  const ShortestPathTree tree = VertexWeightedDijkstra(g, {0}, cost);
  EXPECT_DOUBLE_EQ(tree.distance[3], 2.0);  // via vertex 2
  EXPECT_EQ(tree.parent[3], 2);
}

TEST(ShortestPathsTest, MultiSourceStartsAtZero) {
  SimpleGraph g = MakePath(6);
  const std::vector<double> cost(6, 1.0);
  const ShortestPathTree tree = VertexWeightedDijkstra(g, {0, 5}, cost);
  EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance[5], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 2.0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 2.0);
}

class EdgeColoringParamTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeColoringParamTest, ColoringIsProperAndBounded) {
  const int seed = GetParam();
  SimpleGraph g = MakeRandomGraph(14, 0.25 + 0.05 * (seed % 5), seed);
  const EdgeColoring coloring = GreedyEdgeColoring(g);
  const auto edges = g.Edges();
  ASSERT_EQ(coloring.color.size(), edges.size());
  // Proper: edges sharing a vertex have different colors.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      const bool share = edges[i].first == edges[j].first ||
                         edges[i].first == edges[j].second ||
                         edges[i].second == edges[j].first ||
                         edges[i].second == edges[j].second;
      if (share) {
        EXPECT_NE(coloring.color[i], coloring.color[j]);
      }
    }
  }
  // Vizing-style bound for greedy: < 2 * max degree.
  if (g.NumEdges() > 0) {
    EXPECT_GE(coloring.num_colors, g.MaxDegree());
    EXPECT_LE(coloring.num_colors, 2 * g.MaxDegree() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EdgeColoringParamTest,
                         ::testing::Range(0, 10));

TEST(EdgeColoringTest, EmptyGraph) {
  SimpleGraph g(3);
  const EdgeColoring coloring = GreedyEdgeColoring(g);
  EXPECT_EQ(coloring.num_colors, 0);
}

TEST(EdgeColoringTest, CompleteGraphK4NeedsAtLeastThreeColors) {
  SimpleGraph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  const EdgeColoring coloring = GreedyEdgeColoring(g);
  EXPECT_GE(coloring.num_colors, 3);
  EXPECT_LE(coloring.num_colors, 5);
}

}  // namespace
}  // namespace qopt
