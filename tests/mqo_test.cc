#include <gtest/gtest.h>

#include "mqo/mqo_baselines.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_problem.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

// --- Problem basics -------------------------------------------------------

TEST(MqoProblemTest, PlanBookkeeping) {
  MqoProblem problem;
  problem.AddQuery({1.0, 2.0});
  problem.AddQuery({3.0});
  EXPECT_EQ(problem.NumQueries(), 2);
  EXPECT_EQ(problem.NumPlans(), 3);
  EXPECT_EQ(problem.QueryOfPlan(0), 0);
  EXPECT_EQ(problem.QueryOfPlan(2), 1);
  EXPECT_DOUBLE_EQ(problem.PlanCost(1), 2.0);
  EXPECT_EQ(problem.PlansOfQuery(1), (std::vector<int>{2}));
}

TEST(MqoProblemTest, SavingsAccumulate) {
  MqoProblem problem;
  problem.AddQuery({1.0});
  problem.AddQuery({1.0});
  problem.AddSaving(0, 1, 0.5);
  problem.AddSaving(1, 0, 0.25);
  ASSERT_EQ(problem.NumSavings(), 1);
  EXPECT_DOUBLE_EQ(problem.Savings()[0].second, 0.75);
}

TEST(MqoProblemTest, SelectionValidation) {
  MqoProblem problem;
  problem.AddQuery({1.0, 2.0});
  problem.AddQuery({3.0});
  EXPECT_TRUE(problem.IsValidSelection({0, 2}));
  EXPECT_TRUE(problem.IsValidSelection({1, 2}));
  EXPECT_FALSE(problem.IsValidSelection({2, 0}));
  EXPECT_FALSE(problem.IsValidSelection({0}));
}

TEST(MqoProblemTest, SelectionCostSubtractsSavings) {
  MqoProblem problem;
  problem.AddQuery({10.0, 12.0});
  problem.AddQuery({9.0});
  problem.AddSaving(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(problem.SelectionCost({0, 2}), 19.0);
  EXPECT_DOUBLE_EQ(problem.SelectionCost({1, 2}), 12.0 + 9.0 - 4.0);
}

TEST(MqoProblemTest, DecodeBitsRequiresExactlyOnePlanPerQuery) {
  MqoProblem problem;
  problem.AddQuery({1.0, 2.0});
  problem.AddQuery({3.0, 4.0});
  std::vector<int> selection;
  EXPECT_TRUE(problem.DecodeBits({1, 0, 0, 1}, &selection));
  EXPECT_EQ(selection, (std::vector<int>{0, 3}));
  EXPECT_FALSE(problem.DecodeBits({1, 1, 0, 1}, &selection));  // two for q0
  EXPECT_FALSE(problem.DecodeBits({1, 0, 0, 0}, &selection));  // none for q1
}

// --- Paper example (Tables 1 and 2) ----------------------------------------

TEST(MqoExampleTest, LocallyOptimalCostIs26) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoSolution greedy = SolveMqoGreedy(example);
  EXPECT_DOUBLE_EQ(greedy.cost, 26.0);
  EXPECT_EQ(greedy.selection, (std::vector<int>{0, 3, 5}));
}

TEST(MqoExampleTest, GloballyOptimalCostIs21) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoSolution optimal = SolveMqoExhaustive(example);
  EXPECT_DOUBLE_EQ(optimal.cost, 21.0);
  // Plans 2, 4 and 8 in paper numbering = global ids 1, 3, 7.
  EXPECT_EQ(optimal.selection, (std::vector<int>{1, 3, 7}));
}

TEST(MqoExampleTest, QuboGroundStateMatchesOptimum) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(example);
  const BruteForceResult ground = SolveQuboBruteForce(encoding.qubo);
  std::vector<int> selection;
  ASSERT_TRUE(example.DecodeBits(ground.best_bits, &selection));
  EXPECT_DOUBLE_EQ(example.SelectionCost(selection), 21.0);
}

// --- Encoder ----------------------------------------------------------------

TEST(MqoEncoderTest, VariableAndTermCounts) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(example);
  EXPECT_EQ(encoding.qubo.NumVariables(), 8);  // one qubit per plan
  // EM: C(3,2) + C(2,2) + C(3,2) = 3 + 1 + 3 intra-query pairs;
  // ES: 5 savings pairs -> 12 quadratic terms in total.
  EXPECT_EQ(encoding.qubo.NumQuadraticTerms(), 12);
}

TEST(MqoEncoderTest, PenaltyWeightInequalitiesHold) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(example);
  double max_cost = 0.0;
  for (int p = 0; p < example.NumPlans(); ++p) {
    max_cost = std::max(max_cost, example.PlanCost(p));
  }
  EXPECT_GT(encoding.weight_l, max_cost);          // Eq. 34
  EXPECT_GT(encoding.weight_m, encoding.weight_l); // Eq. 35 (first part)
}

TEST(MqoEncoderTest, ValidSelectionsGetLowerEnergyThanInvalid) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(example);
  // Valid: plans {0, 3, 5}. Invalid: nothing selected / extra plan.
  const std::vector<std::uint8_t> valid = {1, 0, 0, 1, 0, 1, 0, 0};
  const std::vector<std::uint8_t> empty(8, 0);
  std::vector<std::uint8_t> extra = valid;
  extra[1] = 1;  // second plan for query 0
  EXPECT_LT(encoding.qubo.Energy(valid), encoding.qubo.Energy(empty));
  EXPECT_LT(encoding.qubo.Energy(valid), encoding.qubo.Energy(extra));
}

TEST(MqoEncoderTest, EnergyDifferenceEqualsCostDifference) {
  // Between two valid selections, the QUBO energy gap must equal the MQO
  // cost gap (EL contributes the same constant).
  const MqoProblem example = MakePaperExampleMqo();
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(example);
  const std::vector<std::uint8_t> a = {1, 0, 0, 1, 0, 1, 0, 0};  // 0,3,5
  const std::vector<std::uint8_t> b = {0, 1, 0, 1, 0, 0, 0, 1};  // 1,3,7
  const double energy_gap = encoding.qubo.Energy(b) - encoding.qubo.Energy(a);
  const double cost_gap = example.SelectionCost({1, 3, 7}) -
                          example.SelectionCost({0, 3, 5});
  EXPECT_NEAR(energy_gap, cost_gap, 1e-9);
}

class MqoEncoderParamTest : public ::testing::TestWithParam<int> {};

TEST_P(MqoEncoderParamTest, GroundStateDecodesToExhaustiveOptimum) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 3 + (GetParam() % 2);
  gen.saving_density = 0.2 + 0.1 * (GetParam() % 4);
  gen.seed = GetParam();
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  const BruteForceResult ground = SolveQuboBruteForce(encoding.qubo);
  std::vector<int> selection;
  ASSERT_TRUE(problem.DecodeBits(ground.best_bits, &selection))
      << "QUBO ground state is not a valid selection";
  const MqoSolution exact = SolveMqoExhaustive(problem);
  EXPECT_NEAR(problem.SelectionCost(selection), exact.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MqoEncoderParamTest,
                         ::testing::Range(0, 12));

// --- Generator ----------------------------------------------------------------

TEST(MqoGeneratorTest, ShapeMatchesOptions) {
  MqoGeneratorOptions gen;
  gen.num_queries = 5;
  gen.plans_per_query = 4;
  gen.seed = 3;
  const MqoProblem problem = GenerateMqoProblem(gen);
  EXPECT_EQ(problem.NumQueries(), 5);
  EXPECT_EQ(problem.NumPlans(), 20);
  for (int q = 0; q < 5; ++q) {
    EXPECT_EQ(problem.PlansOfQuery(q).size(), 4u);
  }
}

TEST(MqoGeneratorTest, DeterministicForSeed) {
  MqoGeneratorOptions gen;
  gen.seed = 11;
  const MqoProblem a = GenerateMqoProblem(gen);
  const MqoProblem b = GenerateMqoProblem(gen);
  EXPECT_EQ(a.NumSavings(), b.NumSavings());
  for (int p = 0; p < a.NumPlans(); ++p) {
    EXPECT_DOUBLE_EQ(a.PlanCost(p), b.PlanCost(p));
  }
}

TEST(MqoGeneratorTest, SavingsNeverExceedCheaperPlan) {
  MqoGeneratorOptions gen;
  gen.num_queries = 4;
  gen.plans_per_query = 5;
  gen.saving_density = 1.0;
  gen.seed = 17;
  const MqoProblem problem = GenerateMqoProblem(gen);
  for (const auto& [plans, saving] : problem.Savings()) {
    EXPECT_LE(saving, std::min(problem.PlanCost(plans.first),
                               problem.PlanCost(plans.second)) +
                          1e-9);
  }
}

// --- Baselines -------------------------------------------------------------------

class MqoBaselineParamTest : public ::testing::TestWithParam<int> {};

TEST_P(MqoBaselineParamTest, HeuristicsAreValidAndBoundedByOptimum) {
  MqoGeneratorOptions gen;
  gen.num_queries = 4;
  gen.plans_per_query = 4;
  gen.saving_density = 0.4;
  gen.seed = GetParam() + 50;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoSolution exact = SolveMqoExhaustive(problem);

  for (const MqoSolution& heuristic :
       {SolveMqoGreedy(problem),
        SolveMqoGenetic(problem, {.seed = 1}),
        SolveMqoLocalSearch(problem, 10, 2)}) {
    EXPECT_TRUE(problem.IsValidSelection(heuristic.selection));
    EXPECT_GE(heuristic.cost, exact.cost - 1e-9);
    EXPECT_NEAR(problem.SelectionCost(heuristic.selection), heuristic.cost,
                1e-9);
  }
}

TEST_P(MqoBaselineParamTest, GeneticUsuallyFindsOptimumOnSmallInstances) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 3;
  gen.saving_density = 0.5;
  gen.seed = GetParam() + 300;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoSolution exact = SolveMqoExhaustive(problem);
  MqoGeneticOptions options;
  options.generations = 100;
  options.seed = 9;
  const MqoSolution ga = SolveMqoGenetic(problem, options);
  EXPECT_NEAR(ga.cost, exact.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MqoBaselineParamTest,
                         ::testing::Range(0, 8));

TEST(MqoBaselineTest, LocalSearchAtLeastAsGoodAsGreedy) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoSolution greedy = SolveMqoGreedy(example);
  const MqoSolution local = SolveMqoLocalSearch(example, 5, 1);
  EXPECT_LE(local.cost, greedy.cost + 1e-9);
}

}  // namespace
}  // namespace qopt
