#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace qopt {
namespace {

TEST(ThreadPoolTest, PoolOfSizeOneRunsSeriallyInIndexOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.NumThreads(), 1);
  std::vector<std::size_t> order;
  pool.ParallelFor(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangeChunksCoverWithoutOverlap) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelForRange(hits.size(), 256,
                        [&](std::size_t begin, std::size_t end) {
                          EXPECT_LE(end - begin, 256u);
                          for (std::size_t i = begin; i < end; ++i) {
                            hits[i].fetch_add(1);
                          }
                        });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(128,
                                [](std::size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromSerialPool) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(10,
                                [](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyAndCompletes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> grid(64);
  pool.ParallelFor(8, [&](std::size_t outer) {
    // This test exercises exactly the guarded behavior: a nested
    // ParallelFor detects it is on the pool (t_inside_parallel_for) and
    // runs inline-serial instead of deadlocking.
    // NOLINTNEXTLINE(qqo-pool-reentrancy): intentional nested section
    pool.ParallelFor(8, [&](std::size_t inner) {
      grid[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& cell : grid) EXPECT_EQ(cell.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndReportsCompletion) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  std::future<void> done = pool.Submit([&value] { value.store(42); });
  done.wait();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> done =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(done.get(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolSizeFromEnvPrefersQqoThreads) {
  setenv("QQO_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::PoolSizeFromEnv(), 3);
  unsetenv("QQO_THREADS");
  EXPECT_GE(ThreadPool::PoolSizeFromEnv(), 1);  // hardware concurrency
}

TEST(ThreadPoolTest, PoolSizeFromEnvRejectsInvalidValues) {
  // Regression: QQO_THREADS=garbage used to atoi to 0 and silently fall
  // back to hardware concurrency; zero/negative values were accepted as
  // written. All of these are now explicit errors.
  for (const char* bad : {"not-a-number", "0", "-2", "4x", "",
                          "99999999999999999999"}) {
    setenv("QQO_THREADS", bad, 1);
    const StatusOr<int> size = ThreadPool::PoolSizeFromEnvOrStatus();
    if (*bad == '\0') {
      // Empty counts as unset: hardware default, no error.
      ASSERT_TRUE(size.ok());
      EXPECT_GE(*size, 1);
      continue;
    }
    ASSERT_FALSE(size.ok()) << "QQO_THREADS=" << bad;
    EXPECT_TRUE(size.status().code() == StatusCode::kInvalidArgument ||
                size.status().code() == StatusCode::kOutOfRange)
        << size.status().ToString();
    EXPECT_NE(size.status().message().find("QQO_THREADS"),
              std::string::npos)
        << size.status().ToString();
  }
  unsetenv("QQO_THREADS");
  const StatusOr<int> unset = ThreadPool::PoolSizeFromEnvOrStatus();
  ASSERT_TRUE(unset.ok());
  EXPECT_GE(*unset, 1);
}

TEST(ThreadPoolTest, ScopedDefaultPoolOverridesAndRestores) {
  ThreadPool replacement(2);
  ThreadPool& original = ThreadPool::Default();
  {
    ScopedDefaultPool guard(&replacement);
    EXPECT_EQ(&ThreadPool::Default(), &replacement);
  }
  EXPECT_EQ(&ThreadPool::Default(), &original);
}

TEST(ThreadPoolTest, DefaultPoolIsSizedExactlyOnce) {
  // The contract pinned here: Default() consults QQO_THREADS only at the
  // first call in the process; later env changes do NOT resize it.
  const int initial = ThreadPool::Default().NumThreads();
  setenv("QQO_THREADS", initial == 5 ? "6" : "5", 1);
  EXPECT_EQ(ThreadPool::Default().NumThreads(), initial);
  // PoolSizeFromEnv itself reads fresh, which is exactly the asymmetry
  // the Default() documentation warns about.
  EXPECT_EQ(ThreadPool::PoolSizeFromEnv(), initial == 5 ? 6 : 5);
  unsetenv("QQO_THREADS");
}

TEST(ThreadPoolTest, UnboundedDeadlineOverloadMatchesPlainParallelFor) {
  ThreadPool pool(4);
  std::vector<long long> plain(5000), budgeted(5000);
  pool.ParallelFor(plain.size(), [&](std::size_t i) {
    plain[i] = static_cast<long long>(i) * 3;
  });
  const Status status =
      pool.ParallelFor(budgeted.size(), Deadline(), [&](std::size_t i) {
        budgeted[i] = static_cast<long long>(i) * 3;
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(plain, budgeted);
}

TEST(ThreadPoolTest, CompletedDeadlineRunCoversEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4096);
  const Status status = pool.ParallelFor(
      hits.size(), Deadline::AfterMillis(1e7),
      [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExpiredDeadlineSkipsEveryChunk) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  const Status status = pool.ParallelFor(
      10000, Deadline::AfterMillis(0),
      [&](std::size_t) { ran.fetch_add(1); });
  // The deadline is checked before each chunk is claimed, so an
  // already-expired budget runs nothing — and the call still returns (the
  // completion wait must count skipped chunks).
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, PreCancelledTokenSkipsEveryChunkWithCancelled) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel();
  std::atomic<int> ran{0};
  const Status status = pool.ParallelFor(
      1000, Deadline().WithToken(&token),
      [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, CancellationMidRunDrainsInFlightChunks) {
  ThreadPool pool(4);
  CancelToken token;
  std::atomic<int> started{0}, finished{0};
  const Status status = pool.ParallelForRange(
      10000, 16, Deadline().WithToken(&token),
      [&](std::size_t begin, std::size_t /*end*/) {
        started.fetch_add(1);
        if (begin == 0) token.Cancel();
        finished.fetch_add(1);
      });
  // Every chunk that started also finished (drain, no teardown mid-chunk),
  // and the call reports what interrupted it — unless chunk 0 happened to
  // be claimed last, in which case the run simply completed.
  EXPECT_EQ(started.load(), finished.load());
  if (started.load() < 10000 / 16) {
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
  }
}

TEST(ThreadPoolTest, SerialPoolHonorsDeadlineOverloads) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  const Status expired = pool.ParallelFor(
      100, Deadline::AfterMillis(0), [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ran.load(), 0);
  std::vector<std::size_t> order;
  const Status completed = pool.ParallelFor(
      50, Deadline::AfterMillis(1e7),
      [&](std::size_t i) { order.push_back(i); });
  EXPECT_TRUE(completed.ok());
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, LargeFanOutAccumulatesCorrectSum) {
  ThreadPool pool(8);
  std::vector<long long> partial(100000);
  pool.ParallelFor(partial.size(),
                   [&](std::size_t i) { partial[i] = static_cast<long long>(i); });
  const long long total =
      std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 99999LL * 100000 / 2);
}

}  // namespace
}  // namespace qopt
