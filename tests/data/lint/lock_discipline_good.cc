// Good twin for qqo-lock-discipline: consistent ordering, sanctioned
// condition-variable waits, blocking moved outside critical sections, and
// deferred (lambda) work that is not "under" the builder's lock.
#include <condition_variable>
#include <mutex>

std::mutex state_mutex_;
std::mutex emit_mutex_;
std::condition_variable cv_;
ThreadPool* pool_;
int pending_;
bool done_;

void Process(int item);

// Same acquisition order everywhere: state_mutex_ before emit_mutex_.
void EmitFromState() {
  std::lock_guard<std::mutex> state(state_mutex_);
  std::lock_guard<std::mutex> emit(emit_mutex_);
  pending_ = 0;
}

void EmitFromStateAgain() {
  std::lock_guard<std::mutex> state(state_mutex_);
  pending_ += 1;
  std::lock_guard<std::mutex> emit(emit_mutex_);
  pending_ += 2;
}

// scoped_lock acquires both atomically: one site, no ordering edge.
void EmitBoth() {
  std::scoped_lock lock(state_mutex_, emit_mutex_);
  pending_ = 3;
}

// A wait that hands its own (only) guard to the condition variable is the
// sanctioned blocking-under-lock shape.
void AwaitDone() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  cv_.wait(lock, [] { return done_; });
}

// Blocking happens after the critical section ends.
void FlushOutsideLock() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    pending_ += 1;
  }
  pool_->WaitFor(pending_);
}

// Early unlock ends the held region before the blocking call.
void FlushAfterUnlock() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  pending_ += 1;
  lock.unlock();
  pool_->WaitFor(pending_);
}

// The submitted lambda runs later on the pool, not under this lock.
void SubmitUnderLock() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  pool_->Submit([] { Process(1); });
}
