// Bad twin for qqo-lock-discipline: blocking while holding a mutex,
// inconsistent lock ordering, recursive acquisition, and transitive
// blocking through the call graph.
#include <condition_variable>
#include <mutex>

std::mutex state_mutex_;
std::mutex emit_mutex_;
std::mutex mu_a_;
std::mutex mu_b_;
std::mutex cv_mutex_;
std::condition_variable cv_;
ThreadPool* pool_;
int pending_;

// Direct pool-blocking call while holding a lock.
void FlushUnderLock() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  pool_->WaitFor(pending_);
}

// Lock-order cycle: mu_a_ -> mu_b_ here ...
void FirstOrder() {
  std::lock_guard<std::mutex> a(mu_a_);
  std::lock_guard<std::mutex> b(mu_b_);
  pending_ = 1;
}

// ... and mu_b_ -> mu_a_ here.
void SecondOrder() {
  std::lock_guard<std::mutex> b(mu_b_);
  std::lock_guard<std::mutex> a(mu_a_);
  pending_ = 2;
}

// std::mutex self-deadlocks on recursive acquisition.
void Recursive() {
  std::lock_guard<std::mutex> outer(state_mutex_);
  std::lock_guard<std::mutex> inner(state_mutex_);
}

// Transitive: Drain blocks on the pool, and Locked calls it under a lock.
void Drain() { pool_->WaitFor(pending_); }

void Locked() {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  Drain();
}

// A condition-variable wait releases only its own guard; state_mutex_
// stays held for the whole sleep.
void WaitWithSecondLockHeld() {
  std::lock_guard<std::mutex> guard(state_mutex_);
  std::unique_lock<std::mutex> lk(cv_mutex_);
  cv_.wait(lk);
}
