// Fixture: per-iteration heap allocation inside registered hot loops
// fires qqo-hot-loop-alloc (new, unreserved push_back, std::string
// construction, to_string, make_unique).
#include <memory>
#include <string>
#include <vector>

struct Deadline {
  bool Expired() const { return false; }
};

#define QQO_COUNT(name, delta)

double HotSweep(int sweeps, const Deadline& deadline) {
  std::vector<int> accepted;  // never reserved
  double energy = 0.0;
  // QQO_LOOP(fixture.alloc_bad)
  for (int s = 0; s < sweeps; ++s) {
    if (deadline.Expired()) break;
    QQO_COUNT("fixture.sweeps", 1);
    double* slot = new double(energy);
    accepted.push_back(s);
    std::string label = "sweep " + std::to_string(s);
    auto boxed = std::make_unique<int>(s);
    energy += *slot + static_cast<double>(label.size() + *boxed);
    delete slot;
  }
  return energy;
}
