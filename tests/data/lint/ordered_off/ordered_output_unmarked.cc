// Fixture: identical iteration to ordered_output_bad.cc, but this
// directory has no result-path policy, so qqo-ordered-output stays quiet.
#include <cstdio>
#include <string>
#include <unordered_map>

void PrintScores(const std::unordered_map<std::string, double>& scores) {
  for (const auto& [name, score] : scores) {
    std::printf("%s %f\n", name.c_str(), score);
  }
}
