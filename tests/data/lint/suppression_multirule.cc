// Fixture: one NOLINT comment naming two rules suppresses both findings on
// the target line.
struct Status {
  bool ok() const { return true; }
};

Status Reseed(int seed);

void Scramble() {
  // NOLINTNEXTLINE(qqo-status-discard, qqo-determinism): fixture exercises multi-rule suppression
  Reseed(rand());
}
