// Fixture: bare-expression calls to Status/StatusOr-returning functions
// fire qqo-status-discard.
struct Status {
  bool ok() const { return true; }
  void IgnoreError() const {}
};

template <typename T>
struct StatusOr {
  bool ok() const { return true; }
};

Status SaveResults(int count);
StatusOr<int> ParseCount(const char* text);

struct Sink {
  Status Flush();
};

void Drops(Sink& sink) {
  SaveResults(3);        // bare call: Status silently dropped
  ParseCount("12");      // bare call: StatusOr silently dropped
  sink.Flush();          // bare member call: Status silently dropped
}
