// Fixture: the suppression mechanism itself is policed — unknown rule
// names and attempts to suppress the policing rule are findings.
int Value() {
  return 42;  // NOLINT(qqo-made-up-rule): rule does not exist
}

int Other() {
  return 7;  // NOLINT(qqo-nolint): trying to silence the policeman
}
