// Fixture: the three server-loop shapes of qqo_serve (accept loop,
// singleflight wait, graceful drain), each registered with QQO_LOOP and
// covered by a shutdown token / drain deadline plus an obs counter — the
// contract src/serve/server.cc must keep.
struct CancelToken {
  bool cancelled() const { return false; }
};

struct Deadline {
  bool Expired() const { return false; }
};

struct LineSource {
  bool Next() { return false; }
};

#define QQO_COUNT(name, delta)

void HandleRequest();
void WaitABit();

// The accept loop: one request per line until EOF, bailing out between
// lines once shutdown is requested.
int AcceptLoop(LineSource& in, const CancelToken& shutdown_token) {
  int handled = 0;
  // QQO_LOOP(fixture.serve_accept)
  while (in.Next()) {
    QQO_COUNT("fixture.serve_lines", 1);
    if (shutdown_token.cancelled()) break;
    HandleRequest();
    ++handled;
  }
  return handled;
}

// The singleflight wait: duplicates of an in-flight cache key park here;
// a cancelled request gives up instead of waiting forever.
bool FlightWait(bool key_in_flight, const CancelToken& token) {
  // QQO_LOOP(fixture.serve_flight)
  while (key_in_flight) {
    QQO_COUNT("fixture.serve_flight_waits", 1);
    if (token.cancelled()) return false;
    WaitABit();
    key_in_flight = false;
  }
  return true;
}

// The drain loop: in-flight solves get the budget to finish, then the
// drain deadline fires the linked cancel tokens.
void DrainLoop(int in_flight, const Deadline& drain_deadline,
               CancelToken& drain_token) {
  // QQO_LOOP(fixture.serve_drain)
  while (in_flight > 0) {
    QQO_COUNT("fixture.serve_drain_waits", 1);
    if (drain_deadline.Expired() && !drain_token.cancelled()) break;
    --in_flight;
  }
}
