// Fixture: a justified NOLINT suppresses its finding and adds nothing.
#include <random>

int JustifiedEntropy() {
  std::random_device device;  // NOLINT(qqo-determinism): fixture exercises the suppression path
  return static_cast<int>(device());
}
