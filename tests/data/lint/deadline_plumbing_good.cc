// Good twin for qqo-deadline-plumbing: every budget-receiving function
// forwards the budget, directly or through a charged options struct.
struct Deadline {
  int reason;
};
struct SolveOptions {
  Deadline deadline;
  int sweeps;
};
struct Problem {
  int size;
};

int Simulate(int n);
int Simulate(int n, const Deadline& deadline);
int SolveStage(const SolveOptions& stage_options);
SolveOptions Narrow(const Problem& problem);
int Plain(int n);

// Forwards the member directly.
int ForwardsDirectly(int n, const SolveOptions& options) {
  return Simulate(n, options.deadline);
}

// Forwards through a struct member: the member write charges `stage`, so
// passing `stage` counts as forwarding even though its name is neutral.
int ForwardsThroughMember(const SolveOptions& options, const Problem& problem) {
  SolveOptions stage = Narrow(problem);
  stage.deadline = options.deadline;
  return SolveStage(stage);
}

// No budget parameter: nothing to plumb.
int NoBudgetParam(int n) { return Simulate(n); }

// Callee has no budget-accepting overload: nothing to forward to.
int CalleeHasNoOverload(const SolveOptions& options) {
  return Plain(options.sweeps);
}
