// Fixture: registered hot loops that only touch preallocated storage
// satisfy qqo-hot-loop-alloc.
#include <string>
#include <vector>

struct Deadline {
  bool Expired() const { return false; }
};

#define QQO_COUNT(name, delta)

double HotSweep(int sweeps, const Deadline& deadline) {
  std::vector<double> scratch;
  scratch.resize(64);
  std::vector<int> accepted;
  accepted.reserve(static_cast<std::size_t>(sweeps));
  const std::string label = "sweep";  // built once, outside the loop
  double energy = 0.0;
  // QQO_LOOP(fixture.alloc_good)
  for (int s = 0; s < sweeps; ++s) {
    if (deadline.Expired()) break;
    QQO_COUNT("fixture.sweeps", 1);
    scratch[static_cast<std::size_t>(s) % scratch.size()] = energy;
    accepted.push_back(s);  // amortized: reserved above
    energy += static_cast<double>(s) + static_cast<double>(label.size());
  }
  return energy;
}

// Allocation outside any registered hot loop is not this rule's business.
std::string ColdPath(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) out += std::to_string(i);
  return out;
}
