// Fixture: iteration over unordered containers in a result path fires
// qqo-ordered-output.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

void PrintScores(const std::unordered_map<std::string, double>& scores) {
  for (const auto& [name, score] : scores) {
    std::printf("%s %f\n", name.c_str(), score);
  }
}

double FirstWeight(const std::unordered_set<int>& weights) {
  double total = 0.0;
  for (auto it = weights.begin(); it != weights.end(); ++it) {
    total += *it;
  }
  return total;
}
