// Fixture: ordered / order-free uses of unordered containers stay clean
// even in a result-path directory.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

void PrintScoresSorted(const std::unordered_map<std::string, double>& scores) {
  // Lookups and size queries are fine; only iteration order is banned.
  std::vector<std::string> names;
  names.reserve(scores.size());
  const auto it = scores.find("baseline");
  if (it != scores.end()) std::printf("baseline %f\n", it->second);
}

void PrintOrderedMap(const std::map<std::string, double>& scores) {
  for (const auto& [name, score] : scores) {
    std::printf("%s %f\n", name.c_str(), score);
  }
}
