// Fixture: registered hot loops whose bodies emit a metric or open a
// trace span satisfy qqo-obs-coverage (any of the four obs macros will
// do).
struct Status {
  bool ok() const { return true; }
};

struct Deadline {
  Status Check() const { return Status{}; }
};

#define QQO_COUNT(name, delta)
#define QQO_OBSERVE(name, value)
#define QQO_GAUGE_MAX(name, value)
#define QQO_TRACE_SPAN(site)

double CountedSweep(int sweeps, const Deadline& deadline) {
  double energy = 0.0;
  // QQO_LOOP(fixture.counted)
  for (int s = 0; s < sweeps; ++s) {
    if (!deadline.Check().ok()) break;
    QQO_COUNT("fixture.sweeps", 1);
    energy += static_cast<double>(s);
  }
  return energy;
}

double TracedWhile(int sweeps, const Deadline& deadline) {
  double energy = 0.0;
  int s = 0;
  while (s < sweeps) {  // QQO_LOOP(fixture.traced)
    QQO_TRACE_SPAN("fixture.traced");
    if (!deadline.Check().ok()) break;
    energy += static_cast<double>(s);
    ++s;
  }
  return energy;
}

double ObservedDo(int sweeps, const Deadline& deadline) {
  double energy = 0.0;
  int s = 0;
  // QQO_LOOP(fixture.observed)
  do {
    if (!deadline.Check().ok()) break;
    QQO_OBSERVE("fixture.energy", s);
    QQO_GAUGE_MAX("fixture.depth", s);
    energy += static_cast<double>(s);
  } while (++s < sweeps);
  return energy;
}

// An unannotated loop is not a registered site; no marker, no check.
double ColdLoop(int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += i;
  return total;
}
