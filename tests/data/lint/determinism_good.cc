// Fixture: deterministic idioms that qqo-determinism must not flag.
#include <chrono>
#include <cstdint>

namespace qopt {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() { return state_ += 0x9E3779B97F4A7C15ULL; }

 private:
  std::uint64_t state_;
};
}  // namespace qopt

std::uint64_t SeededDraw(std::uint64_t seed) {
  qopt::Rng rng(seed);
  return rng.Next();
}

// Steady-clock timing is allowed: it measures, it does not seed.
double ElapsedMillis(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Identifiers that merely contain banned substrings stay clean.
int randomize_retime(int lifetime) { return lifetime; }
