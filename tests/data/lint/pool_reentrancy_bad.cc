// Bad twin for qqo-pool-reentrancy: lambdas handed to the pool that
// themselves fan out, park on condition variables, or block on futures.
#include <condition_variable>
#include <future>
#include <mutex>

ThreadPool* pool_;
std::mutex mu_;
std::condition_variable done_cv_;
std::future<int> result_future_;

void Touch(std::size_t i);

// Nested fan-out: a worker waits for workers.
void NestedFanOut() {
  pool_->ParallelFor(64, [&](std::size_t outer) {
    pool_->ParallelFor(8, [&](std::size_t inner) { Touch(outer * 8 + inner); });
  });
}

// Parking a worker on a condition variable starves the pool.
void WaitInsideTask() {
  pool_->Submit([&] {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk);
  });
}

// Submit-and-get from inside a fan-out occupies the slot the task needs.
void BlockingSubmitInsideFanOut() {
  pool_->ParallelFor(16, [&](std::size_t i) {
    pool_->Submit([i] { Touch(i); }).get();
  });
}

// Blocking on an unrelated future from a pool thread.
void FutureGetInsideTask() {
  pool_->Submit([&] { Touch(result_future_.get()); });
}
