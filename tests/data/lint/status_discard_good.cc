// Fixture: consumed or explicitly discarded Status results stay clean.
struct Status {
  bool ok() const { return true; }
  void IgnoreError() const {}
};

Status SaveResults(int count);

struct Sink {
  Status Flush();
};

Status Propagates(Sink& sink) {
  Status status = SaveResults(3);
  if (!status.ok()) return status;
  return sink.Flush();
}

void ExplicitDiscard(Sink& sink) {
  // Best-effort flush on shutdown: failure is acceptable here.
  sink.Flush().IgnoreError();
  SaveResults(0).IgnoreError();
}

// Overload set with both void and Status flavours: ambiguous at the token
// level, so bare calls to it are not flagged.
void Sweep(int n);
Status Sweep(int n, const Status& budget);

void CallsVoidOverload() { Sweep(7); }
