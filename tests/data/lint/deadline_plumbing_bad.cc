// Bad twin for qqo-deadline-plumbing: budget-receiving functions call
// callees that have a deadline-accepting overload without forwarding any
// budget. Self-contained: the index is built from this file alone.
struct Deadline {
  int reason;
};
struct SolveOptions {
  Deadline deadline;
  int sweeps;
};

int Simulate(int n);
int Simulate(int n, const Deadline& deadline);

// Drops the budget on a direct call.
int RunStage(int n, const SolveOptions& options) {
  const int reps = 2;
  return Simulate(n + reps);
}

// Drops the budget on a deferred call: the objective lambda runs later but
// still has options in scope, so the deadline-free overload is a bug.
int RunObjective(int n, const SolveOptions& options) {
  auto objective = [n](int scale) { return Simulate(n * scale); };
  return objective(3);
}
