// Fixture: #pragma once first, using-directives only inside function
// bodies — clean under qqo-header-hygiene.
#pragma once

#include <string>

namespace fixture {

inline std::string Greeting() {
  using namespace std::string_literals;
  return "hi"s;
}

}  // namespace fixture
