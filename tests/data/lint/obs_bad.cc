// Fixture: registered hot loops that poll the deadline but never emit a
// metric or span fire qqo-obs-coverage (and only it — the deadline rule
// is satisfied).
struct Status {
  bool ok() const { return true; }
};

struct Deadline {
  Status Check() const { return Status{}; }
};

double SilentSweep(int sweeps, const Deadline& deadline) {
  double energy = 0.0;
  // QQO_LOOP(fixture.silent)
  for (int s = 0; s < sweeps; ++s) {
    if (!deadline.Check().ok()) break;
    energy += static_cast<double>(s);
  }
  return energy;
}

double SilentWhile(int sweeps, const Deadline& deadline) {
  double energy = 0.0;
  int s = 0;
  while (s < sweeps) {  // QQO_LOOP(fixture.silent_while)
    if (!deadline.Check().ok()) break;
    energy += static_cast<double>(s);
    ++s;
  }
  return energy;
}
