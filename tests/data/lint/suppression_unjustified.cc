// Fixture: a NOLINT without a reason suppresses the original finding but
// is itself reported via qqo-nolint.
#include <random>

int UnjustifiedEntropy() {
  std::random_device device;  // NOLINT(qqo-determinism)
  return static_cast<int>(device());
}

int NextLineForm() {
  // NOLINTNEXTLINE(qqo-determinism): justified next-line suppression
  std::random_device device;
  return static_cast<int>(device());
}
