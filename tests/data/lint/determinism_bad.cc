// Fixture: every banned entropy/clock primitive fires qqo-determinism.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int UnseededEngine() {
  std::random_device device;
  std::mt19937 engine(device());
  return static_cast<int>(engine());
}

int GlobalRng() {
  std::srand(42);
  return std::rand();
}

long WallClockSeed() {
  long seed = static_cast<long>(time(nullptr));
  seed += std::chrono::system_clock::now().time_since_epoch().count();
  return seed;
}
