// Fixture: server-loop shapes that violate the qqo_serve contracts — an
// accept loop that cannot be shut down (deadline coverage), a drain loop
// with no observability, and an accept loop that allocates per request
// line (hot-loop alloc).
#include <string>
#include <vector>

struct CancelToken {
  bool cancelled() const { return false; }
};

struct Deadline {
  bool Expired() const { return false; }
};

struct LineSource {
  bool Next() { return false; }
};

#define QQO_COUNT(name, delta)

void HandleRequest();

// An accept loop that never consults the shutdown token: SIGTERM could
// only stop it via EOF. qqo-deadline-coverage fires.
int UnstoppableAcceptLoop(LineSource& in) {
  int handled = 0;
  // QQO_LOOP(fixture.serve_accept)
  while (in.Next()) {
    QQO_COUNT("fixture.serve_lines", 1);
    HandleRequest();
    ++handled;
  }
  return handled;
}

// A drain loop that emits nothing: a hung drain would be invisible in the
// metrics table. qqo-obs-coverage fires (deadline stays quiet).
void SilentDrainLoop(int in_flight, const Deadline& drain_deadline) {
  // QQO_LOOP(fixture.serve_drain)
  while (in_flight > 0) {
    if (drain_deadline.Expired()) break;
    --in_flight;
  }
}

// An accept loop that copies every request line into growing storage:
// unbounded per-request allocation. qqo-hot-loop-alloc fires.
int HoardingAcceptLoop(LineSource& in, const CancelToken& shutdown_token) {
  std::vector<std::string> lines;  // never reserved
  // QQO_LOOP(fixture.serve_hoard)
  while (in.Next()) {
    QQO_COUNT("fixture.serve_lines", 1);
    if (shutdown_token.cancelled()) break;
    std::string copy = "line";
    lines.push_back(copy);
  }
  return static_cast<int>(lines.size());
}
