// Good twin for qqo-pool-reentrancy: single-level fan-out, fire-and-forget
// submissions, blocking only from the caller's thread, and nesting that is
// intentionally routed through a named helper (the pool runs it inline).
#include <future>

ThreadPool* pool_;

void Touch(std::size_t i);
void InnerStage(std::size_t outer);

// Plain single-level fan-out.
void FanOut() {
  pool_->ParallelFor(64, [&](std::size_t i) { Touch(i); });
}

// Fire-and-forget: the task blocks nobody.
void FireAndForget() {
  pool_->Submit([] { Touch(0); });
}

// Blocking on the future from the submitting thread is fine.
int BlockOnCallerThread() {
  std::future<int> result_future = pool_->Submit([] { return 7; });
  return result_future.get();
}

// Nesting through a named helper is the deliberate inline-serial path; the
// rule only polices lambdas that nest directly.
void Outer() {
  pool_->ParallelFor(8, [&](std::size_t outer) { InnerStage(outer); });
}
