// Fixture: include-guard header with a namespace-scope using-directive
// fires qqo-header-hygiene twice.
#ifndef QQO_TESTS_DATA_LINT_HEADER_HYGIENE_BAD_H_
#define QQO_TESTS_DATA_LINT_HEADER_HYGIENE_BAD_H_

#include <string>

using namespace std;

namespace fixture {
using namespace std::string_literals;

inline string Greeting() { return "hi"s; }
}  // namespace fixture

#endif  // QQO_TESTS_DATA_LINT_HEADER_HYGIENE_BAD_H_
