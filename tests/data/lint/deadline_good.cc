// Fixture: registered hot loops that poll the deadline every iteration
// satisfy qqo-deadline-coverage.
struct Status {
  bool ok() const { return true; }
};

struct Deadline {
  Status Check() const { return Status{}; }
};

bool CheckDeadline(const Deadline& deadline) { return deadline.Check().ok(); }

#define QQO_COUNT(name, delta)
#define QQO_TRACE_SPAN(site)

double HotSweep(int sweeps, const Deadline& deadline) {
  double energy = 0.0;
  // QQO_LOOP(fixture.sweep)
  for (int s = 0; s < sweeps; ++s) {
    if (!deadline.Check().ok()) break;
    QQO_COUNT("fixture.sweeps", 1);
    energy += static_cast<double>(s);
  }
  return energy;
}

double HotWhile(int sweeps, const Deadline& stage_deadline) {
  double energy = 0.0;
  int s = 0;
  while (s < sweeps) {  // QQO_LOOP(fixture.while)
    QQO_TRACE_SPAN("fixture.while");
    if (!CheckDeadline(stage_deadline)) break;
    energy += static_cast<double>(s);
    ++s;
  }
  return energy;
}

struct CancelToken {
  bool cancelled() const { return false; }
};

// A fan-out drain loop (the portfolio racer's wait-loop shape): coverage
// comes from the shared cancellation token, not a wall-clock poll.
int DrainLanes(int outstanding, const CancelToken& token) {
  int polls = 0;
  // QQO_LOOP(fixture.drain)
  while (outstanding > 0) {
    QQO_COUNT("fixture.drain_polls", 1);
    if (token.cancelled()) --outstanding;
    --outstanding;
    ++polls;
  }
  return polls;
}

// An unannotated loop is not a registered site; no marker, no check.
double ColdLoop(int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += i;
  return total;
}
