// Fixture: registered hot loops that never poll the deadline fire
// qqo-deadline-coverage, as does a marker with no loop under it.
struct Deadline {
  bool Expired() const { return false; }
};

double HotSweep(int sweeps, const Deadline& budget) {
  double energy = 0.0;
  (void)budget;
  // QQO_LOOP(fixture.sweep)
  for (int s = 0; s < sweeps; ++s) {
    energy += static_cast<double>(s);
  }
  return energy;
}

double HotWhile(int sweeps) {
  double energy = 0.0;
  int s = 0;
  while (s < sweeps) {  // QQO_LOOP(fixture.while)
    energy += static_cast<double>(s);
    ++s;
  }
  return energy;
}

struct RaceToken {
  bool done() const { return false; }
};

// A drain loop that touches a token but never asks it about cancellation
// (or the deadline) is still uncovered.
int DrainLanes(int outstanding, const RaceToken& token) {
  int polls = 0;
  // QQO_LOOP(fixture.drain)
  while (outstanding > 0) {
    if (token.done()) --outstanding;
    --outstanding;
    ++polls;
  }
  return polls;
}

// QQO_LOOP(fixture.dangling)
int NotALoop() { return 42; }
