// Asserts the determinism contract of the parallel execution layer: every
// parallel sweep (multi-seed transpile, multi-read annealing, multi-seed
// embedding, the QAOA solver) produces results under an 8-thread pool that
// are identical — bit for bit — to the 1-thread serial path, because all
// parallel work is indexed by seed/read/start and all kernel arithmetic is
// independent of the chunk-to-thread assignment.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "anneal/chimera.h"
#include "anneal/minor_embedder.h"
#include "anneal/simulated_annealer.h"
#include "circuit/statevector.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/variational_solver.h"

namespace qopt {
namespace {

QuboModel TestQubo(int num_queries) {
  MqoGeneratorOptions gen;
  gen.num_queries = num_queries;
  gen.plans_per_query = 4;
  gen.seed = 1;
  return EncodeMqoAsQubo(GenerateMqoProblem(gen)).qubo;
}

/// Runs `fn` once under a 1-thread pool and once under an 8-thread pool
/// and returns both results.
template <typename Fn>
auto RunAtBothThreadCounts(const Fn& fn) {
  ThreadPool serial(1);
  ThreadPool parallel(8);
  ScopedDefaultPool serial_guard(&serial);
  auto serial_result = fn();
  ScopedDefaultPool parallel_guard(&parallel);
  auto parallel_result = fn();
  return std::make_pair(std::move(serial_result), std::move(parallel_result));
}

TEST(ParallelDeterminismTest, TranspileManySeedsMatchesSerial) {
  const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(TestQubo(4)));
  const CouplingMap mumbai = MakeMumbai27();
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 12; ++s) seeds.push_back(s * 101);

  const auto [serial, parallel] = RunAtBothThreadCounts([&] {
    return TranspileManySeeds(qaoa, mumbai, seeds);
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].depth, parallel[i].depth) << "seed slot " << i;
    EXPECT_EQ(serial[i].initial_layout, parallel[i].initial_layout);
    EXPECT_EQ(serial[i].final_layout, parallel[i].final_layout);
    EXPECT_EQ(serial[i].circuit.ToString(), parallel[i].circuit.ToString());
  }
}

TEST(ParallelDeterminismTest, MultiReadAnnealingMatchesSerial) {
  const QuboModel qubo = TestQubo(4);
  AnnealOptions options;
  options.num_reads = 16;
  options.num_sweeps = 200;
  options.seed = 7;

  const auto [serial, parallel] = RunAtBothThreadCounts([&] {
    return SolveQuboWithAnnealing(qubo, options);
  });
  EXPECT_EQ(serial.best_bits, parallel.best_bits);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
  EXPECT_EQ(serial.read_energies, parallel.read_energies);
}

TEST(ParallelDeterminismTest, QaoaSolverMatchesSerial) {
  const QuboModel qubo = TestQubo(3);
  VariationalOptions options;
  options.max_iterations = 60;
  options.shots = 256;
  options.seed = 3;

  const auto [serial, parallel] = RunAtBothThreadCounts([&] {
    return SolveQuboWithQaoa(qubo, options);
  });
  EXPECT_EQ(serial.best_bits, parallel.best_bits);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
  EXPECT_EQ(serial.expectation, parallel.expectation);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
}

TEST(ParallelDeterminismTest, MinorEmbeddingManySeedsMatchesSerial) {
  // Small source graph into a Chimera cell grid: fast, and exercises both
  // successful and per-seed-varying outcomes.
  SimpleGraph source(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) source.AddEdge(i, j);
  }
  const SimpleGraph target = MakeChimera(3, 3, 4);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 8; ++s) seeds.push_back(100 + s * 7919);
  EmbedOptions base;
  base.tries = 1;

  const auto [serial, parallel] = RunAtBothThreadCounts([&] {
    return FindMinorEmbeddingManySeeds(source, target, seeds, base);
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].has_value(), parallel[i].has_value())
        << "seed slot " << i;
    if (serial[i].has_value()) {
      EXPECT_EQ(serial[i]->chains, parallel[i]->chains);
    }
  }
}

TEST(ParallelDeterminismTest, StatevectorKernelsMatchAcrossThreadCounts) {
  // 15 qubits crosses the parallelization threshold; every gate kind the
  // QAOA/VQE ansätze emit appears, including a fusable diagonal run.
  QuantumCircuit circuit(15);
  for (int q = 0; q < 15; ++q) circuit.H(q);
  for (int q = 0; q + 1 < 15; ++q) circuit.Rzz(q, q + 1, 0.3 + 0.01 * q);
  for (int q = 0; q < 15; ++q) circuit.Rz(q, 0.2 + 0.01 * q);
  circuit.Cz(0, 7);
  for (int q = 0; q < 15; ++q) circuit.Rx(q, 0.5);
  circuit.Cx(3, 11);
  circuit.Swap(2, 13);

  const auto [serial, parallel] = RunAtBothThreadCounts([&] {
    return SimulateCircuit(circuit).Amplitudes();
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].real(), parallel[i].real()) << "amplitude " << i;
    EXPECT_EQ(serial[i].imag(), parallel[i].imag()) << "amplitude " << i;
  }
}

TEST(StatevectorFusionTest, FusedDiagonalRunMatchesGateByGate) {
  // ApplyCircuit fuses the diagonal run; applying the gates one at a time
  // never fuses. Both must produce the same state up to rounding.
  QuantumCircuit circuit(6);
  for (int q = 0; q < 6; ++q) circuit.H(q);
  for (int q = 0; q < 6; ++q) circuit.Rz(q, 0.1 * (q + 1));
  for (int q = 0; q + 1 < 6; ++q) circuit.Rzz(q, q + 1, 0.2 * (q + 1));
  circuit.Cz(0, 5);
  circuit.Z(3);
  circuit.Rzz(1, 4, -0.7);

  const Statevector fused = SimulateCircuit(circuit);
  Statevector reference(6);
  for (const Gate& gate : circuit.Gates()) reference.ApplyGate(gate);

  ASSERT_EQ(fused.Amplitudes().size(), reference.Amplitudes().size());
  for (std::size_t i = 0; i < fused.Amplitudes().size(); ++i) {
    EXPECT_NEAR(fused.Amplitudes()[i].real(),
                reference.Amplitudes()[i].real(), 1e-12);
    EXPECT_NEAR(fused.Amplitudes()[i].imag(),
                reference.Amplitudes()[i].imag(), 1e-12);
  }
  EXPECT_NEAR(fused.NormSquared(), 1.0, 1e-12);
}

TEST(StatevectorFusionTest, ResetRestoresZeroStateWithoutRealloc) {
  QuantumCircuit circuit(5);
  for (int q = 0; q < 5; ++q) circuit.H(q);
  Statevector state(5);
  state.ApplyCircuit(circuit);
  state.Reset();
  EXPECT_EQ(state.Amplitudes()[0], std::complex<double>(1.0, 0.0));
  for (std::size_t i = 1; i < state.Amplitudes().size(); ++i) {
    EXPECT_EQ(state.Amplitudes()[i], std::complex<double>(0.0, 0.0));
  }
}

TEST(StatevectorFusionTest, SampleFromCdfMatchesLinearScanSample) {
  QuantumCircuit circuit(6);
  for (int q = 0; q < 6; ++q) circuit.H(q);
  for (int q = 0; q + 1 < 6; ++q) circuit.Rzz(q, q + 1, 0.8);
  for (int q = 0; q < 6; ++q) circuit.Rx(q, 0.4);
  const Statevector state = SimulateCircuit(circuit);
  const std::vector<double> cdf = state.CumulativeProbabilities();
  // Identical RNG streams must yield identical samples: both paths draw
  // exactly one NextDouble per shot and pick the same basis state.
  Rng linear_rng(123);
  Rng cdf_rng(123);
  for (int shot = 0; shot < 500; ++shot) {
    EXPECT_EQ(state.Sample(&linear_rng), state.SampleFromCdf(cdf, &cdf_rng));
  }
}

}  // namespace
}  // namespace qopt
