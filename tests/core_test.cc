#include <gtest/gtest.h>

#include <cmath>

#include "core/device_model.h"
#include "core/quantum_optimizer.h"
#include "core/resource_estimator.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "transpile/ibm_topologies.h"

namespace qopt {
namespace {

// --- Device models (Eq. 36/37/55) ------------------------------------------

TEST(DeviceModelTest, MumbaiMaxDepthIs248) {
  EXPECT_EQ(MumbaiDevice().MaxReliableDepth(), 248);
}

TEST(DeviceModelTest, BrooklynMaxDepthIs178) {
  EXPECT_EQ(BrooklynDevice().MaxReliableDepth(), 178);
}

TEST(DeviceModelTest, BrooklynThresholdRoughly28PercentBelowMumbai) {
  const double ratio =
      1.0 - static_cast<double>(BrooklynDevice().MaxReliableDepth()) /
                MumbaiDevice().MaxReliableDepth();
  EXPECT_NEAR(ratio, 0.28, 0.01);  // "approximately 28% smaller"
}

TEST(DeviceModelTest, DecoherenceProbabilityAtCoherenceTime) {
  const DeviceModel mumbai = MumbaiDevice();
  EXPECT_DOUBLE_EQ(mumbai.DecoherenceErrorProbability(0), 0.0);
  // At the threshold depth the error probability approaches 1 - 1/e.
  const double p =
      mumbai.DecoherenceErrorProbability(mumbai.MaxReliableDepth());
  EXPECT_NEAR(p, 1.0 - std::exp(-1.0), 0.01);
}

TEST(DeviceModelTest, AnnealerModels) {
  EXPECT_EQ(AdvantageAnnealer().pegasus_m, 16);
  EXPECT_GT(AdvantageAnnealer().num_qubits, 5000);
  EXPECT_EQ(DWave2xAnnealer().chimera_m, 12);
}

// --- Resource estimator -------------------------------------------------------

TEST(ResourceEstimatorTest, MqoEstimateShape) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 4;
  gen.seed = 1;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  GateEstimateOptions options;
  options.transpile_trials = 5;
  const GateResourceEstimate estimate = EstimateGateResources(
      encoding.qubo, MakeMumbai27(), MumbaiDevice(), options);
  EXPECT_EQ(estimate.logical_qubits, 12);
  EXPECT_GT(estimate.quadratic_terms, 0);
  EXPECT_GT(estimate.qaoa_depth_ideal, 0);
  EXPECT_GT(estimate.vqe_depth_ideal, 0);
  EXPECT_GE(estimate.qaoa_depth_device, estimate.qaoa_depth_ideal);
  EXPECT_GE(estimate.vqe_depth_device, estimate.vqe_depth_ideal);
  EXPECT_EQ(estimate.max_reliable_depth, 248);
}

TEST(ResourceEstimatorTest, OversizedProblemHasNoDeviceDepth) {
  QuboModel qubo(40);  // more than Mumbai's 27 qubits
  for (int i = 0; i + 1 < 40; ++i) qubo.AddQuadratic(i, i + 1, 1.0);
  const GateResourceEstimate estimate =
      EstimateGateResources(qubo, MakeMumbai27(), MumbaiDevice());
  EXPECT_EQ(estimate.qaoa_depth_device, -1.0);
  EXPECT_FALSE(estimate.qaoa_within_coherence);
}

// --- Facade: MQO ------------------------------------------------------------------

TEST(QuantumOptimizerTest, BackendNames) {
  EXPECT_EQ(BackendName(Backend::kExact), "exact");
  EXPECT_EQ(BackendName(Backend::kQaoa), "qaoa");
  EXPECT_EQ(BackendName(Backend::kAdiabatic), "adiabatic");
  EXPECT_EQ(BackendName(Backend::kAnnealerEmulation), "annealer");
}

TEST(QuantumOptimizerTest, MqoExactBackendSolvesPaperExample) {
  OptimizerOptions options;
  options.backend = Backend::kExact;
  const MqoSolveReport report = SolveMqo(MakePaperExampleMqo(), options);
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.solution.cost, 21.0);
  EXPECT_EQ(report.qubits, 8);
}

TEST(QuantumOptimizerTest, MqoSimulatedAnnealingBackend) {
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 20;
  options.seed = 3;
  const MqoSolveReport report = SolveMqo(MakePaperExampleMqo(), options);
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.solution.cost, 21.0);
}

TEST(QuantumOptimizerTest, MqoQaoaBackend) {
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.variational.max_iterations = 150;
  options.variational.shots = 4096;
  options.seed = 7;
  const MqoSolveReport report = SolveMqo(MakePaperExampleMqo(), options);
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.solution.cost, 21.0);
}

TEST(QuantumOptimizerTest, MqoAdiabaticBackend) {
  OptimizerOptions options;
  options.backend = Backend::kAdiabatic;
  options.adiabatic.total_time = 40.0;
  options.adiabatic.steps = 400;
  options.adiabatic.shots = 2048;
  options.seed = 9;
  const MqoSolveReport report = SolveMqo(MakePaperExampleMqo(), options);
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.solution.cost, 21.0);
}

TEST(QuantumOptimizerTest, MqoAnnealerEmulationBackend) {
  OptimizerOptions options;
  options.backend = Backend::kAnnealerEmulation;
  options.pegasus_m = 3;
  options.embedded.anneal.num_reads = 30;
  options.embedded.anneal.num_sweeps = 800;
  options.seed = 5;
  const MqoSolveReport report = SolveMqo(MakePaperExampleMqo(), options);
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.solution.cost, 21.0);
}

// --- Facade: join ordering -----------------------------------------------------------

TEST(QuantumOptimizerTest, JoinOrderSaBackendOnSection612Example) {
  QueryGraph graph({10.0, 10.0, 10.0});
  graph.AddPredicate(0, 1, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 60;
  options.anneal.num_sweeps = 2000;
  options.seed = 11;
  const JoinOrderSolveReport report = SolveJoinOrder(graph, encoder, options);
  // 24 qubits with the paper's bounds; the safe slack bound costs one more.
  EXPECT_EQ(report.qubits, 25);
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(IsValidJoinOrder(graph, report.solution.order));
}

TEST(QuantumOptimizerTest, JoinOrderExactBackendFindsOptimum) {
  QueryGraph graph({10.0, 10.0, 10.0});
  graph.AddPredicate(0, 1, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kExact;
  const JoinOrderSolveReport report = SolveJoinOrder(graph, encoder, options);
  ASSERT_TRUE(report.valid);
  // Optimal order joins A and B first.
  EXPECT_TRUE((report.solution.order[0] == 0 && report.solution.order[1] == 1) ||
              (report.solution.order[0] == 1 && report.solution.order[1] == 0));
}

}  // namespace
}  // namespace qopt
