// Canonical-form QUBO signatures (qubo/qubo_canonical.h): relabeling
// invariance of canonical_hash, labeled sensitivity of exact_hash,
// perturbation sensitivity, rank-based solution transport between
// isomorphic labelings, and HashCombine basics. These are the contracts
// the serving layer's solution cache leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "common/random.h"
#include "qubo/qubo_canonical.h"
#include "qubo/qubo_model.h"

namespace qopt {
namespace {

/// A dense-ish asymmetric QUBO: distinct linear terms and a quadratic
/// pattern that separates most variables under refinement.
QuboModel MakeSampleQubo(int n) {
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) {
    qubo.AddLinear(i, 1.0 + 0.5 * i);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if ((i + j) % 3 == 0) {
        qubo.AddQuadratic(i, j, -2.0 + 0.25 * i + 0.125 * j);
      }
    }
  }
  return qubo;
}

/// Relabels `qubo` through `perm`: variable i of the input becomes
/// variable perm[i] of the output.
QuboModel Relabel(const QuboModel& qubo, const std::vector<int>& perm) {
  QuboModel out(qubo.NumVariables());
  out.AddOffset(qubo.Offset());
  for (int i = 0; i < qubo.NumVariables(); ++i) {
    out.AddLinear(perm[i], qubo.Linear(i));
  }
  for (const auto& term : qubo.QuadraticTerms()) {
    out.AddQuadratic(perm[term.first.first], perm[term.first.second],
                     term.second);
  }
  return out;
}

std::vector<int> RandomPermutation(int n, std::uint64_t seed) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&perm);
  return perm;
}

TEST(QuboCanonicalTest, CanonicalHashInvariantUnderRelabeling) {
  const QuboModel qubo = MakeSampleQubo(12);
  const QuboSignature base = ComputeQuboSignature(qubo);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<int> perm = RandomPermutation(12, seed);
    const QuboModel relabeled = Relabel(qubo, perm);
    const QuboSignature sig = ComputeQuboSignature(relabeled);
    EXPECT_EQ(sig.canonical_hash, base.canonical_hash)
        << "relabeling changed the canonical hash (seed " << seed << ")";
    // The identity permutation is possible but vanishingly unlikely for
    // eight random shuffles of 12 elements; only assert exact_hash
    // differs when the permutation actually moved something.
    bool moved = false;
    for (int i = 0; i < 12; ++i) moved = moved || perm[i] != i;
    if (moved) {
      EXPECT_NE(sig.exact_hash, base.exact_hash)
          << "exact hash must distinguish labelings (seed " << seed << ")";
    }
  }
}

TEST(QuboCanonicalTest, ExactHashEqualForIdenticalQubo) {
  const QuboModel a = MakeSampleQubo(9);
  const QuboModel b = MakeSampleQubo(9);
  const QuboSignature sa = ComputeQuboSignature(a);
  const QuboSignature sb = ComputeQuboSignature(b);
  EXPECT_EQ(sa.exact_hash, sb.exact_hash);
  EXPECT_EQ(sa.canonical_hash, sb.canonical_hash);
}

TEST(QuboCanonicalTest, PerturbationChangesBothHashes) {
  const QuboModel base = MakeSampleQubo(10);
  const QuboSignature sig = ComputeQuboSignature(base);

  QuboModel linear_bump = MakeSampleQubo(10);
  linear_bump.AddLinear(3, 1e-9);
  const QuboSignature sl = ComputeQuboSignature(linear_bump);
  EXPECT_NE(sl.canonical_hash, sig.canonical_hash);
  EXPECT_NE(sl.exact_hash, sig.exact_hash);

  QuboModel quad_bump = MakeSampleQubo(10);
  quad_bump.AddQuadratic(0, 5, 0.5);
  const QuboSignature sq = ComputeQuboSignature(quad_bump);
  EXPECT_NE(sq.canonical_hash, sig.canonical_hash);
  EXPECT_NE(sq.exact_hash, sig.exact_hash);

  QuboModel offset_bump = MakeSampleQubo(10);
  offset_bump.AddOffset(2.0);
  const QuboSignature so = ComputeQuboSignature(offset_bump);
  EXPECT_NE(so.exact_hash, sig.exact_hash)
      << "the offset shifts every energy, so it must enter the hash";
}

TEST(QuboCanonicalTest, NegativeZeroNormalized) {
  QuboModel a(3);
  a.AddLinear(0, 0.0);
  a.AddLinear(1, 2.0);
  a.AddQuadratic(0, 1, 1.5);
  QuboModel b(3);
  b.AddLinear(0, -0.0);
  b.AddLinear(1, 2.0);
  b.AddQuadratic(0, 1, 1.5);
  EXPECT_EQ(ComputeQuboSignature(a).exact_hash,
            ComputeQuboSignature(b).exact_hash);
  EXPECT_EQ(ComputeQuboSignature(a).canonical_hash,
            ComputeQuboSignature(b).canonical_hash);
}

TEST(QuboCanonicalTest, CollisionSanityOnPerturbedFamily) {
  // 40 structurally close but distinct QUBOs must produce 40 distinct
  // canonical hashes — the cache key would silently merge them otherwise
  // (the isomorphic-verify path would then reject, but every collision
  // costs a wasted energy check).
  std::set<std::uint64_t> hashes;
  for (int k = 0; k < 40; ++k) {
    QuboModel qubo = MakeSampleQubo(8);
    qubo.AddQuadratic(1, 2, 0.01 * (k + 1));
    hashes.insert(ComputeQuboSignature(qubo).canonical_hash);
  }
  EXPECT_EQ(hashes.size(), 40u);
}

TEST(QuboCanonicalTest, RankMappingRoundTrips) {
  const QuboModel qubo = MakeSampleQubo(11);
  const QuboSignature sig = ComputeQuboSignature(qubo);
  ASSERT_EQ(sig.canonical_rank.size(), 11u);

  // canonical_rank must be a permutation of 0..n-1.
  std::vector<int> sorted = sig.canonical_rank;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 11; ++i) EXPECT_EQ(sorted[i], i);

  std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0};
  const std::vector<std::uint8_t> canonical = MapBitsToCanonical(sig, bits);
  EXPECT_EQ(MapBitsFromCanonical(sig, canonical), bits);
}

TEST(QuboCanonicalTest, SolutionTransportsAcrossIsomorphicLabelings) {
  // The cache's isomorphic-hit path: bits found for labeling A, stored in
  // canonical coordinates, projected out through labeling B's ranks. The
  // projected assignment must assign the "same" variables (so energies
  // match exactly) whenever refinement separates all variables.
  const QuboModel a = MakeSampleQubo(12);
  const QuboSignature sig_a = ComputeQuboSignature(a);
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    const std::vector<int> perm = RandomPermutation(12, seed);
    const QuboModel b = Relabel(a, perm);
    const QuboSignature sig_b = ComputeQuboSignature(b);
    ASSERT_EQ(sig_a.canonical_hash, sig_b.canonical_hash);

    std::vector<std::uint8_t> bits_a = {0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0};
    const std::vector<std::uint8_t> bits_b =
        MapBitsFromCanonical(sig_b, MapBitsToCanonical(sig_a, bits_a));
    EXPECT_DOUBLE_EQ(b.Energy(bits_b), a.Energy(bits_a))
        << "transported assignment lost energy (seed " << seed << ")";
  }
}

TEST(QuboCanonicalTest, HashCombineOrderAndDistinctness) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 0), 0u);
  EXPECT_EQ(HashCombine(7, 9), HashCombine(7, 9));
}

// ---------------------------------------------------------------------------
// Degenerate-input sweep: empty, single-variable and disconnected QUBOs.
// ---------------------------------------------------------------------------

/// Uniform-weight cycle over the given variables: every vertex has degree
/// 2, identical linear terms and identical couplings — the worst case for
/// pure WL refinement, which sees only degrees and weights.
QuboModel MakeUniformCycles(const std::vector<int>& cycle_lengths) {
  int n = 0;
  for (int len : cycle_lengths) n += len;
  QuboModel qubo(n);
  int base = 0;
  for (int len : cycle_lengths) {
    for (int i = 0; i < len; ++i) {
      qubo.AddLinear(base + i, -1.0);
      qubo.AddQuadratic(base + i, base + (i + 1) % len, 2.0);
    }
    base += len;
  }
  return qubo;
}

TEST(QuboCanonicalTest, EmptyAndSingleVariableQubosHaveStableSignatures) {
  const QuboModel empty(0);
  const QuboSignature empty_sig = ComputeQuboSignature(empty);
  EXPECT_TRUE(empty_sig.canonical_rank.empty());
  EXPECT_EQ(empty_sig.canonical_hash,
            ComputeQuboSignature(QuboModel(0)).canonical_hash);

  QuboModel one(1);
  one.AddLinear(0, 2.5);
  const QuboSignature one_sig = ComputeQuboSignature(one);
  ASSERT_EQ(one_sig.canonical_rank.size(), 1u);
  EXPECT_EQ(one_sig.canonical_rank[0], 0);
  EXPECT_NE(one_sig.canonical_hash, empty_sig.canonical_hash);

  QuboModel other(1);
  other.AddLinear(0, -2.5);
  EXPECT_NE(ComputeQuboSignature(other).canonical_hash,
            one_sig.canonical_hash);
}

TEST(QuboCanonicalTest, DisconnectedRegularGraphsDoNotCollide) {
  // The known WL soft spot the serve cache tripped over: C6 and C3+C3
  // are both 2-regular with uniform weights, so refinement alone never
  // separates them. The component-invariant seeding must keep their
  // canonical hashes apart (a collision would transport a C6 solution
  // onto a C3+C3 instance).
  const QuboModel c6 = MakeUniformCycles({6});
  const QuboModel c3c3 = MakeUniformCycles({3, 3});
  EXPECT_NE(ComputeQuboSignature(c6).canonical_hash,
            ComputeQuboSignature(c3c3).canonical_hash);

  // Same family, larger split: C12 vs 2xC6 vs 3xC4.
  const std::uint64_t c12 =
      ComputeQuboSignature(MakeUniformCycles({12})).canonical_hash;
  const std::uint64_t c6c6 =
      ComputeQuboSignature(MakeUniformCycles({6, 6})).canonical_hash;
  const std::uint64_t c4x3 =
      ComputeQuboSignature(MakeUniformCycles({4, 4, 4})).canonical_hash;
  EXPECT_NE(c12, c6c6);
  EXPECT_NE(c12, c4x3);
  EXPECT_NE(c6c6, c4x3);
}

TEST(QuboCanonicalTest, DisconnectedGraphsStayRelabelingInvariant) {
  // The component fix must not break the core invariance: shuffling a
  // disconnected QUBO's labels (mixing the components) keeps the hash.
  const QuboModel a = MakeUniformCycles({3, 5, 4});
  const QuboSignature sig_a = ComputeQuboSignature(a);
  for (std::uint64_t seed = 51; seed <= 54; ++seed) {
    const std::vector<int> perm = RandomPermutation(12, seed);
    const QuboModel b = Relabel(a, perm);
    EXPECT_EQ(ComputeQuboSignature(b).canonical_hash, sig_a.canonical_hash)
        << "seed " << seed;
  }
}

TEST(QuboCanonicalTest, IsolatedVariablesCountAsComponents) {
  // Two isolated variables vs one coupled pair with the same linear
  // terms: different component structure, different hash.
  QuboModel isolated(2);
  isolated.AddLinear(0, 1.0);
  isolated.AddLinear(1, 1.0);
  QuboModel coupled(2);
  coupled.AddLinear(0, 1.0);
  coupled.AddLinear(1, 1.0);
  coupled.AddQuadratic(0, 1, 0.5);
  EXPECT_NE(ComputeQuboSignature(isolated).canonical_hash,
            ComputeQuboSignature(coupled).canonical_hash);
}

}  // namespace
}  // namespace qopt
