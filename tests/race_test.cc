// Portfolio-racing dispatch (DispatchMode::kRace): deterministic winner
// selection at any thread count, cancelled-loser cleanliness, race-vs-
// serial result pins on the paper workloads, fault-injected leader death
// — plus regression pins for the serial dispatch-stats bugfix sweep
// (attempt accounting, attempt-seed continuation into salvage/fallback,
// salvage timed_out semantics).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "anneal/simulated_annealer.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/quantum_optimizer.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"

namespace qopt {
namespace {

/// Mirrors the facade's documented per-attempt seed stream (splitmix64
/// finalizer, attempt 1 keeps the caller seed). The salvage/fallback seed
/// pins below fail if the implementation ever drifts from this contract.
std::uint64_t ExpectedAttemptSeed(std::uint64_t seed, int attempt) {
  if (attempt <= 1) return seed;
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Dense K-partite MQO instance: `queries` x `plans_per_query` variables
/// with savings across all query pairs (same shape the degradation tests
/// use to exceed backend qubit budgets).
MqoProblem MakeDenseMqo(int queries, int plans_per_query) {
  MqoProblem problem;
  for (int q = 0; q < queries; ++q) {
    std::vector<double> costs;
    for (int p = 0; p < plans_per_query; ++p) {
      costs.push_back(5.0 + q + 0.25 * p);
    }
    problem.AddQuery(costs);
  }
  for (int p1 = 0; p1 < problem.NumPlans(); ++p1) {
    for (int p2 = p1 + 1; p2 < problem.NumPlans(); ++p2) {
      if (problem.QueryOfPlan(p1) != problem.QueryOfPlan(p2)) {
        problem.AddSaving(p1, p2, 0.3);
      }
    }
  }
  return problem;
}

class RaceDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisarmAll(); }
};

TEST_F(RaceDispatchTest, RaceFindsTheExactOptimumOnThePaperMqo) {
  // 8 qubits: the portfolio includes the exact oracle, which is decisive
  // — the raced report must carry the proven global optimum.
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.dispatch = DispatchMode::kRace;
  options.seed = 7;
  const auto raced = TrySolveMqo(problem, options);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  ASSERT_TRUE(raced->valid);
  EXPECT_EQ(raced->backend_used, Backend::kExact);
  EXPECT_FALSE(raced->degraded);
  EXPECT_FALSE(raced->stats.timed_out);

  OptimizerOptions oracle_options;
  oracle_options.backend = Backend::kExact;
  const auto oracle = TrySolveMqo(problem, oracle_options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(raced->solution.cost, oracle->solution.cost, 1e-9);
  EXPECT_NEAR(raced->qubo_energy, oracle->qubo_energy, 1e-9);
}

TEST_F(RaceDispatchTest, RacedReportIsIdenticalAcrossThreadCounts) {
  // The determinism contract: winner bits/energy/backend, attempt count
  // and the lane *set* must not depend on how many workers race. (Lane
  // timings and outcomes legitimately vary and are excluded.)
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.dispatch = DispatchMode::kRace;
  options.seed = 21;

  struct Captured {
    MqoSolveReport report;
  };
  std::vector<Captured> runs;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    const auto report = TrySolveMqo(problem, options);
    ASSERT_TRUE(report.ok())
        << "threads=" << threads << ": " << report.status().ToString();
    runs.push_back({*report});
  }
  const MqoSolveReport& base = runs[0].report;
  ASSERT_TRUE(base.valid);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const MqoSolveReport& other = runs[i].report;
    EXPECT_EQ(base.valid, other.valid);
    EXPECT_EQ(base.backend_used, other.backend_used);
    EXPECT_EQ(base.degraded, other.degraded);
    EXPECT_EQ(base.stats.timed_out, other.stats.timed_out);
    EXPECT_EQ(base.stats.attempts, other.stats.attempts);
    EXPECT_EQ(base.qubo_energy, other.qubo_energy);
    EXPECT_EQ(base.solution.cost, other.solution.cost);
    EXPECT_EQ(base.solution.selection, other.solution.selection);
    ASSERT_EQ(base.stats.lanes.size(), other.stats.lanes.size());
    for (std::size_t lane = 0; lane < base.stats.lanes.size(); ++lane) {
      EXPECT_EQ(base.stats.lanes[lane].backend,
                other.stats.lanes[lane].backend);
    }
  }
}

TEST_F(RaceDispatchTest, SingleLaneRaceMatchesSerialBitForBit) {
  // The paper's 3-relation join example encodes to 25 qubits — above
  // every race-extra cap — so the portfolio collapses to the requested
  // SA lane and the raced result must equal the serial one exactly.
  const QueryGraph graph = MakePaperExampleQuery();
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 40;
  options.anneal.num_sweeps = 1500;
  options.seed = 11;

  options.dispatch = DispatchMode::kSerial;
  const auto serial = TrySolveJoinOrder(graph, encoder, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  options.dispatch = DispatchMode::kRace;
  const auto raced = TrySolveJoinOrder(graph, encoder, options);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();

  ASSERT_EQ(raced->stats.lanes.size(), 1u);
  EXPECT_EQ(raced->stats.lanes[0].backend, Backend::kSimulatedAnnealing);
  EXPECT_EQ(raced->stats.attempts, 1);
  EXPECT_EQ(raced->backend_used, serial->backend_used);
  EXPECT_EQ(raced->valid, serial->valid);
  EXPECT_EQ(raced->qubo_energy, serial->qubo_energy);
  if (serial->valid) {
    EXPECT_EQ(raced->solution.order, serial->solution.order);
    EXPECT_EQ(raced->solution.cost, serial->solution.cost);
  }
}

TEST_F(RaceDispatchTest, NoFallbackRaceCollapsesToTheRequestedLane) {
  // --no-fallback promised the caller no classical stand-ins; the race
  // must not smuggle them back in as extra lanes.
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.dispatch = DispatchMode::kRace;
  options.classical_fallback = false;
  options.seed = 9;
  const auto raced = TrySolveMqo(problem, options);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  ASSERT_EQ(raced->stats.lanes.size(), 1u);
  EXPECT_EQ(raced->stats.lanes[0].backend, Backend::kSimulatedAnnealing);
  EXPECT_EQ(raced->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_EQ(raced->stats.attempts, 1);
}

TEST_F(RaceDispatchTest, InvalidOptionsAreNeverMaskedByAWinningLane) {
  // The requested SA lane has invalid options; even though the exact
  // lane wins the race, the caller's input error must surface.
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.dispatch = DispatchMode::kRace;
  options.anneal.num_reads = 0;
  const auto raced = TrySolveMqo(problem, options);
  ASSERT_FALSE(raced.ok());
  EXPECT_EQ(raced.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RaceDispatchTest, FaultedLeaderDiesAndASurvivorWins) {
  // Deterministic mid-race leader death: at pool size 1 the lanes run
  // inline in priority order, so the first race.lane fault kills the
  // exact oracle — the requested backend — and the SA survivor's
  // incumbent must win, reported as a degradation.
  FaultInjection::Instance().Arm("race.lane",
                                 UnavailableError("injected lane death"),
                                 /*after_n=*/0, /*times=*/1);
  ThreadPool pool(1);
  ScopedDefaultPool guard(&pool);
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kExact;
  options.dispatch = DispatchMode::kRace;
  options.seed = 7;
  const auto raced = TrySolveMqo(problem, options);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  ASSERT_TRUE(raced->valid);
  EXPECT_EQ(raced->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_TRUE(raced->degraded);
  EXPECT_FALSE(raced->degradation_reason.empty());
  ASSERT_FALSE(raced->stats.lanes.empty());
  EXPECT_EQ(raced->stats.lanes[0].backend, Backend::kExact);
  EXPECT_EQ(raced->stats.lanes[0].outcome, "unavailable");
  EXPECT_FALSE(raced->stats.lanes[0].won);
}

TEST_F(RaceDispatchTest, MidRaceCancellationReturnsCancelled) {
  // 24 qubits -> a single heavy SA lane; firing the caller's token
  // mid-race must surface kCancelled (never a degraded report), and the
  // racer must drain its lane before returning.
  const MqoProblem problem = MakeDenseMqo(6, 4);
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.dispatch = DispatchMode::kRace;
  options.anneal.num_reads = 64;
  options.anneal.num_sweeps = 400000;
  options.seed = 3;
  CancelToken token;
  options.budget.deadline = Deadline::Infinite().WithToken(&token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    token.Cancel();
  });
  const auto raced = TrySolveMqo(problem, options);
  canceller.join();
  ASSERT_FALSE(raced.ok());
  EXPECT_EQ(raced.status().code(), StatusCode::kCancelled);
}

TEST_F(RaceDispatchTest, RaceDeadlineYieldsAnytimeBestSoFar) {
  // Deadline expiry is not a cancellation: the SA lane must stop at the
  // wall and still publish its best-so-far state, reported timed_out
  // (and therefore degraded, per the invariant).
  const MqoProblem problem = MakeDenseMqo(6, 4);
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.dispatch = DispatchMode::kRace;
  options.anneal.num_reads = 64;
  options.anneal.num_sweeps = 400000;
  options.seed = 3;
  options.budget.deadline = Deadline::AfterMillis(120);
  const auto raced = TrySolveMqo(problem, options);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  EXPECT_EQ(raced->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_TRUE(raced->stats.timed_out);
  EXPECT_TRUE(raced->degraded);
  EXPECT_FALSE(raced->degradation_reason.empty());
}

// ---------------------------------------------------------------------------
// Serial dispatch-stats bugfix pins.
// ---------------------------------------------------------------------------

TEST_F(RaceDispatchTest, SalvageCountsItsAttemptAndIsNotTimedOut) {
  // The quantum stage "times out" via an injected kDeadlineExceeded while
  // the overall budget is unbounded, so the salvage SA read completes
  // comfortably: it must be counted as a real attempt and the report must
  // be degraded but NOT timed_out (the salvage never hit a wall).
  FaultInjection::Instance().Arm("statevector.alloc",
                                 DeadlineExceededError("injected stage wall"),
                                 /*after_n=*/0, /*times=*/1);
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.seed = 77;
  options.anneal.num_sweeps = 400;  // salvage clamps this to 256
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_EQ(report->stats.attempts, 2);
  EXPECT_FALSE(report->stats.timed_out);
}

TEST_F(RaceDispatchTest, SalvageContinuesTheAttemptSeedSequence) {
  // The salvage read is attempt 2, so it must run with AttemptSeed(seed,
  // 2) — never the caller's original seed, whose stream attempt 1 already
  // consumed. Reproduce the salvage run standalone and pin the energy.
  FaultInjection::Instance().Arm("statevector.alloc",
                                 DeadlineExceededError("injected stage wall"),
                                 /*after_n=*/0, /*times=*/1);
  const MqoProblem problem = MakePaperExampleMqo();
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.seed = 77;
  options.anneal.num_sweeps = 400;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const auto encoding = TryEncodeMqoAsQubo(problem);
  ASSERT_TRUE(encoding.ok());
  AnnealOptions cheap;
  cheap.num_reads = 1;
  cheap.num_sweeps = 256;
  cheap.seed = ExpectedAttemptSeed(options.seed, 2);
  const auto replay = TrySolveQuboWithAnnealing(encoding->qubo, cheap);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(report->qubo_energy, replay->best_energy);
}

TEST_F(RaceDispatchTest, FallbackCountsItsAttemptAndContinuesTheSeeds) {
  // 24 variables overflow the adiabatic budget; the SA fallback is
  // attempt 2 and must both be counted and run with AttemptSeed(seed, 2).
  const MqoProblem problem = MakeDenseMqo(6, 4);
  OptimizerOptions options;
  options.backend = Backend::kAdiabatic;
  options.anneal.num_reads = 20;
  options.anneal.num_sweeps = 800;
  options.seed = 3;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_EQ(report->stats.attempts, 2);

  const auto encoding = TryEncodeMqoAsQubo(problem);
  ASSERT_TRUE(encoding.ok());
  AnnealOptions replay_options = options.anneal;
  replay_options.seed = ExpectedAttemptSeed(options.seed, 2);
  const auto replay =
      TrySolveQuboWithAnnealing(encoding->qubo, replay_options);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(report->qubo_energy, replay->best_energy);
}

TEST_F(RaceDispatchTest, RetriedFallbackKeepsCountingAttempts) {
  // Three embedding attempts fail (kUnavailable is retryable), then the
  // exact fallback stands in: 3 + 1 = 4 attempts on the report.
  const MqoProblem problem = MakeDenseMqo(5, 4);  // K20: no P2 embedding
  OptimizerOptions options;
  options.backend = Backend::kAnnealerEmulation;
  options.pegasus_m = 2;
  options.seed = 5;
  options.budget.retry.max_attempts = 3;
  options.budget.retry.initial_backoff_ms = 1.0;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->backend_used, Backend::kExact);
  EXPECT_EQ(report->stats.attempts, 4);
}

}  // namespace
}  // namespace qopt
