// qqo_serve robustness and unit tests: request validation, the solution
// cache's LRU / rejection bookkeeping, admission control + overload
// shedding, fault-site isolation (serve.admit / serve.request), the
// canonical-form cache hit paths, pre-cancel semantics and the graceful
// drain (cancel-on-budget) path. The byte-identical replay pins live in
// serve_replay_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/solution_cache.h"

namespace qopt::serve {
namespace {

constexpr const char* kMqoWorkload =
    "{\"queries\":[{\"plans\":[{\"cost\":5},{\"cost\":7}]},"
    "{\"plans\":[{\"cost\":6},{\"cost\":9}]}],"
    "\"savings\":[{\"plan1\":0,\"plan2\":2,\"saving\":2}]}";

/// Same MQO with query 0's plans swapped and the saving remapped: an
/// isomorphic relabeling of the encoded QUBO, not an exact repeat.
constexpr const char* kRelabeledMqoWorkload =
    "{\"queries\":[{\"plans\":[{\"cost\":7},{\"cost\":5}]},"
    "{\"plans\":[{\"cost\":6},{\"cost\":9}]}],"
    "\"savings\":[{\"plan1\":1,\"plan2\":2,\"saving\":2}]}";

std::string MqoRequest(const std::string& id, const std::string& workload,
                       const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"type\":\"mqo\",\"backend\":\"exact\"" +
         extra + ",\"workload\":" + workload + "}";
}

/// Runs `requests` through a fresh Server and returns the response lines.
std::vector<std::string> RunServer(const ServerOptions& options,
                                   const std::vector<std::string>& requests,
                                   Server* reuse = nullptr) {
  std::ostringstream joined;
  for (const std::string& request : requests) joined << request << '\n';
  Server local(options);
  Server& server = reuse != nullptr ? *reuse : local;
  std::istringstream in(joined.str());
  std::ostringstream out;
  const Status status = server.Serve(in, out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

JsonValue ParseResponse(const std::string& line) {
  StatusOr<JsonValue> parsed = JsonValue::ParseOrStatus(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *std::move(parsed) : JsonValue::Object();
}

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  if (error == nullptr) return "";
  const JsonValue* code = error->Find("code");
  if (code == nullptr) return "";
  StatusOr<std::string> name = code->GetString();
  return name.ok() ? *name : "";
}

// ---------------------------------------------------------------------------
// Protocol validation.

TEST(ServeProtocolTest, ParsesFullMqoRequest) {
  const std::string line = MqoRequest(
      "r1", kMqoWorkload,
      ",\"seed\":11,\"timeout_ms\":500,\"retries\":3,\"dispatch\":\"race\","
      "\"pegasus\":6,\"no_fallback\":true,\"cache\":false");
  StatusOr<ServeRequest> parsed =
      ParseServeRequest(line, DispatchMode::kSerial);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, "r1");
  EXPECT_EQ(parsed->type, RequestType::kMqo);
  EXPECT_TRUE(parsed->mqo.has_value());
  EXPECT_EQ(parsed->backend, Backend::kExact);
  EXPECT_EQ(parsed->dispatch, DispatchMode::kRace);
  EXPECT_EQ(parsed->seed, 11u);
  EXPECT_EQ(parsed->timeout_ms, 500);
  EXPECT_EQ(parsed->retries, 3);
  EXPECT_EQ(parsed->pegasus_m, 6);
  EXPECT_FALSE(parsed->classical_fallback);
  EXPECT_FALSE(parsed->use_cache);
}

TEST(ServeProtocolTest, DefaultDispatchComesFromServer) {
  StatusOr<ServeRequest> parsed = ParseServeRequest(
      MqoRequest("r1", kMqoWorkload), DispatchMode::kRace);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->dispatch, DispatchMode::kRace);
}

TEST(ServeProtocolTest, RejectsMalformedAndInvalidRequests) {
  const DispatchMode d = DispatchMode::kSerial;
  // Not JSON at all.
  EXPECT_FALSE(ParseServeRequest("{\"id\":", d).ok());
  // Not an object.
  EXPECT_FALSE(ParseServeRequest("[1,2]", d).ok());
  // Missing / empty / oversized id.
  EXPECT_FALSE(ParseServeRequest("{\"type\":\"ping\"}", d).ok());
  EXPECT_FALSE(ParseServeRequest("{\"id\":\"\",\"type\":\"ping\"}", d).ok());
  EXPECT_FALSE(ParseServeRequest(
                   "{\"id\":\"" + std::string(kMaxRequestIdBytes + 1, 'a') +
                       "\",\"type\":\"ping\"}",
                   d)
                   .ok());
  // Unknown type / backend, unknown field, wrong field type.
  EXPECT_FALSE(ParseServeRequest("{\"id\":\"r\",\"type\":\"warp\"}", d).ok());
  EXPECT_FALSE(
      ParseServeRequest(
          MqoRequest("r", kMqoWorkload, ",\"backend\":\"abacus\""), d)
          .ok());
  EXPECT_FALSE(
      ParseServeRequest("{\"id\":\"r\",\"type\":\"ping\",\"bogus\":1}", d)
          .ok());
  EXPECT_FALSE(
      ParseServeRequest(MqoRequest("r", kMqoWorkload, ",\"seed\":\"seven\""),
                        d)
          .ok());
  // Out-of-range knobs.
  EXPECT_FALSE(
      ParseServeRequest(MqoRequest("r", kMqoWorkload, ",\"retries\":0"), d)
          .ok());
  EXPECT_FALSE(
      ParseServeRequest(MqoRequest("r", kMqoWorkload, ",\"seed\":-1"), d)
          .ok());
  // Solve without a workload; cancel without a target.
  EXPECT_FALSE(
      ParseServeRequest("{\"id\":\"r\",\"type\":\"mqo\"}", d).ok());
  EXPECT_FALSE(
      ParseServeRequest("{\"id\":\"r\",\"type\":\"cancel\"}", d).ok());
  // Solve-only fields are rejected on admin requests.
  EXPECT_FALSE(
      ParseServeRequest("{\"id\":\"r\",\"type\":\"stats\",\"seed\":1}", d)
          .ok());
}

TEST(ServeProtocolTest, ErrorResponsesAreStructured) {
  const std::string with_id =
      MakeErrorResponse("r9", UnavailableError("queue full"));
  JsonValue parsed = ParseResponse(with_id);
  EXPECT_FALSE(parsed.Find("ok")->GetBool().value());
  EXPECT_EQ(parsed.Find("id")->GetString().value(), "r9");
  EXPECT_EQ(ErrorCode(parsed), "UNAVAILABLE");

  // An id that never parsed serializes as null, not as "".
  const std::string anonymous =
      MakeErrorResponse("", InvalidArgumentError("bad line"));
  EXPECT_NE(anonymous.find("\"id\":null"), std::string::npos);
}

TEST(ServeProtocolTest, BestEffortIdRecoversFromInvalidRequests) {
  // The request fails validation (unknown field) but its id is legal, so
  // the error response can still name it.
  EXPECT_EQ(BestEffortRequestId("{\"id\":\"r7\",\"type\":\"ping\",\"z\":1}"),
            "r7");
  EXPECT_EQ(BestEffortRequestId("{\"id\":"), "");
  EXPECT_EQ(BestEffortRequestId("{\"id\":42,\"type\":\"ping\"}"), "");
  EXPECT_EQ(
      BestEffortRequestId(
          "{\"id\":\"" + std::string(kMaxRequestIdBytes + 1, 'a') + "\"}"),
      "");
}

// ---------------------------------------------------------------------------
// Solution cache.

CacheEntry MakeEntry(std::uint64_t exact_hash) {
  CacheEntry entry;
  entry.exact_hash = exact_hash;
  entry.canonical_bits = {1, 0, 1};
  entry.energy = -3.5;
  entry.payload = "{\"energy\":-3.5}";
  return entry;
}

TEST(SolutionCacheTest, BoundedLruEvictsOldestFirst) {
  SolutionCache cache(2);
  cache.Insert(1, 0, MakeEntry(11));
  cache.Insert(2, 0, MakeEntry(22));
  cache.Insert(3, 0, MakeEntry(33));  // Evicts key 1.
  EXPECT_EQ(cache.Size(), 2u);
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup(1, 0, 11, &entry), CacheHitKind::kMiss);
  EXPECT_EQ(cache.Lookup(2, 0, 22, &entry), CacheHitKind::kExact);
  EXPECT_EQ(cache.Lookup(3, 0, 33, &entry), CacheHitKind::kExact);
  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.insertions, 3);
  EXPECT_EQ(counters.evictions, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.hits_exact, 2);
}

TEST(SolutionCacheTest, LookupRefreshesRecency) {
  SolutionCache cache(2);
  cache.Insert(1, 0, MakeEntry(11));
  cache.Insert(2, 0, MakeEntry(22));
  CacheEntry entry;
  // Touch key 1 so key 2 becomes the eviction victim.
  ASSERT_EQ(cache.Lookup(1, 0, 11, &entry), CacheHitKind::kExact);
  cache.Insert(3, 0, MakeEntry(33));
  EXPECT_EQ(cache.Lookup(1, 0, 11, &entry), CacheHitKind::kExact);
  EXPECT_EQ(cache.Lookup(2, 0, 22, &entry), CacheHitKind::kMiss);
}

TEST(SolutionCacheTest, ReinsertRefreshesInPlace) {
  SolutionCache cache(2);
  cache.Insert(1, 0, MakeEntry(11));
  CacheEntry updated = MakeEntry(99);
  updated.payload = "{\"energy\":-9}";
  cache.Insert(1, 0, updated);
  EXPECT_EQ(cache.Size(), 1u);
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup(1, 0, 99, &entry), CacheHitKind::kExact);
  EXPECT_EQ(entry.payload, "{\"energy\":-9}");
}

TEST(SolutionCacheTest, DistinguishesExactFromIsomorphicHits) {
  SolutionCache cache(4);
  cache.Insert(1, 0, MakeEntry(11));
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup(1, 0, 11, &entry), CacheHitKind::kExact);
  EXPECT_EQ(cache.Lookup(1, 0, 12, &entry), CacheHitKind::kIsomorphic);
  // Same canonical form under different options is a different key.
  EXPECT_EQ(cache.Lookup(1, 5, 11, &entry), CacheHitKind::kMiss);
}

TEST(SolutionCacheTest, RejectionDemotesHitAndDropsEntry) {
  SolutionCache cache(4);
  cache.Insert(1, 0, MakeEntry(11));
  CacheEntry entry;
  ASSERT_EQ(cache.Lookup(1, 0, 12, &entry), CacheHitKind::kIsomorphic);
  cache.RecordRejection(1, 0);
  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits_isomorphic, 0);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.rejections, 1);
  // The poisoned entry cannot serve further false hits.
  EXPECT_EQ(cache.Lookup(1, 0, 12, &entry), CacheHitKind::kMiss);
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(SolutionCacheTest, CapacityZeroDisablesCaching) {
  SolutionCache cache(0);
  cache.Insert(1, 0, MakeEntry(11));
  EXPECT_EQ(cache.Size(), 0u);
  CacheEntry entry;
  EXPECT_EQ(cache.Lookup(1, 0, 11, &entry), CacheHitKind::kMiss);
  EXPECT_EQ(cache.Counters().insertions, 0);
}

// ---------------------------------------------------------------------------
// Server robustness.

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Metrics::Instance().Reset();
    obs::Metrics::Instance().Enable();
  }
  void TearDown() override {
    FaultInjection::Instance().DisarmAll();
    obs::Metrics::Instance().Disable();
  }
};

TEST_F(ServeServerTest, PingAndMalformedLinesCoexist) {
  ServerOptions options;
  const std::vector<std::string> responses = RunServer(
      options, {"{\"id\":\"p1\",\"type\":\"ping\"}", "{oops",
                "{\"id\":\"p2\",\"type\":\"ping\"}"});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[0].find("\"pong\":true"), std::string::npos);
  EXPECT_EQ(ErrorCode(ParseResponse(responses[1])), "INVALID_ARGUMENT");
  EXPECT_NE(responses[2].find("\"pong\":true"), std::string::npos)
      << "a malformed line must not stop the loop";
}

TEST_F(ServeServerTest, ZeroCapacityShedsEverySolveDeterministically) {
  ServerOptions options;
  options.queue_capacity = 0;
  Server server(options);
  const std::vector<std::string> responses =
      RunServer(options, {MqoRequest("m1", kMqoWorkload),
                          "{\"id\":\"p1\",\"type\":\"ping\"}"},
                &server);
  ASSERT_EQ(responses.size(), 2u);
  JsonValue shed = ParseResponse(responses[0]);
  EXPECT_EQ(ErrorCode(shed), "UNAVAILABLE");
  EXPECT_NE(responses[0].find("admission queue full"), std::string::npos);
  EXPECT_NE(responses[1].find("\"pong\":true"), std::string::npos)
      << "shedding must not stop the loop";
  EXPECT_EQ(server.Counters().shed, 1);
  EXPECT_EQ(server.Counters().admitted, 0);
}

TEST_F(ServeServerTest, AdmitFaultSiteShedsWithStructuredError) {
  FaultInjection::Instance().Arm("serve.admit",
                                 UnavailableError("injected admit fault"));
  ServerOptions options;
  Server server(options);
  const std::vector<std::string> responses =
      RunServer(options, {MqoRequest("m1", kMqoWorkload),
                          MqoRequest("m2", kMqoWorkload)},
                &server);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ErrorCode(ParseResponse(responses[0])), "UNAVAILABLE");
  EXPECT_NE(responses[0].find("injected admit fault"), std::string::npos);
  // The fault fires once; the next request is admitted and solved.
  EXPECT_NE(responses[1].find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(server.Counters().shed, 1);
}

TEST_F(ServeServerTest, RequestFaultSiteIsolatesToOneResponse) {
  FaultInjection::Instance().Arm("serve.request",
                                 InternalError("injected worker fault"));
  ServerOptions options;
  const std::vector<std::string> responses =
      RunServer(options, {MqoRequest("m1", kMqoWorkload),
                          MqoRequest("m2", kMqoWorkload)});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ErrorCode(ParseResponse(responses[0])), "INTERNAL");
  EXPECT_NE(responses[1].find("\"ok\":true"), std::string::npos)
      << "a fault-injected request must not take down the daemon";
}

TEST_F(ServeServerTest, WorkerExceptionBecomesInternalErrorResponse) {
  ServerOptions options;
  options.test_request_hook = [](const Deadline&) {
    throw std::runtime_error("hook exploded");
  };
  const std::vector<std::string> responses = RunServer(
      options, {MqoRequest("m1", kMqoWorkload),
                "{\"id\":\"p1\",\"type\":\"ping\"}"});
  ASSERT_EQ(responses.size(), 2u);
  JsonValue error = ParseResponse(responses[0]);
  EXPECT_EQ(ErrorCode(error), "INTERNAL");
  EXPECT_NE(responses[0].find("hook exploded"), std::string::npos);
  EXPECT_NE(responses[1].find("\"pong\":true"), std::string::npos);
}

TEST_F(ServeServerTest, DuplicateRequestHitsCacheWithIdenticalPayload) {
  ServerOptions options;
  Server server(options);
  const std::vector<std::string> responses =
      RunServer(options, {MqoRequest("m1", kMqoWorkload),
                          MqoRequest("m2", kMqoWorkload)},
                &server);
  ASSERT_EQ(responses.size(), 2u);
  JsonValue first = ParseResponse(responses[0]);
  JsonValue second = ParseResponse(responses[1]);
  EXPECT_FALSE(first.Find("cached")->GetBool().value());
  EXPECT_TRUE(second.Find("cached")->GetBool().value());
  // Byte-identical solution payload, verified via the hit counters.
  EXPECT_EQ(first.Find("result")->Dump(), second.Find("result")->Dump());
  EXPECT_EQ(server.Cache().Counters().hits_exact, 1);
  EXPECT_EQ(server.Cache().Counters().misses, 1);
}

TEST_F(ServeServerTest, IsomorphicRelabelingHitsThroughCanonicalForm) {
  ServerOptions options;
  Server server(options);
  const std::vector<std::string> responses =
      RunServer(options, {MqoRequest("m1", kMqoWorkload),
                          MqoRequest("m3", kRelabeledMqoWorkload)},
                &server);
  ASSERT_EQ(responses.size(), 2u);
  JsonValue hit = ParseResponse(responses[1]);
  EXPECT_TRUE(hit.Find("cached")->GetBool().value());
  // The transported optimum selects the relabeled cheap plans: global
  // plan 1 (cost 5, now second in query 0) and plan 2 (cost 6).
  const JsonValue* result = hit.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_DOUBLE_EQ(result->Find("cost")->GetNumber().value(), 9.0);
  EXPECT_EQ(result->Find("selection")->Dump(), "[1,2]");
  EXPECT_EQ(server.Cache().Counters().hits_isomorphic, 1);
  EXPECT_EQ(server.Cache().Counters().rejections, 0);
}

TEST_F(ServeServerTest, CacheOptOutSolvesEveryTime) {
  ServerOptions options;
  Server server(options);
  const std::vector<std::string> responses = RunServer(
      options,
      {MqoRequest("m1", kMqoWorkload, ",\"cache\":false"),
       MqoRequest("m2", kMqoWorkload, ",\"cache\":false")},
      &server);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(ParseResponse(responses[1]).Find("cached")->GetBool().value());
  EXPECT_EQ(server.Cache().Counters().hits_exact, 0);
  EXPECT_EQ(server.Cache().Counters().insertions, 0);
}

TEST_F(ServeServerTest, PreCancelFiresAtAdmission) {
  ServerOptions options;
  Server server(options);
  const std::vector<std::string> responses = RunServer(
      options,
      {"{\"id\":\"c1\",\"type\":\"cancel\",\"target\":\"m9\"}",
       MqoRequest("m9", kMqoWorkload, ",\"cache\":false")},
      &server);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[0].find("\"cancelled\":true"), std::string::npos);
  EXPECT_EQ(ErrorCode(ParseResponse(responses[1])), "CANCELLED");
  EXPECT_EQ(server.Counters().cancelled, 1);
}

TEST_F(ServeServerTest, OversizedLineRejectedWithoutParsing) {
  ServerOptions options;
  options.max_line_bytes = 64;
  const std::vector<std::string> responses = RunServer(
      options, {"{\"id\":\"big\",\"type\":\"ping\",\"pad\":\"" +
                    std::string(200, 'x') + "\"}",
                "{\"id\":\"p1\",\"type\":\"ping\"}"});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ErrorCode(ParseResponse(responses[0])), "RESOURCE_EXHAUSTED");
  EXPECT_NE(responses[1].find("\"pong\":true"), std::string::npos);
}

TEST_F(ServeServerTest, StatsReportsCacheAndServerCounters) {
  ServerOptions options;
  Server server(options);
  const std::vector<std::string> responses = RunServer(
      options,
      {MqoRequest("m1", kMqoWorkload), MqoRequest("m2", kMqoWorkload),
       "{bad", "{\"id\":\"s1\",\"type\":\"stats\"}"},
      &server);
  ASSERT_EQ(responses.size(), 4u);
  JsonValue stats = ParseResponse(responses[3]);
  const JsonValue* result = stats.Find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* cache = result->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_DOUBLE_EQ(cache->Find("hits_exact")->GetNumber().value(), 1.0);
  EXPECT_DOUBLE_EQ(cache->Find("misses")->GetNumber().value(), 1.0);
  const JsonValue* counters = result->Find("server");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("admitted")->GetNumber().value(), 2.0);
  EXPECT_DOUBLE_EQ(counters->Find("completed")->GetNumber().value(), 2.0);
  EXPECT_DOUBLE_EQ(counters->Find("parse_errors")->GetNumber().value(), 1.0);
  ASSERT_NE(result->Find("metrics"), nullptr);
}

TEST_F(ServeServerTest, DrainBudgetCancelsStragglers) {
  // A solve that blocks until its deadline reports cancellation: the hook
  // waits for the drain token (linked into the request deadline) instead
  // of sleeping, so this pins the cancel-on-drain path without timing
  // races. Needs a pool of at least 2 — at size 1 Submit runs inline on
  // the accept thread and Drain() would never be reached while blocked.
  ThreadPool pool(2);
  ScopedDefaultPool guard(&pool);
  std::atomic<int> hook_calls{0};
  ServerOptions options;
  options.drain_budget_ms = 50;
  options.test_request_hook = [&hook_calls](const Deadline& deadline) {
    ++hook_calls;
    while (!deadline.Cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(options);
  const std::vector<std::string> responses = RunServer(
      options, {MqoRequest("m1", kMqoWorkload, ",\"cache\":false")}, &server);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(ErrorCode(ParseResponse(responses[0])), "CANCELLED");
  EXPECT_EQ(hook_calls.load(), 1);
  EXPECT_EQ(server.Counters().cancelled, 1);
  EXPECT_EQ(server.Counters().completed, 1);
}

TEST_F(ServeServerTest, ShutdownRequestStopsAdmission) {
  ServerOptions options;
  Server server(options);
  server.RequestShutdown();
  std::istringstream in(
      "{\"id\":\"p1\",\"type\":\"ping\"}\n{\"id\":\"p2\",\"type\":\"ping\"}\n");
  std::ostringstream out;
  ASSERT_TRUE(server.Serve(in, out).ok());
  EXPECT_EQ(out.str(), "") << "no line may be admitted after shutdown";
  EXPECT_TRUE(server.ShutdownRequested());
}

}  // namespace
}  // namespace qopt::serve
